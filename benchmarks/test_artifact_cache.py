"""Artifact claim — parsing dominates, the binary cache pays (§V-A.a).

"Initially, the parser verifies the existence of a binary cache for
the given input trace, as parsing the traces of an application is the
most time-consuming step for the analyzer."

Measures cold (parse) vs warm (cache) trace loads and asserts the
cache delivers a real speedup, and that parsing indeed dominates a
full cold analyze run.
"""

import time

from repro.analyzer import analyze
from repro.traces import load_trace, save_trace
from repro.traces.cache import cache_path
from repro.traces.synthetic import generate


def test_cache_speedup(benchmark, tmp_path):
    trace = generate("LULESH", processes=27, rounds=8)
    trace_dir = tmp_path / "lulesh"
    save_trace(trace, trace_dir)

    # Best-of-3 for both paths: single timings are noisy at this size.
    def best_of(loader, n=3):
        times = []
        for _ in range(n):
            start = time.perf_counter()
            result = loader()
            times.append(time.perf_counter() - start)
        return min(times), result

    cold_seconds, cold = best_of(
        lambda: load_trace(trace_dir, use_cache=False, parallel=False)
    )
    load_trace(trace_dir, parallel=False)  # populate the cache
    assert cache_path(trace_dir).exists()

    warm = benchmark(load_trace, trace_dir, parallel=False)
    assert warm.total_ops() == cold.total_ops()

    warm_seconds, _ = best_of(lambda: load_trace(trace_dir, parallel=False))
    print(
        f"\ncold parse: {cold_seconds * 1e3:.1f} ms, "
        f"warm cache: {warm_seconds * 1e3:.1f} ms, "
        f"speedup {cold_seconds / warm_seconds:.1f}x"
    )
    assert warm_seconds < cold_seconds

def test_parse_vs_cache_vs_analysis(benchmark, tmp_path):
    """Cost breakdown: cold parse, warm cache load, one 32-bin
    analysis. The artifact's cache rationale holds when text parsing
    far exceeds the cache load (re-runs skip it entirely); analysis
    cost is reported alongside for context."""
    trace = generate("BoxLib MultiGrid", processes=27, rounds=3)
    trace_dir = tmp_path / "bmg"
    save_trace(trace, trace_dir)

    start = time.perf_counter()
    loaded = load_trace(trace_dir, parallel=False)  # cold + cache fill
    parse_seconds = time.perf_counter() - start
    start = time.perf_counter()
    load_trace(trace_dir, parallel=False)  # warm
    cache_seconds = time.perf_counter() - start

    def run_analysis():
        return analyze(loaded, 32)

    benchmark(run_analysis)
    start = time.perf_counter()
    analyze(loaded, 32)
    analyze_seconds = time.perf_counter() - start
    print(
        f"\nparse: {parse_seconds * 1e3:.1f} ms, "
        f"cache load: {cache_seconds * 1e3:.1f} ms, "
        f"analyze@32: {analyze_seconds * 1e3:.1f} ms"
    )
    # Re-running the analyzer skips the parse: that is the cache's
    # whole value proposition.
    assert cache_seconds < parse_seconds

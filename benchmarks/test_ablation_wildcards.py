"""Ablation — wildcard pressure (§II-A).

"By using wildcards, the MPI tag matching process becomes more
serialized, making it harder to optimize the matching structures."
This benchmark sweeps the fraction of ANY_SOURCE receives in a
many-senders workload and measures what wildcards cost the optimistic
engine: every wildcard receive lives in a tag-keyed index whose
buckets aggregate *all* senders, so chains deepen and probe counts
rise even when total receives stay constant.
"""

from repro.core import ANY_SOURCE, EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest
from repro.util.rng import make_rng

SENDERS = 16
ROUNDS = 16
FRACTIONS = (0.0, 0.25, 0.5, 1.0)


def run(wildcard_fraction: float):
    engine = OptimisticMatcher(
        EngineConfig(bins=256, block_threads=8, max_receives=1024)
    )
    rng = make_rng(int(wildcard_fraction * 100))
    send_seq = [0] * SENDERS
    for round_ in range(ROUNDS):
        tag = round_ % 4
        for sender in range(SENDERS):
            if rng.random() < wildcard_fraction:
                engine.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=tag))
            else:
                engine.post_receive(ReceiveRequest(source=sender, tag=tag))
        for sender in range(SENDERS):
            engine.submit_message(
                MessageEnvelope(source=sender, tag=tag, send_seq=send_seq[sender])
            )
            send_seq[sender] += 1
        engine.process_all()
    return engine


def test_wildcard_pressure(benchmark):
    engines = {}

    def sweep():
        for fraction in FRACTIONS:
            engines[fraction] = run(fraction)
        return engines

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n{'ANY_SOURCE %':>13s} {'walk/msg':>9s} {'conflicts':>10s}")
    walks = {}
    for fraction, engine in engines.items():
        walk = engine.stats.probes_walked / engine.stats.messages
        walks[fraction] = walk
        print(f"{100 * fraction:13.0f} {walk:9.2f} {engine.stats.conflicts:10d}")
    # Full wildcard usage concentrates all receives of a tag in one
    # bucket: substantially deeper walks than the fully-keyed case.
    assert walks[1.0] > walks[0.0]
    # All messages still match in every configuration.
    for engine in engines.values():
        assert engine.stats.unexpected_stored == 0


def test_wildcards_preserved_semantics(benchmark):
    """Correctness under full wildcard pressure: arrival order wins."""

    def run_full():
        return run(1.0)

    engine = benchmark(run_full)
    assert engine.stats.expected_matches == SENDERS * ROUNDS

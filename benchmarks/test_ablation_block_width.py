"""Ablation — optimistic block width N (the bitmap-bounded thread
count; the §VI prototype uses 32, "limited by the bookkeeping bitmap
size").

Sweeps N over the no-conflict and with-conflict streams and reports
the message rate per width: wider blocks amortize dispatch on clean
streams but widen the conflict blast radius on same-key streams.
"""

from repro.bench import PingPongBench
from repro.bench.scenarios import scenario_by_name

WIDTHS = (1, 4, 16, 32)


def sweep_widths(scenario_name: str):
    rates = {}
    for width in WIDTHS:
        bench = PingPongBench(k=64, repetitions=4, in_flight=128, threads=width)
        result = bench.run_optimistic(scenario_by_name(scenario_name))
        rates[width] = result.message_rate
    return rates


def test_block_width_nc(benchmark):
    rates = benchmark.pedantic(sweep_widths, args=("nc",), rounds=1, iterations=1)
    print("\nNC rate by block width: " + ", ".join(
        f"N={w}: {r / 1e6:.2f}M/s" for w, r in rates.items()
    ))
    # Parallel width must help the clean stream.
    assert rates[32] > rates[1]


def test_block_width_wc_slow_path(benchmark):
    rates = benchmark.pedantic(sweep_widths, args=("wc-sp",), rounds=1, iterations=1)
    print("\nWC-SP rate by block width: " + ", ".join(
        f"N={w}: {r / 1e6:.2f}M/s" for w, r in rates.items()
    ))
    # Slow-path serialization wipes out most of the parallel benefit:
    # the widest block must not scale anywhere near linearly.
    speedup = rates[32] / rates[1]
    assert speedup < 16


def test_block_width_one_degenerates_to_serial(benchmark):
    """N=1 has no conflicts by construction, on any stream."""

    def run():
        bench = PingPongBench(k=64, repetitions=2, in_flight=128, threads=1)
        return bench.run_optimistic(scenario_by_name("wc-fp"))

    result = benchmark(run)
    assert result.path_mix["fast"] == 0
    assert result.path_mix["slow"] == 0

"""Model validation — measured bin occupancy vs balls-in-bins theory.

The bin-based design's whole premise is that hashing spreads MPI's
clustered (source, tag) domains like a random function. This benchmark
checks the premise quantitatively: per application, the measured max
queue depth and collision counts at 32/128 bins must sit within the
analytic Poisson-occupancy envelope for that app's key population.
"""

from repro.analyzer import analyze, predict
from repro.traces.synthetic import generate

APPS = ("BoxLib CNS", "LULESH", "FillBoundary", "AMG", "CrystalRouter")


def validate(rounds: int):
    rows = {}
    for name in APPS:
        trace = generate(name, rounds=rounds)
        analysis = analyze(trace, bins=32)
        # Keys simultaneously live ~ mean posted receives; use the
        # unique key population as the balls count (keys recur over
        # rounds but coexist only within one).
        keys = analysis.unique_pairs
        prediction = predict(keys, 32)
        rows[name] = {
            "keys": keys,
            "measured_max": analysis.depth.max_depth,
            "predicted_max": prediction.expected_max_load,
        }
    return rows


def test_occupancy_matches_theory(benchmark):
    rows = benchmark.pedantic(validate, args=(4,), rounds=1, iterations=1)
    print(f"\n{'Application':15s} {'keys':>5s} {'measured max':>13s} "
          f"{'predicted max':>14s}")
    for name, row in rows.items():
        print(
            f"{name:15s} {row['keys']:5d} {row['measured_max']:13d} "
            f"{row['predicted_max']:14.1f}"
        )
    for name, row in rows.items():
        # Within 3x of the union-bound threshold: the hash family
        # behaves like a random function on real key populations.
        assert row["measured_max"] <= 3.0 * max(row["predicted_max"], 1.0), name


def test_empty_fraction_matches_theory(benchmark):
    """Expected empty-bin fraction at the fullest moment vs e^{-n/b}
    for the deepest app."""
    trace = generate("BoxLib CNS", rounds=3)

    def run():
        return analyze(trace, bins=128, keep_datapoints=True)

    analysis = benchmark(run)
    # At the fullest interval moment, ~26 simultaneous receives occupy
    # 3*128 = 384 tracked buckets; theory says ~93% of bins are empty.
    fullest = min(p.empty_fraction for p in analysis.datapoints)
    prediction = predict(26, 384)
    print(f"\nfullest empty fraction: measured={fullest:.3f} "
          f"theory={prediction.expected_empty_fraction:.3f}")
    assert abs(fullest - prediction.expected_empty_fraction) < 0.1

"""Extension — per-application offloaded message rate.

Joins §V and §VI: each mini-app's real traffic, replayed through the
engine and priced with the DPA cycle model, yields the matching rate
that application would sustain offloaded. Structured low-conflict
apps must land near the Figure 8 NC rate; nothing should approach the
WC-SP floor (the paper's suitability conclusion, expressed in msg/s).
"""

from repro.bench import PingPongBench
from repro.bench.apps import app_message_rate
from repro.bench.scenarios import scenario_by_name
from repro.traces.synthetic import generate

APPS = ("BoxLib CNS", "FillBoundary", "CrystalRouter", "SNAP", "LULESH")


def collect(rounds: int):
    return {name: app_message_rate(generate(name, rounds=rounds)) for name in APPS}


def test_per_app_rates(benchmark):
    rates = benchmark.pedantic(collect, args=(3,), rounds=1, iterations=1)

    # Reference points from the Figure 8 harness at matching params.
    bench = PingPongBench(k=100, repetitions=5, in_flight=1024, threads=32)
    nc = bench.run_optimistic(scenario_by_name("nc")).message_rate
    sp = bench.run_optimistic(scenario_by_name("wc-sp")).message_rate

    print(f"\nFigure 8 anchors: NC {nc / 1e6:.2f} M/s, WC-SP {sp / 1e6:.2f} M/s")
    print(f"{'Application':15s} {'Mmsg/s':>8s} {'cyc/msg':>8s} "
          f"{'conflict%':>10s} {'unexpected%':>12s}")
    for name, rate in rates.items():
        print(
            f"{name:15s} {rate.message_rate / 1e6:8.2f} "
            f"{rate.cycles_per_message():8.0f} {100 * rate.conflict_rate:10.2f} "
            f"{100 * rate.unexpected_fraction:12.2f}"
        )
    for name, rate in rates.items():
        # Every analyzed app sustains a healthy fraction of the
        # no-conflict anchor rate...
        assert rate.message_rate > 0.3 * nc, name
        # ...and sits far above the pathological slow-path floor.
        assert rate.message_rate > sp, name

    # Low-conflict structured apps specifically approach NC.
    assert rates["FillBoundary"].message_rate > 0.5 * nc
    assert rates["SNAP"].conflict_rate < 0.01

"""Figure 7 companion — the artifact's full 1..256 powers-of-two bin
sweep (6 configurations per application), as the A2 artifact emits.
"""

from repro.analyzer import BIN_SWEEP, export_artifact, load_summary


def test_full_bin_sweep_artifact(benchmark, tmp_path):
    out = benchmark.pedantic(
        export_artifact,
        args=(tmp_path / "artifact",),
        kwargs=dict(rounds=3, names=["BoxLib CNS", "LULESH", "AMG", "SNAP"]),
        rounds=1,
        iterations=1,
    )
    summary = load_summary(out)
    assert set(summary) == {"BoxLib CNS", "LULESH", "AMG", "SNAP"}
    for name, per_bins in summary.items():
        assert sorted(int(b) for b in per_bins) == sorted(BIN_SWEEP)
        depths = [per_bins[str(b)]["mean_depth"] for b in sorted(BIN_SWEEP)]
        # Largely monotone decreasing; allow small jitter between
        # adjacent large-bin configs where depth is already ~0.
        assert depths[0] >= depths[-1], name
        assert depths[0] >= max(depths[1:]) * 0.99, name
        # Empty-bin fraction grows with bin count at the fullest
        # moment (same keys, more buckets).
        empties = [per_bins[str(b)]["mean_empty_fraction"] for b in sorted(BIN_SWEEP)]
        assert empties[-1] >= empties[0], name


def test_artifact_files_on_disk(benchmark, tmp_path):
    def export():
        return export_artifact(tmp_path / "a", rounds=2, names=["MOCFE"])

    out = benchmark.pedantic(export, rounds=1, iterations=1)
    for bins in BIN_SWEEP:
        assert (out / "MOCFE" / str(bins) / "stats.json").exists()
        assert (out / "MOCFE" / str(bins) / "datapoints.csv").exists()
        assert (out / "MOCFE" / str(bins) / "tag_usage.csv").exists()
    csv = (out / "MOCFE" / "1" / "datapoints.csv").read_text().splitlines()
    assert csv[0].startswith("rank,walltime,max_depth")
    assert len(csv) > 1

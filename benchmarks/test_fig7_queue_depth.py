"""Figure 7 — queue depth per application at 1, 32, and 128 bins.

Regenerates the full per-app depth table and asserts the paper's
quantitative shape:

* the 1-bin (traditional) configuration has the deepest queues;
* 32 bins cut the cross-application average by ~90 %, 128 bins by
  ~95 % (paper: 8.21 -> 0.80 -> 0.33);
* BoxLib CNS is the deepest application, with 1-bin max depth ~25
  collapsing to single digits at 32 bins (paper: 25 -> 3 -> 1).
"""

from repro.analyzer import (
    FIGURE7_BINS,
    depth_reduction_summary,
    figure7_rows,
    format_figure7,
    sweep_applications,
)


def test_figure7_queue_depth(benchmark, fig7_params):
    processes, rounds = fig7_params
    results = benchmark.pedantic(
        sweep_applications,
        kwargs=dict(bins_list=FIGURE7_BINS, processes=processes, rounds=rounds),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_figure7(results))

    # Monotone reduction per app.
    for name, per_bins in results.items():
        depths = [per_bins[b].depth.mean_depth for b in FIGURE7_BINS]
        assert depths[0] >= depths[1] >= depths[2], name

    summary = depth_reduction_summary(results)
    avg1, _ = summary[1]
    _, reduction32 = summary[32]
    _, reduction128 = summary[128]
    # Paper: reductions of 90 % and 95 %; allow a tolerant band.
    assert reduction32 >= 75.0
    assert reduction128 >= 85.0
    assert reduction128 >= reduction32
    assert avg1 > 2.0  # queues are non-trivial at 1 bin

    # BoxLib CNS: the deepest app; 25 -> 3 in the paper.
    rows = figure7_rows(results)
    assert rows[0][0] == "BoxLib CNS"
    cns_mean, cns_max = rows[0][1], rows[0][2]
    assert 20 <= cns_max[1] <= 30
    assert cns_max[32] <= 5
    assert cns_max[128] <= cns_max[32]


def test_figure7_single_app_sweep_speed(benchmark):
    """Time the core sweep on the deepest app (the analyzer's §V-A
    processing stage is the artifact's measured workload)."""
    from repro.analyzer import sweep_trace
    from repro.traces.synthetic import generate

    trace = generate("BoxLib CNS", rounds=4)
    results = benchmark(sweep_trace, trace, FIGURE7_BINS)
    assert set(results) == set(FIGURE7_BINS)

"""Simulator microbenchmarks — how fast the reproduction itself runs.

These wall-clock numbers describe the Python simulator, not the paper
(Figure 8's rates come from the cycle model). They exist to keep the
reproduction usable: regressions in the stepped executor or the index
walks show up here first.
"""

import pytest

from repro.core import EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest

N_MESSAGES = 256


def drive(block_threads: int, bins: int, same_key: bool) -> OptimisticMatcher:
    engine = OptimisticMatcher(
        EngineConfig(bins=bins, block_threads=block_threads, max_receives=2 * N_MESSAGES)
    )
    for i in range(N_MESSAGES):
        engine.post_receive(ReceiveRequest(source=0, tag=7 if same_key else i))
    for i in range(N_MESSAGES):
        engine.submit_message(
            MessageEnvelope(source=0, tag=7 if same_key else i, send_seq=i)
        )
    engine.process_all()
    return engine


@pytest.mark.parametrize("block_threads", [1, 8, 32])
def test_engine_throughput_by_width(benchmark, block_threads):
    engine = benchmark(drive, block_threads, 512, False)
    assert engine.stats.expected_matches == N_MESSAGES


@pytest.mark.parametrize("bins", [1, 32, 512])
def test_engine_throughput_by_bins(benchmark, bins):
    engine = benchmark(drive, 8, bins, False)
    assert engine.stats.expected_matches == N_MESSAGES


def test_engine_throughput_conflict_heavy(benchmark):
    engine = benchmark(drive, 8, 512, True)
    assert engine.stats.expected_matches == N_MESSAGES


def test_serial_oracle_throughput(benchmark):
    from repro.matching import ListMatcher

    def run():
        matcher = ListMatcher()
        for i in range(N_MESSAGES):
            matcher.post_receive(ReceiveRequest(source=0, tag=i))
        for i in range(N_MESSAGES):
            matcher.incoming_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        return matcher

    matcher = benchmark(run)
    assert matcher.posted_count == 0

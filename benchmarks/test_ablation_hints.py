"""Ablation — §VII communicator hints (experiment E8).

``mpi_assert_no_any_source`` / ``mpi_assert_no_any_tag`` let the
engine skip whole wildcard indexes per message;
``mpi_assert_allow_overtaking`` waives matching-order constraints and
with them the barrier/conflict machinery entirely.
"""

from repro.core import EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest

N = 384
THREADS = 16


def run(config: EngineConfig, *, same_key: bool = False) -> OptimisticMatcher:
    engine = OptimisticMatcher(config)
    for i in range(N):
        engine.post_receive(ReceiveRequest(source=0, tag=7 if same_key else i))
    for i in range(N):
        engine.submit_message(
            MessageEnvelope(source=0, tag=7 if same_key else i, send_seq=i)
        )
    engine.process_all()
    return engine


def cfg(**overrides) -> EngineConfig:
    params = dict(bins=1024, block_threads=THREADS, max_receives=2 * N)
    params.update(overrides)
    return EngineConfig(**params)


def test_hint_no_wildcards_skips_indexes(benchmark):
    engine = benchmark(
        run, cfg(assert_no_any_source=True, assert_no_any_tag=True)
    )
    baseline = run(cfg())
    print(
        f"\nbucket probes: hinted={engine.stats.buckets_probed} "
        f"unhinted={baseline.stats.buckets_probed}"
    )
    # Hinted engine probes only the fully-specified index: 1 bucket
    # per message instead of 4.
    assert engine.stats.buckets_probed == N
    assert baseline.stats.buckets_probed == 4 * N
    assert engine.stats.expected_matches == N


def test_hint_single_assertion(benchmark):
    engine = benchmark(run, cfg(assert_no_any_source=True))
    # Skips one of the four structures.
    assert engine.stats.buckets_probed == 3 * N


def test_hint_allow_overtaking(benchmark):
    """Overtaking waives the barrier: no wait polls, no conflicts."""
    engine = benchmark(run, cfg(allow_overtaking=True), same_key=True)
    baseline = run(cfg(early_booking_check=False), same_key=True)
    print(
        f"\nwait polls: overtaking={engine.stats.wait_polls} "
        f"ordered={baseline.stats.wait_polls}"
    )
    assert engine.stats.conflicts == 0
    assert engine.stats.expected_matches == N
    assert engine.stats.wait_polls <= baseline.stats.wait_polls

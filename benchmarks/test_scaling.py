"""Extension — matching behaviour across application scale.

The NERSC traces capture "applications run at different scales"
(§V-B); this benchmark generates selected apps at several process
counts and checks the scale-dependence the patterns predict:

* halo exchanges have *scale-invariant* per-rank queue depth (the
  neighbor count is fixed by the stencil, not the machine size) —
  which is why offloaded matching keeps working at exascale;
* many-to-one fan-in depth grows linearly with the sender count —
  the pattern that does *not* scale and motivates binning most.
"""

import pytest

from repro.analyzer import analyze
from repro.traces.synthetic import TraceBuilder, generate, manytoone_round

HALO_SCALES = (27, 64, 125)
FANIN_SCALES = (8, 16, 32)


def halo_depths():
    return {
        n: analyze(generate("FillBoundary", processes=n, rounds=3), 1).depth.mean_depth
        for n in HALO_SCALES
    }


def fanin_depths():
    depths = {}
    for n in FANIN_SCALES:
        builder = TraceBuilder("fanin", n)
        for _ in range(3):
            manytoone_round(builder)
        depths[n] = analyze(builder.build(), 1).depth.max_depth
    return depths


def test_halo_depth_scale_invariant(benchmark):
    depths = benchmark.pedantic(halo_depths, rounds=1, iterations=1)
    print("\nhalo mean depth by scale: " + str({n: round(d, 2) for n, d in depths.items()}))
    values = list(depths.values())
    # Per-rank depth stays within a tight band as ranks grow ~5x
    # (the 3-D face stencil is 6 neighbors at any proper scale).
    assert max(values) <= 1.5 * min(values)


def test_fanin_depth_grows_with_senders(benchmark):
    depths = benchmark.pedantic(fanin_depths, rounds=1, iterations=1)
    print("\nfan-in max depth by scale: " + str(depths))
    assert depths[16] > depths[8]
    assert depths[32] > depths[16]
    # Depth tracks the sender count: n-1 receives are pre-posted and
    # arrival jitter means the observed max walk is a large fraction
    # of that window.
    for n, depth in depths.items():
        assert depth >= 0.6 * (n - 1), (n, depth)


@pytest.mark.parametrize("app", ["BoxLib CNS", "SNAP"])
def test_binning_effective_at_every_scale(benchmark, app):
    """The Fig. 7 reduction is not an artifact of one scale."""

    def reductions():
        out = {}
        for n in (8, 27):
            trace = generate(app, processes=n, rounds=3)
            d1 = analyze(trace, 1).depth.mean_depth
            d128 = analyze(trace, 128).depth.mean_depth
            out[n] = (d1, d128)
        return out

    results = benchmark.pedantic(reductions, rounds=1, iterations=1)
    for n, (d1, d128) in results.items():
        assert d128 <= d1, (app, n)

"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's
evaluation at CI-friendly scale; pass ``--paper-scale`` to use the
full §V/§VI parameters (minutes instead of seconds).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benchmarks at the paper's full parameters",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def fig7_params(paper_scale):
    """(processes override, rounds) for the queue-depth sweep."""
    return (None, 6) if not paper_scale else (None, 12)


@pytest.fixture(scope="session")
def fig8_params(paper_scale):
    """(k, repetitions, in_flight) for the message-rate ping-pong."""
    return (100, 500, 1024) if paper_scale else (100, 20, 1024)

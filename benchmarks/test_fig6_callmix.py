"""Figure 6 — distribution of MPI call types across the Table II apps.

Regenerates the per-application p2p/collective/one-sided percentages
and asserts the paper's qualitative findings: p2p dominates, exactly
three apps are pure p2p, HILO's two versions are pure collectives,
and no application uses one-sided operations.
"""

from repro.analyzer import analyze, figure6_rows, format_figure6
from repro.traces.model import OpGroup
from repro.traces.synthetic import app_names, generate


def regenerate_figure6(rounds: int):
    analyses = {}
    for name in app_names():
        trace = generate(name, rounds=rounds)
        analyses[name] = analyze(trace, bins=1)
    return analyses


def test_figure6_callmix(benchmark, fig7_params):
    _, rounds = fig7_params
    analyses = benchmark.pedantic(
        regenerate_figure6, args=(rounds,), rounds=1, iterations=1
    )
    print("\n" + format_figure6(analyses))

    rows = figure6_rows(analyses)
    assert len(rows) == 16

    pure_p2p = [name for name, p2p, coll, os_ in rows if p2p == 100.0]
    pure_coll = [name for name, p2p, coll, os_ in rows if coll == 100.0]
    one_sided = [name for name, p2p, coll, os_ in rows if os_ > 0.0]

    # "Only 3 applications in our dataset exclusively utilize p2p."
    assert len(pure_p2p) == 3
    # "another 2 applications are entirely reliant on collectives
    # (HILO has 2 different versions)"
    assert sorted(pure_coll) == ["HILO", "HILO 2D"]
    # "none of the applications in the dataset use one-sided MPI"
    assert one_sided == []
    # "the majority of applications rely primarily on point-to-point"
    p2p_dominant = [name for name, p2p, coll, os_ in rows if p2p > 50.0]
    assert len(p2p_dominant) >= 12


def test_figure6_analysis_throughput(benchmark):
    """Analyzer speed on one representative trace (ops/second)."""
    trace = generate("LULESH", rounds=4)
    result = benchmark(analyze, trace, 1)
    assert result.total_ops == trace.total_ops()

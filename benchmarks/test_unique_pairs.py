"""Conclusion claim — "the number of unique source/tag posted receives
is low, indicating that the receives are well spread in the hash
tables, keeping collisions low."

Measures, per application, the distinct (source, tag) keys relative
to total receives posted, and the resulting collision behaviour at
the default 128 bins.
"""

from repro.analyzer import analyze
from repro.traces.model import OpKind
from repro.traces.synthetic import app_names, generate


def pair_statistics(rounds: int):
    rows = {}
    for name in app_names():
        trace = generate(name, rounds=rounds)
        analysis = analyze(trace, bins=128)
        receives = analysis.p2p_kinds.get(OpKind.IRECV, 0) + analysis.p2p_kinds.get(
            OpKind.RECV, 0
        )
        rows[name] = (receives, analysis.unique_pairs, analysis.depth.collisions)
    return rows


def test_unique_pairs_low(benchmark):
    rows = benchmark.pedantic(pair_statistics, args=(4,), rounds=1, iterations=1)
    print(f"\n{'Application':18s} {'receives':>9s} {'uniq pairs':>11s} "
          f"{'collisions':>11s}")
    for name, (receives, pairs, collisions) in rows.items():
        print(f"{name:18s} {receives:9d} {pairs:11d} {collisions:11d}")
    for name, (receives, pairs, _collisions) in rows.items():
        if receives < 300:
            # Small traces (or all-unique-key patterns like MOCFE's
            # per-round ring tags) don't exercise key reuse; their
            # spreading shows up in the collision assertion below.
            continue
        # Unique keys are a small fraction of total posted receives:
        # each key is reused across rounds/iterations.
        assert pairs <= receives * 0.5, name

    # Well-spread keys keep per-rank collision counts far below the
    # receive count for the structured apps.
    for name in ("FillBoundary", "SNAP", "PARTISN"):
        receives, pairs, collisions = rows[name]
        assert collisions < receives * 0.5, name


def test_collisions_drop_with_bins(benchmark):
    from repro.analyzer import sweep_trace

    trace = generate("BoxLib CNS", rounds=3)

    def sweep():
        return {
            bins: analysis.depth.collisions
            for bins, analysis in sweep_trace(trace, (1, 32, 128, 256)).items()
        }

    collisions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\ncollisions by bins: " + str(collisions))
    assert collisions[1] > collisions[32] >= collisions[128] >= collisions[256]

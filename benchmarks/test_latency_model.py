"""Extension — matching-latency distributions per Figure 8 scenario.

Throughput's other face: the same cycle accounting as Figure 8, read
as per-message latency quantiles. Conflict resolution shows up as a
fattened tail (p95/p99), the slow path worst.
"""

from repro.bench import dpa_latencies, host_latencies
from repro.bench.scenarios import SCENARIOS


def collect():
    rows = [
        dpa_latencies(scenario, messages=256, in_flight=256, threads=16)
        for scenario in SCENARIOS
    ]
    rows.append(host_latencies(messages=256, burst=32))
    return rows


def test_latency_distributions(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print(f"\n{'configuration':24s} {'p50 ns':>8s} {'p95 ns':>8s} "
          f"{'p99 ns':>8s} {'max ns':>8s}")
    for dist in rows:
        print(
            f"{dist.label:24s} {dist.p50_ns:8.0f} {dist.p95_ns:8.0f} "
            f"{dist.p99_ns:8.0f} {dist.max_ns:8.0f}"
        )
    by_label = {dist.label: dist for dist in rows}
    nc = by_label["Optimistic-DPA NC"]
    fp = by_label["Optimistic-DPA WC-FP"]
    sp = by_label["Optimistic-DPA WC-SP"]
    # Conflict resolution fattens the tail, slow path the most.
    assert nc.p95_ns <= fp.p95_ns <= sp.p95_ns
    # The parallel block flattens latency relative to a serial host
    # burst: the host's worst case (end of a burst) is far beyond its
    # median, while the DPA NC spread is tight.
    host = by_label["MPI-CPU"]
    assert host.max_ns / host.p50_ns > nc.max_ns / nc.p50_ns

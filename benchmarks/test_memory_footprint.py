"""§III-E memory footprint (experiment E7).

Regenerates the paper's worked example — 20 B per bin, 7.5 KiB of bin
headers at 128 bins across three tables, ~520 KiB for 8 K receives —
and sweeps configurations against the BlueField-3 DPA cache sizes to
locate the software-fallback boundary.
"""

from repro.dpa import MemoryModel


def footprint_sweep():
    rows = []
    for bins in (32, 128, 512):
        for receives in (1024, 8192, 32768, 65536):
            model = MemoryModel(bins=bins, max_receives=receives)
            rows.append(
                (
                    bins,
                    receives,
                    model.total_bytes() / 1024,
                    model.fits_l2(),
                    model.fits_l3(),
                )
            )
    return rows


def test_memory_footprint_paper_numbers(benchmark):
    rows = benchmark.pedantic(footprint_sweep, rounds=1, iterations=1)
    print(f"\n{'bins':>5s} {'receives':>9s} {'KiB':>9s} {'L2':>4s} {'L3':>4s}")
    for bins, receives, kib, l2, l3 in rows:
        print(f"{bins:5d} {receives:9d} {kib:9.1f} {str(l2):>4s} {str(l3):>4s}")

    # The §III-E example: 128 bins, 8 K receives ~ 520 KiB, in-cache.
    example = MemoryModel(bins=128, max_receives=8192)
    assert example.bin_table_bytes() == int(7.5 * 1024)
    assert 515 * 1024 <= example.total_bytes() <= 525 * 1024
    assert example.fits_l2()

    # The fallback boundary: 64 K simultaneous receives overflow L3.
    overflow = MemoryModel(bins=128, max_receives=65536)
    assert overflow.requires_fallback()


def test_memory_scaling_is_linear(benchmark):
    def scale():
        return [
            MemoryModel(bins=128, max_receives=n).descriptor_bytes()
            for n in (1024, 2048, 4096)
        ]

    sizes = benchmark(scale)
    assert sizes[1] == 2 * sizes[0]
    assert sizes[2] == 2 * sizes[1]

"""Ablation — offload benefit under host I/O load (abstract claim).

"This can be especially beneficial for intensive I/O systems, such as
those protected with Post Quantum Cryptography." When the host CPU
pays a per-message tax (PQC authentication, kernel crypto, heavy I/O
stacks), host-side matching rides on an already-loaded core while the
offloaded engine does not care. This benchmark sweeps the host tax
and locates the crossover where the offloaded no-conflict engine
overtakes host matching.

A second benchmark maps the engine onto an sPIN-style accelerator
profile (§IV) to show the approach is not BlueField-specific.
"""

from repro.bench import PingPongBench
from repro.bench.scenarios import scenario_by_name
from repro.dpa.costs import DpaCostModel, HostCostModel

#: Host per-message tax in cycles: none, TLS-ish, PQC-ish, heavy PQC.
HOST_TAXES = (0, 500, 2000, 8000)


def sweep_host_tax():
    results = {}
    nc = scenario_by_name("nc")
    for tax in HOST_TAXES:
        host = HostCostModel(per_message_overhead=350 + tax)
        bench = PingPongBench(
            k=64, repetitions=4, in_flight=128, threads=16, host_costs=host
        )
        results[tax] = {
            "mpi_cpu": bench.run_mpi_cpu().message_rate,
            "optimistic_nc": bench.run_optimistic(nc).message_rate,
        }
    return results


def test_host_load_crossover(benchmark):
    results = benchmark.pedantic(sweep_host_tax, rounds=1, iterations=1)
    print(f"\n{'host tax (cyc/msg)':>19s} {'MPI-CPU M/s':>12s} {'DPA NC M/s':>11s}")
    for tax, rates in results.items():
        print(
            f"{tax:19d} {rates['mpi_cpu'] / 1e6:12.2f} "
            f"{rates['optimistic_nc'] / 1e6:11.2f}"
        )
    # The offloaded rate is a constant in the host tax...
    nc_rates = [rates["optimistic_nc"] for rates in results.values()]
    assert max(nc_rates) - min(nc_rates) < 1e-6 * max(nc_rates)
    # ...while host matching degrades monotonically...
    cpu_rates = [rates["mpi_cpu"] for rates in results.values()]
    assert all(a > b for a, b in zip(cpu_rates, cpu_rates[1:]))
    # ...and the offload wins outright under PQC-class load.
    assert results[8000]["optimistic_nc"] > results[8000]["mpi_cpu"]
    assert results[2000]["optimistic_nc"] > results[2000]["mpi_cpu"]


def test_spin_profile(benchmark):
    """The engine runs unchanged on the sPIN cost profile; lighter
    handler dispatch raises the clean-stream rate."""
    nc = scenario_by_name("nc")

    def run(profile: DpaCostModel):
        bench = PingPongBench(
            k=64, repetitions=4, in_flight=128, threads=16, dpa_costs=profile
        )
        return bench.run_optimistic(nc).message_rate

    spin_rate = benchmark.pedantic(run, args=(DpaCostModel.spin(),), rounds=1, iterations=1)
    bf3_rate = run(DpaCostModel.bluefield3())
    print(f"\nNC rate: BF3={bf3_rate / 1e6:.2f} M/s, sPIN-style={spin_rate / 1e6:.2f} M/s")
    assert spin_rate > 0 and bf3_rate > 0
    # Cheaper dispatch outweighs the slower clock on small messages.
    assert spin_rate != bf3_rate

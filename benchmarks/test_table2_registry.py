"""Table II — the application-trace registry.

Regenerates the table (application, description, process count) and
benchmarks trace generation itself: the registry must reproduce the
paper's sixteen rows with the exact NERSC process counts.
"""

from repro.analyzer import format_table2, table2_rows
from repro.traces.synthetic import APPLICATIONS, app_names, generate

PAPER_TABLE2 = {
    "AMG": 8,
    "AMR MiniApp": 64,
    "BigFFT": 1024,
    "BoxLib CNS": 64,
    "BoxLib MultiGrid": 64,
    "CrystalRouter": 100,
    "FillBoundary": 1000,
    "HILO": 256,
    "HILO 2D": 256,
    "LULESH": 64,
    "MiniFe": 1152,
    "MOCFE": 64,
    "MultiGrid": 1000,
    "Nekbone": 64,
    "PARTISN": 168,
    "SNAP": 168,
}


def test_table2_registry(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    print("\n" + format_table2())
    assert {name: procs for name, _, procs in rows} == PAPER_TABLE2
    # Alphabetical, as the paper sorts it.
    names = [name for name, _, _ in rows]
    assert names == sorted(names, key=str.lower)
    # Every row has a real description.
    assert all(len(description) > 10 for _, description, _ in rows)


def test_table2_generation_speed(benchmark):
    """Throughput of synthetic trace generation across the registry."""

    def generate_all():
        return sum(generate(name, rounds=2).total_ops() for name in app_names())

    total_ops = benchmark(generate_all)
    assert total_ops > 1000


def test_table2_paper_scale_single_app(benchmark):
    """One app generated at its full Table II process count, to show
    paper-scale generation is feasible (CrystalRouter: 100 ranks)."""
    spec = APPLICATIONS["CrystalRouter"]
    trace = benchmark.pedantic(
        generate,
        args=("CrystalRouter",),
        kwargs=dict(processes=spec.table_processes, rounds=2),
        rounds=1,
        iterations=1,
    )
    assert trace.nprocs == 100

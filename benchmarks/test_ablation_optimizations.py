"""Ablation — the §IV-D optimizations, each toggled independently.

DESIGN.md experiment E6: quantify what *inline hash values*, the
*early booking check*, and *lazy removal* each buy, plus the fast
path itself (§III-D.3a), on the workloads they target.
"""

import pytest

from repro.core import (
    EngineConfig,
    MessageEnvelope,
    OptimisticMatcher,
    RandomPolicy,
    ReceiveRequest,
    compute_inline_hashes,
)

N_MESSAGES = 512
THREADS = 16


def run_engine(config: EngineConfig, *, same_key: bool, inline: bool, seed: int | None = None):
    # A seeded random schedule staggers thread progress the way real
    # hardware does; the lockstep round-robin default would let no
    # thread observe another's booking.
    policy = RandomPolicy(seed) if seed is not None else None
    engine = OptimisticMatcher(config, policy=policy)
    for i in range(N_MESSAGES):
        tag = 7 if same_key else i
        engine.post_receive(ReceiveRequest(source=0, tag=tag))
    for i in range(N_MESSAGES):
        tag = 7 if same_key else i
        hashes = compute_inline_hashes(0, tag) if inline else None
        engine.submit_message(
            MessageEnvelope(source=0, tag=tag, send_seq=i, inline_hashes=hashes)
        )
    engine.process_all()
    return engine


def base_config(**overrides) -> EngineConfig:
    params = dict(bins=1024, block_threads=THREADS, max_receives=2 * N_MESSAGES)
    params.update(overrides)
    return EngineConfig(**params)


def test_ablation_inline_hashes(benchmark):
    """Sender-side hashes eliminate the accelerator's hash compute."""
    engine = benchmark(run_engine, base_config(), same_key=False, inline=True)
    baseline = run_engine(base_config(), same_key=False, inline=False)
    print(
        f"\nhashes computed: inline={engine.stats.hashes_computed} "
        f"vs receiver-side={baseline.stats.hashes_computed}"
    )
    assert engine.stats.hashes_computed == 0
    assert baseline.stats.hashes_computed >= 3 * N_MESSAGES


def test_ablation_early_booking(benchmark):
    """The early booking check converts same-key conflicts into clean
    optimistic matches by skipping already-booked receives."""
    engine = benchmark(
        run_engine,
        base_config(early_booking_check=True),
        same_key=True,
        inline=False,
        seed=11,
    )
    baseline = run_engine(
        base_config(early_booking_check=False), same_key=True, inline=False, seed=11
    )
    print(
        f"\nconflicts: with-check={engine.stats.conflicts} "
        f"without={baseline.stats.conflicts}; "
        f"early skips={engine.stats.early_skips}"
    )
    assert engine.stats.early_skips > 0
    assert engine.stats.conflicts <= baseline.stats.conflicts


def test_ablation_fast_path(benchmark):
    """On compatible-receive runs the fast path replaces serialized
    slow-path resolution."""
    engine = benchmark(
        run_engine,
        base_config(early_booking_check=False, enable_fast_path=True),
        same_key=True,
        inline=False,
    )
    baseline = run_engine(
        base_config(early_booking_check=False, enable_fast_path=False),
        same_key=True,
        inline=False,
    )
    print(
        f"\nfast={engine.stats.fast_path} slow={engine.stats.slow_path} | "
        f"disabled: slow={baseline.stats.slow_path}, "
        f"wait polls {engine.stats.wait_polls} vs {baseline.stats.wait_polls}"
    )
    assert engine.stats.fast_path > 0
    assert baseline.stats.fast_path == 0
    # The slow path pays synchronization: more wait polling.
    assert baseline.stats.wait_polls > engine.stats.wait_polls


@pytest.mark.parametrize("lazy", [True, False])
def test_ablation_lazy_removal(benchmark, lazy):
    """Lazy removal trades longer walks for batched unlinking."""
    engine = benchmark(
        run_engine, base_config(lazy_removal=lazy), same_key=True, inline=False
    )
    print(
        f"\nlazy={lazy}: walked={engine.stats.probes_walked}, "
        f"swept={engine.stats.swept}"
    )
    assert engine.stats.expected_matches == N_MESSAGES

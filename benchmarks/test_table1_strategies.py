"""Table I — the matching-strategy landscape, as a measured ablation.

The paper's Table I surveys prior approaches (linked lists, bin-based,
rank-based) against the proposed optimistic strategy. This benchmark
drives all four implementations through identical workloads and
reports the search cost (queue elements walked per message) that
motivates each design:

* the linked list degrades linearly with queue depth;
* rank partitioning helps many-senders workloads but not same-sender
  multi-tag ones;
* binning collapses cost for distinct keys;
* the optimistic engine matches bin-based costs while extracting
  block parallelism (its per-thread span is what the DPA runs).
"""

import pytest

from repro.core import EngineConfig
from repro.matching import (
    AdaptiveMatcher,
    BinMatcher,
    ChannelMatcher,
    ListMatcher,
    OptimisticAdapter,
    RankMatcher,
)
from repro.matching.oracle import StreamOp, run_stream

WINDOW = 64


def deep_queue_stream(n_keys: int, sequences: int) -> list[StreamOp]:
    """Pre-posted window of distinct (source, tag) receives, drained
    in reverse order — the traditional matcher's worst case."""
    ops: list[StreamOp] = []
    for _ in range(sequences):
        keys = [(k % 8, k) for k in range(n_keys)]
        ops.extend(StreamOp.post(src, tag) for src, tag in keys)
        ops.extend(StreamOp.message(src, tag) for src, tag in reversed(keys))
    return ops


MATCHERS = {
    "linked-list": lambda: ListMatcher(),
    "rank-based": lambda: RankMatcher(),
    "bin-based": lambda: BinMatcher(bins=128),
    "optimistic": lambda: OptimisticAdapter(
        EngineConfig(bins=128, block_threads=16, max_receives=4096)
    ),
    # Table I 'Dynamic' row: runtime strategy switching à la
    # Bayatpour et al.
    "adaptive": lambda: AdaptiveMatcher(promote_walk=8.0, min_dwell=32),
    # §VII extension: matching specialized to NCCL-like channel
    # semantics — the upper bound software flexibility buys.
    "channel": lambda: ChannelMatcher(),
}


@pytest.mark.parametrize("name", list(MATCHERS))
def test_table1_strategy_cost(benchmark, name):
    ops = deep_queue_stream(n_keys=WINDOW, sequences=5)

    def run():
        matcher = MATCHERS[name]()
        run_stream(matcher, ops)
        return matcher

    matcher = benchmark(run)
    messages = sum(1 for op in ops if op.kind == "message")
    if name == "optimistic":
        walked = matcher.engine.stats.probes_walked
    else:
        walked = matcher.costs.walked
    per_message = walked / messages
    print(f"\n{name}: {per_message:.2f} entries walked per message")

    if name == "linked-list":
        # Reverse drain of a 64-deep window: ~full scans.
        assert per_message > WINDOW / 4
    else:
        # Every partitioned/binned strategy beats the list by a lot.
        assert per_message < WINDOW / 4


def test_table1_summary(benchmark):
    """Cross-strategy comparison on one identical stream (printed as
    the Table I measured counterpart)."""
    ops = deep_queue_stream(n_keys=WINDOW, sequences=3)
    messages = sum(1 for op in ops if op.kind == "message")

    def run_all():
        rows = []
        for name, factory in MATCHERS.items():
            matcher = factory()
            run_stream(matcher, ops)
            walked = (
                matcher.engine.stats.probes_walked
                if name == "optimistic"
                else matcher.costs.walked
            )
            rows.append((name, walked / messages))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\n{'strategy':12s} {'walk/msg':>9s}")
    for name, per_message in rows:
        print(f"{name:12s} {per_message:9.2f}")
    by_name = dict(rows)
    assert by_name["linked-list"] == max(by_name.values())

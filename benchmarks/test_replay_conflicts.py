"""Extension — engine-level conflict behaviour per application.

The paper argues (§V) from *structural* statistics that the mini-apps
suit optimistic offloading. This benchmark closes the loop: it replays
each application's traffic through the real engine and measures the
conflict rate and resolution-path mix — the direct form of the
suitability claim.
"""

from repro.analyzer import replay_trace
from repro.traces.synthetic import app_names, generate

P2P_APPS = [
    name
    for name in (
        "AMG",
        "BoxLib CNS",
        "CrystalRouter",
        "FillBoundary",
        "LULESH",
        "PARTISN",
        "SNAP",
    )
]


def replay_all(rounds: int):
    results = {}
    for name in P2P_APPS:
        results[name] = replay_trace(generate(name, rounds=rounds))
    return results


def test_replay_conflict_rates(benchmark):
    results = benchmark.pedantic(replay_all, args=(3,), rounds=1, iterations=1)
    print(f"\n{'Application':15s} {'msgs':>6s} {'conflict%':>10s} "
          f"{'optimistic%':>12s} {'fast':>5s} {'slow':>5s}")
    for name, result in results.items():
        print(
            f"{name:15s} {result.messages:6d} {100 * result.conflict_rate:10.2f} "
            f"{100 * result.optimistic_fraction:12.1f} "
            f"{result.fast_path:5d} {result.slow_path:5d}"
        )
    # The paper's suitability claim: the majority of applications show
    # low-conflict behaviour.
    friendly = [name for name, result in results.items() if result.offload_friendly()]
    assert len(friendly) >= len(results) - 1
    # Structured halo/sweep codes must be essentially conflict-free.
    for name in ("BoxLib CNS", "FillBoundary", "SNAP"):
        assert results[name].conflict_rate < 0.01, name


def test_replay_single_app_speed(benchmark):
    trace = generate("LULESH", rounds=2)
    result = benchmark(replay_trace, trace)
    assert result.messages > 0

"""Figure 8 — single-process message rate (§VI).

Regenerates all five configurations of the ping-pong benchmark —
Optimistic-DPA {NC, WC-FP, WC-SP}, MPI-CPU, and RDMA-CPU — and
asserts the paper's qualitative results:

* the raw-RDMA baseline bounds every configuration from above;
* offloaded no-conflict matching is comparable to host matching;
* conflicts cost rate, the slow path more than the fast path;
* the offload fully frees the host CPU of matching work.
"""

from repro.bench import PingPongBench, format_figure8


def run_bench(k, repetitions, in_flight):
    bench = PingPongBench(k=k, repetitions=repetitions, in_flight=in_flight)
    return {result.label: result for result in bench.run_all()}


def test_figure8_message_rate(benchmark, fig8_params):
    k, repetitions, in_flight = fig8_params
    results = benchmark.pedantic(
        run_bench, args=(k, repetitions, in_flight), rounds=1, iterations=1
    )
    print("\n" + format_figure8(list(results.values())))

    rdma = results["RDMA-CPU"].message_rate
    cpu = results["MPI-CPU"].message_rate
    nc = results["Optimistic-DPA NC"].message_rate
    fp = results["Optimistic-DPA WC-FP"].message_rate
    sp = results["Optimistic-DPA WC-SP"].message_rate

    # RDMA (no matching) is the upper bound.
    assert rdma > max(cpu, nc, fp, sp)
    # "optimistic tag matching has performance comparable with MPI-CPU
    # for the non-conflict case" — within a factor of two.
    assert 0.5 < nc / cpu < 2.0
    # "When there are conflicts, either the fast or the slow path is
    # taken, causing a lower message rate".
    assert nc > fp > sp
    # "In all cases, the offloading fully frees the host CPU from
    # tag-matching overheads."
    for label in ("Optimistic-DPA NC", "Optimistic-DPA WC-FP", "Optimistic-DPA WC-SP"):
        assert results[label].host_matching_cycles_per_msg == 0.0
    assert results["MPI-CPU"].host_matching_cycles_per_msg > 0.0


def test_figure8_nc_engine_speed(benchmark):
    """Wall-clock speed of the simulated engine itself on the NC
    stream (how fast the reproduction runs, not a paper number)."""
    from repro.bench.scenarios import scenario_by_name

    scenario = scenario_by_name("nc")

    def one_sequence():
        bench = PingPongBench(k=100, repetitions=1, in_flight=128)
        return bench.run_optimistic(scenario)

    result = benchmark(one_sequence)
    assert result.messages == 100

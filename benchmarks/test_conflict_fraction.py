"""Extension — message rate between the Figure 8 extremes.

Figure 8 measures the best case (all keys distinct, NC) and the worst
case (all keys identical, WC). Real applications sit between: some
fraction of traffic lands on shared keys. This benchmark sweeps that
fraction and traces the rate curve from NC to WC.

Measured finding worth knowing: the curve is *not* monotone. Partial
sharing (25-75 %) is slower than 100 % sharing, because the fast path
requires *every* block thread to book the same receive (a full
booking bitmap, §III-D.3a) — mixed traffic conflicts without
qualifying, so it rides the serializing slow path, while the pure-WC
case resolves through cheap fast-path shifts. The paper's two
extremes are respectively the best case and the best-handled worst
case; the awkward middle is the gap a future adaptive fast-path
eligibility rule could close.
"""

from repro.core import EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest
from repro.core.stats import BlockStats
from repro.dpa.costs import DpaCostModel
from repro.util.rng import make_rng

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
MESSAGES = 512
THREADS = 16


def run_fraction(shared_fraction: float):
    """Post/drain MESSAGES receives where ``shared_fraction`` of keys
    collapse onto one hot (source, tag)."""
    engine = OptimisticMatcher(
        EngineConfig(
            bins=2048,
            block_threads=THREADS,
            max_receives=2 * MESSAGES,
            early_booking_check=False,
        ),
        keep_history=True,
    )
    rng = make_rng(int(shared_fraction * 1000))
    keys = [
        7 if rng.random() < shared_fraction else 1000 + i for i in range(MESSAGES)
    ]
    # Receives posted in key order; messages arrive in the same order
    # (FIFO wire), so every message has a live matching receive.
    for tag in keys:
        engine.post_receive(ReceiveRequest(source=0, tag=tag))
    for i, tag in enumerate(keys):
        engine.submit_message(MessageEnvelope(source=0, tag=tag, send_seq=i))
    engine.process_all()
    costs = DpaCostModel()
    cycles = sum(
        costs.block_cycles(block, cores=16) for block in engine.stats.block_history
    )
    cycles += MESSAGES * costs.dispatch_serial
    seconds = costs.cycles_to_seconds(cycles)
    return engine, MESSAGES / seconds


def test_conflict_fraction_curve(benchmark):
    def sweep():
        return {fraction: run_fraction(fraction) for fraction in FRACTIONS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n{'shared key %':>13s} {'Mmsg/s':>8s} {'conflicts':>10s} "
          f"{'fast':>6s} {'slow':>6s}")
    rates = {}
    for fraction, (engine, rate) in results.items():
        rates[fraction] = rate
        print(
            f"{100 * fraction:13.0f} {rate / 1e6:8.2f} "
            f"{engine.stats.conflicts:10d} {engine.stats.fast_path:6d} "
            f"{engine.stats.slow_path:6d}"
        )
    # Monotone cost of sharing: the fully-shared case is the slowest.
    assert rates[0.0] >= rates[1.0]
    # Conflicts grow with the shared fraction.
    conflicts = [results[f][0].stats.conflicts for f in FRACTIONS]
    assert conflicts[0] == 0
    assert conflicts[-1] == max(conflicts)
    # Everything still matches at every fraction.
    for fraction, (engine, _) in results.items():
        assert engine.stats.expected_matches == MESSAGES, fraction


def test_moderate_sharing_stays_near_nc(benchmark):
    """At 25 % shared keys the rate must stay within 40 % of NC —
    quantifying 'few conflicts hurt little', the design bet of §III."""

    def run_pair():
        _, nc_rate = run_fraction(0.0)
        _, mixed_rate = run_fraction(0.25)
        return nc_rate, mixed_rate

    nc_rate, mixed_rate = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"\nNC {nc_rate / 1e6:.2f} M/s vs 25%-shared {mixed_rate / 1e6:.2f} M/s")
    assert mixed_rate > 0.6 * nc_rate
"""Ablation — multithreaded matching misery (§I motivation).

MPI_THREAD_MULTIPLE forces the traditional matcher behind a queue
lock; per-message cost *rises* with thread count while the offloaded
optimistic engine's cost is flat (the host does nothing). This
benchmark regenerates that motivating curve.
"""

from repro.bench import PingPongBench
from repro.bench.scenarios import scenario_by_name
from repro.matching.oracle import StreamOp
from repro.matching.threaded_host import simulate_threaded_host

THREAD_COUNTS = (1, 2, 4, 8, 16)


def host_stream() -> list[StreamOp]:
    ops = []
    for round_ in range(8):
        keys = [(k % 4, k) for k in range(32)]
        ops.extend(StreamOp.post(src, tag) for src, tag in keys)
        ops.extend(StreamOp.message(src, tag) for src, tag in reversed(keys))
    return ops


def misery_curve(ops):
    return {t: simulate_threaded_host(ops, t) for t in THREAD_COUNTS}


def test_multithreaded_misery(benchmark):
    ops = host_stream()
    curve = benchmark.pedantic(misery_curve, args=(ops,), rounds=1, iterations=1)
    print(f"\n{'threads':>8s} {'cycles/msg':>11s} {'Mmsg/s':>8s}")
    for threads, result in curve.items():
        print(
            f"{threads:8d} {result.cycles_per_message:11.0f} "
            f"{result.message_rate / 1e6:8.2f}"
        )
    # The misery: cost strictly rises with contention.
    costs = [curve[t].cycles_per_message for t in THREAD_COUNTS]
    assert all(a < b for a, b in zip(costs, costs[1:]))
    # 16 threads are at least 5x worse per message than 1 thread.
    assert costs[-1] / costs[0] > 5


def test_offloaded_engine_immune_to_host_threads(benchmark):
    """The offloaded NC rate is a constant whatever the host's thread
    count — matching never runs there."""

    def offloaded_rate():
        bench = PingPongBench(k=64, repetitions=3, in_flight=128, threads=16)
        return bench.run_optimistic(scenario_by_name("nc"))

    result = benchmark(offloaded_rate)
    assert result.host_matching_cycles_per_msg == 0.0

    # Crossover: beyond a few host threads, even the conflict-free
    # offloaded path beats contended host matching.
    ops = host_stream()
    contended = simulate_threaded_host(ops, 16)
    assert result.message_rate > contended.message_rate

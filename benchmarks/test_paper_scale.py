"""Paper-scale runs (gated behind ``--paper-scale``).

The NERSC traces reach 1000+ ranks (Table II). The default benchmark
scales stay CI-friendly; these gated runs demonstrate the analyzer
handles the paper's actual process counts, and that the Fig. 7
conclusions are not small-scale artifacts.
"""

import pytest

from repro.analyzer import analyze
from repro.traces.synthetic import APPLICATIONS, generate


@pytest.fixture(autouse=True)
def _require_paper_scale(paper_scale):
    if not paper_scale:
        pytest.skip("run with --paper-scale for full Table II process counts")


def test_fillboundary_at_1000_ranks(benchmark):
    spec = APPLICATIONS["FillBoundary"]

    def run():
        trace = generate(
            "FillBoundary", processes=spec.table_processes, rounds=2
        )
        return trace, analyze(trace, 128)

    trace, analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    assert trace.nprocs == 1000
    print(
        f"\nFillBoundary@1000: {trace.total_ops()} ops, "
        f"mean depth {analysis.depth.mean_depth:.2f} @128 bins"
    )
    # The Fig. 7 conclusion at paper scale: binning keeps the
    # experienced depth below one.
    assert analysis.depth.mean_depth < 1.0


def test_bigfft_at_1024_ranks(benchmark):
    def run():
        trace = generate("BigFFT", processes=1024, rounds=1)
        one_bin = analyze(trace, 1)
        many = analyze(trace, 128)
        return trace, one_bin, many

    trace, one_bin, many = benchmark.pedantic(run, rounds=1, iterations=1)
    assert trace.nprocs == 1024
    print(
        f"\nBigFFT@1024: depth {one_bin.depth.mean_depth:.2f} @1 bin -> "
        f"{many.depth.mean_depth:.2f} @128 bins"
    )
    assert many.depth.mean_depth <= one_bin.depth.mean_depth

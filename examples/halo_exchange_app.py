#!/usr/bin/env python3
"""A realistic mini-application on the MPI runtime simulator.

Runs a 2-D Jacobi-style halo exchange over 16 simulated ranks, with
matching per rank handled by the offloaded optimistic engine (with
automatic software fallback). Demonstrates communicator hints: the
same program runs once on a default communicator and once on one that
declares ``mpi_assert_no_any_source``/``no_any_tag``, and the example
reports the matching-cost difference the hints buy (§VII).

Run:  python examples/halo_exchange_app.py
"""

import numpy as np

from repro.core import EngineConfig
from repro.mpisim import MpiSim
from repro.traces.synthetic import grid_dims, grid_neighbors


def run_jacobi(sim: MpiSim, comm, steps: int, edge: int) -> float:
    """Jacobi sweeps with halo exchange; returns the final residual."""
    dims = grid_dims(sim.size, 2)
    rng = np.random.default_rng(7)
    grids = {rank: rng.random((edge, edge)) for rank in range(sim.size)}

    for step in range(steps):
        tag = step % 4
        # Pre-post all halo receives, then send edges, then wait.
        requests = {
            rank: [
                sim.irecv(rank, source=neighbor, tag=tag, comm=comm)
                for neighbor in grid_neighbors(rank, dims)
            ]
            for rank in range(sim.size)
        }
        for rank in range(sim.size):
            edge_bytes = grids[rank][0].tobytes()
            for neighbor in grid_neighbors(rank, dims):
                sim.isend(rank, neighbor, tag, edge_bytes, comm=comm)
        for rank in range(sim.size):
            sim.waitall(requests[rank])
            # Fold received halos into the local grid (toy update).
            halos = [
                np.frombuffer(req.payload, dtype=grids[rank].dtype)
                for req in requests[rank]
            ]
            boundary = np.mean(halos, axis=0)
            grids[rank][0, :] = 0.5 * (grids[rank][0, :] + boundary)
            grids[rank][1:, :] *= 0.999

    return float(np.mean([g.std() for g in grids.values()]))


def matching_probes(sim: MpiSim, comm) -> int:
    """Total bucket probes across every rank's matcher — each probe is
    a hash + index read the §VII hints can elide."""
    total = 0
    for rank in range(sim.size):
        matcher = sim.matcher_of(rank, comm)
        engine = getattr(matcher, "_offloaded", None)
        if engine is not None:
            total += engine.engine.stats.buckets_probed
    return total


def main() -> None:
    config = EngineConfig(bins=64, block_threads=8, max_receives=512)

    sim = MpiSim(16, config=config)
    residual = run_jacobi(sim, sim.world, steps=6, edge=32)
    default_probes = matching_probes(sim, sim.world)
    print(f"default communicator:  residual={residual:.4f}, "
          f"bucket probes={default_probes}")

    sim2 = MpiSim(16, config=config)
    hinted = sim2.comm_create(
        {"mpi_assert_no_any_source": "true", "mpi_assert_no_any_tag": "true"}
    )
    residual2 = run_jacobi(sim2, hinted, steps=6, edge=32)
    hinted_probes = matching_probes(sim2, hinted)
    print(f"hinted communicator:   residual={residual2:.4f}, "
          f"bucket probes={hinted_probes}")

    assert abs(residual - residual2) < 1e-12, "hints must not change results"
    saved = default_probes - hinted_probes
    print(f"\nthe hints let every message skip the three wildcard "
          f"structures: {saved} bucket probes "
          f"({saved / default_probes:.0%}) avoided")


if __name__ == "__main__":
    main()

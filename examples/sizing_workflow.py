#!/usr/bin/env python3
"""Deployment sizing workflow: from trace to DPA configuration.

Walks the decision an MPI implementation would make at communicator
creation for a given application:

1. inspect the communication topology (who talks to whom),
2. sweep the matching structures to find the smallest bin count
   meeting a queue-depth target,
3. sanity-check the measured occupancy against balls-in-bins theory,
4. price the chosen configuration against the DPA memory budget —
   or fall back to software if it cannot fit.

Run:  python examples/sizing_workflow.py [app-name]
"""

import sys

from repro.analyzer import analyze, graph_stats, predict, recommend_bins
from repro.core import EngineConfig
from repro.core.manager import OffloadManager
from repro.traces.synthetic import app_names, generate


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "BoxLib CNS"
    if name not in app_names():
        raise SystemExit(f"unknown app {name!r}; choose from {app_names()}")

    trace = generate(name, rounds=5)
    print(f"application: {name} ({trace.nprocs} ranks, {trace.total_ops()} trace ops)\n")

    # 1. Topology: the structural driver of queue depth.
    topo = graph_stats(trace)
    print(
        f"topology: max in-degree {topo.max_in_degree}, "
        f"symmetry {topo.symmetry:.0%}, hotspot factor {topo.hotspot_factor:.1f}"
        f"{' (neighbor exchange)' if topo.is_neighbor_exchange() else ''}"
    )

    # 2. Size the bins for a sub-1 mean experienced depth.
    rec = recommend_bins(trace, target_depth=1.0)
    print(
        f"sizing: {rec.bins} bins reach mean depth {rec.mean_depth:.2f} "
        f"(max {rec.max_depth}); bin tables cost {rec.bin_table_bytes / 1024:.1f} KiB"
    )

    # 3. Check measurement against balls-in-bins theory.
    analysis = analyze(trace, bins=rec.bins)
    theory = predict(analysis.unique_pairs, max(rec.bins, 1))
    print(
        f"theory check: {analysis.unique_pairs} unique keys in {rec.bins} bins "
        f"-> predicted max load {theory.expected_max_load:.1f}, "
        f"measured {analysis.depth.max_depth}"
    )

    # 4. Allocate against the DPA budget (§III-E).
    manager = OffloadManager()
    config = EngineConfig(bins=max(rec.bins, 1), block_threads=32, max_receives=8192)
    allocation = manager.comm_create(0, config=config)
    if allocation.offloaded:
        print(
            f"allocation: offloaded; {allocation.bytes_reserved / 1024:.0f} KiB of "
            f"{manager.budget_bytes / 1024:.0f} KiB DPA budget "
            f"({manager.utilization():.0%} used)"
        )
    else:
        print("allocation: does not fit the DPA budget -> software matching")


if __name__ == "__main__":
    main()

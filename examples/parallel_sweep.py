"""Parallel experiment execution with repro.fleet.

Runs a small Figure 7 slice three ways — serially, across a worker
pool, and again against a warm result cache — and shows that all three
produce byte-identical analyses while the warm run executes nothing.
Then demonstrates the failure semantics: a job kind that always raises
is quarantined into the report instead of killing the sweep.

Run:

    PYTHONPATH=src python examples/parallel_sweep.py
"""

from __future__ import annotations

import tempfile

from repro.analyzer.sweep import sweep_applications
from repro.fleet import JobSpec, RetryPolicy, register_kind, run_jobs

APPS = ["AMG", "BigFFT", "MiniFe"]
BINS = (1, 32)


def flatten(results) -> str:
    return "".join(
        results[name][bins].to_json()
        for name in sorted(results)
        for bins in sorted(results[name])
    )


def main() -> None:
    # -- 1. one grid, three execution modes -----------------------------
    serial = sweep_applications(bins_list=BINS, rounds=2, names=APPS, jobs=1)

    with tempfile.TemporaryDirectory(prefix="fleet-example-") as cache_dir:
        parallel, cold = sweep_applications(
            bins_list=BINS, rounds=2, names=APPS,
            jobs=2, cache_dir=cache_dir, with_report=True,
        )
        warm_results, warm = sweep_applications(
            bins_list=BINS, rounds=2, names=APPS,
            jobs=2, cache_dir=cache_dir, with_report=True,
        )

    assert flatten(serial) == flatten(parallel) == flatten(warm_results)
    print(f"cold run : {cold.summary()}")
    print(f"warm run : {warm.summary()}")
    print(f"identical: serial == parallel == warm ({len(APPS) * len(BINS)} cells)")

    # -- 2. quarantine: a poisoned job does not kill the sweep ----------
    def never_works(params, seed):
        raise RuntimeError("this job kind always fails")

    register_kind("example_fail", never_works)
    run = run_jobs(
        [
            JobSpec(kind="analyze_app", params={"app": "AMG", "bins": 32, "rounds": 2}),
            JobSpec(kind="example_fail"),
        ],
        policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
    )
    statuses = [outcome.status for outcome in run.outcomes]
    print(f"statuses : {statuses}")
    assert statuses == ["ok", "quarantined"]
    print(f"report   : {run.report.summary()}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Watch a run's health live: sampler -> time series -> alarms.

A DPA memory budget (§III-E) is ramped down over an unexpected-heavy
chaos workload while the timeline sampler polls the stack's gauges
every wire tick. The health monitor streams the samples through the
default alarm rules: the roomy budgets stay quiet, the tight one
evicts cold UMQ entries and raises ``budget-evictions`` within one
sampling interval. The tight run's series render as terminal
sparklines — queue dynamics over simulated time, the paper's Fig. 7
axis — followed by the typed health report.

Run:  python examples/health_watch.py
"""

import dataclasses

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.obs.health import HealthMonitor, default_rules
from repro.obs.timeline import TimelineSampler

#: The §III-E budget ramp: unlimited, roomy, and too tight.
BUDGETS = (-1, 120_000, 20_000)

BASE = ChaosConfig(
    seed=5,
    rounds=16,
    pressure=True,
    senders=4,
    max_posts_per_round=2,
    max_sends_per_round=12,
    bounce_buffers=8,
)


def watched_run(budget: int):
    """One chaos run under the sampler + streaming health monitor."""
    sampler = TimelineSampler(interval=0.0)  # sample every driver round
    monitor = HealthMonitor(default_rules()).attach(sampler)
    config = dataclasses.replace(BASE, budget_bytes=budget)
    run_chaos(config, sampler=sampler)
    return sampler.timeline, monitor.report(ticks=sampler.timeline.ticks)


def main() -> None:
    print("=== DPA budget ramp under the health monitor ===")
    reports = {}
    for budget in BUDGETS:
        timeline, report = watched_run(budget)
        reports[budget] = (timeline, report)
        label = "unlimited" if budget < 0 else f"{budget:>7} B"
        alarms = ", ".join(sorted(report.alarms())) or "none"
        verdict = "healthy" if report.healthy else "ALARMS"
        print(
            f"budget {label}: {verdict:<8} over {report.ticks} sampling "
            f"rounds (alarms: {alarms})"
        )

    tight = BUDGETS[-1]
    timeline, report = reports[tight]
    print(f"\n=== sampled series, budget {tight} B (sparklines) ===")
    print(timeline.render(width=60, match="pressure."))
    print()
    print(timeline.render(width=60, match="engine.umq_depth"))

    print(f"\n=== health report, budget {tight} B ===")
    print(report.render())
    for event in report.events:
        print(f"  first detection window: {event.window:g} tick(s)")
        break

    assert reports[BUDGETS[0]][1].healthy, "unlimited budget must stay quiet"
    assert not report.healthy, "tight budget must raise an alarm"
    print("\nramp behaved: roomy budgets quiet, tight budget alarmed.")


if __name__ == "__main__":
    main()

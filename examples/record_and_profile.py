#!/usr/bin/env python3
"""Record a live run, then profile its matching behaviour.

The full tooling loop in one script: write a small MPI program
against the simulated runtime, *record* its execution as a DUMPI-style
trace, feed that trace to the analyzer for the complete matching
profile, and emit the observability artifacts — a Perfetto-loadable
Chrome trace of the run in virtual walltime plus an ASCII metrics
report — the workflow a user would follow to decide whether their
own application suits offloaded matching.

Run:  python examples/record_and_profile.py
Then open the printed ``.trace.json`` at https://ui.perfetto.dev/.
"""

import tempfile
from pathlib import Path

from repro.analyzer import format_app_report
from repro.analyzer.processing import analyze
from repro.core import ANY_SOURCE, EngineConfig
from repro.mpisim import MpiSim, RecordingSim
from repro.obs.registry import MetricsRegistry
from repro.obs.report import render_metrics
from repro.obs.trace import mpi_trace_to_chrome
from repro.traces.lint import lint_trace


def producer_consumer_app(recorder: RecordingSim, steps: int) -> None:
    """A small pipeline: rank 0 produces, middle ranks transform,
    the last rank consumes with ANY_SOURCE (a wildcard consumer)."""
    size = recorder.sim.size
    last = size - 1
    for step in range(steps):
        # Stage receives first (well-behaved pre-posting).
        stage_reqs = [
            recorder.irecv(rank, source=rank - 1, tag=step % 3)
            for rank in range(1, last)
        ]
        sink_reqs = [
            recorder.irecv(last, source=ANY_SOURCE, tag=step % 3)
            for _ in range(last)
        ]
        # Rank 0 fans work out along the pipeline...
        recorder.isend(0, 1, step % 3, f"item-{step}".encode())
        # ...each middle rank forwards to its successor and also
        # reports straight to the sink.
        for rank in range(1, last):
            recorder.isend(rank, rank + 1 if rank + 1 < last else last,
                           step % 3, b"fwd")
            recorder.isend(rank, last, step % 3, b"report")
        recorder.isend(0, last, step % 3, b"report")
        for req in stage_reqs:
            recorder.wait(req)
        recorder.waitall(sink_reqs)


def main() -> None:
    sim = MpiSim(6, config=EngineConfig(bins=64, block_threads=8, max_receives=512))
    recorder = RecordingSim(sim, name="producer-consumer")
    producer_consumer_app(recorder, steps=8)

    trace = recorder.trace()
    report = lint_trace(trace, require_balance=False)
    print(f"recorded {trace.total_ops()} ops across {trace.nprocs} ranks "
          f"(lint: {'clean' if report.ok else 'ERRORS'}, "
          f"{len(report.warnings())} warnings)\n")

    print(format_app_report(trace, bins_list=(1, 16, 64)))

    # -- observability artifacts --------------------------------------
    # The recorded ops become a Perfetto timeline (one thread track per
    # rank, spans at virtual walltime) ...
    trace_path = Path(tempfile.gettempdir()) / "producer-consumer.trace.json"
    mpi_trace_to_chrome(trace).write(str(trace_path))
    print(f"\nPerfetto trace: {trace_path} (open at https://ui.perfetto.dev/)")

    # ... and the analysis numbers become a metrics snapshot, rendered
    # as the same ASCII report `python -m repro.obs.report` produces.
    registry = MetricsRegistry()
    for bins in (1, 16, 64):
        analysis = analyze(trace, bins)
        registry.register_stats(f"analysis.bins{bins}.depth", analysis.depth)
    print("\nqueue-depth metrics by bin count:")
    print(render_metrics(registry.snapshot(), match="mean_depth", width=32))


if __name__ == "__main__":
    main()

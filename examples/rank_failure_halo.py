#!/usr/bin/env python3
"""Losing a rank mid-halo and finishing anyway.

An 8-rank halo exchange runs over a torus fabric with heartbeat
failure detection enabled — and rank 3 is killed mid-iteration by a
seeded fail-stop plan. The survivors' heartbeats time out, dead-peer
notifications revoke the victim's matcher state, the group agrees on
the failure (ULFM-style shrink), and the round replays from the last
coordinated checkpoint without the victim. The run completes with
pairings equal to the serial oracle and wire time conserved exactly;
the recovery timeline below is reconstructed from the run's own
events, then the same failure is replayed under checkpoint/restart
(respawn) for comparison.

Run:  python examples/rank_failure_halo.py
"""

from repro.resilience.cluster import run_resilient
from repro.resilience.faults import RankFaultPlan
from repro.resilience.heartbeat import HeartbeatConfig

TIMELINE_LABELS = {
    "rank_killed": "rank {rank} fail-stops (no farewell, no flush)",
    "peer_failed": (
        "rank {observer} times out on rank {peer}'s heartbeats "
        "({latency} ticks after the kill); dead-peer state revoked"
    ),
    "repair_agreed": "{mode} agreed on failed={failed} in {agreement_ticks} ticks",
    "shrunk": "communicator shrunk to {group}",
    "restarted": "ranks {ranks} respawned from their last checkpoint",
    "round_committed": "round {round} committed by group {group}",
}


def replay_timeline(report):
    for entry in report.results["timeline"]:
        label = TIMELINE_LABELS.get(entry["event"])
        if label is None:
            continue
        print(f"  t={entry['tick']:>4}  {label.format(**entry)}")


def summarize(label, report):
    res = report.results
    cons = res["conservation"]
    assert report.ok, res["violations"]
    assert cons["exact"] == cons["checked"], "wire time not conserved!"
    print(
        f"\n{label}: {res['rounds_completed']} rounds committed by "
        f"{len(res['final_group'])} ranks in {res['elapsed_ticks']} ticks "
        f"({res['recovery_ticks']} spent recovering); "
        f"{res['failures_detected']} failure detected in "
        f"{res['detection_latency_max']} ticks, "
        f"{len(res['false_suspicions'])} false suspicions."
    )


def main():
    plan = RankFaultPlan(victims=(3,), kill_ticks=(50,))
    heartbeat = HeartbeatConfig(period=16, timeout=128)

    print("8-rank halo on a torus; rank 3 dies at tick 50.\n")
    print("shrink recovery:")
    shrink = run_resilient(
        "halo", 8, rounds=3, plan=plan, heartbeat=heartbeat, recovery="shrink"
    )
    replay_timeline(shrink)
    summarize("shrink", shrink)

    print("\nrespawn recovery (same failure, checkpoint/restart):")
    respawn = run_resilient(
        "halo", 8, rounds=3, plan=plan, heartbeat=heartbeat, recovery="respawn"
    )
    replay_timeline(respawn)
    summarize("respawn", respawn)

    print(
        "\nBoth paths finish with oracle-equal pairings and exact wire-time "
        "conservation; shrink finishes leaner, respawn restores the full world."
    )


if __name__ == "__main__":
    main()

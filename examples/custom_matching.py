#!/usr/bin/env python3
"""Custom matching semantics on the programmable NIC (§VII).

Because the offloaded matcher is software, it can be specialized to
the communication library in use. This example contrasts three
configurations on the same channel-FIFO workload (an NCCL-like
collective exchange, no wildcards, fixed channels):

1. the general MPI optimistic engine (full C1/C2 machinery),
2. the engine with every §VII hint applied (wildcard indexes skipped,
   overtaking allowed),
3. a matcher specialized to channel semantics (O(1), no conflicts).

Run:  python examples/custom_matching.py
"""

from repro.core import EngineConfig
from repro.matching import ChannelMatcher, OptimisticAdapter
from repro.matching.oracle import StreamOp, run_stream


def channel_workload(peers: int, channels: int, rounds: int) -> list[StreamOp]:
    """Ring-collective style traffic: every peer, every channel, each
    round posts a receive then a message in channel FIFO order."""
    ops: list[StreamOp] = []
    for _ in range(rounds):
        for peer in range(peers):
            for channel in range(channels):
                ops.append(StreamOp.post(peer, channel))
        for peer in range(peers):
            for channel in range(channels):
                ops.append(StreamOp.message(peer, channel))
    return ops


def describe(label: str, matcher, walked: int, messages: int) -> None:
    print(f"{label:34s} walk/msg={walked / messages:6.3f}")


def main() -> None:
    ops = channel_workload(peers=8, channels=4, rounds=20)
    messages = sum(1 for op in ops if op.kind == "message")
    print(f"workload: {messages} messages over 8 peers x 4 channels\n")

    general = OptimisticAdapter(
        EngineConfig(bins=64, block_threads=16, max_receives=4096)
    )
    run_stream(general, ops)
    describe("general MPI engine", general, general.engine.stats.probes_walked, messages)
    print(f"{'':34s} bucket probes/msg="
          f"{general.engine.stats.buckets_probed / messages:.2f} "
          f"(4 indexes searched)")

    hinted = OptimisticAdapter(
        EngineConfig(
            bins=64,
            block_threads=16,
            max_receives=4096,
            assert_no_any_source=True,
            assert_no_any_tag=True,
            allow_overtaking=True,
        )
    )
    run_stream(hinted, ops)
    describe("engine + all §VII hints", hinted, hinted.engine.stats.probes_walked, messages)
    print(f"{'':34s} bucket probes/msg="
          f"{hinted.engine.stats.buckets_probed / messages:.2f} "
          f"(1 index, no ordering machinery)")

    channel = ChannelMatcher()
    run_stream(channel, ops)
    describe("NCCL-style channel matcher", channel, channel.costs.walked, messages)
    print(f"{'':34s} O(1) per message, no search at all")

    print(
        "\ntakeaway: the same offload substrate covers the full MPI "
        "semantics and,\nwhen the library allows, collapses matching "
        "to a queue pop — flexibility\nhardware tag matching cannot offer."
    )


if __name__ == "__main__":
    main()

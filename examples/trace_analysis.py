#!/usr/bin/env python3
"""Analyze an MPI application's matching behaviour (the paper's §V).

Generates the BoxLib CNS synthetic trace (the deepest-queue app of
Table II), writes it out as a dumpi2ascii-style directory, reloads it
through the parser + binary cache — the full C2 artifact path — and
sweeps the bin count to show how binning collapses queue depth
(Figure 7).

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analyzer import analyze, sweep_trace
from repro.traces import load_trace, save_trace
from repro.traces.synthetic import generate


def main() -> None:
    # Generate a synthetic trace structurally equivalent to the NERSC
    # BoxLib CNS DUMPI capture: 27 ranks, 26-neighbor deep halos.
    trace = generate("BoxLib CNS", processes=27, rounds=5)
    print(f"generated {trace.name}: {trace.nprocs} ranks, {trace.total_ops()} ops")

    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = Path(tmp) / "boxlib-cns"
        save_trace(trace, trace_dir)
        n_files = len(list(trace_dir.glob("dumpi-*.txt")))
        print(f"wrote {n_files} dumpi2ascii rank files to {trace_dir}")

        # First load parses and populates the binary cache; the second
        # load is served from it (§V-A.a).
        loaded = load_trace(trace_dir)
        again = load_trace(trace_dir)
        assert again.total_ops() == loaded.total_ops()
        print(f"reloaded via parser + cache: {loaded.total_ops()} ops")

    # The call mix (Figure 6 row for this app).
    mix = {group.value: f"{frac:.1%}" for group, frac in trace.call_mix().items()}
    print(f"call mix: {mix}")

    # Queue-depth sweep (Figure 7 series for this app).
    print(f"\n{'bins':>6s} {'mean depth':>11s} {'max depth':>10s} {'collisions':>11s}")
    for bins, analysis in sweep_trace(trace, (1, 8, 32, 64, 128, 256)).items():
        depth = analysis.depth
        print(
            f"{bins:6d} {depth.mean_depth:11.2f} {depth.max_depth:10d} "
            f"{depth.collisions:11d}"
        )

    # Wildcard usage: how offload-friendly is this app?
    analysis = analyze(trace, bins=128)
    print(f"\nwildcard usage: {dict(analysis.wildcard_usage)}")
    print(f"unique (source, tag) pairs: {analysis.unique_pairs}")
    print(f"unique tags: {analysis.unique_tags()}")


if __name__ == "__main__":
    main()

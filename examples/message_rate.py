#!/usr/bin/env python3
"""Regenerate Figure 8: the §VI message-rate ping-pong benchmark.

Compares the offloaded optimistic engine (no-conflict, with-conflict
fast path, with-conflict slow path) against host-CPU linked-list
matching and the raw-RDMA upper bound, using the calibrated cycle
models. Pass ``--full`` for the paper's 500-repetition parameters
(slower); the default uses 50 repetitions, which produces the same
rates (the benchmark is deterministic, repetitions only add
confidence on real hardware).

Run:  python examples/message_rate.py [--full]
"""

import argparse

from repro.bench import PingPongBench, format_figure8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper parameters (500 repetitions)"
    )
    args = parser.parse_args()

    repetitions = 500 if args.full else 50
    bench = PingPongBench(k=100, repetitions=repetitions)
    print(
        f"ping-pong: k=100 messages/sequence, {repetitions} sequences, "
        f"{bench.in_flight} in-flight receives, {bench.threads} DPA threads\n"
    )
    results = bench.run_all()
    print(format_figure8(results))

    by_label = {r.label: r for r in results}
    nc = by_label["Optimistic-DPA NC"]
    cpu = by_label["MPI-CPU"]
    print(
        f"\nheadline: offloaded NC reaches {nc.message_rate / cpu.message_rate:.0%} "
        f"of MPI-CPU's rate while freeing "
        f"{cpu.host_matching_cycles_per_msg:.0f} host cycles per message"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A halo exchange across a simulated cluster fabric.

Sixteen ranks run the 2-D halo workload end-to-end through the full
RDMA stack (queue pairs, reliability, eager/rendezvous) — but every
byte crosses a shared network: a 2x2 torus of hosts, four ranks per
host, flows contending for links. The example then asks the analyzer
where the ranks *should* live: the commgraph-driven recommender
scores block / round-robin / greedy placements by routed message
volume, and the run is repeated under the recommendation to show the
congestion difference on the wire.

Run:  python examples/cluster_halo.py
"""

from repro.analyzer.placement import recommend_placement
from repro.net.cluster import ClusterSim, cluster_workload
from repro.net.topology import torus2d


def describe(label, report):
    results = report.results
    busiest = max(
        results["links"].items(), key=lambda kv: kv[1]["busy_ticks"]
    )
    print(f"{label:>12}: {results['sends']} sends in "
          f"{results['elapsed_ticks']} ticks, "
          f"max link utilization {results['fabric']['max_utilization']:.2f}, "
          f"busiest link {busiest[0]} "
          f"(peak queue wait {busiest[1]['peak_wait']} ticks)")
    cons = results["conservation"]
    assert not results["violations"], "ordering violated!"
    assert cons["exact"] == cons["checked"], "wire time not conserved!"


def main():
    trace = cluster_workload("halo", 16, rounds=3, size=2048)
    topology = torus2d(2, 2)  # 4 hosts for 16 ranks: placement matters

    baseline = ClusterSim(trace, topology=topology, placement="block").run()
    describe("block", baseline)

    rec = recommend_placement(trace, topology)
    print(f"\nrecommender: {rec.scheme} "
          f"(routed volume {rec.costs[rec.scheme]:.0f} vs "
          f"block {rec.costs['block']:.0f}, "
          f"{rec.improvement_over_block:.0%} less)")
    for scheme, cost in sorted(rec.costs.items(), key=lambda kv: kv[1]):
        print(f"  {scheme:>12}: {cost:.0f} message-hops")

    tuned = ClusterSim(trace, topology=topology, placement=rec.placement).run()
    describe(rec.scheme, tuned)

    saved = baseline.results["elapsed_ticks"] - tuned.results["elapsed_ticks"]
    print(f"\nplacement saved {saved} ticks of makespan "
          f"({saved / baseline.results['elapsed_ticks']:.0%}); every message "
          "delivered in order, per-hop wire time conserved exactly.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the optimistic tag matching engine in five minutes.

Demonstrates the core public API:

1. configure an engine (bins, block width, optimizations),
2. post receives — wildcards included,
3. stream in messages and process them in optimistic blocks,
4. inspect the match events and the engine statistics.

Run:  python examples/quickstart.py
"""

from repro import (
    ANY_SOURCE,
    ANY_TAG,
    EngineConfig,
    MessageEnvelope,
    OptimisticMatcher,
    ReceiveRequest,
)


def main() -> None:
    # 1. An engine: 128-bin indexes (the paper's default), blocks of
    #    8 parallel matching threads, room for 1024 posted receives.
    config = EngineConfig(bins=128, block_threads=8, max_receives=1024)
    engine = OptimisticMatcher(config)

    # 2. Post receives. Each lands in the index its wildcards select.
    engine.post_receive(ReceiveRequest(source=0, tag=1))  # fully specified
    engine.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=2))  # any sender
    engine.post_receive(ReceiveRequest(source=3, tag=ANY_TAG))  # any tag
    engine.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG))  # catch-all
    print(f"posted receives: {engine.posted_receives}")

    # 3. Messages arrive (completion-queue order = arrival order) and
    #    are matched one block at a time.
    engine.submit_message(MessageEnvelope(source=0, tag=1, send_seq=0))
    engine.submit_message(MessageEnvelope(source=7, tag=2, send_seq=0))
    engine.submit_message(MessageEnvelope(source=3, tag=9, send_seq=0))
    engine.submit_message(MessageEnvelope(source=5, tag=5, send_seq=0))  # catch-all
    engine.submit_message(MessageEnvelope(source=9, tag=9, send_seq=0))  # unexpected

    events = engine.process_all()

    # 4. Inspect the decisions.
    print("\nmatch events (in arrival order):")
    for event in events:
        receive = event.receive
        target = (
            f"receive(source={receive.source}, tag={receive.tag}, "
            f"label={event.receive_post_label})"
            if receive is not None
            else "stored unexpected"
        )
        print(
            f"  message(source={event.message.source}, tag={event.message.tag})"
            f" -> {target}  [{event.path.value}]"
        )

    # A late receive drains the unexpected store.
    drained = engine.post_receive(ReceiveRequest(source=9, tag=9))
    assert drained is not None
    print(
        f"\nlate receive drained unexpected message "
        f"(source={drained.message.source}, tag={drained.message.tag})"
    )

    stats = engine.stats
    print(
        f"\nengine stats: {stats.messages} messages, "
        f"{stats.conflicts} conflicts, path mix {stats.path_mix()}, "
        f"{stats.probes_walked} index entries walked"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The full offload pipeline of §IV, end to end.

Two endpoints on a simulated RDMA link: the sender posts eager and
rendezvous messages; the receiver's (simulated) DPA matches them
optimistically and completes the protocols — eager copies out of NIC
bounce buffers, rendezvous issues one-sided RDMA reads into the user
buffer without involving the host CPU.

Run:  python examples/offload_pipeline.py
"""

from repro.core import EngineConfig, OptimisticMatcher, ReceiveRequest
from repro.dpa import DpaCostModel, MemoryModel
from repro.rdma import QueuePair, RdmaReceiver, RdmaSender, Wire, pump


def main() -> None:
    # Wire up the two endpoints.
    wire = Wire("sender", "receiver")
    sender_qp = QueuePair(wire, "sender")
    receiver_qp = QueuePair(wire, "receiver")
    sender = RdmaSender(sender_qp, rank=0, eager_threshold=256)

    # The receiver's matcher lives "on the NIC": §VI parameters scaled
    # down (tables twice the in-flight window).
    config = EngineConfig(bins=256, block_threads=16, max_receives=256)
    matcher = OptimisticMatcher(config, keep_history=True)
    receiver = RdmaReceiver(receiver_qp, matcher)

    # §III-E memory footprint of this configuration on the DPA.
    memory = MemoryModel(bins=config.bins, max_receives=config.max_receives)
    print(
        f"DPA footprint: {memory.total_bytes() / 1024:.1f} KiB "
        f"(fits L2: {memory.fits_l2()})"
    )

    # Pre-post receives, as a well-behaved MPI application would.
    for tag in range(8):
        receiver.post_receive(ReceiveRequest(source=0, tag=tag, handle=tag))

    # Eager traffic (small) and rendezvous traffic (large).
    for tag in range(4):
        sender.send(tag=tag, payload=f"eager-{tag}".encode())
    for tag in range(4, 8):
        sender.send(tag=tag, payload=bytes([tag]) * 4096)

    # One message with no posted receive: the unexpected path.
    sender.send(tag=99, payload=b"surprise")

    # Drive both sides until the link is quiescent (the sender's NIC
    # must serve the rendezvous RDMA reads).
    pump(receiver, sender_qp)

    print("\ncompleted deliveries:")
    for delivery in receiver.completed:
        print(
            f"  handle={delivery.handle:3d} protocol={delivery.protocol:5s} "
            f"bytes={len(delivery.payload):5d} "
            f"{'(drained from unexpected)' if delivery.unexpected else ''}"
        )

    # The unexpected message waits in NIC memory until a receive shows up.
    print(f"\nunexpected messages staged: {matcher.unexpected_count}")
    receiver.post_receive(ReceiveRequest(source=0, tag=99, handle=99))
    pump(receiver, sender_qp)
    last = receiver.completed[-1]
    print(
        f"late receive completed: handle={last.handle}, "
        f"payload={last.payload!r}, unexpected={last.unexpected}"
    )

    # What did the offloaded matching cost, in accelerator cycles?
    costs = DpaCostModel()
    total = sum(
        costs.block_cycles(block, cores=16) for block in matcher.stats.block_history
    )
    print(
        f"\nmatching work: {matcher.stats.messages} messages, "
        f"{matcher.stats.conflicts} conflicts, ~{total:.0f} DPA cycles, "
        f"0 host CPU cycles"
    )


if __name__ == "__main__":
    main()

"""Deterministic communicator repair: agree / shrink / respawn."""

import pytest

from repro.resilience.repair import RepairDecision, agree

RTT = {frozenset((a, b)): 10 + a + b for a in range(8) for b in range(8) if a != b}


def rtt(a, b):
    return RTT[frozenset((a, b))]


class TestAgree:
    def test_union_of_votes(self):
        decision = agree(
            range(8), {0: {3}, 1: {3, 5}, 2: set()}, mode="shrink", rtt=rtt
        )
        assert decision.failed == (3, 5)
        assert decision.survivors == (0, 1, 2, 4, 6, 7)
        assert decision.mode == "shrink"
        assert decision.voters == 2

    def test_pure_function_of_votes(self):
        """Same votes in any observer order -> the same decision on
        every survivor (no leader, no tie to break)."""
        votes_a = {0: {6}, 4: {6, 2}, 7: {2}}
        votes_b = {7: {2}, 0: {6}, 4: {2, 6}}
        assert agree(range(8), votes_a, mode="respawn", rtt=rtt) == agree(
            range(8), votes_b, mode="respawn", rtt=rtt
        )

    def test_agreement_priced_at_twice_worst_survivor_rtt(self):
        decision = agree(range(4), {0: {1}}, mode="shrink", rtt=rtt)
        worst = max(rtt(a, b) for a in (0, 2, 3) for b in (0, 2, 3) if a != b)
        assert decision.agreement_ticks == 2 * worst

    def test_votes_for_non_members_are_ignored(self):
        decision = agree(range(4), {0: {2, 99}}, mode="shrink", rtt=rtt)
        assert decision.failed == (2,)

    def test_errors(self):
        with pytest.raises(ValueError, match="mode"):
            agree(range(4), {0: {1}}, mode="pray", rtt=rtt)
        with pytest.raises(ValueError, match="nothing to repair"):
            agree(range(4), {0: set()}, mode="shrink", rtt=rtt)
        with pytest.raises(ValueError, match="survivors"):
            agree(range(2), {0: {1}, 1: {0}}, mode="shrink", rtt=rtt)

    def test_decision_is_frozen(self):
        decision = agree(range(4), {0: {1}}, mode="shrink", rtt=rtt)
        assert isinstance(decision, RepairDecision)
        with pytest.raises(AttributeError):
            decision.mode = "respawn"

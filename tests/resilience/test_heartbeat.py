"""Heartbeat detector properties (satellite 3).

The two contractual bounds, driven tick-by-tick across topologies and
seeds rather than sampled:

* fault-free => zero suspicions, under any topology, placement, and
  data-plane congestion (beats ride the management lane);
* a kill at ``t`` is suspected by every live observer no later than
  ``t + timeout + max_route_rtt``.
"""

import pytest

from repro.net.fabric import Fabric
from repro.net.topology import fat_tree, ring, torus2d
from repro.resilience.heartbeat import HeartbeatConfig, HeartbeatNetwork
from repro.util.rng import make_rng

TOPOLOGIES = {
    "ring": lambda: ring(8),
    "torus": lambda: torus2d(2, 4),
    "fattree": lambda: fat_tree(2),
}


def mesh(build, config=None):
    topo = build()
    fabric = Fabric(topo)
    hosts = topo.hosts[:8]
    members = {rank: hosts[rank % len(hosts)] for rank in range(8)}
    hb = HeartbeatNetwork(fabric, members, config or HeartbeatConfig())
    return fabric, hb


class TestConfig:
    def test_rejects_bad_tuning(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(period=0)
        with pytest.raises(ValueError, match="exceed"):
            HeartbeatConfig(period=16, timeout=16)

    def test_params_round_trip(self):
        config = HeartbeatConfig(period=8, timeout=99)
        assert HeartbeatConfig.from_params(config.to_params()) == config


class TestNoFalsePositives:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fault_free_never_suspects(self, name, seed):
        """Pump cadence is jittered per seed: the bound must hold for
        any driver that pumps at least once per period."""
        fabric, hb = mesh(TOPOLOGIES[name])
        rng = make_rng(seed)
        skip_until = 0
        for _ in range(6 * hb.config.timeout):
            now = fabric.tick()
            if now >= skip_until:
                # Jitter: stall the pump up to a full period.
                skip_until = now + int(rng.integers(0, hb.config.period))
                hb.pump()
            assert hb.new_suspicions() == []
        assert hb.beats_heard > 0

    def test_congested_data_plane_cannot_delay_beats(self):
        """Saturate every link with data traffic; control arrivals are
        unchanged, so the detector still never fires."""
        quiet_fabric, quiet = mesh(TOPOLOGIES["torus"])
        busy_fabric, busy = mesh(TOPOLOGIES["torus"])
        hosts = busy_fabric.topology.hosts
        busy_fabric.attach("sink")
        for step in range(6 * busy.config.timeout):
            quiet_fabric.tick()
            busy_fabric.tick()
            # Data-plane load on the busy twin only.
            src = hosts[step % len(hosts)]
            dst = hosts[(step + 1) % len(hosts)]
            busy_fabric.inject(src, dst, "sink", step, 4096)
            quiet.pump()
            busy.pump()
            assert busy.new_suspicions() == []
            assert quiet.new_suspicions() == []
        assert busy.last_heard == quiet.last_heard


class TestBoundedDetection:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_kill_detected_within_bound(self, name, seed):
        fabric, hb = mesh(TOPOLOGIES[name])
        rng = make_rng(seed)
        victim = int(rng.integers(0, 8))
        kill_tick = int(rng.integers(1, 3 * hb.config.period))
        bound = hb.config.timeout + hb.max_route_rtt()
        suspected_at: dict[int, int] = {}
        for _ in range(kill_tick + bound + 1):
            now = fabric.tick()
            if now == kill_tick:
                hb.kill(victim)
            hb.pump()
            for obs, peer, tick in hb.new_suspicions():
                assert peer == victim, f"false suspicion of live rank {peer}"
                suspected_at[obs] = tick
        live = set(range(8)) - {victim}
        assert set(suspected_at) == live
        assert hb.suspects_all([victim])
        worst = max(suspected_at.values()) - kill_tick
        assert worst <= bound, f"detection took {worst} > bound {bound}"


class TestEndToEnd:
    def test_clean_resilient_run_has_zero_false_suspicions(self):
        """The acceptance property, through the full stack: a fault-free
        resilient run with heartbeats enabled never suspects anyone and
        its chaos projection is byte-identical to the detector-disabled
        twin — the detector perturbs nothing."""
        from repro.resilience.cluster import run_resilient

        with_hb = run_resilient(
            "halo", 8, rounds=3, heartbeat=HeartbeatConfig(), record=False
        )
        without = run_resilient("halo", 8, rounds=3, heartbeat=None, record=False)
        assert with_hb.ok and without.ok
        assert with_hb.results["false_suspicions"] == []
        assert with_hb.results["suspicion_aborts"] == 0
        assert with_hb.results["backstop_aborts"] == 0
        assert (
            with_hb.to_chaos_report(seed=1).to_json()
            == without.to_chaos_report(seed=1).to_json()
        )

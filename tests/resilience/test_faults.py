"""RankFaultPlan / RankFaultInjector: seeded fail-stop schedules."""

import pytest

from repro.resilience.faults import RankFaultInjector, RankFaultPlan


class TestPlanValidation:
    def test_defaults_are_clean(self):
        plan = RankFaultPlan()
        assert plan.is_clean
        assert plan.compile(8) == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kills=-1),
            dict(horizon=0),
            dict(victims=(1, 2), kill_ticks=(5,)),
            dict(victims=(1, 1), kill_ticks=(5, 6)),
            dict(victims=(1,), kill_ticks=(0,)),
        ],
        ids=["negative-kills", "zero-horizon", "mismatched", "dup-victim", "tick-zero"],
    )
    def test_rejects_malformed(self, kwargs):
        with pytest.raises(ValueError):
            RankFaultPlan(**kwargs)

    def test_victim_outside_world(self):
        with pytest.raises(ValueError, match="outside"):
            RankFaultPlan(victims=(9,), kill_ticks=(5,)).compile(8)

    def test_killing_everyone_is_rejected(self):
        plan = RankFaultPlan(victims=(0, 1), kill_ticks=(1, 2))
        with pytest.raises(ValueError, match="survive"):
            plan.compile(2)


class TestCompile:
    def test_same_seed_same_schedule(self):
        plan = RankFaultPlan(seed=7, kills=2, horizon=100)
        assert plan.compile(8) == plan.compile(8)

    def test_different_seed_different_schedule(self):
        schedules = {RankFaultPlan(seed=s, kills=2, horizon=500).compile(16) for s in range(8)}
        assert len(schedules) > 1

    def test_explicit_and_seeded_never_collide(self):
        plan = RankFaultPlan(seed=3, kills=4, victims=(0, 1), kill_ticks=(5, 6))
        schedule = plan.compile(8)
        ranks = [rank for _, rank in schedule]
        assert len(ranks) == len(set(ranks))
        assert {0, 1} <= set(ranks)

    def test_schedule_sorted_by_tick(self):
        ticks = [t for t, _ in RankFaultPlan(seed=1, kills=3, horizon=200).compile(8)]
        assert ticks == sorted(ticks)

    def test_params_round_trip(self):
        plan = RankFaultPlan(seed=5, kills=1, horizon=64, victims=(2,), kill_ticks=(9,))
        assert RankFaultPlan.from_params(plan.to_params()) == plan


class TestInjector:
    def test_each_kill_fires_once(self):
        injector = RankFaultInjector(((10, 3), (20, 5)))
        assert injector.due(5) == []
        assert injector.due(10) == [3]
        assert injector.due(10) == []
        assert injector.due(99) == [5]
        assert injector.fired == {3: 10, 5: 20}
        assert injector.killed == frozenset({3, 5})
        assert injector.exhausted

    def test_strict_attribution(self):
        """An error on a run where nothing fired is a genuine bug."""
        injector = RankFaultInjector(((100, 2),))
        boom = RuntimeError("boom")
        assert not injector.owns(boom)
        injector.due(100)
        assert injector.owns(boom)

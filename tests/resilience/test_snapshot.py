"""Coordinated rank checkpoints: the block journal widened per rank."""

from repro.core import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.matching.oracle import pairings
from repro.resilience.snapshot import (
    RankSnapshot,
    WorldCheckpoint,
    restore_rank,
    snapshot_rank,
)

CONFIG = EngineConfig(bins=4, block_threads=4, max_receives=64)


def settled_engine():
    engine = OptimisticMatcher(CONFIG)
    for handle in range(4):
        engine.post_receive(ReceiveRequest(source=0, tag=handle, handle=handle))
    for seq, tag in enumerate((0, 1, 9)):  # tag 9 parks unexpected
        engine.submit_message(MessageEnvelope(source=0, tag=tag, send_seq=seq))
    engine.process_all()
    return engine


class TestWorldCheckpoint:
    def test_initial_cut_is_empty(self):
        checkpoint = WorldCheckpoint.initial([0, 1, 5])
        assert checkpoint.round_index == 0
        assert sorted(checkpoint.snapshots) == [0, 1, 5]
        for rank, snap in checkpoint.snapshots.items():
            assert snap.world_rank == rank
            assert snap.send_streams == {} and snap.recv_streams == {}


class TestRankRoundTrip:
    def test_streams_survive_world_keyed(self):
        snap = snapshot_rank(
            3,
            2,
            settled_engine(),
            send_streams={(5, 0): 4, (1, 7): 2},
            recv_streams={(5, 0): 4},
        )
        assert snap.world_rank == 3 and snap.round_index == 2
        assert snap.send_streams == {(5, 0): 4, (1, 7): 2}
        # Defensive copies: mutating the source dict cannot corrupt
        # the checkpoint.
        source = {(0, 0): 1}
        snap2 = snapshot_rank(0, 1, settled_engine(), source, {})
        source[(0, 0)] = 99
        assert snap2.send_streams == {(0, 0): 1}

    def test_restored_matcher_pairs_like_the_original(self):
        engine = settled_engine()
        restored = restore_rank(snapshot_rank(0, 1, engine, {}, {}))
        continuation = [
            MessageEnvelope(source=0, tag=tag, send_seq=3 + i)
            for i, tag in enumerate((2, 3))
        ]
        for msg in continuation:
            engine.submit_message(msg)
            restored.submit_message(msg)
        assert pairings(engine.process_all()) == pairings(restored.process_all())

    def test_decision_clock_stays_monotone(self):
        engine = settled_engine()
        restored = restore_rank(snapshot_rank(0, 1, engine, {}, {}))
        assert restored.decisions.peek() == engine.decisions.peek()

    def test_default_snapshot_restores_to_empty_engine(self):
        restored = restore_rank(RankSnapshot(world_rank=2, round_index=0))
        assert restored.posted_receives == 0
        assert restored.unexpected_count == 0

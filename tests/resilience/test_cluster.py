"""Resilient cluster acceptance: kill a rank mid-run, finish anyway.

The issue's bar: an 8-rank halo losing one rank mid-iteration must
complete via shrink AND via checkpoint-restart, with pairings equal to
the serial oracle (zero violations) and wire time conserved exactly —
and every planted driver bug (the mutant lanes) must be caught.
"""

import pytest

from repro.resilience.cluster import MUTANTS, ResilienceReport, run_resilient
from repro.resilience.errors import RankFailedError
from repro.resilience.faults import RankFaultPlan
from repro.resilience.heartbeat import HeartbeatConfig

KILL_ONE = RankFaultPlan(victims=(3,), kill_ticks=(50,))
HB = HeartbeatConfig()


def run(recovery, *, plan=KILL_ONE, heartbeat=HB, size=512, mutant="", app="halo", record=False):
    return run_resilient(
        app,
        8,
        rounds=3,
        size=size,
        plan=plan,
        heartbeat=heartbeat,
        recovery=recovery,
        mutant=mutant,
        record=record,
    )


class TestCleanRuns:
    @pytest.mark.parametrize("app", ["halo", "alltoall"])
    def test_fault_free_commits_every_round(self, app):
        report = run("shrink", plan=RankFaultPlan(), app=app, record=True)
        res = report.results
        assert report.ok
        assert res["final_group"] == list(range(8))
        assert res["kills"] == [] and res["attempts"] == 3
        cons = res["conservation"]
        assert cons["checked"] > 0 and cons["exact"] == cons["checked"]


class TestKillOneRank:
    def test_shrink_completes_without_the_victim(self):
        report = run("shrink", record=True)
        res = report.results
        assert report.ok, res["violations"]
        assert [k["rank"] for k in res["kills"]] == [3]
        assert res["final_group"] == [0, 1, 2, 4, 5, 6, 7]
        assert res["shrinks"] == 1 and res["restarts"] == 0
        # Heartbeats detected the death; the backstop never fired.
        assert res["failures_detected"] == 1
        assert res["backstop_aborts"] == 0
        assert res["detection_latency_max"] <= HB.timeout + 50
        cons = res["conservation"]
        assert cons["checked"] > 0 and cons["exact"] == cons["checked"]

    def test_respawn_restores_full_membership(self):
        report = run("respawn")
        res = report.results
        assert report.ok, res["violations"]
        assert res["final_group"] == list(range(8))
        assert res["restarts"] == 1 and res["shrinks"] == 0

    def test_recovery_modes_agree_on_committed_traffic(self):
        """Both repair paths replay the same rounds from the same
        checkpoints: committed sends/deliveries must coincide."""
        shrink, respawn = run("shrink"), run("respawn")
        assert shrink.results["sends"] > 0
        # Shrink re-plans rounds over 7 ranks, respawn over all 8.
        assert respawn.results["sends"] >= shrink.results["sends"]

    def test_rendezvous_kill_fails_outstanding_recvs(self):
        """Above the eager threshold the dead rank can no longer serve
        its rendezvous reads: survivors hold receives that can never
        complete, and revocation surfaces them as typed errors."""
        report = run("shrink", size=2048)
        res = report.results
        assert report.ok
        assert res["failed_recvs"] >= 1
        assert any("rank 3 failed" in err for err in res["recv_errors"])

    def test_backstop_recovers_without_heartbeats(self):
        report = run("shrink", heartbeat=None)
        res = report.results
        assert report.ok
        assert res["failures_detected"] == 0
        assert res["backstop_aborts"] >= 1
        assert res["final_group"] == [0, 1, 2, 4, 5, 6, 7]

    def test_timeline_records_the_recovery_story(self):
        events = [e["event"] for e in run("respawn").results["timeline"]]
        for expected in ("rank_killed", "repair_agreed", "restarted", "round_committed"):
            assert expected in events, f"missing {expected} in {sorted(set(events))}"


class TestDeterminism:
    def test_identical_reports_run_to_run(self):
        assert run("shrink").to_dict() == run("shrink").to_dict()

    def test_seeded_plan_reproducible(self):
        plan = RankFaultPlan(seed=9, kills=1, horizon=120)
        assert run("shrink", plan=plan).to_dict() == run("shrink", plan=plan).to_dict()


class TestMutantLanes:
    """Planted driver bugs must be caught, proving the audits bite."""

    def test_known_mutants(self):
        assert set(MUTANTS) == {"", "deaf-detector", "no-abort", "stale-streams"}
        with pytest.raises(ValueError, match="unknown mutant"):
            run("shrink", mutant="bogus")

    @pytest.mark.parametrize("mutant", ["deaf-detector", "no-abort"])
    def test_detector_mutants_fall_back_to_backstop(self, mutant):
        report = run("shrink", mutant=mutant)
        assert report.results["backstop_aborts"] >= 1

    def test_stale_streams_mutant_breaks_the_oracle(self):
        """A respawned rank that forgot its stream counters regresses
        message identities — only catchable when the kill lands after
        a committed round (tick 400 sits between commits 2 and 3)."""
        late = RankFaultPlan(victims=(3,), kill_ticks=(400,))
        report = run("respawn", plan=late, mutant="stale-streams")
        assert not report.ok
        assert report.results["violations"]
        healthy = run("respawn", plan=late)
        assert healthy.ok, healthy.results["violations"]


class TestReportCodec:
    def test_dict_round_trip(self):
        report = run("shrink")
        assert ResilienceReport.from_dict(report.to_dict()).to_dict() == report.to_dict()
        with pytest.raises(ValueError, match="expected"):
            ResilienceReport.from_dict({"schema": "bogus/v0", "params": {}, "results": {}})

    def test_fleet_codec_round_trip(self):
        from repro.fleet.codec import decode_result, encode_result

        report = run("shrink")
        restored = decode_result(encode_result(report))
        assert isinstance(restored, ResilienceReport)
        assert restored.to_dict() == report.to_dict()

    def test_chaos_projection_carries_rank_counters(self):
        chaos = run("shrink", size=2048).to_chaos_report(seed=42)
        assert chaos.seed == 42
        assert chaos.rank_kills == 1
        assert chaos.rank_failures_detected == 1
        assert chaos.comm_shrinks == 1
        assert chaos.rank_failed_recvs >= 1
        assert chaos.rank_false_suspicions == 0


class TestRankFailedError:
    def test_error_names_peer_observer_and_handle(self):
        err = RankFailedError(3, observer=7, handle=5)
        assert err.rank == 3 and err.observer == 7 and err.handle == 5
        assert "rank 3" in str(err) and "rank 7" in str(err)

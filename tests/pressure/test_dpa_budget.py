"""DpaMachine budget enforcement: eviction ladder, takeover, costing."""

import pytest

from repro.core.config import EngineConfig
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.dpa.machine import DpaMachine
from repro.obs.registry import MetricsRegistry
from repro.pressure.budget import PressureBudget
from repro.recovery.faults import CoreFaultPlan

ENGINE = dict(bins=64, block_threads=8, max_receives=256)


def run_workload(machine, rounds=6, burst=16):
    """Unexpected-heavy drive: deliver a burst, drain, post the
    previous burst's receives. Returns sorted (tag, handle) pairings."""
    pairings = []

    def collect(event):
        if event is not None and event.receive is not None:
            pairings.append((event.message.tag, event.receive.handle))

    pending = []
    for r in range(rounds):
        tags = [r * burst + i for i in range(burst)]
        for tag in tags:
            machine.deliver(MessageEnvelope(source=0, tag=tag, send_seq=tag))
        for event in machine.run():
            collect(event)
        for tag in pending:
            collect(machine.post_receive(ReceiveRequest(source=0, tag=tag, handle=tag)))
        for event in machine.run():
            collect(event)
        pending = tags
    for tag in pending:
        collect(machine.post_receive(ReceiveRequest(source=0, tag=tag, handle=tag)))
    for event in machine.run():
        collect(event)
    return sorted(pairings)


class TestEnforcement:
    def test_tight_budget_evicts_and_recalls_with_identical_pairings(self):
        free = DpaMachine(EngineConfig(**ENGINE))
        tight = DpaMachine(
            EngineConfig(**ENGINE),
            enforce_budget=True,
            budget=PressureBudget(budget_bytes=6000),
        )
        want = run_workload(free)
        got = run_workload(tight)
        assert got == want
        stats = tight.pressure.stats
        assert stats.evictions > 0
        assert stats.recalls == stats.evictions  # everything came back
        assert stats.budget_overruns == 0
        assert stats.takeovers == 0

    def test_eviction_and_recall_cycles_are_charged(self):
        free = DpaMachine(EngineConfig(**ENGINE))
        tight = DpaMachine(
            EngineConfig(**ENGINE),
            enforce_budget=True,
            budget=PressureBudget(budget_bytes=6000),
        )
        run_workload(free)
        run_workload(tight)
        stats = tight.pressure.stats
        expected_extra = (
            stats.evictions * tight.costs.eviction_cycles
            + stats.recalls * tight.costs.recall_cycles
        )
        assert tight.report.dpa_cycles == pytest.approx(
            free.report.dpa_cycles + expected_extra
        )

    def test_starvation_budget_takes_over_to_host(self):
        # Less than one 8-thread block's header reservation above the
        # static bins charge (3840 B): eviction cannot create headroom,
        # so the machine must escalate.
        machine = DpaMachine(
            EngineConfig(**ENGINE),
            enforce_budget=True,
            budget=PressureBudget(budget_bytes=4300),
        )
        free = DpaMachine(EngineConfig(**ENGINE))
        want = run_workload(free)
        got = run_workload(machine)
        assert got == want  # host matching pairs identically
        assert machine.degraded
        assert machine.pressure.stats.takeovers == 1
        assert machine.pressure.stats.budget_overruns == 0
        assert machine.report.host_matching_cycles > 0

    def test_unlimited_budget_costs_nothing(self):
        free = DpaMachine(EngineConfig(**ENGINE))
        armed = DpaMachine(
            EngineConfig(**ENGINE),
            enforce_budget=True,
            budget=PressureBudget.unlimited(),
        )
        want = run_workload(free)
        got = run_workload(armed)
        assert got == want
        assert armed.report.dpa_cycles == free.report.dpa_cycles
        stats = armed.pressure.stats
        assert stats.evictions == 0
        assert stats.takeovers == 0
        assert stats.peak_charged_bytes > 0  # books were kept

    def test_fitted_budget_resolved_from_memory_model(self):
        machine = DpaMachine(EngineConfig(**ENGINE), enforce_budget=True)
        assert machine.pressure is not None
        assert machine.pressure.budget.budget_bytes == machine.memory.total_bytes()


class TestGuards:
    def test_core_faults_and_budget_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            DpaMachine(
                EngineConfig(**ENGINE),
                enforce_budget=True,
                core_faults=CoreFaultPlan(seed=1, fail_stop_rate=0.1),
            )

    def test_register_metrics_exports_pressure_gauges(self):
        machine = DpaMachine(EngineConfig(**ENGINE), enforce_budget=True)
        registry = MetricsRegistry()
        machine.register_metrics(registry)
        values = registry.snapshot().values
        assert any(name.startswith("dpa.pressure") for name in values)
        assert "dpa.parked" in values

"""Satellite: BouncePool occupancy/frees reconcile with the meter.

A seeded random walk of allocations and releases — including refusals
from both the fixed pool and the budget (the RNR-backpressure escapes)
— must keep the meter's ``bounce`` account exactly equal to
``in_use * buffer_bytes`` at every step, and end balanced at zero.
"""

import pytest

from repro.pressure.budget import PressureBudget, PressureMeter
from repro.rdma.bounce import BounceBufferPool, BouncePoolExhausted
from repro.util.rng import make_rng


def reconciled(pool: BounceBufferPool, meter: PressureMeter) -> bool:
    return meter.accounts["bounce"] == pool.in_use * pool.buffer_bytes


class TestReconciliation:
    @pytest.mark.parametrize("seed", range(1, 9))
    def test_random_walk_stays_reconciled(self, seed):
        meter = PressureMeter(PressureBudget(budget_bytes=6 * 512))
        pool = BounceBufferPool(8, 512, pressure=meter)
        rng = make_rng(seed)
        held = []
        refusals = 0
        for _ in range(400):
            if held and rng.random() < 0.45:
                pool.release(held.pop(int(rng.integers(len(held)))))
            else:
                try:
                    held.append(pool.allocate())
                except BouncePoolExhausted:
                    refusals += 1
            assert reconciled(pool, meter)
            assert meter.charged <= 6 * 512
        for buf in held:
            pool.release(buf)
        assert reconciled(pool, meter)
        assert meter.accounts["bounce"] == 0
        # The budget (6 buffers) is tighter than the pool (8): the walk
        # must actually have been refused by the budget at least once.
        assert refusals > 0

    def test_budget_refusal_is_pool_exhaustion(self):
        """The budget escape is the same exception RNR backpressure
        already handles — no new failure mode for callers."""
        meter = PressureMeter(PressureBudget(budget_bytes=1024))
        pool = BounceBufferPool(4, 512, pressure=meter)
        a = pool.allocate()
        pool.allocate()
        with pytest.raises(BouncePoolExhausted, match="budget"):
            pool.allocate()
        # A release restores exactly one buffer of headroom.
        pool.release(a)
        pool.allocate()

    def test_pressure_gauges_mirror_occupancy(self):
        meter = PressureMeter(PressureBudget(budget_bytes=4096))
        pool = BounceBufferPool(4, 512, pressure=meter)
        bufs = [pool.allocate() for _ in range(3)]
        assert meter.snapshot()["account.bounce"] == 3 * 512.0
        pool.release(bufs[0])
        assert meter.snapshot()["account.bounce"] == 2 * 512.0
        assert pool.high_water == 3

    def test_unmetered_pool_unchanged(self):
        pool = BounceBufferPool(2, 512)
        a = pool.allocate()
        pool.allocate()
        with pytest.raises(BouncePoolExhausted):
            pool.allocate()
        pool.release(a)
        assert pool.available == 1

"""PressuredPipeline: admission, eviction/recall, escalation ladder."""

import pytest

from repro.core import EngineConfig, OptimisticMatcher
from repro.core.envelope import ANY_SOURCE, ANY_TAG, MessageEnvelope, ReceiveRequest
from repro.core.events import MatchKind
from repro.pressure.budget import PressureBudget, PressureMeter
from repro.pressure.controller import PressuredPipeline

#: 8 bins cost 3 x 8 x 20 = 480 B statically.
SMALL = dict(bins=8, block_threads=4, max_receives=64)
BINS_BYTES = 3 * 8 * 20


def pipeline(budget_bytes=None, **overrides):
    budget = (
        PressureBudget.unlimited()
        if budget_bytes is None
        else PressureBudget(budget_bytes=budget_bytes, **overrides)
    )
    meter = PressureMeter(budget)
    return PressuredPipeline(EngineConfig(**SMALL), meter), meter


def msg(seq, tag=0, source=0):
    return MessageEnvelope(source=source, tag=tag, send_seq=seq)


def req(handle, tag=0, source=0):
    return ReceiveRequest(source=source, tag=tag, handle=handle)


def pairs(events):
    return [
        (e.message.send_seq, e.receive.handle)
        for e in events
        if e.receive is not None and e.message is not None
    ]


class TestUnlimitedIsIdentity:
    def test_event_stream_matches_bare_engine(self):
        """With an ∞ budget every gate is a no-op: the pipeline emits
        the same events as a bare engine driven with the same
        flush-before-post discipline."""
        pipe, meter = pipeline()
        engine = OptimisticMatcher(EngineConfig(**SMALL))

        def drive(post, submit, process):
            events = []
            for seq in range(6):
                submit(msg(seq, tag=seq % 3))
            events.extend(process())
            for handle in range(8):
                events.extend(process() if False else [])
                event = post(req(handle, tag=handle % 3, source=ANY_SOURCE))
                if event is not None:
                    events.append(event)
            events.extend(process())
            return events

        got = drive(pipe.post_receive, pipe.submit_message, pipe.process_all)
        # Mirror the pipeline's flush-before-post on the bare engine.
        def bare_post(request):
            return engine.post_receive(request)

        want = []
        for seq in range(6):
            engine.submit_message(msg(seq, tag=seq % 3))
        want.extend(engine.process_all())
        for handle in range(8):
            event = bare_post(req(handle, tag=handle % 3, source=ANY_SOURCE))
            if event is not None:
                want.append(event)
        want.extend(engine.process_all())

        assert pairs(got) == pairs(want)
        assert [e.kind for e in got] == [e.kind for e in want]
        assert meter.stats.posts_deferred == 0
        assert meter.stats.evictions == 0
        assert meter.stats.takeovers == 0
        assert pipe.offloaded

    def test_books_still_kept(self):
        pipe, meter = pipeline()
        pipe.post_receive(req(0, tag=7))
        assert meter.accounts["descriptors"] == 64
        assert meter.accounts["bins"] == BINS_BYTES


class TestAdmission:
    def test_posts_defer_under_pressure_and_stay_fifo(self):
        # 480 bins + 200 B of slack: the third allocating post trips
        # the 0.85 watermark and everything after it queues in order.
        pipe, meter = pipeline(budget_bytes=BINS_BYTES + 200)
        assert pipe.post_receive(req(0, tag=0)) is None
        assert pipe.post_receive(req(1, tag=1)) is None
        assert meter.under_pressure
        assert pipe.post_receive(req(2, tag=2)) is None
        assert pipe.post_receive(req(3, tag=3)) is None
        assert pipe.deferred_count == 2
        assert meter.stats.posts_deferred == 2
        assert [r.handle for r in pipe._deferred] == [2, 3]

    def test_draining_post_always_admitted(self):
        """A post that drains an unexpected message releases memory —
        it is admitted even while pressured (no deferral ahead of it)."""
        pipe, meter = pipeline(budget_bytes=BINS_BYTES + 200)
        pipe.submit_message(msg(0, tag=9))
        pipe.process_all()
        # Push into pressure with allocating posts.
        pipe.post_receive(req(0, tag=0))
        pipe.post_receive(req(1, tag=1))
        assert meter.under_pressure
        event = pipe.post_receive(req(2, tag=9))
        assert event is not None and event.kind is MatchKind.UNEXPECTED_DRAIN
        assert event.message.send_seq == 0


class TestEvictionRecall:
    def test_pressure_evicts_oldest_and_recall_matches(self):
        pipe, meter = pipeline(budget_bytes=BINS_BYTES + 320)
        for seq in range(5):
            pipe.submit_message(msg(seq, tag=seq))
        pipe.process_all()  # unexpected charges trip the watermark
        assert meter.stats.evictions > 0
        assert pipe.parked_count == meter.stats.evictions
        assert not meter.under_pressure  # relief drained the band
        # Recall on demand: a compatible post finds the parked entry.
        event = pipe.post_receive(req(0, tag=1))
        assert event is not None and event.kind is MatchKind.UNEXPECTED_DRAIN
        assert event.message.send_seq == 1
        assert meter.stats.recalls == 1

    def test_parked_is_searched_before_resident(self):
        """C2 across the eviction boundary: evictees are strictly older
        than residents, so a wildcard post must drain the parked entry
        first."""
        pipe, meter = pipeline(budget_bytes=10_000)
        pipe.submit_message(msg(0, tag=5))
        pipe.submit_message(msg(1, tag=5))
        pipe.process_all()
        assert pipe._evict_one()  # parks seq 0, leaves seq 1 resident
        event = pipe.post_receive(req(0, tag=ANY_TAG, source=ANY_SOURCE))
        assert event.message.send_seq == 0
        assert event.kind is MatchKind.UNEXPECTED_DRAIN
        # The resident one is still drainable afterwards.
        event2 = pipe.post_receive(req(1, tag=5))
        assert event2.message.send_seq == 1

    def test_unexpected_count_spans_both_stores(self):
        pipe, _ = pipeline(budget_bytes=10_000)
        pipe.submit_message(msg(0, tag=1))
        pipe.submit_message(msg(1, tag=2))
        pipe.process_all()
        pipe._evict_one()
        assert pipe.parked_count == 1
        assert pipe.unexpected_count == 2


class TestEscalation:
    def test_sustained_pressure_takes_over(self):
        # Bins alone sit above the low watermark, so even after the
        # takeover releases the dynamic accounts the meter stays
        # pressured and the host matcher keeps ownership.
        pipe, meter = pipeline(budget_bytes=700, sustained_threshold=3)
        handle = 0
        while not meter.under_pressure:
            pipe.post_receive(req(handle, tag=handle))
            handle += 1
        pipe.post_receive(req(handle, tag=handle))  # deferred
        assert pipe.deferred_count == 1
        for _ in range(3):  # one strike per quiescent progress round
            pipe.process_all()
        assert not pipe.offloaded
        assert meter.stats.takeovers == 1
        assert meter.accounts["descriptors"] == 0
        assert meter.accounts["unexpected"] == 0
        assert pipe.deferred_count == 0  # admitted into the host matcher
        # The host matcher still matches traffic, including the post
        # that was deferred when the DPA ran out of room.
        pipe.submit_message(msg(0, tag=handle))
        events = pipe.process_all()
        assert pairs(events) == [(0, handle)]
        assert not pipe.offloaded  # still pressured: no re-offload

    def test_takeover_reoffloads_once_out_of_band(self):
        """With slack below the low watermark, the same escalation is
        followed by a re-offload in the very next progress round: the
        working set moves back onto a fresh engine and is re-charged."""
        pipe, meter = pipeline(budget_bytes=2000, sustained_threshold=3)
        handle = 0
        while not meter.under_pressure:
            pipe.post_receive(req(handle, tag=handle))
            handle += 1
        posted = handle
        pipe.post_receive(req(handle, tag=handle))  # deferred
        for _ in range(3):
            pipe.process_all()
        assert meter.stats.takeovers == 1
        assert meter.stats.reoffloads == 1
        assert pipe.offloaded
        from repro.core.descriptor import DESCRIPTOR_BYTES

        assert meter.accounts["descriptors"] == (posted + 1) * DESCRIPTOR_BYTES
        # The re-offloaded engine matches the carried-over posts.
        pipe.submit_message(msg(0, tag=posted))
        events = pipe.process_all()
        assert pairs(events) == [(0, posted)]

    def test_impossible_working_set_escalates_immediately(self):
        """Headroom below one descriptor with nothing to evict: the
        pump escalates without waiting out the strike counter."""
        pipe, meter = pipeline(budget_bytes=BINS_BYTES + 32, sustained_threshold=10)
        pipe.post_receive(req(0, tag=0))  # bins already own the budget
        assert pipe.deferred_count == 1
        pipe.process_all()
        assert not pipe.offloaded
        assert meter.stats.takeovers == 1
        assert pipe.deferred_count == 0

    def test_drain_deferred_fences_the_queue(self):
        pipe, meter = pipeline(budget_bytes=BINS_BYTES + 32, sustained_threshold=10)
        pipe.post_receive(req(0, tag=0))
        pipe.post_receive(req(1, tag=1))
        assert pipe.deferred_count == 2
        pipe.drain_deferred()
        assert pipe.deferred_count == 0
        assert meter.stats.takeovers == 1


class TestDemotion:
    def test_demotes_only_under_pressure(self):
        pipe, meter = pipeline(budget_bytes=BINS_BYTES + 200)
        assert pipe.should_demote(32) is False
        pipe.post_receive(req(0, tag=0))
        pipe.post_receive(req(1, tag=1))
        assert meter.under_pressure
        assert pipe.should_demote(32) is True
        assert meter.stats.demotions == 1

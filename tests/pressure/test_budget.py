"""Unit tests for the §III-E budget ledger and watermark hysteresis."""

import pytest

from repro.dpa.memory import MemoryModel
from repro.pressure.budget import (
    ACCOUNTS,
    BudgetOverrun,
    PressureBudget,
    PressureMeter,
    PressureState,
    PressureStats,
    UNEXPECTED_HEADER_BYTES,
)


class TestBudget:
    def test_paper_iii_e_matches_memory_model(self):
        budget = PressureBudget.paper_iii_e()
        model = MemoryModel(bins=128, max_receives=8192)
        assert budget.budget_bytes == model.total_bytes()

    def test_from_memory_model(self):
        model = MemoryModel(bins=64, max_receives=256)
        budget = PressureBudget.from_memory_model(model)
        assert budget.budget_bytes == model.total_bytes()

    def test_unlimited_has_no_watermarks(self):
        budget = PressureBudget.unlimited()
        assert budget.budget_bytes is None
        assert budget.high_bytes is None
        assert budget.low_bytes is None

    def test_watermark_validation(self):
        with pytest.raises(ValueError, match="watermarks"):
            PressureBudget(budget_bytes=1000, low_watermark=0.9, high_watermark=0.8)
        with pytest.raises(ValueError, match="budget must be positive"):
            PressureBudget(budget_bytes=0)
        with pytest.raises(ValueError, match="sustained_threshold"):
            PressureBudget(budget_bytes=1000, sustained_threshold=0)


class TestMeter:
    def test_charge_release_round_trip(self):
        meter = PressureMeter(PressureBudget(budget_bytes=1000))
        meter.charge("descriptors", 300)
        meter.charge("bounce", 200)
        assert meter.charged == 500
        assert meter.headroom() == 500
        meter.release("bounce", 200)
        assert meter.charged == 300
        assert meter.accounts["descriptors"] == 300

    def test_overrun_raises_and_counts(self):
        meter = PressureMeter(PressureBudget(budget_bytes=100))
        meter.charge("descriptors", 64)
        with pytest.raises(BudgetOverrun):
            meter.charge("unexpected", 64)
        assert meter.stats.budget_overruns == 1
        # The refused charge must not land.
        assert meter.charged == 64

    def test_peak_tracks_high_water(self):
        meter = PressureMeter(PressureBudget(budget_bytes=1000))
        meter.charge("bounce", 700)
        meter.release("bounce", 700)
        meter.charge("bounce", 100)
        assert meter.stats.peak_charged_bytes == 700

    def test_release_cannot_go_negative(self):
        meter = PressureMeter(PressureBudget(budget_bytes=1000))
        meter.charge("bounce", 10)
        with pytest.raises(ValueError, match="negative"):
            meter.release("bounce", 20)

    def test_unknown_account_rejected(self):
        meter = PressureMeter()
        with pytest.raises(KeyError):
            meter.charge("registers", 8)

    def test_unlimited_never_pressures(self):
        meter = PressureMeter(PressureBudget.unlimited())
        meter.charge("descriptors", 1 << 40)
        assert meter.headroom() == float("inf")
        assert meter.level() == 0.0
        assert not meter.under_pressure
        assert meter.stats.pressure_entries == 0

    def test_hysteresis_entry_and_exit(self):
        budget = PressureBudget(
            budget_bytes=1000, high_watermark=0.8, low_watermark=0.5
        )
        meter = PressureMeter(budget)
        meter.charge("descriptors", 799)
        assert meter.state is PressureState.NORMAL
        meter.charge("descriptors", 1)  # crosses 800
        assert meter.under_pressure
        assert meter.stats.pressure_entries == 1
        # Falling below high but above low stays pressured (hysteresis).
        meter.release("descriptors", 200)
        assert meter.under_pressure
        meter.release("descriptors", 100)  # down to 500 == low
        assert meter.state is PressureState.NORMAL
        assert meter.stats.pressure_exits == 1

    def test_typed_helpers_use_unit_costs(self):
        from repro.core.descriptor import DESCRIPTOR_BYTES

        meter = PressureMeter(PressureBudget(budget_bytes=100_000))
        meter.charge_descriptor()
        meter.charge_unexpected()
        assert meter.accounts["descriptors"] == DESCRIPTOR_BYTES
        assert meter.accounts["unexpected"] == UNEXPECTED_HEADER_BYTES
        meter.release_descriptor()
        meter.release_unexpected()
        assert meter.charged == 0

    def test_release_all_returns_total(self):
        meter = PressureMeter(PressureBudget(budget_bytes=1000))
        meter.charge("unexpected", 64)
        meter.charge("unexpected", 64)
        assert meter.release_all("unexpected") == 128
        assert meter.accounts["unexpected"] == 0

    def test_snapshot_gauges(self):
        meter = PressureMeter(PressureBudget(budget_bytes=1000))
        meter.charge("bounce", 250)
        snap = meter.snapshot()
        assert snap["charged_bytes"] == 250.0
        assert snap["budget_bytes"] == 1000.0
        assert snap["level"] == 0.25
        assert snap["under_pressure"] == 0.0
        assert snap["account.bounce"] == 250.0
        assert set(ACCOUNTS) == {
            k.removeprefix("account.") for k in snap if k.startswith("account.")
        }

    def test_stats_json_round_trip(self):
        stats = PressureStats(evictions=3, demotions=2, peak_charged_bytes=512)
        restored = PressureStats.from_json(stats.to_json())
        assert restored == stats

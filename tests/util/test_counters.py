"""Tests for monotonic counters and the sequence labeler."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.counters import MonotonicCounter, SequenceLabeler


class TestMonotonicCounter:
    def test_starts_at_zero(self):
        c = MonotonicCounter()
        assert c.next() == 0
        assert c.next() == 1

    def test_custom_start(self):
        c = MonotonicCounter(10)
        assert c.next() == 10

    def test_peek_does_not_advance(self):
        c = MonotonicCounter()
        assert c.peek() == 0
        assert c.peek() == 0
        assert c.next() == 0
        assert c.peek() == 1


class TestSequenceLabeler:
    def test_same_key_shares_sequence(self):
        lab = SequenceLabeler()
        assert lab.label(1, 2) == 0
        assert lab.label(1, 2) == 0
        assert lab.label(1, 2) == 0
        assert lab.current_run_length == 3

    def test_key_change_bumps_sequence(self):
        lab = SequenceLabeler()
        assert lab.label(1, 2) == 0
        assert lab.label(1, 3) == 1
        assert lab.label(2, 3) == 2

    def test_returning_key_gets_new_sequence(self):
        # A-B-A: the second A run is a *different* sequence; the fast
        # path must not jump across the B posting.
        lab = SequenceLabeler()
        a1 = lab.label(0, 0)
        b = lab.label(0, 1)
        a2 = lab.label(0, 0)
        assert a1 != a2 and b not in (a1, a2)

    def test_wildcards_compare_verbatim(self):
        lab = SequenceLabeler()
        s1 = lab.label(-1, 5)
        s2 = lab.label(-1, 5)
        s3 = lab.label(0, 5)
        assert s1 == s2 != s3

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=1))
    def test_sequence_ids_are_nondecreasing_and_dense(self, keys):
        lab = SequenceLabeler()
        labels = [lab.label(s, t) for s, t in keys]
        assert labels[0] == 0
        for prev, cur in zip(labels, labels[1:]):
            assert cur in (prev, prev + 1)

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=2))
    def test_equal_labels_iff_same_consecutive_key(self, keys):
        lab = SequenceLabeler()
        labels = [lab.label(s, t) for s, t in keys]
        for i in range(1, len(keys)):
            assert (labels[i] == labels[i - 1]) == (keys[i] == keys[i - 1])

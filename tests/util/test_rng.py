"""Tests for deterministic RNG helpers."""

from repro.util.rng import derive_seed, make_rng


class TestMakeRng:
    def test_default_seed_is_deterministic(self):
        a = make_rng().integers(0, 1 << 30, size=8)
        b = make_rng().integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_explicit_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1 << 30, size=8)
        b = make_rng(42).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, size=8)
        b = make_rng(2).integers(0, 1 << 30, size=8)
        assert (a != b).any()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "amg", 3) == derive_seed(7, "amg", 3)

    def test_component_sensitivity(self):
        base = derive_seed(7, "amg", 3)
        assert derive_seed(7, "amg", 4) != base
        assert derive_seed(7, "lulesh", 3) != base
        assert derive_seed(8, "amg", 3) != base

    def test_string_hash_stable_not_pyhash(self):
        # Must not depend on PYTHONHASHSEED: fixed expected value
        # guards against accidentally using hash().
        assert derive_seed(0, "rank") == derive_seed(0, "rank")
        assert derive_seed(0, "rank") != derive_seed(0, "knar")

    def test_int_and_str_components_distinct(self):
        assert derive_seed(0, 1) != derive_seed(0, "1")

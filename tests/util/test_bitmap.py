"""Unit and property tests for the fixed-width bitmap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitmap import Bitmap


class TestBasics:
    def test_starts_empty(self):
        bm = Bitmap(8)
        assert bm.is_empty()
        assert bm.popcount() == 0
        assert bm.lowest_set() is None
        assert bm.set_indexes() == []

    def test_set_and_test(self):
        bm = Bitmap(8)
        bm.set(3)
        assert bm.test(3)
        assert not bm.test(2)
        assert bm.popcount() == 1

    def test_set_is_idempotent(self):
        bm = Bitmap(8)
        bm.set(5)
        bm.set(5)
        assert bm.popcount() == 1

    def test_clear(self):
        bm = Bitmap(8)
        bm.set(2)
        bm.clear(2)
        assert not bm.test(2)
        assert bm.is_empty()

    def test_clear_unset_bit_is_noop(self):
        bm = Bitmap(8)
        bm.clear(4)
        assert bm.is_empty()

    def test_reset(self):
        bm = Bitmap(8)
        for i in range(8):
            bm.set(i)
        bm.reset()
        assert bm.is_empty()

    def test_width_property(self):
        assert Bitmap(32).width == 32

    @pytest.mark.parametrize("width", [0, -1, -100])
    def test_invalid_width_rejected(self, width):
        with pytest.raises(ValueError):
            Bitmap(width)

    @pytest.mark.parametrize("index", [-1, 8, 100])
    def test_out_of_range_rejected(self, index):
        bm = Bitmap(8)
        with pytest.raises(IndexError):
            bm.set(index)
        with pytest.raises(IndexError):
            bm.test(index)


class TestQueries:
    def test_is_full(self):
        bm = Bitmap(4)
        for i in range(4):
            assert not bm.is_full()
            bm.set(i)
        assert bm.is_full()

    def test_lowest_set(self):
        bm = Bitmap(16)
        bm.set(9)
        bm.set(4)
        bm.set(12)
        assert bm.lowest_set() == 4

    def test_any_below(self):
        bm = Bitmap(8)
        bm.set(3)
        assert not bm.any_below(3)
        assert bm.any_below(4)
        assert bm.any_below(7)
        assert not bm.any_below(0)

    def test_all_below_vacuous_for_zero(self):
        # Thread 0 has nobody to wait for at the partial barrier.
        bm = Bitmap(8)
        assert bm.all_below(0)

    def test_all_below(self):
        bm = Bitmap(8)
        bm.set(0)
        bm.set(1)
        assert bm.all_below(2)
        assert not bm.all_below(3)

    def test_set_indexes_sorted(self):
        bm = Bitmap(16)
        for i in (7, 1, 13):
            bm.set(i)
        assert bm.set_indexes() == [1, 7, 13]


class TestProperties:
    @given(st.sets(st.integers(min_value=0, max_value=31)))
    def test_popcount_matches_set(self, bits):
        bm = Bitmap(32)
        for b in bits:
            bm.set(b)
        assert bm.popcount() == len(bits)
        assert bm.set_indexes() == sorted(bits)

    @given(st.sets(st.integers(min_value=0, max_value=31), min_size=1))
    def test_lowest_set_is_minimum(self, bits):
        bm = Bitmap(32)
        for b in bits:
            bm.set(b)
        assert bm.lowest_set() == min(bits)

    @given(
        st.sets(st.integers(min_value=0, max_value=31)),
        st.integers(min_value=0, max_value=31),
    )
    def test_any_below_consistent(self, bits, idx):
        bm = Bitmap(32)
        for b in bits:
            bm.set(b)
        assert bm.any_below(idx) == any(b < idx for b in bits)
        assert bm.all_below(idx) == all(b in bits for b in range(idx))

"""Unit and property tests for the intrusive lazy-removal list."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intrusive import IntrusiveList


def build(items):
    lst = IntrusiveList()
    nodes = [lst.append(i) for i in items]
    return lst, nodes


class TestAppendIterate:
    def test_empty(self):
        lst = IntrusiveList()
        assert len(lst) == 0
        assert lst.is_empty()
        assert list(lst) == []
        assert lst.head() is None

    def test_append_preserves_order(self):
        lst, _ = build([1, 2, 3])
        assert list(lst) == [1, 2, 3]
        assert len(lst) == 3

    def test_head_is_first_live(self):
        lst, nodes = build(["a", "b", "c"])
        assert lst.head() is nodes[0]
        lst.mark(nodes[0])
        assert lst.head() is nodes[1]


class TestUnlink:
    def test_unlink_middle(self):
        lst, nodes = build([1, 2, 3])
        lst.unlink(nodes[1])
        assert list(lst) == [1, 3]

    def test_unlink_head_and_tail(self):
        lst, nodes = build([1, 2, 3])
        lst.unlink(nodes[0])
        lst.unlink(nodes[2])
        assert list(lst) == [2]

    def test_unlink_only_element(self):
        lst, nodes = build([7])
        lst.unlink(nodes[0])
        assert lst.is_empty()
        assert lst.head() is None

    def test_unlink_foreign_node_rejected(self):
        lst1, nodes = build([1])
        lst2 = IntrusiveList()
        lst1.unlink(nodes[0])
        with pytest.raises(ValueError):
            lst2.unlink(nodes[0])

    def test_append_after_unlink_all(self):
        lst, nodes = build([1, 2])
        lst.unlink(nodes[0])
        lst.unlink(nodes[1])
        lst.append(9)
        assert list(lst) == [9]


class TestLazyRemoval:
    def test_mark_hides_from_iteration(self):
        lst, nodes = build([1, 2, 3])
        lst.mark(nodes[1])
        assert list(lst) == [1, 3]
        assert len(lst) == 2
        assert lst.physical_length == 3

    def test_mark_is_idempotent(self):
        lst, nodes = build([1])
        lst.mark(nodes[0])
        lst.mark(nodes[0])
        assert len(lst) == 0
        assert lst.physical_length == 1

    def test_marked_visible_with_include_marked(self):
        lst, nodes = build([1, 2])
        lst.mark(nodes[0])
        seen = [n.payload for n in lst.iter_nodes(include_marked=True)]
        assert seen == [1, 2]

    def test_sweep_removes_marked(self):
        lst, nodes = build([1, 2, 3, 4])
        lst.mark(nodes[0])
        lst.mark(nodes[2])
        removed = lst.sweep()
        assert removed == 2
        assert list(lst) == [2, 4]
        assert lst.physical_length == 2

    def test_sweep_empty_list(self):
        lst = IntrusiveList()
        assert lst.sweep() == 0

    def test_unlink_marked_node(self):
        lst, nodes = build([1, 2])
        lst.mark(nodes[0])
        lst.unlink(nodes[0])
        assert lst.physical_length == 1
        assert list(lst) == [2]


class TestIterationRobustness:
    def test_unlink_current_during_iteration(self):
        lst, nodes = build([1, 2, 3, 4])
        seen = []
        for node in lst.iter_nodes():
            seen.append(node.payload)
            lst.unlink(node)
        assert seen == [1, 2, 3, 4]
        assert lst.is_empty()


class TestProperties:
    @given(st.lists(st.integers(), max_size=30), st.data())
    def test_mark_sweep_equals_filter(self, items, data):
        lst, nodes = build(items)
        to_mark = data.draw(
            st.sets(st.integers(min_value=0, max_value=max(len(items) - 1, 0)))
            if items
            else st.just(set())
        )
        for i in to_mark:
            if i < len(nodes):
                lst.mark(nodes[i])
        expected = [v for i, v in enumerate(items) if i not in to_mark]
        assert list(lst) == expected
        lst.sweep()
        assert list(lst) == expected
        assert lst.physical_length == len(expected)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40))
    def test_interleaved_append_unlink_head(self, script):
        """0 = append, 1 = unlink head; model with a plain list."""
        lst = IntrusiveList()
        model = []
        counter = 0
        for op in script:
            if op == 0:
                lst.append(counter)
                model.append(counter)
                counter += 1
            elif model:
                node = lst.head()
                lst.unlink(node)
                model.pop(0)
        assert list(lst) == model

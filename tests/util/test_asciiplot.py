"""Tests for the terminal plotting helpers."""

from repro.util.asciiplot import depth_series, grouped_bars, hbar_chart


class TestHbarChart:
    def test_scales_to_max(self):
        out = hbar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert "██████████" in lines[0]  # full bar for the max
        assert lines[1].count("█") == 5

    def test_empty_input(self):
        assert hbar_chart({}) == "(no data)"

    def test_zero_values_render_empty_bars(self):
        out = hbar_chart({"a": 0.0, "b": 2.0}, width=8)
        lines = out.splitlines()
        assert "█" not in lines[0]

    def test_sorting(self):
        out = hbar_chart({"small": 1.0, "big": 9.0}, sort=True)
        assert out.splitlines()[0].startswith("big")

    def test_unit_suffix(self):
        out = hbar_chart({"x": 3.0}, unit=" M/s")
        assert "3 M/s" in out

    def test_labels_aligned(self):
        out = hbar_chart({"ab": 1.0, "abcdef": 2.0})
        lines = out.splitlines()
        assert lines[0].index("│") == lines[1].index("│")


class TestGroupedBars:
    def test_groups_and_global_scale(self):
        out = grouped_bars(
            {"g1": {"a": 10.0}, "g2": {"b": 5.0}},
            width=10,
        )
        assert "g1:" in out and "g2:" in out
        lines = out.splitlines()
        a_line = next(line for line in lines if " a " in line or "a " in line.strip())
        b_line = next(line for line in lines if line.strip().startswith("b"))
        # Global maximum: b's bar is half of a's.
        assert a_line.count("█") == 10
        assert b_line.count("█") == 5

    def test_empty(self):
        assert grouped_bars({}) == "(no data)"


class TestDepthSeries:
    def test_layout(self):
        rows = [
            ("CNS", {1: 20.0, 32: 1.5}),
            ("SNAP", {1: 0.3, 32: 0.0}),
        ]
        out = depth_series(rows, width=10)
        lines = out.splitlines()
        assert "@1 bins" in lines[0] and "@32 bins" in lines[0]
        assert lines[1].startswith("CNS")
        assert lines[2].startswith("SNAP")
        assert "20.00" in lines[1]

    def test_empty(self):
        assert depth_series([]) == "(no data)"

    def test_bars_scale_globally(self):
        rows = [("deep", {1: 10.0}), ("shallow", {1: 1.0})]
        out = depth_series(rows, width=10)
        deep_line, shallow_line = out.splitlines()[1:3]
        assert deep_line.count("█") == 10
        assert shallow_line.count("█") == 1

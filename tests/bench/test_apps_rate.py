"""Unit tests for the per-application rate synthesis."""

import pytest

from repro.bench import AppRate, app_message_rate
from repro.core import EngineConfig
from repro.dpa.costs import DpaCostModel
from repro.traces.synthetic import generate


class TestAppMessageRate:
    def test_basic_fields(self):
        rate = app_message_rate(generate("AMG", rounds=2))
        assert isinstance(rate, AppRate)
        assert rate.messages > 0
        assert rate.message_rate > 0
        assert rate.dpa_cycles > 0
        assert rate.cycles_per_message() > 0

    def test_pure_collective_app_has_no_rate(self):
        rate = app_message_rate(generate("HILO", rounds=2))
        assert rate.messages == 0
        assert rate.message_rate == 0.0
        assert rate.cycles_per_message() == 0.0

    def test_config_override(self):
        trace = generate("SNAP", processes=8, rounds=2)
        narrow = app_message_rate(
            trace, config=EngineConfig(bins=16, block_threads=4, max_receives=4096)
        )
        assert narrow.messages > 0

    def test_cost_model_scales_rate(self):
        trace = generate("FillBoundary", processes=8, rounds=2)
        fast = app_message_rate(trace, costs=DpaCostModel(clock_ghz=3.6))
        slow = app_message_rate(trace, costs=DpaCostModel(clock_ghz=0.9))
        assert fast.message_rate == pytest.approx(4 * slow.message_rate, rel=0.01)

    def test_conflicting_app_reports_conflicts(self):
        rate = app_message_rate(generate("CrystalRouter", rounds=3))
        assert rate.conflict_rate > 0
        assert 0 < rate.unexpected_fraction < 1

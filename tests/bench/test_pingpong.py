"""Tests for the Figure 8 harness: mechanics and qualitative shape."""

import pytest

from repro.bench import (
    PingPongBench,
    SCENARIOS,
    format_figure8,
    run_figure8,
    scenario_by_name,
)
from repro.bench.scenarios import PAPER_BINS, PAPER_IN_FLIGHT


@pytest.fixture(scope="module")
def results():
    """One shared small run (module-scoped: the shape assertions all
    read the same data)."""
    bench = PingPongBench(k=64, repetitions=6, in_flight=128, threads=16)
    return {r.label: r for r in bench.run_all()}


class TestScenarios:
    def test_paper_parameters(self):
        assert PAPER_BINS == 2 * PAPER_IN_FLIGHT

    def test_nc_keys_distinct(self):
        nc = scenario_by_name("nc")
        keys = {(nc.receive(i).source, nc.receive(i).tag) for i in range(100)}
        assert len(keys) == 100

    def test_wc_keys_identical(self):
        wc = scenario_by_name("wc-fp")
        keys = {(wc.receive(i).source, wc.receive(i).tag) for i in range(100)}
        assert len(keys) == 1

    def test_messages_match_receives(self):
        for scenario in SCENARIOS:
            for i in range(10):
                assert scenario.receive(i).matches(scenario.message(i))

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_by_name("np")


class TestMechanics:
    def test_all_five_configurations(self, results):
        assert set(results) == {
            "Optimistic-DPA NC",
            "Optimistic-DPA WC-FP",
            "Optimistic-DPA WC-SP",
            "MPI-CPU",
            "RDMA-CPU",
        }

    def test_message_counts(self, results):
        for result in results.values():
            assert result.messages == 64 * 6
            assert result.sequences == 6

    def test_rates_positive(self, results):
        for result in results.values():
            assert result.message_rate > 0

    def test_window_must_cover_sequence(self):
        with pytest.raises(ValueError, match="window"):
            PingPongBench(k=100, repetitions=1, in_flight=50)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PingPongBench(k=0, repetitions=1)


class TestFigure8Shape:
    """The qualitative claims of §VI, asserted."""

    def test_rdma_is_upper_bound(self, results):
        rdma = results["RDMA-CPU"].message_rate
        for label, result in results.items():
            if label != "RDMA-CPU":
                assert result.message_rate < rdma

    def test_nc_comparable_to_mpi_cpu(self, results):
        """'optimistic tag matching has performance comparable with
        MPI-CPU for the non-conflict case' — within 2x either way."""
        nc = results["Optimistic-DPA NC"].message_rate
        cpu = results["MPI-CPU"].message_rate
        assert 0.5 < nc / cpu < 2.0

    def test_conflicts_cost_rate(self, results):
        nc = results["Optimistic-DPA NC"].message_rate
        fp = results["Optimistic-DPA WC-FP"].message_rate
        sp = results["Optimistic-DPA WC-SP"].message_rate
        assert nc > fp > sp

    def test_offload_frees_host(self, results):
        for label in ("Optimistic-DPA NC", "Optimistic-DPA WC-FP", "Optimistic-DPA WC-SP"):
            assert results[label].host_matching_cycles_per_msg == 0.0
        assert results["MPI-CPU"].host_matching_cycles_per_msg > 0

    def test_path_mix_per_scenario(self, results):
        nc = results["Optimistic-DPA NC"].path_mix
        fp = results["Optimistic-DPA WC-FP"].path_mix
        sp = results["Optimistic-DPA WC-SP"].path_mix
        assert nc["fast"] == 0 and nc["slow"] == 0
        assert fp["fast"] > 0 and fp["slow"] == 0
        assert sp["slow"] > 0 and sp["fast"] == 0


class TestFormatting:
    def test_format_contains_all_rows(self, results):
        text = format_figure8(list(results.values()))
        for label in results:
            assert label in text

    def test_run_figure8_wrapper(self):
        rows = run_figure8(k=32, repetitions=2, in_flight=64)
        assert len(rows) == 5


class TestCli:
    def test_single_scenario(self, capsys):
        from repro.bench.cli import main

        assert main(["--k", "32", "--repetitions", "2", "--in-flight", "64",
                     "--scenario", "rdma-cpu"]) == 0
        assert "RDMA-CPU" in capsys.readouterr().out

    def test_all(self, capsys):
        from repro.bench.cli import main

        assert main(["--k", "16", "--repetitions", "2", "--in-flight", "32",
                     "--threads", "8"]) == 0
        out = capsys.readouterr().out
        assert "MPI-CPU" in out and "WC-SP" in out

"""The ``repro-bench`` front door (satellite 1)."""

import json

from repro.bench.frontdoor import main as bench_main


class TestDispatch:
    def test_no_args_prints_usage_and_fails(self, capsys):
        assert bench_main([]) == 2
        assert "usage: repro-bench" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        assert bench_main(["--help"]) == 0
        out = capsys.readouterr().out
        for sub in ("pressure", "reliability", "msgrate", "cluster"):
            assert sub in out

    def test_unknown_subcommand_exits_two(self, capsys):
        assert bench_main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown subcommand 'frobnicate'" in err
        assert "usage: repro-bench" in err


class TestClusterSubcommand:
    def test_runs_sweep_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cluster.json"
        code = bench_main(
            [
                "cluster",
                "--ranks",
                "4",
                "--rounds",
                "1",
                "--size",
                "128",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.bench.cluster/v1"
        assert len(payload["cells"]) == 18  # 3 apps x 3 topologies x 2 placements
        assert payload["failures"] == []
        assert all(cell["ok"] for cell in payload["cells"])

    def test_warm_cache_reproduces_identical_cells(self, tmp_path):
        from repro.bench.cluster import run_bench

        cache = str(tmp_path / "cache")
        cold = run_bench(ranks=4, rounds=1, size=128, cache_dir=cache)
        warm = run_bench(ranks=4, rounds=1, size=128, cache_dir=cache)

        def strip(cells):
            return [{k: v for k, v in c.items() if k != "cached"} for c in cells]

        assert strip(cold["cells"]) == strip(warm["cells"])
        assert all(c["cached"] for c in warm["cells"])
        assert "0 executed" in warm["fleet"]

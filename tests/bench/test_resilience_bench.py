"""Recovery-latency sweep (BENCH_resilience.json)."""

import json

from repro.bench.resilience import (
    RECOVERY_MODES,
    TIMEOUT_LADDER,
    format_table,
    run_bench,
)


class TestSweep:
    def test_grid_is_clean_and_complete(self):
        payload = run_bench()
        assert payload["schema"] == "repro.bench.resilience/v1"
        assert payload["failures"] == []
        assert len(payload["cells"]) == len(RECOVERY_MODES) * len(TIMEOUT_LADDER)
        for cell in payload["cells"]:
            assert cell["ok"]
            assert cell["kills"] == 1
            assert cell["false_suspicions"] == 0
        json.dumps(payload)  # the artifact must be pure JSON

    def test_detection_latency_tracks_the_timeout_ladder(self):
        """The sweep's reason to exist: a tighter timeout detects (and
        recovers) faster, while agreement cost stays flat."""
        payload = run_bench()
        for recovery in RECOVERY_MODES:
            ladder = [
                c
                for c in payload["cells"]
                if c["recovery"] == recovery and c["timeout"] is not None
            ]
            ladder.sort(key=lambda c: c["timeout"])
            latencies = [c["detection_latency"] for c in ladder]
            assert latencies == sorted(latencies)
            assert latencies[0] < latencies[-1]
            recoveries = [c["recovery_ticks"] for c in ladder]
            assert recoveries == sorted(recoveries)
            assert len({c["agreement_ticks"] for c in ladder}) == 1
            # Heartbeat lanes detect; the backstop lane never does.
            backstop = next(
                c
                for c in payload["cells"]
                if c["recovery"] == recovery and c["timeout"] is None
            )
            assert backstop["failures_detected"] == 0
            assert backstop["backstop_aborts"] >= 1

    def test_table_renders_every_cell(self):
        payload = run_bench()
        table = format_table(payload)
        assert table.count("\n") == len(payload["cells"]) + 1
        assert "backstop" in table


class TestCli:
    def test_main_writes_artifact(self, tmp_path, capsys):
        from repro.bench.resilience import main

        out = tmp_path / "BENCH_resilience.json"
        assert main(["--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.bench.resilience/v1"
        assert "wrote" in capsys.readouterr().out

    def test_frontdoor_dispatches(self, tmp_path, capsys):
        from repro.bench.frontdoor import main as bench_main

        out = tmp_path / "bench.json"
        assert bench_main(["resilience", "--out", str(out)]) == 0
        assert out.exists()

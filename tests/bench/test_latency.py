"""Tests for the matching-latency model."""

import numpy as np
import pytest

from repro.bench.latency import LatencyDistribution, dpa_latencies, host_latencies
from repro.bench.scenarios import scenario_by_name


class TestDistribution:
    def test_from_samples(self):
        dist = LatencyDistribution.from_samples("x", np.array([1.0, 2.0, 3.0, 100.0]))
        assert dist.messages == 4
        assert dist.p50_ns == pytest.approx(2.5)
        assert dist.max_ns == 100.0
        assert dist.mean_ns == pytest.approx(26.5)

    def test_empty(self):
        dist = LatencyDistribution.from_samples("x", np.array([]))
        assert dist.messages == 0
        assert dist.max_ns == 0.0


class TestDpaLatencies:
    def test_nc_distribution(self):
        dist = dpa_latencies(
            scenario_by_name("nc"), messages=128, in_flight=128, threads=8
        )
        assert dist.messages == 128
        assert 0 < dist.p50_ns <= dist.p95_ns <= dist.p99_ns <= dist.max_ns

    def test_conflicts_fatten_the_tail(self):
        nc = dpa_latencies(
            scenario_by_name("nc"), messages=128, in_flight=128, threads=8
        )
        sp = dpa_latencies(
            scenario_by_name("wc-sp"), messages=128, in_flight=128, threads=8
        )
        assert sp.p95_ns > nc.p95_ns
        assert sp.mean_ns > nc.mean_ns

    def test_fast_path_cheaper_than_slow(self):
        fp = dpa_latencies(
            scenario_by_name("wc-fp"), messages=128, in_flight=128, threads=8
        )
        sp = dpa_latencies(
            scenario_by_name("wc-sp"), messages=128, in_flight=128, threads=8
        )
        assert fp.mean_ns < sp.mean_ns


class TestHostLatencies:
    def test_burst_ramp(self):
        dist = host_latencies(messages=256, burst=32)
        assert dist.messages == 256
        # Linear ramp within a 32-burst: max 32x the unit cost.
        assert dist.max_ns == pytest.approx(32 * dist.p50_ns / 16.5, rel=0.1)

    def test_deeper_queue_costs_more(self):
        shallow = host_latencies(queue_depth=1)
        deep = host_latencies(queue_depth=64)
        assert deep.mean_ns > shallow.mean_ns

"""BENCH_pressure: the budget ladder costs cycles, never pairings."""

import json

from repro.bench.pressure import SCHEMA, run_bench, run_lane


def by_label(payload):
    return {entry["label"]: entry for entry in payload["results"]}


class TestLadder:
    def test_ladder_properties(self):
        payload = run_bench(rounds=8, burst=24, seed=1)
        assert payload["schema"] == SCHEMA
        assert payload["pairings_identical"] is True
        assert payload["overruns_total"] == 0
        lanes = by_label(payload)
        assert set(lanes) == {"baseline", "unlimited", "fitted", "evict", "takeover"}

        # Bookkeeping is free: unlimited == baseline in cycles.
        assert lanes["unlimited"]["dpa_cycles"] == lanes["baseline"]["dpa_cycles"]
        assert lanes["fitted"]["dpa_cycles"] == lanes["baseline"]["dpa_cycles"]
        # The evict lane pays for its evictions/recalls, nothing else.
        evict = lanes["evict"]
        assert evict["evictions"] > 0
        assert evict["recalls"] > 0
        assert evict["dpa_cycles"] > lanes["baseline"]["dpa_cycles"]
        assert evict["takeovers"] == 0
        # The takeover lane moves matching to the host entirely.
        takeover = lanes["takeover"]
        assert takeover["takeovers"] == 1
        assert takeover["host_matching_cycles"] > 0
        # Everyone delivered everything.
        for lane in lanes.values():
            assert lane["matched"] == lane["messages"]

    def test_payload_is_json_serializable(self):
        payload = run_bench(rounds=4, burst=8, seed=2)
        restored = json.loads(json.dumps(payload))
        assert restored["params"]["rounds"] == 4


class TestLane:
    def test_lane_is_deterministic(self):
        a, pa = run_lane("evict", "6000", rounds=6, burst=16, seed=9)
        b, pb = run_lane("evict", "6000", rounds=6, burst=16, seed=9)
        assert a == b
        assert pa == pb

    def test_budget_bytes_encoding(self):
        off, _ = run_lane("baseline", "off", rounds=2, burst=4)
        unlimited, _ = run_lane("unlimited", "unlimited", rounds=2, burst=4)
        explicit, _ = run_lane("evict", "6000", rounds=2, burst=4)
        assert off.budget_bytes == 0
        assert unlimited.budget_bytes == -1
        assert explicit.budget_bytes == 6000

"""``repro-bench gate``: flattening, rule policy, verdicts, CLI."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.gate import (
    DEFAULT_RULES,
    GateRule,
    GateVerdict,
    flatten,
    main,
    run_gate,
)

BASE = {
    "benchmark": "pressure-overload",
    "params": {"rounds": 16, "senders": 4},
    "serial_s": 12.5,  # machine-dependent: ignored by policy
    "results": [
        {"label": "evict", "dpa_cycles": 1000, "message_rate": 2.0},
        {"label": "demote", "dpa_cycles": 800, "message_rate": 3.0},
    ],
    "parallel_identical_to_serial": True,
    "mode": "strict",
}


class TestFlatten:
    def test_labelled_lists_key_by_label(self):
        flat = flatten(BASE)
        assert flat["results[evict].dpa_cycles"] == 1000.0
        assert flat["results[demote].message_rate"] == 3.0
        assert "results[0].dpa_cycles" not in flat

    def test_label_keying_survives_reordering(self):
        reordered = dict(BASE, results=list(reversed(BASE["results"])))
        assert flatten(BASE) == flatten(reordered)

    def test_unlabelled_lists_key_by_index(self):
        flat = flatten({"xs": [3, 1]})
        assert flat == {"xs[0]": 3.0, "xs[1]": 1.0}

    def test_bools_and_strings(self):
        flat = flatten(BASE)
        assert flat["parallel_identical_to_serial"] == 1.0
        assert flat["mode"] == "strict"


class TestRunGate:
    def test_identical_payloads_pass(self):
        verdict = run_gate(BASE, copy.deepcopy(BASE))
        assert verdict.passed and not verdict.regressions
        assert verdict.benchmark == "pressure-overload"
        # Ignored wall-clock metrics are not even compared.
        assert all("serial_s" != f.path for f in verdict.findings)

    def test_cost_regression_fails(self):
        fresh = copy.deepcopy(BASE)
        fresh["results"][0]["dpa_cycles"] = 1200  # +20% > 5% tolerance
        verdict = run_gate(BASE, fresh)
        assert not verdict.passed
        paths = [f.path for f in verdict.regressions]
        assert paths == ["results[evict].dpa_cycles"]

    def test_cost_within_tolerance_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["results"][0]["dpa_cycles"] = 1040  # +4% < 5%
        assert run_gate(BASE, fresh).passed

    def test_improvement_always_passes_lower_is_better(self):
        fresh = copy.deepcopy(BASE)
        fresh["results"][0]["dpa_cycles"] = 1
        assert run_gate(BASE, fresh).passed

    def test_throughput_drop_fails(self):
        fresh = copy.deepcopy(BASE)
        fresh["results"][1]["message_rate"] = 2.0  # -33% on higher-is-better
        verdict = run_gate(BASE, fresh)
        assert [f.path for f in verdict.regressions] == [
            "results[demote].message_rate"
        ]

    def test_exact_catch_all_flags_any_change(self):
        fresh = copy.deepcopy(BASE)
        fresh["params"]["rounds"] = 17
        verdict = run_gate(BASE, fresh)
        assert [f.path for f in verdict.regressions] == ["params.rounds"]

    def test_string_change_fails(self):
        fresh = dict(copy.deepcopy(BASE), mode="lenient")
        verdict = run_gate(BASE, fresh)
        assert [f.path for f in verdict.regressions] == ["mode"]

    def test_missing_metric_fails_new_metric_passes(self):
        fresh = copy.deepcopy(BASE)
        del fresh["results"][0]["message_rate"]  # dropped: a regression hides
        fresh["extra_metric"] = 42  # schema growth: allowed
        verdict = run_gate(BASE, fresh)
        assert not verdict.passed
        missing = next(f for f in verdict.regressions)
        assert missing.path == "results[evict].message_rate"
        assert "missing" in missing.note
        assert verdict.new_metrics == ["extra_metric"]

    def test_first_match_wins_custom_rule(self):
        fresh = copy.deepcopy(BASE)
        fresh["params"]["rounds"] = 20
        rules = [GateRule("params.rounds", "ignore")] + list(DEFAULT_RULES)
        assert run_gate(BASE, fresh, rules=rules).passed

    def test_verdict_round_trip(self):
        fresh = copy.deepcopy(BASE)
        fresh["results"][0]["dpa_cycles"] = 5000
        verdict = run_gate(BASE, fresh, baseline_path="a.json", fresh_path="b.json")
        clone = GateVerdict.from_json(verdict.to_json())
        assert clone.to_dict() == verdict.to_dict()
        assert not clone.passed

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            GateRule("*", "sideways")
        with pytest.raises(ValueError):
            GateRule("*", "lower", tolerance=-0.1)


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_exits_0(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASE)
        fresh = self._write(tmp_path, "fresh.json", copy.deepcopy(BASE))
        assert main([base, fresh]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_1_and_writes_verdict(self, tmp_path, capsys):
        regressed = copy.deepcopy(BASE)
        regressed["results"][0]["dpa_cycles"] = 9999
        base = self._write(tmp_path, "base.json", BASE)
        fresh = self._write(tmp_path, "fresh.json", regressed)
        out = tmp_path / "verdict.json"
        assert main([base, fresh, "--json-out", str(out)]) == 1
        assert "REGRESSED results[evict].dpa_cycles" in capsys.readouterr().out
        verdict = GateVerdict.from_json(out.read_text())
        assert not verdict.passed

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASE)
        assert main([base, str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_rule_spec_exits_2(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASE)
        assert main([base, base, "--rule", "nonsense"]) == 2

    def test_cli_rule_overrides_default(self, tmp_path):
        changed = copy.deepcopy(BASE)
        changed["params"]["rounds"] = 99
        base = self._write(tmp_path, "base.json", BASE)
        fresh = self._write(tmp_path, "fresh.json", changed)
        assert main([base, fresh, "--quiet"]) == 1
        assert main([base, fresh, "--quiet", "--rule", "params.rounds:ignore"]) == 0


def test_fleet_codec_round_trip():
    from repro.fleet.codec import decode_result, encode_result

    verdict = run_gate(BASE, copy.deepcopy(BASE))
    clone = decode_result(encode_result(verdict))
    assert isinstance(clone, GateVerdict)
    assert clone.to_dict() == verdict.to_dict()

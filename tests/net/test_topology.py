"""Topology builders: shapes, full-duplex cabling, family sizing."""

import pytest

from repro.net.topology import (
    TOPOLOGY_FAMILIES,
    Link,
    fat_tree,
    ring,
    topology_by_name,
    torus2d,
)


class TestLink:
    def test_name_is_directed(self):
        assert Link("a", "b").name == "a>b"

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Link("a", "a")

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            Link("a", "b", latency=-1)
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth=0)


class TestBuilders:
    def test_ring_is_a_cycle(self):
        topo = ring(5)
        assert len(topo.hosts) == 5
        assert not topo.switches
        # Every host has exactly two neighbors; 2 directed links/cable.
        for host in topo.hosts:
            assert len(topo.neighbors(host)) == 2
        assert len(topo.links) == 10

    def test_two_host_ring_has_one_cable(self):
        topo = ring(2)
        assert len(topo.links) == 2  # one cable, both directions

    def test_full_duplex_pairing(self):
        topo = torus2d(2, 2)
        for link in topo.links.values():
            assert f"{link.dst}>{link.src}" in topo.links

    def test_torus_degree(self):
        topo = torus2d(3, 3)
        assert len(topo.hosts) == 9
        for host in topo.hosts:
            assert len(topo.neighbors(host)) == 4

    def test_fat_tree_shape(self):
        k = 4
        topo = fat_tree(k)
        assert len(topo.hosts) == k**3 // 4
        # k pods x (k/2 edge + k/2 agg) + (k/2)^2 cores.
        assert len(topo.switches) == k * k + (k // 2) ** 2

    def test_fat_tree_rejects_odd_arity(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_link_rates_propagate(self):
        topo = ring(3, latency=7, bandwidth=128)
        for link in topo.links.values():
            assert link.latency == 7
            assert link.bandwidth == 128


class TestByName:
    @pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
    @pytest.mark.parametrize("hosts", [2, 5, 8, 16])
    def test_sizes_to_fit(self, family, hosts):
        topo = topology_by_name(family, hosts)
        assert len(topo.hosts) >= hosts

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="dragonfly"):
            topology_by_name("dragonfly", 8)

"""Static routing: valid shortest paths, deterministic ECMP spread."""

import pytest

from repro.net.routing import RouteTable
from repro.net.topology import fat_tree, ring, torus2d


def walk(topology, src, path):
    """Follow a link-name path and return the node it ends at."""
    node = src
    for name in path:
        link = topology.links[name]
        assert link.src == node, f"{name} does not start at {node}"
        node = link.dst
    return node


class TestPaths:
    def test_path_connects_endpoints(self):
        topo = fat_tree(4)
        routes = RouteTable(topo)
        for src, dst in [("h0", "h1"), ("h0", "h7"), ("h3", "h12")]:
            assert walk(topo, src, routes.path(src, dst)) == dst

    def test_self_path_is_empty(self):
        routes = RouteTable(ring(4))
        assert routes.path("h2", "h2") == ()
        assert routes.hops("h2", "h2") == 0

    def test_paths_are_shortest(self):
        topo = torus2d(4, 4)
        routes = RouteTable(topo)
        # Wrap-around: h0 to h3 is one hop, not three.
        assert routes.hops("h0", "h3") == 1
        assert routes.hops("h0", "h5") == 2

    def test_unknown_node_raises(self):
        routes = RouteTable(ring(3))
        with pytest.raises(KeyError):
            routes.path("h9", "h0")

    def test_routes_are_static(self):
        routes = RouteTable(fat_tree(4))
        first = routes.path("h0", "h15")
        for _ in range(5):
            assert routes.path("h0", "h15") == first


class TestEcmp:
    def test_deterministic_across_instances(self):
        a, b = RouteTable(fat_tree(4)), RouteTable(fat_tree(4))
        for src in ("h0", "h5", "h9"):
            for dst in ("h2", "h11", "h15"):
                assert a.path(src, dst) == b.path(src, dst)

    def test_distinct_flows_spread_over_cores(self):
        """Cross-pod flows in a fat-tree should not all funnel through
        a single core switch."""
        topo = fat_tree(4)
        routes = RouteTable(topo)
        cores = set()
        for h in range(8):  # pods 0 and 1 sending to pods 2 and 3
            path = routes.path(f"h{h}", f"h{15 - h}")
            cores.update(
                n for name in path for n in name.split(">") if n.startswith("core")
            )
        assert len(cores) > 1

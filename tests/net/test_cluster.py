"""ClusterSim end-to-end: the unchanged rdma stack over the fabric."""

import pytest

from repro.net.cluster import (
    CLUSTER_APPS,
    ClusterReport,
    ClusterSim,
    cluster_workload,
    run_cluster,
)
from repro.net.faults import LinkFaultPlan


def assert_clean(report):
    assert report.ok, report.results["violations"]
    assert report.results["undelivered"] == 0
    assert report.results["deliveries"] == report.results["sends"]


class TestWorkloads:
    @pytest.mark.parametrize("app", sorted(CLUSTER_APPS))
    def test_generates_exact_receive_trace(self, app):
        trace = cluster_workload(app, 8, rounds=2)
        assert trace.nprocs == 8
        assert any(rank.ops for rank in trace.ranks)

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="nope"):
            cluster_workload("nope", 4)


class TestEndToEnd:
    @pytest.mark.parametrize("topology", ["torus", "fattree"])
    def test_halo_runs_clean(self, topology):
        report = run_cluster("halo", 8, topology=topology, rounds=2)
        assert_clean(report)
        assert report.results["fabric"]["dropped"] == 0
        assert report.results["transport"]["retransmits"] == 0

    def test_rendezvous_path(self):
        """Payloads above the eager threshold go through RTS/rdma_read
        across the fabric; the read phase must appear in the ledger."""
        report = run_cluster(
            "halo", 8, topology="fattree", rounds=2, size=8192, eager_threshold=1024
        )
        assert_clean(report)
        assert report.results["phase_totals"].get("rdma_read", 0) > 0

    def test_hotspot_congests_the_root(self):
        report = run_cluster("hotspot", 9, topology="fattree", rounds=2)
        assert_clean(report)
        links = report.results["links"]
        assert max(l["peak_wait"] for l in links.values()) > 0

    def test_conservation_exact_on_clean_run(self):
        report = run_cluster("alltoall", 6, topology="torus", rounds=2)
        assert_clean(report)
        cons = report.results["conservation"]
        assert cons["checked"] > 0
        assert cons["exact"] == cons["checked"]
        assert cons["recovered"] == 0

    def test_deterministic(self):
        a = run_cluster("halo", 8, topology="torus", rounds=2)
        b = run_cluster("halo", 8, topology="torus", rounds=2)
        assert a.results == b.results

    def test_custom_topology_and_placement(self):
        from repro.net.placement import Placement
        from repro.net.topology import torus2d

        topo = torus2d(2, 2)
        trace = cluster_workload("halo", 8, rounds=2)
        placement = Placement.round_robin(8, topo.hosts)
        report = ClusterSim(trace, topology=topo, placement=placement).run()
        assert_clean(report)
        assert report.params["placement"] == "round_robin"


class TestFaults:
    def test_partition_recovered_without_violations(self):
        plan = LinkFaultPlan(partition_at=48, partition_ticks=48)
        report = run_cluster("halo", 8, topology="torus", rounds=2, plan=plan)
        assert_clean(report)
        assert report.results["fabric"]["dropped"] > 0
        assert report.results["transport"]["retransmits"] > 0

    def test_flaps_recovered(self):
        plan = LinkFaultPlan(
            seed=3, flap_links=2, flaps_per_link=2, flap_ticks=24, flap_horizon=256
        )
        report = run_cluster("halo", 8, topology="torus", rounds=3, plan=plan)
        assert_clean(report)


class TestReport:
    def test_round_trips_through_dict(self):
        report = run_cluster("halo", 4, topology="ring", rounds=1)
        clone = ClusterReport.from_dict(report.to_dict())
        assert clone.params == report.params
        assert clone.results == report.results

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="expected repro.net.cluster"):
            ClusterReport.from_dict({"schema": "bogus", "params": {}, "results": {}})


class TestSelfcheck:
    def test_all_invariants_pass(self):
        from repro.net.selfcheck import run_selfcheck

        checks = run_selfcheck(ranks=8, rounds=2)
        assert [name for name, ok, _ in checks if not ok] == []

"""The fabric datapath: conservation, FIFO, congestion, faults, obs."""

from repro.net.fabric import Fabric
from repro.net.faults import LinkFaultPlan
from repro.net.metrics import fabric_samples, register_fabric
from repro.net.topology import fat_tree, ring, torus2d
from repro.obs.registry import MetricsRegistry


def drain_port(fabric, port, until=100_000):
    got = []
    while fabric.clock < until:
        if (out := fabric.deliver(port)) is not None:
            got.append(out)
        elif not fabric.pending(port):
            break
        else:
            fabric.tick()
    return got


class TestConservation:
    def test_hops_telescope(self):
        fabric = Fabric(fat_tree(4))
        fabric.attach("p")
        for i in range(16):
            t = fabric.inject("h0", f"h{i % 8 + 8}", "p", i, 512)
            assert t.conserved()
            assert t.hops[0].t_in == t.inject
            assert t.hops[-1].t_out == t.arrival
            assert sum(h.duration for h in t.hops) == t.arrival - t.inject

    def test_uncontended_latency_is_ser_plus_prop(self):
        fabric = Fabric(ring(2, latency=3, bandwidth=64))
        fabric.attach("p")
        t = fabric.inject("h0", "h1", "p", None, 512)
        # One hop: ceil(512/64)=8 serialization + 3 propagation.
        assert t.arrival - t.inject == 11


class TestFifo:
    def test_per_pair_fifo(self):
        fabric = Fabric(torus2d(2, 4))
        fabric.attach("p")
        for i in range(20):
            fabric.inject("h0", "h5", "p", i, 256)
        got = [packet for packet, _ in drain_port(fabric, "p")]
        assert got == list(range(20))

    def test_delivery_waits_for_clock(self):
        fabric = Fabric(ring(2))
        fabric.attach("p")
        t = fabric.inject("h0", "h1", "p", "x", 64)
        assert fabric.deliver("p") is None  # clock 0 < arrival
        while fabric.clock < t.arrival:
            fabric.tick()
        assert fabric.deliver("p") == ("x", t)


class TestCongestion:
    def test_contention_adds_queue_wait(self):
        fabric = Fabric(ring(2))
        fabric.attach("p")
        solo = fabric.inject("h0", "h1", "p", 0, 512)
        burst = [fabric.inject("h0", "h1", "p", i, 512) for i in range(1, 8)]
        base = solo.arrival - solo.inject
        lat = [t.arrival - t.inject for t in burst]
        assert all(l > base for l in lat)
        assert lat == sorted(lat)  # FIFO queuing: monotone delays
        stats = fabric.link_stats()["h0>h1"]
        assert stats.wait_ticks > 0
        assert stats.peak_wait == lat[-1] - base

    def test_disjoint_flows_do_not_contend(self):
        fabric = Fabric(torus2d(2, 2))
        fabric.attach("p")
        fabric.attach("q")
        a = fabric.inject("h0", "h1", "p", None, 512)
        b = fabric.inject("h2", "h3", "q", None, 512)
        assert a.arrival - a.inject == b.arrival - b.inject
        assert all(s.wait_ticks == 0 for s in fabric.link_stats().values())


class TestFaults:
    def test_partition_drops_at_down_link(self):
        plan = LinkFaultPlan(partition_at=0, partition_ticks=50, partition_victim=1)
        fabric = Fabric(ring(4), plan=plan)
        fabric.attach("p")
        t = fabric.inject("h0", "h1", "p", None, 64)
        assert t.dropped
        assert t.drop_link
        assert fabric.dropped == 1
        assert fabric.pending("p") == 0  # dropped packets never arrive

    def test_traffic_after_window_passes(self):
        plan = LinkFaultPlan(partition_at=0, partition_ticks=10, partition_victim=1)
        fabric = Fabric(ring(4), plan=plan)
        fabric.attach("p")
        while fabric.clock < 10:
            fabric.tick()
        t = fabric.inject("h0", "h1", "p", None, 64)
        assert not t.dropped

    def test_clean_plan_never_drops(self):
        fabric = Fabric(ring(4), plan=LinkFaultPlan())
        fabric.attach("p")
        for i in range(10):
            assert not fabric.inject("h0", "h2", "p", i, 128).dropped


class TestMetrics:
    def test_register_fabric_exports_samples(self):
        fabric = Fabric(ring(2))
        fabric.attach("p")
        fabric.inject("h0", "h1", "p", None, 512)
        drain_port(fabric, "p")
        registry = MetricsRegistry()
        register_fabric(registry, fabric)
        snap = registry.snapshot().values
        assert snap["net.fabric.injected"] == 1.0
        assert snap["net.fabric.delivered"] == 1.0
        assert snap["net.link.h0>h1.bytes"] == 512.0
        assert 0.0 < snap["net.link.h0>h1.utilization"] <= 1.0

    def test_quiet_links_omitted(self):
        fabric = Fabric(fat_tree(4))
        fabric.attach("p")
        fabric.inject("h0", "h1", "p", None, 64)
        samples = fabric_samples(fabric)
        used = [k for k in samples if k.startswith("link.")]
        # One edge-local round trip touches 2 links, x7 fields each.
        assert len(used) == 14

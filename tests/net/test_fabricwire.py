"""FabricWire: the Wire contract, ledger coupling, reliability stack."""

from repro.net.fabric import Fabric
from repro.net.fabricwire import FabricWire, fabric_mid_of
from repro.net.topology import ring, torus2d
from repro.obs.ledger import FlightRecorder
from repro.rdma.reliability import ReliabilityConfig, ReliableWire
from repro.rdma.wire import Packet


def pump(wire, name, limit=10_000):
    """Poll ``name`` until the wire goes quiet; returns received packets."""
    got, idle = [], 0
    for _ in range(limit):
        packet = wire.receive(name)
        if packet is None:
            idle += 1
            if idle > 64 and wire.in_flight() == 0:
                break
        else:
            idle = 0
            got.append(packet)
    return got


class TestWireContract:
    def test_names_and_peers(self):
        fabric = Fabric(ring(2))
        wire = FabricWire(fabric, "A", "B", node_a="h0", node_b="h1")
        assert set(wire.names) == {"A", "B"}
        assert wire.peer_of("A").name == "B"
        assert wire.endpoint("A").name == "A"

    def test_fifo_delivery_both_directions(self):
        fabric = Fabric(ring(2))
        wire = FabricWire(fabric, "A", "B", node_a="h0", node_b="h1")
        for i in range(10):
            wire.transmit("A", Packet("send", ("to-b", i), size=64))
            wire.transmit("B", Packet("send", ("to-a", i), size=64))
        at_b = [p.payload[1] for p in pump(wire, "B")]
        at_a = [p.payload[1] for p in pump(wire, "A")]
        assert at_b == list(range(10))
        assert at_a == list(range(10))

    def test_pending_counts_in_flight(self):
        fabric = Fabric(ring(2))
        wire = FabricWire(fabric, "A", "B", node_a="h0", node_b="h1")
        wire.transmit("A", Packet("send", "x", size=64))
        assert wire.endpoint("B").pending() == 1
        assert wire.in_flight() == 1
        pump(wire, "B")
        assert wire.in_flight() == 0

    def test_drain(self):
        fabric = Fabric(ring(2))
        wire = FabricWire(fabric, "A", "B", node_a="h0", node_b="h1")
        for i in range(5):
            wire.transmit("A", Packet("send", i, size=32))
        while wire.in_flight():
            wire.receive("B")  # tick until everything arrives
            for p in wire.drain("B"):
                pass
            if not fabric.pending("B"):
                break


class TestMidExtraction:
    class _Header:
        def __init__(self, mid):
            self.mid = mid

    def test_send_and_rts_carry_mid(self):
        header = self._Header(42)
        assert fabric_mid_of(Packet("send", (header, b"x"))) == 42
        assert fabric_mid_of(Packet("rts", (header,))) == 42

    def test_rc_data_unwraps(self):
        inner = Packet("send", (self._Header(7), b"y"))
        assert fabric_mid_of(Packet("rc_data", (3, inner))) == 7

    def test_control_traffic_has_no_mid(self):
        assert fabric_mid_of(Packet("ack", 5)) == -1
        assert fabric_mid_of(Packet("rc_data", (1, Packet("ack", 2)))) == -1


class TestLedgerCoupling:
    def test_staged_stamped_at_arrival_tick(self):
        recorder = FlightRecorder()
        fabric = Fabric(ring(2))
        recorder.set_clock(lambda: float(fabric.clock))
        wire = FabricWire(
            fabric, "A", "B", node_a="h0", node_b="h1", recorder=recorder
        )
        mid = recorder.open(source=0, tag=0, size=64)
        recorder.stamp(mid, "wire")
        header = type("H", (), {"mid": mid})()
        transfer = fabric.transfers
        wire.transmit("A", Packet("send", (header, b"z"), size=64))
        pump(wire, "B")
        rec = recorder.records[mid]
        staged = [ts for ts, phase, _ in rec.transitions if phase == "staged"]
        assert staged == [float(transfer[0].arrival)]


class TestUnderReliability:
    def test_reliable_delivery_over_shared_fabric(self):
        """Two ReliableWires share a fabric; both deliver in order."""
        fabric = Fabric(torus2d(2, 2))
        cfg = ReliabilityConfig(retry_timeout=16, max_timeout=256, max_retries=64)
        w1 = ReliableWire(
            FabricWire(fabric, "A", "B", node_a="h0", node_b="h3"), config=cfg
        )
        w2 = ReliableWire(
            FabricWire(fabric, "C", "D", node_a="h1", node_b="h2"), config=cfg
        )
        for i in range(8):
            w1.transmit("A", Packet("send", ("w1", i), size=256))
            w2.transmit("C", Packet("send", ("w2", i), size=256))
        got1 = [p.payload[1] for p in pump(w1, "B")]
        got2 = [p.payload[1] for p in pump(w2, "D")]
        assert got1 == list(range(8))
        assert got2 == list(range(8))
        assert w1.stats.retransmits == 0  # clean fabric: no recovery

"""Placement maps: schemes, validation, param round-trips."""

import pytest

from repro.net.placement import Placement, placement_by_name


class TestSchemes:
    def test_block_packs_contiguously(self):
        p = Placement.block(8, ["h0", "h1"])
        assert [p.node_of(r) for r in range(8)] == ["h0"] * 4 + ["h1"] * 4

    def test_round_robin_stripes(self):
        p = Placement.round_robin(6, ["h0", "h1", "h2"])
        assert [p.node_of(r) for r in range(6)] == ["h0", "h1", "h2"] * 2

    def test_ranks_on(self):
        p = Placement.block(4, ["h0", "h1"])
        assert tuple(p.ranks_on("h0")) == (0, 1)
        assert tuple(p.ranks_on("h1")) == (2, 3)

    def test_custom_requires_dense_ranks(self):
        with pytest.raises(ValueError):
            Placement.custom({0: "h0", 2: "h1"})

    def test_by_name(self):
        hosts = ["h0", "h1"]
        assert placement_by_name("block", 4, hosts) == Placement.block(4, hosts)
        with pytest.raises(KeyError):
            placement_by_name("random", 4, hosts)


class TestParams:
    def test_round_trip(self):
        p = Placement.round_robin(5, ["h0", "h1"])
        clone = Placement.from_params(p.to_params())
        assert clone == p
        assert clone.scheme == "round_robin"

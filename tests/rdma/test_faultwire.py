"""FaultyWire: the seeded fault schedule itself."""

import pytest

from repro.rdma.faultwire import FaultPlan, FaultyWire
from repro.rdma.wire import Packet, packet_checksum


def checksummed(tag: bytes) -> Packet:
    return Packet("frame", tag, len(tag), packet_checksum("frame", tag))


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(reorder_window=0)

    def test_composition_helpers(self):
        assert FaultPlan.clean().is_clean
        assert FaultPlan.drops(0.5).drop_rate == 0.5
        assert not FaultPlan.chaos().is_clean
        assert FaultPlan.drops(0.5).with_options(duplicate_rate=0.1).duplicate_rate == 0.1

    def test_wrapping_preserves_endpoint_names(self):
        from repro.rdma.wire import Wire

        wire = FaultyWire.wrapping(Wire("tx", "rx"), FaultPlan.clean())
        assert wire.names == ("tx", "rx")


class TestFaultInjection:
    def test_clean_plan_is_transparent_fifo(self):
        wire = FaultyWire("a", "b", plan=FaultPlan.clean())
        for i in range(10):
            wire.transmit("a", Packet("msg", i))
        got = [p.payload for p in wire.drain("b")]
        assert got == list(range(10))
        assert wire.stats.total_injected() == 0

    def test_same_seed_same_schedule(self):
        def run(seed):
            wire = FaultyWire("a", "b", plan=FaultPlan.chaos(seed))
            for i in range(50):
                wire.transmit("a", checksummed(f"p{i}".encode()))
            delivered = [p.payload for p in wire.drain("b")]
            s = wire.stats
            return delivered, (s.dropped, s.duplicated, s.reordered, s.corrupted)

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_full_drop_loses_everything(self):
        wire = FaultyWire("a", "b", plan=FaultPlan.drops(1.0))
        for i in range(5):
            wire.transmit("a", Packet("msg", i))
        assert wire.drain("b") == []
        assert wire.stats.dropped == 5

    def test_duplicates_deliver_twice(self):
        wire = FaultyWire("a", "b", plan=FaultPlan(duplicate_rate=1.0))
        for i in range(4):
            wire.transmit("a", Packet("msg", i))
        got = [p.payload for p in wire.drain("b")]
        assert sorted(got) == sorted(list(range(4)) * 2)
        assert wire.stats.duplicated == 4

    def test_reordering_is_bounded_never_loss(self):
        """Held-back packets are force-released within the window: with
        enough wire operations, everything arrives exactly once."""
        plan = FaultPlan(seed=3, reorder_rate=1.0, reorder_window=3)
        wire = FaultyWire("a", "b", plan=plan)
        for i in range(20):
            wire.transmit("a", Packet("msg", i))
        assert wire.stats.reordered > 0
        got = []
        for _ in range(200):
            if (p := wire.receive("b")) is not None:
                got.append(p.payload)
        assert wire.held() == 0
        assert sorted(got) == list(range(20))
        assert got != list(range(20))  # something actually moved

    def test_corruption_only_touches_checksummed_packets(self):
        plan = FaultPlan(corrupt_rate=1.0)
        wire = FaultyWire("a", "b", plan=plan)
        wire.transmit("a", checksummed(b"protected"))
        wire.transmit("a", Packet("msg", "bare"))
        protected, bare = wire.drain("b")
        # The protected frame fails verification downstream...
        assert protected.checksum != packet_checksum(protected.opcode, protected.payload)
        # ...while the unprotected packet passes through intact.
        assert bare.payload == "bare"
        assert wire.stats.corrupted == 1
        assert wire.stats.corrupt_skipped == 1

    def test_structured_payload_corruption_damages_checksum(self):
        plan = FaultPlan(corrupt_rate=1.0)
        wire = FaultyWire("a", "b", plan=plan)
        body = (0, Packet("inner", b"x"))
        wire.transmit("a", Packet("rc_data", body, 1, packet_checksum("rc_data", body)))
        (frame,) = wire.drain("b")
        assert frame.checksum != packet_checksum(frame.opcode, frame.payload)

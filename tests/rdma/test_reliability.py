"""ReliableWire: exactly-once FIFO recovery over a lossy link."""

import pytest

from repro.rdma.faultwire import FaultPlan, FaultyWire
from repro.rdma.reliability import (
    ReliabilityConfig,
    ReliableWire,
    TransportError,
)
from repro.rdma.wire import Packet, Wire


def build(plan=None, config=None):
    raw = FaultyWire("a", "b", plan=plan or FaultPlan.clean())
    return ReliableWire(raw, config=config), raw


def pump_until(wire, dst, want, max_ticks=10_000):
    """Poll both endpoints until ``want`` packets arrive at ``dst``."""
    src = next(n for n in wire.names if n != dst)
    got = []
    for _ in range(max_ticks):
        if (p := wire.receive(dst)) is not None:
            got.append(p)
        wire.receive(src)  # sender side processes ACK/NAK/RNR traffic
        if len(got) >= want and wire.in_flight() == 0:
            return got
    raise AssertionError(f"only {len(got)}/{want} delivered in {max_ticks} ticks")


class TestCleanPath:
    def test_transparent_exactly_once_fifo(self):
        wire, raw = build()
        for i in range(20):
            wire.transmit("a", Packet("msg", i))
        got = pump_until(wire, "b", 20)
        assert [p.payload for p in got] == list(range(20))
        assert wire.stats.delivered == 20

    def test_wire_interface_is_complete(self):
        wire, raw = build()
        assert wire.names == ("a", "b")
        assert wire.peer_of("a").name == "b"
        assert wire.endpoint("a").name == "a"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(retry_timeout=0)
        with pytest.raises(ValueError):
            ReliabilityConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=0)


class TestRecovery:
    def test_drop_recovery_preserves_fifo(self):
        wire, raw = build(FaultPlan.drops(0.25, seed=1))
        for i in range(40):
            wire.transmit("a", Packet("msg", i))
        got = pump_until(wire, "b", 40)
        assert [p.payload for p in got] == list(range(40))
        assert raw.stats.dropped > 0
        assert wire.stats.retransmits > 0
        assert wire.stats.timeouts > 0

    def test_duplicates_suppressed(self):
        wire, raw = build(FaultPlan(seed=2, duplicate_rate=1.0))
        for i in range(10):
            wire.transmit("a", Packet("msg", i))
        got = pump_until(wire, "b", 10)
        assert [p.payload for p in got] == list(range(10))
        assert wire.stats.duplicates_dropped > 0

    def test_reordering_straightened_out(self):
        wire, raw = build(FaultPlan(seed=3, reorder_rate=0.5, reorder_window=4))
        for i in range(30):
            wire.transmit("a", Packet("msg", i))
        got = pump_until(wire, "b", 30)
        assert [p.payload for p in got] == list(range(30))
        assert raw.stats.reordered > 0

    def test_corruption_detected_and_retransmitted(self):
        wire, raw = build(FaultPlan(seed=4, corrupt_rate=0.3))
        for i in range(20):
            wire.transmit("a", Packet("msg", i))
        got = pump_until(wire, "b", 20)
        assert [p.payload for p in got] == list(range(20))
        assert raw.stats.corrupted > 0
        assert wire.stats.corrupt_dropped > 0

    def test_everything_at_once(self):
        wire, raw = build(
            FaultPlan.chaos(
                seed=5,
                drop_rate=0.1,
                duplicate_rate=0.1,
                reorder_rate=0.15,
                corrupt_rate=0.1,
            )
        )
        for i in range(60):
            wire.transmit("a", Packet("msg", i))
        got = pump_until(wire, "b", 60)
        assert [p.payload for p in got] == list(range(60))
        assert raw.stats.total_injected() > 0


class TestFailure:
    def test_dead_link_raises_not_hangs(self):
        wire, _ = build(FaultPlan.drops(1.0))
        wire.transmit("a", Packet("msg", 0))
        with pytest.raises(TransportError, match="retry budget exhausted"):
            for _ in range(10_000):
                wire.receive("a")

    def test_failure_is_sticky(self):
        wire, _ = build(FaultPlan.drops(1.0), ReliabilityConfig(max_retries=2))
        wire.transmit("a", Packet("msg", 0))
        with pytest.raises(TransportError):
            for _ in range(1_000):
                wire.receive("a")
        with pytest.raises(TransportError):
            wire.receive("a")
        with pytest.raises(TransportError):
            wire.transmit("a", Packet("msg", 1))

    def test_failure_tick_count_is_deterministic(self):
        def ticks_to_failure():
            wire, _ = build(FaultPlan.drops(1.0), ReliabilityConfig(max_retries=4))
            wire.transmit("a", Packet("msg", 0))
            for tick in range(100_000):
                try:
                    wire.receive("a")
                except TransportError:
                    return tick
            raise AssertionError("never failed")

        assert ticks_to_failure() == ticks_to_failure()


class TestRnrBackpressure:
    def test_not_ready_receiver_is_retried_not_dropped(self):
        wire, _ = build()
        refusals = {"left": 5}

        def probe(packet, backlog):
            if refusals["left"] > 0:
                refusals["left"] -= 1
                return False
            return True

        wire.register_rnr_probe("b", probe)
        for i in range(8):
            wire.transmit("a", Packet("msg", i))
        got = pump_until(wire, "b", 8)
        assert [p.payload for p in got] == list(range(8))
        assert wire.stats.rnr_naks > 0
        assert refusals["left"] == 0

    def test_unknown_endpoint_rejected(self):
        wire, _ = build()
        with pytest.raises(KeyError):
            wire.register_rnr_probe("nope", lambda p, b: True)


class TestGrantsSurviveLoss:
    """The flow-control property the docstring promises: credit grants
    ride the reliable wire, so a lossy link cannot strand the sender."""

    def test_credited_flow_over_lossy_wire(self):
        from repro.core import EngineConfig, OptimisticMatcher, ReceiveRequest
        from repro.rdma import BounceBufferPool, QueuePair, RdmaReceiver, RdmaSender
        from repro.rdma.flow import CreditedReceiver, CreditedSender

        raw = FaultyWire("tx", "rx", plan=FaultPlan.drops(0.15, seed=6))
        wire = ReliableWire(raw)
        tx = QueuePair(wire, "tx")
        rx = QueuePair(wire, "rx", bounce_pool=BounceBufferPool(4, 4096))
        sender = CreditedSender(RdmaSender(tx, rank=0, eager_threshold=1024))
        matcher = OptimisticMatcher(EngineConfig(block_threads=4, max_receives=64))
        receiver = CreditedReceiver(RdmaReceiver(rx, matcher), grant_batch=2)

        for i in range(16):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        receiver.initial_grant()
        for i in range(16):
            sender.send(tag=i, payload=b"payload")
        for _ in range(5_000):
            moved = receiver.progress()
            moved += tx.process_inbound()
            moved += sender.pump_grants()
            receiver.flush_grants()
            if (
                moved == 0
                and len(receiver.receiver.completed) == 16
                and wire.in_flight() == 0
            ):
                break
        assert len(receiver.receiver.completed) == 16
        assert sender.queued == 0
        assert raw.stats.dropped > 0
        assert sender.grants_received >= 16

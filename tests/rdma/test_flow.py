"""Tests for credit-based flow control over the RDMA substrate."""

import pytest

from repro.core import EngineConfig, OptimisticMatcher, ReceiveRequest
from repro.rdma import BounceBufferPool, QueuePair, RdmaReceiver, RdmaSender, Wire
from repro.rdma.faultwire import FaultPlan, FaultyWire
from repro.rdma.flow import CreditedReceiver, CreditedSender, CreditStall


def build(pool_size=8):
    wire = Wire("tx", "rx")
    tx = QueuePair(wire, "tx")
    rx = QueuePair(wire, "rx", bounce_pool=BounceBufferPool(pool_size, 4096))
    sender = CreditedSender(RdmaSender(tx, rank=0, eager_threshold=1024))
    matcher = OptimisticMatcher(EngineConfig(bins=64, block_threads=4, max_receives=512))
    receiver = CreditedReceiver(RdmaReceiver(rx, matcher), grant_batch=4)
    return sender, receiver, tx


def drive(sender, receiver, tx, rounds=32):
    for _ in range(rounds):
        moved = receiver.progress()
        moved += tx.process_inbound()
        moved += sender.pump_grants()
        if moved == 0:
            break
    receiver.flush_grants()
    sender.pump_grants()


class TestCredits:
    def test_no_send_without_credits(self):
        sender, receiver, tx = build()
        assert sender.send(tag=0, payload=b"x") is False
        assert sender.queued == 1
        assert sender.stalls == 1

    def test_initial_grant_releases_queue(self):
        sender, receiver, tx = build(pool_size=8)
        for i in range(5):
            sender.send(tag=i, payload=b"x")
        receiver.initial_grant()
        assert sender.pump_grants() == 5
        assert sender.queued == 0
        assert sender.credits == 3

    def test_sender_never_exceeds_pool(self):
        """With credits enabled, a flood larger than the pool cannot
        exhaust bounce buffers."""
        sender, receiver, tx = build(pool_size=4)
        receiver.initial_grant()
        sender.pump_grants()
        # Post receives so matching drains buffers and credits return.
        for i in range(32):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(32):
            sender.send(tag=i, payload=b"payload")
            drive(sender, receiver, tx, rounds=4)
        drive(sender, receiver, tx)
        assert len(receiver.receiver.completed) == 32
        assert receiver.receiver.qp.bounce_pool.high_water <= 4

    def test_flood_without_receives_stalls_not_crashes(self):
        sender, receiver, tx = build(pool_size=4)
        receiver.initial_grant()
        sender.pump_grants()
        for i in range(12):  # no receives posted: buffers stay full
            sender.send(tag=100 + i, payload=b"z")
        drive(sender, receiver, tx)
        # 4 staged unexpected, 8 held back by flow control.
        assert receiver.receiver.matcher.unexpected_count == 4
        assert sender.queued == 8

    def test_bounded_queue_raises(self):
        sender, receiver, tx = build()
        sender._max_queued = 2
        sender.send(tag=0, payload=b"a")
        sender.send(tag=1, payload=b"b")
        with pytest.raises(CreditStall):
            sender.send(tag=2, payload=b"c")

    def test_negative_grant_rejected(self):
        sender, _, _ = build()
        with pytest.raises(ValueError):
            sender.grant(-1)

    def test_stall_at_exact_max_queued_boundary(self):
        """The bound is inclusive: max_queued sends queue fine, the
        next raises, and the stalled send is not half-enqueued."""
        wire = Wire("tx", "rx")
        tx = QueuePair(wire, "tx")
        sender = CreditedSender(
            RdmaSender(tx, rank=0, eager_threshold=1024), max_queued=3
        )
        assert sender.max_queued == 3
        for i in range(3):
            assert sender.send(tag=i, payload=b"q") is False
        with pytest.raises(CreditStall):
            sender.send(tag=99, payload=b"overflow")
        assert sender.queued == 3  # the failed send left no residue
        assert sender.stalls == 3

    def test_partial_grant_with_nonempty_queue(self):
        """A grant smaller than the backlog releases exactly that many
        queued sends and banks zero credits."""
        sender, receiver, tx = build()
        for i in range(5):
            sender.send(tag=i, payload=b"m")
        assert sender.grant(2) == 2
        assert sender.queued == 3
        assert sender.credits == 0
        assert sender.grants_received == 2
        # A fresh send while a backlog exists must queue, not jump it.
        assert sender.send(tag=100, payload=b"late") is False
        assert sender.queued == 4

    def test_drain_order_after_stall_is_fifo(self):
        """Messages released after a stall arrive in original send
        order — flow control must not reorder (C2 depends on it)."""
        sender, receiver, tx = build(pool_size=8)
        for i in range(6):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        payloads = [f"msg-{i}".encode() for i in range(6)]
        for i, payload in enumerate(payloads):
            sender.send(tag=i, payload=payload)  # all queue: zero credits
        assert sender.queued == 6
        receiver.initial_grant()
        sender.pump_grants()
        drive(sender, receiver, tx)
        delivered = [d.payload for d in receiver.receiver.completed]
        assert delivered == payloads
        assert [d.handle for d in receiver.receiver.completed] == list(range(6))

    def test_grant_batching(self):
        sender, receiver, tx = build(pool_size=16)
        receiver.initial_grant()
        sender.pump_grants()
        for i in range(3):  # below grant_batch=4
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
            sender.send(tag=i, payload=b"m")
        for _ in range(4):
            receiver.progress()
            tx.process_inbound()
        before = receiver.total_granted
        receiver.flush_grants()
        assert receiver.total_granted == before + 3


def build_faulty(pool_size=8, plan=None):
    """The ``build`` stack over a lossy wire (satellite: lost-grant
    hazard regression — grant acks can vanish in flight)."""
    wire = FaultyWire("tx", "rx", plan=plan if plan is not None else FaultPlan.clean())
    tx = QueuePair(wire, "tx")
    rx = QueuePair(wire, "rx", bounce_pool=BounceBufferPool(pool_size, 4096))
    sender = CreditedSender(RdmaSender(tx, rank=0, eager_threshold=1024))
    matcher = OptimisticMatcher(EngineConfig(bins=64, block_threads=4, max_receives=512))
    receiver = CreditedReceiver(RdmaReceiver(rx, matcher), grant_batch=4)
    return sender, receiver, tx, wire


class TestLossyGrants:
    """Cumulative grant totals make lost/duplicated grant acks
    recoverable. Before the cumulative scheme, a dropped grant ack
    stranded the sender forever: the credits it carried were simply
    gone, and no later ack could mint them again."""

    def test_lost_initial_grant_strands_then_readvertise_recovers(self):
        sender, receiver, tx, wire = build_faulty(pool_size=8)
        wire.plan = FaultPlan(seed=7, drop_rate=1.0)  # eat the grant ack
        receiver.initial_grant()
        assert sender.pump_grants() == 0
        assert sender.send(tag=0, payload=b"x") is False  # stranded
        assert sender.queued == 1 and sender.stalls == 1
        wire.plan = FaultPlan.clean()
        # The recovery verb: re-send the cumulative total. No new
        # credits are minted (total is unchanged), but the sender now
        # sees everything it missed.
        receiver.readvertise()
        assert sender.pump_grants() == 1  # queue released
        assert sender.grants_received == receiver.total_granted == 8
        assert sender.queued == 0
        assert sender.credits == 7  # 8 granted, 1 spent on the release

    def test_duplicated_grants_mint_no_credits(self):
        plan = FaultPlan(seed=3, duplicate_rate=1.0)  # every ack arrives twice
        sender, receiver, tx, wire = build_faulty(pool_size=8, plan=plan)
        receiver.initial_grant()
        sender.pump_grants()
        assert sender.grants_received == 8
        assert sender.credits == 8
        # The duplicate carried the same cumulative total: delta 0.
        assert sender.pump_grants() == 0
        assert sender.grants_received == receiver.total_granted == 8

    def test_later_batch_repairs_earlier_lost_grant(self):
        """Cumulative totals mean ANY later ack repairs an earlier
        dropped one — recovery does not depend on readvertise alone."""
        sender, receiver, tx, wire = build_faulty(pool_size=8)
        receiver.initial_grant()
        sender.pump_grants()
        for i in range(4):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
            sender.send(tag=i, payload=b"m")
        # Completions replenish grants; drop the first replenishment.
        wire.plan = FaultPlan(seed=11, drop_rate=1.0)
        for _ in range(4):
            receiver.progress()
            tx.process_inbound()
        receiver.flush_grants()
        lost_total = receiver.total_granted
        assert sender.pump_grants() == 0  # that ack is gone forever
        wire.plan = FaultPlan.clean()
        # More traffic -> another batched grant, carrying the full
        # cumulative total: the sender recovers the lost credits too.
        for i in range(4, 8):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
            sender.send(tag=i, payload=b"m")
        for _ in range(4):
            receiver.progress()
            tx.process_inbound()
        receiver.flush_grants()
        sender.pump_grants()
        assert receiver.total_granted > lost_total
        assert sender.grants_received == receiver.total_granted

    def test_lossy_transfer_completes_with_periodic_readvertise(self):
        """Seeded random grant loss: as long as the receiver
        periodically readvertises, every message eventually lands and
        the audit trail reconciles exactly."""
        plan = FaultPlan(seed=5, drop_rate=0.3)
        sender, receiver, tx, wire = build_faulty(pool_size=4)
        clean = wire.plan
        wire.plan = plan
        receiver.initial_grant()  # may itself be dropped
        wire.plan = clean
        total = 24
        for i in range(total):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(total):
            sender.send(tag=i, payload=b"payload")
        for _ in range(200):
            # Only the grant path is lossy — eager data is
            # fire-and-forget and loss there is the reliability
            # layer's problem, not flow control's.
            wire.plan = plan
            receiver.flush_grants()
            receiver.readvertise()
            wire.plan = clean
            sender.pump_grants()
            receiver.progress()
            tx.process_inbound()
            if len(receiver.receiver.completed) == total and sender.queued == 0:
                break
        assert len(receiver.receiver.completed) == total
        assert sender.queued == 0
        # Grants dropped after the sender's last pump are still owed;
        # one clean readvertise reconciles the audit trail exactly.
        receiver.readvertise()
        sender.pump_grants()
        assert sender.grants_received == receiver.total_granted


class TestPressuredGrants:
    def test_grants_withheld_under_pressure_and_released_after(self):
        """Credit shrink: earned grants are held while the memory
        budget is pressured (counted in ``credit_holds``) and flow
        again once occupancy leaves the band."""
        from repro.pressure.budget import PressureBudget, PressureMeter

        meter = PressureMeter(
            PressureBudget(budget_bytes=1000, high_watermark=0.8, low_watermark=0.5)
        )
        wire = Wire("tx", "rx")
        tx = QueuePair(wire, "tx")
        rx = QueuePair(wire, "rx", bounce_pool=BounceBufferPool(8, 4096))
        sender = CreditedSender(RdmaSender(tx, rank=0, eager_threshold=1024))
        matcher = OptimisticMatcher(
            EngineConfig(bins=64, block_threads=4, max_receives=512)
        )
        receiver = CreditedReceiver(
            RdmaReceiver(rx, matcher), grant_batch=2, pressure=meter
        )
        receiver.initial_grant()
        sender.pump_grants()
        for i in range(4):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
            sender.send(tag=i, payload=b"m")
        meter.charge("bounce", 900)  # force the pressured band
        assert meter.under_pressure
        granted_before = receiver.total_granted
        for _ in range(6):
            receiver.progress()
            tx.process_inbound()
        assert len(receiver.receiver.completed) == 4
        assert receiver.total_granted == granted_before  # withheld
        assert meter.stats.credit_holds > 0
        meter.release("bounce", 900)  # out of the band: grants resume
        assert not meter.under_pressure
        receiver.progress()
        assert receiver.total_granted == granted_before + 4
        sender.pump_grants()
        assert sender.grants_received == receiver.total_granted

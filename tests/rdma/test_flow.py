"""Tests for credit-based flow control over the RDMA substrate."""

import pytest

from repro.core import EngineConfig, OptimisticMatcher, ReceiveRequest
from repro.rdma import BounceBufferPool, QueuePair, RdmaReceiver, RdmaSender, Wire
from repro.rdma.flow import CreditedReceiver, CreditedSender, CreditStall


def build(pool_size=8):
    wire = Wire("tx", "rx")
    tx = QueuePair(wire, "tx")
    rx = QueuePair(wire, "rx", bounce_pool=BounceBufferPool(pool_size, 4096))
    sender = CreditedSender(RdmaSender(tx, rank=0, eager_threshold=1024))
    matcher = OptimisticMatcher(EngineConfig(bins=64, block_threads=4, max_receives=512))
    receiver = CreditedReceiver(RdmaReceiver(rx, matcher), grant_batch=4)
    return sender, receiver, tx


def drive(sender, receiver, tx, rounds=32):
    for _ in range(rounds):
        moved = receiver.progress()
        moved += tx.process_inbound()
        moved += sender.pump_grants()
        if moved == 0:
            break
    receiver.flush_grants()
    sender.pump_grants()


class TestCredits:
    def test_no_send_without_credits(self):
        sender, receiver, tx = build()
        assert sender.send(tag=0, payload=b"x") is False
        assert sender.queued == 1
        assert sender.stalls == 1

    def test_initial_grant_releases_queue(self):
        sender, receiver, tx = build(pool_size=8)
        for i in range(5):
            sender.send(tag=i, payload=b"x")
        receiver.initial_grant()
        assert sender.pump_grants() == 5
        assert sender.queued == 0
        assert sender.credits == 3

    def test_sender_never_exceeds_pool(self):
        """With credits enabled, a flood larger than the pool cannot
        exhaust bounce buffers."""
        sender, receiver, tx = build(pool_size=4)
        receiver.initial_grant()
        sender.pump_grants()
        # Post receives so matching drains buffers and credits return.
        for i in range(32):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(32):
            sender.send(tag=i, payload=b"payload")
            drive(sender, receiver, tx, rounds=4)
        drive(sender, receiver, tx)
        assert len(receiver.receiver.completed) == 32
        assert receiver.receiver.qp.bounce_pool.high_water <= 4

    def test_flood_without_receives_stalls_not_crashes(self):
        sender, receiver, tx = build(pool_size=4)
        receiver.initial_grant()
        sender.pump_grants()
        for i in range(12):  # no receives posted: buffers stay full
            sender.send(tag=100 + i, payload=b"z")
        drive(sender, receiver, tx)
        # 4 staged unexpected, 8 held back by flow control.
        assert receiver.receiver.matcher.unexpected_count == 4
        assert sender.queued == 8

    def test_bounded_queue_raises(self):
        sender, receiver, tx = build()
        sender._max_queued = 2
        sender.send(tag=0, payload=b"a")
        sender.send(tag=1, payload=b"b")
        with pytest.raises(CreditStall):
            sender.send(tag=2, payload=b"c")

    def test_negative_grant_rejected(self):
        sender, _, _ = build()
        with pytest.raises(ValueError):
            sender.grant(-1)

    def test_stall_at_exact_max_queued_boundary(self):
        """The bound is inclusive: max_queued sends queue fine, the
        next raises, and the stalled send is not half-enqueued."""
        wire = Wire("tx", "rx")
        tx = QueuePair(wire, "tx")
        sender = CreditedSender(
            RdmaSender(tx, rank=0, eager_threshold=1024), max_queued=3
        )
        assert sender.max_queued == 3
        for i in range(3):
            assert sender.send(tag=i, payload=b"q") is False
        with pytest.raises(CreditStall):
            sender.send(tag=99, payload=b"overflow")
        assert sender.queued == 3  # the failed send left no residue
        assert sender.stalls == 3

    def test_partial_grant_with_nonempty_queue(self):
        """A grant smaller than the backlog releases exactly that many
        queued sends and banks zero credits."""
        sender, receiver, tx = build()
        for i in range(5):
            sender.send(tag=i, payload=b"m")
        assert sender.grant(2) == 2
        assert sender.queued == 3
        assert sender.credits == 0
        assert sender.grants_received == 2
        # A fresh send while a backlog exists must queue, not jump it.
        assert sender.send(tag=100, payload=b"late") is False
        assert sender.queued == 4

    def test_drain_order_after_stall_is_fifo(self):
        """Messages released after a stall arrive in original send
        order — flow control must not reorder (C2 depends on it)."""
        sender, receiver, tx = build(pool_size=8)
        for i in range(6):
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        payloads = [f"msg-{i}".encode() for i in range(6)]
        for i, payload in enumerate(payloads):
            sender.send(tag=i, payload=payload)  # all queue: zero credits
        assert sender.queued == 6
        receiver.initial_grant()
        sender.pump_grants()
        drive(sender, receiver, tx)
        delivered = [d.payload for d in receiver.receiver.completed]
        assert delivered == payloads
        assert [d.handle for d in receiver.receiver.completed] == list(range(6))

    def test_grant_batching(self):
        sender, receiver, tx = build(pool_size=16)
        receiver.initial_grant()
        sender.pump_grants()
        for i in range(3):  # below grant_batch=4
            receiver.receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
            sender.send(tag=i, payload=b"m")
        for _ in range(4):
            receiver.progress()
            tx.process_inbound()
        before = receiver.total_granted
        receiver.flush_grants()
        assert receiver.total_granted == before + 3

"""End-to-end tests of the eager/rendezvous protocols over the
simulated RDMA link, driven through the optimistic matcher."""

import pytest

from repro.core import ANY_SOURCE, EngineConfig, OptimisticMatcher, ReceiveRequest
from repro.rdma import QueuePair, RdmaReceiver, RdmaSender, Wire, pump


@pytest.fixture
def link():
    wire = Wire("tx", "rx")
    tx = QueuePair(wire, "tx")
    rx = QueuePair(wire, "rx")
    sender = RdmaSender(tx, rank=0, eager_threshold=64)
    matcher = OptimisticMatcher(EngineConfig(bins=8, block_threads=4, max_receives=256))
    receiver = RdmaReceiver(rx, matcher)
    return sender, receiver, tx


class TestEager:
    def test_expected_eager_delivery(self, link):
        sender, receiver, tx = link
        receiver.post_receive(ReceiveRequest(source=0, tag=1, handle=7))
        sender.send(tag=1, payload=b"hello")
        pump(receiver, tx)
        (delivery,) = receiver.completed
        assert delivery.handle == 7
        assert delivery.payload == b"hello"
        assert delivery.protocol == "eager"
        assert not delivery.unexpected

    def test_unexpected_eager_then_drain(self, link):
        sender, receiver, tx = link
        sender.send(tag=3, payload=b"early")
        pump(receiver, tx)
        assert receiver.completed == []
        receiver.post_receive(ReceiveRequest(source=0, tag=3, handle=9))
        (delivery,) = receiver.completed
        assert delivery.unexpected
        assert delivery.payload == b"early"

    def test_bounce_buffers_recycled(self, link):
        sender, receiver, tx = link
        for i in range(50):
            receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
            sender.send(tag=i, payload=b"x" * 32)
            pump(receiver, tx)
        assert receiver.qp.bounce_pool.in_use == 0
        assert len(receiver.completed) == 50

    def test_zero_byte_message(self, link):
        sender, receiver, tx = link
        receiver.post_receive(ReceiveRequest(source=0, tag=0, handle=1))
        sender.send(tag=0, payload=b"")
        pump(receiver, tx)
        (delivery,) = receiver.completed
        assert delivery.payload == b""


class TestRendezvous:
    def test_expected_rendezvous(self, link):
        sender, receiver, tx = link
        receiver.post_receive(ReceiveRequest(source=0, tag=2, handle=11))
        big = bytes(range(256)) * 16  # > 64 B threshold
        sender.send(tag=2, payload=big)
        pump(receiver, tx)
        (delivery,) = receiver.completed
        assert delivery.protocol == "rndv"
        assert delivery.payload == big

    def test_unexpected_rendezvous_drain(self, link):
        sender, receiver, tx = link
        big = b"z" * 1000
        sender.send(tag=5, payload=big)
        pump(receiver, tx)
        receiver.post_receive(ReceiveRequest(source=0, tag=5, handle=12))
        pump(receiver, tx)
        (delivery,) = receiver.completed
        assert delivery.payload == big
        assert delivery.protocol == "rndv"

    def test_threshold_selects_protocol(self, link):
        sender, receiver, tx = link
        receiver.post_receive(ReceiveRequest(source=0, tag=1, handle=1))
        receiver.post_receive(ReceiveRequest(source=0, tag=2, handle=2))
        header_small = sender.send(tag=1, payload=b"x" * 64)
        header_big = sender.send(tag=2, payload=b"x" * 65)
        assert header_small.protocol == "eager"
        assert header_big.protocol == "rndv"
        pump(receiver, tx)
        assert {d.protocol for d in receiver.completed} == {"eager", "rndv"}


class TestOrderingAcrossProtocols:
    def test_wildcard_receive_takes_arrival_order(self, link):
        sender, receiver, tx = link
        sender.send(tag=1, payload=b"first")
        sender.send(tag=2, payload=b"second")
        pump(receiver, tx)
        receiver.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=-1, handle=1))
        (delivery,) = receiver.completed
        assert delivery.payload == b"first"

    def test_burst_matches_in_send_order(self, link):
        sender, receiver, tx = link
        for i in range(12):
            receiver.post_receive(ReceiveRequest(source=0, tag=0, handle=i))
        for i in range(12):
            sender.send(tag=0, payload=bytes([i]))
        pump(receiver, tx)
        handles = [d.handle for d in receiver.completed]
        payloads = [d.payload[0] for d in receiver.completed]
        assert handles == sorted(handles)
        assert payloads == sorted(payloads)

    def test_inline_hashes_travel_in_header(self, link):
        sender, receiver, tx = link
        header = sender.send(tag=4, payload=b"h")
        assert header.inline_hashes is not None

    def test_inline_hashes_can_be_disabled(self):
        wire = Wire("tx", "rx")
        sender = RdmaSender(QueuePair(wire, "tx"), rank=0, inline_hashes=False)
        header = sender.send(tag=0, payload=b"")
        assert header.inline_hashes is None

"""Tests for the GPU-direct delivery path (§I motivation)."""

import pytest

from repro.core import EngineConfig, OptimisticMatcher, ReceiveRequest
from repro.rdma import QueuePair, RdmaReceiver, RdmaSender, Wire
from repro.rdma.gpudirect import CopyAccounting, GpuDirectReceiver, MemorySpace


def build(gpu_direct=True):
    wire = Wire("tx", "rx")
    tx = QueuePair(wire, "tx")
    rx = QueuePair(wire, "rx")
    sender = RdmaSender(tx, rank=0, eager_threshold=4096)
    matcher = OptimisticMatcher(EngineConfig(bins=32, block_threads=4, max_receives=128))
    receiver = GpuDirectReceiver(RdmaReceiver(rx, matcher), gpu_direct=gpu_direct)
    return sender, receiver


class TestGpuDirect:
    def test_gpu_delivery_bypasses_cpu(self):
        sender, receiver = build(gpu_direct=True)
        receiver.post_receive(
            ReceiveRequest(source=0, tag=0, handle=1), space=MemorySpace.GPU
        )
        sender.send(tag=0, payload=b"tensor")
        receiver.progress()
        assert receiver.delivered[1] == b"tensor"
        assert receiver.accounting.cpu_bypassed == 1
        assert receiver.accounting.host_copies == 0
        assert receiver.accounting.pcie_crossings == 1

    def test_legacy_gpu_path_costs_double(self):
        sender, receiver = build(gpu_direct=False)
        receiver.post_receive(
            ReceiveRequest(source=0, tag=0, handle=1), space=MemorySpace.GPU
        )
        sender.send(tag=0, payload=b"tensor")
        receiver.progress()
        assert receiver.accounting.cpu_bypassed == 0
        assert receiver.accounting.host_copies == 1
        assert receiver.accounting.pcie_crossings == 2

    def test_host_buffers_unaffected(self):
        sender, receiver = build()
        receiver.post_receive(
            ReceiveRequest(source=0, tag=0, handle=1), space=MemorySpace.HOST
        )
        sender.send(tag=0, payload=b"host-data")
        receiver.progress()
        assert receiver.delivered[1] == b"host-data"
        assert receiver.accounting.cpu_bypassed == 0
        assert receiver.accounting.pcie_crossings == 1

    def test_mixed_spaces(self):
        sender, receiver = build()
        receiver.post_receive(
            ReceiveRequest(source=0, tag=0, handle=1), space=MemorySpace.GPU
        )
        receiver.post_receive(
            ReceiveRequest(source=0, tag=1, handle=2), space=MemorySpace.HOST
        )
        sender.send(tag=0, payload=b"a")
        sender.send(tag=1, payload=b"b")
        receiver.progress()
        assert receiver.accounting.cpu_bypassed == 1
        assert receiver.accounting.dma_transfers == 2

    def test_accounting_total_hops(self):
        acc = CopyAccounting(host_copies=2, dma_transfers=3)
        assert acc.total_hops() == 5

    def test_unexpected_then_gpu_drain(self):
        """Matching ran on the NIC, so even a late-posted GPU receive
        goes direct once the unexpected message is drained."""
        sender, receiver = build()
        sender.send(tag=5, payload=b"early")
        receiver.progress()
        receiver.post_receive(
            ReceiveRequest(source=0, tag=5, handle=9), space=MemorySpace.GPU
        )
        assert receiver.delivered[9] == b"early"
        assert receiver.accounting.cpu_bypassed == 1

"""Regression: reliability counters mirror *additively* onto engine stats.

The old mirroring assigned ``stats.retransmits = wire.stats.retransmits``
on every progress call. That clobber held only while one engine
generation and one wire existed; a FallbackMatcher spill/recovery (the
stats object survives, the engine is rebuilt) or a wire swap silently
rewound history. The mirror now applies deltas against a last-seen
tracker, so the engine counters stay cumulative in every scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.chaos.soak import PROFILES
from repro.core.envelope import ANY_SOURCE, ANY_TAG, ReceiveRequest
from repro.core.stats import EngineStats
from repro.matching.fallback import FallbackMatcher
from repro.rdma.protocol import RdmaReceiver


@dataclass
class _WireStats:
    retransmits: int = 0
    rnr_naks: int = 0


class _Wire:
    def __init__(self) -> None:
        self.stats = _WireStats()


class _Qp:
    def __init__(self) -> None:
        self.wire = _Wire()


class _Matcher:
    def __init__(self) -> None:
        self.stats = EngineStats()


def _receiver() -> RdmaReceiver:
    return RdmaReceiver(_Qp(), _Matcher())


class TestDeltaMirroring:
    def test_repeated_syncs_do_not_double_count(self) -> None:
        receiver = _receiver()
        receiver.qp.wire.stats.retransmits = 5
        receiver._mirror_transport_stats()
        receiver._mirror_transport_stats()
        receiver._mirror_transport_stats()
        assert receiver.matcher.stats.retransmits == 5

    def test_growth_accumulates(self) -> None:
        receiver = _receiver()
        receiver.qp.wire.stats.retransmits = 2
        receiver._mirror_transport_stats()
        receiver.qp.wire.stats.retransmits = 7
        receiver.qp.wire.stats.rnr_naks = 3
        receiver._mirror_transport_stats()
        assert receiver.matcher.stats.retransmits == 7
        assert receiver.matcher.stats.rnr_naks == 3

    def test_survives_engine_generation_swap(self) -> None:
        """Regression for the clobber bug: history accumulated before a
        spill/recovery (same stats object, fresh engine) must survive
        later syncs."""
        receiver = _receiver()
        receiver.qp.wire.stats.retransmits = 4
        receiver._mirror_transport_stats()
        # Spill/recovery bumps counters on the carried stats object.
        receiver.matcher.stats.fallback_spills += 1
        receiver.matcher.stats.fallback_recoveries += 1
        receiver.qp.wire.stats.retransmits = 6
        receiver._mirror_transport_stats()
        assert receiver.matcher.stats.retransmits == 6
        assert receiver.matcher.stats.fallback_recoveries == 1

    def test_wire_replacement_counts_as_pure_growth(self) -> None:
        """A fresh wire restarts its counters at zero; the mirror must
        treat the rewind as a new generation, not negative growth."""
        receiver = _receiver()
        receiver.qp.wire.stats.retransmits = 9
        receiver._mirror_transport_stats()
        receiver.qp.wire = _Wire()  # counters restart at 0
        receiver.qp.wire.stats.retransmits = 2
        receiver._mirror_transport_stats()
        assert receiver.matcher.stats.retransmits == 11

    def test_statless_participants_are_skipped(self) -> None:
        receiver = _receiver()
        receiver.qp.wire = object()  # no .stats
        receiver._mirror_transport_stats()  # must not raise
        assert receiver.matcher.stats.retransmits == 0


class TestFullStackAcrossGenerations:
    def test_chaos_spill_run_keeps_wire_and_engine_counters_equal(self) -> None:
        """End-to-end regression spanning real FallbackMatcher
        spill/recovery cycles: the mirrored engine counters must equal
        the wire's cumulative counts, generation boundaries included."""
        report = run_chaos(replace(PROFILES["spill"], seed=3))
        assert report.ok
        assert report.fallback_spills >= 1
        assert report.fallback_recoveries >= 1  # >= 2 engine generations
        assert report.retransmits > 0
        assert report.engine_retransmits == report.retransmits
        assert report.engine_rnr_naks == report.rnr_naks

    def test_fallback_matcher_direct_spill_recovery_cycle(self) -> None:
        """The carried stats object narrates the whole life of the
        matcher: spill, software interlude, recovery."""
        from repro.core.config import EngineConfig

        matcher = FallbackMatcher(
            EngineConfig(max_receives=4, block_threads=2), recoverable=True
        )
        stats = matcher.stats
        for i in range(6):  # descriptor table holds 4 -> spill
            matcher.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        assert not matcher.offloaded
        assert stats.fallback_spills == 1
        from repro.core.envelope import MessageEnvelope

        for i in range(6):  # drain the software PRQ below threshold
            matcher.incoming_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        matcher.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG, handle=99))
        assert matcher.offloaded
        assert stats.fallback_recoveries == 1
        assert matcher.stats is stats  # same carrier, second generation

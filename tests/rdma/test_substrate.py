"""Tests for wire, queue pairs, completion queues, bounce buffers."""

import pytest

from repro.rdma import (
    BounceBufferPool,
    BouncePoolExhausted,
    CompletionQueue,
    CompletionQueueOverflow,
    Packet,
    QueuePair,
    Wire,
)


class TestWire:
    def test_fifo_per_direction(self):
        wire = Wire("a", "b")
        wire.transmit("a", Packet("send", 1))
        wire.transmit("a", Packet("send", 2))
        assert wire.receive("b").payload == 1
        assert wire.receive("b").payload == 2
        assert wire.receive("b") is None

    def test_directions_independent(self):
        wire = Wire("a", "b")
        wire.transmit("a", Packet("send", "to-b"))
        wire.transmit("b", Packet("send", "to-a"))
        assert wire.receive("a").payload == "to-a"
        assert wire.receive("b").payload == "to-b"

    def test_drain(self):
        wire = Wire("a", "b")
        for i in range(3):
            wire.transmit("a", Packet("send", i))
        assert [p.payload for p in wire.drain("b")] == [0, 1, 2]
        assert wire.endpoint("b").pending() == 0

    def test_unknown_endpoint(self):
        with pytest.raises(KeyError):
            Wire("a", "b").peer_of("c")

    def test_duplicate_endpoint_names_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Wire("a", "a")

    def test_peer_lookup_is_symmetric(self):
        wire = Wire("left", "right")
        assert wire.peer_of("left").name == "right"
        assert wire.peer_of("right").name == "left"
        assert wire.names == ("left", "right")


class TestCompletionQueue:
    def test_sequence_numbers_are_arrival_order(self):
        cq = CompletionQueue()
        first = cq.push("send", "x")
        second = cq.push("send", "y")
        assert first.index == 0 and second.index == 1
        assert cq.poll() is first

    def test_overflow(self):
        cq = CompletionQueue(depth=1)
        cq.push("send", "x")
        with pytest.raises(CompletionQueueOverflow):
            cq.push("send", "y")

    def test_poll_batch(self):
        cq = CompletionQueue()
        for i in range(5):
            cq.push("send", i)
        assert [c.payload for c in cq.poll_batch(3)] == [0, 1, 2]
        assert len(cq) == 2

    def test_poll_empty(self):
        assert CompletionQueue().poll() is None


class TestBouncePool:
    def test_allocate_release_cycle(self):
        pool = BounceBufferPool(2, buffer_bytes=64)
        a = pool.allocate()
        b = pool.allocate()
        assert pool.in_use == 2
        with pytest.raises(BouncePoolExhausted):
            pool.allocate()
        pool.release(a)
        c = pool.allocate()
        assert c.index == a.index
        assert pool.high_water == 2
        del b

    def test_write_respects_capacity(self):
        pool = BounceBufferPool(1, buffer_bytes=4)
        buf = pool.allocate()
        buf.write(b"abcd")
        with pytest.raises(ValueError):
            buf.write(b"abcde")

    def test_release_clears_data(self):
        pool = BounceBufferPool(1)
        buf = pool.allocate()
        buf.write(b"secret")
        pool.release(buf)
        assert buf.read() == b""

    def test_double_release_rejected(self):
        pool = BounceBufferPool(1)
        buf = pool.allocate()
        pool.release(buf)
        with pytest.raises(ValueError):
            pool.release(buf)


class TestQueuePair:
    def test_send_generates_completion_with_bounce(self):
        wire = Wire("tx", "rx")
        tx = QueuePair(wire, "tx")
        rx = QueuePair(wire, "rx")
        tx.post_send("send", {"tag": 1}, b"payload")
        completions = rx.poll()
        assert len(completions) == 1
        staged = completions[0].payload
        assert staged.header == {"tag": 1}
        assert staged.bounce.read() == b"payload"

    def test_rdma_read_round_trip(self):
        wire = Wire("tx", "rx")
        tx = QueuePair(wire, "tx")
        rx = QueuePair(wire, "rx")
        region = tx.memory.register(b"big-data")
        rx.rdma_read(region.rkey, token=42)
        tx.process_inbound()  # sender NIC serves the read
        completions = rx.poll()
        assert completions[0].opcode == "read_response"
        assert completions[0].payload == (42, b"big-data")

    def test_read_unknown_rkey_fails_at_target(self):
        wire = Wire("tx", "rx")
        tx = QueuePair(wire, "tx")
        rx = QueuePair(wire, "rx")
        rx.rdma_read(999, token=0)
        with pytest.raises(KeyError):
            tx.process_inbound()

    def test_ack(self):
        wire = Wire("tx", "rx")
        tx = QueuePair(wire, "tx")
        rx = QueuePair(wire, "rx")
        rx.post_ack("done")
        completions = tx.poll()
        assert completions[0].opcode == "ack"
        assert completions[0].payload == "done"

    def test_unknown_opcode_rejected(self):
        wire = Wire("tx", "rx")
        rx = QueuePair(wire, "rx")
        wire.transmit("tx", Packet("bogus", None))
        with pytest.raises(ValueError, match="opcode"):
            rx.process_inbound()

"""Shared schedule builders for the recovery tests.

One seeded schedule is rendered two ways at once: as rounds of
``(ReceiveRequest, MessageEnvelope)`` batches for a pipeline-interface
matcher (posts synchronous, messages staged until ``process_all``) and
as the flat :class:`StreamOp` list the serial oracle replays. The
identity scheme matches :func:`repro.matching.oracle.run_stream`:
receive handle = posting index, ``send_seq`` numbered per source — so
``pairings`` on both event streams is directly comparable.
"""

from repro.core.envelope import ANY_SOURCE, ANY_TAG, MessageEnvelope, ReceiveRequest
from repro.matching.oracle import StreamOp
from repro.util.rng import make_rng


def schedule_rounds(
    seed,
    *,
    rounds=8,
    senders=3,
    tags=3,
    max_posts=5,
    max_sends=5,
    wildcard_rate=0.3,
):
    """Returns ``(rounds, ops)``: per-round post/message batches and
    the equivalent flat op stream for the oracle."""
    rng = make_rng(seed)
    out_rounds = []
    ops = []
    handle = 0
    seqs = {}
    for _ in range(rounds):
        posts = []
        for _ in range(int(rng.integers(0, max_posts + 1))):
            source = (
                ANY_SOURCE
                if rng.random() < wildcard_rate
                else int(rng.integers(senders))
            )
            tag = (
                ANY_TAG if rng.random() < wildcard_rate else int(rng.integers(tags))
            )
            posts.append(ReceiveRequest(source=source, tag=tag, handle=handle))
            handle += 1
            ops.append(StreamOp.post(source, tag))
        msgs = []
        for _ in range(int(rng.integers(1, max_sends + 1))):
            source = int(rng.integers(senders))
            tag = int(rng.integers(tags))
            seq = seqs.get(source, 0)
            seqs[source] = seq + 1
            msgs.append(MessageEnvelope(source=source, tag=tag, send_seq=seq))
            ops.append(StreamOp.message(source, tag))
        out_rounds.append((posts, msgs))
    return out_rounds, ops


def drive(matcher, rounds):
    """Run a pipeline-interface matcher through the rounds, collecting
    every event (drains from ``post_receive`` plus block outcomes)."""
    events = []
    for posts, msgs in rounds:
        for request in posts:
            event = matcher.post_receive(request)
            if event is not None:
                events.append(event)
        for msg in msgs:
            matcher.submit_message(msg)
        events.extend(matcher.process_all())
    events.extend(matcher.process_all())
    return events

"""Block-journal checkpoint / restore / host-takeover semantics."""

import pytest

from repro.core import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.matching.oracle import pairings
from repro.recovery import checkpoint_engine, host_takeover, restore_engine

CONFIG = EngineConfig(bins=4, block_threads=4, max_receives=64)


def settled_engine():
    """An engine mid-schedule: some matched, some posted, some parked
    unexpected — and settled (no pending messages)."""
    engine = OptimisticMatcher(CONFIG)
    events = []
    for handle in range(6):
        events.append(engine.post_receive(ReceiveRequest(source=0, tag=handle, handle=handle)))
    for seq, tag in enumerate((0, 1, 9)):  # tag 9 parks unexpected
        engine.submit_message(MessageEnvelope(source=0, tag=tag, send_seq=seq))
    events.extend(engine.process_all())
    return engine, [e for e in events if e is not None]


class TestCheckpoint:
    def test_requires_settled_engine(self):
        engine = OptimisticMatcher(CONFIG)
        engine.submit_message(MessageEnvelope(source=0, tag=0, send_seq=0))
        with pytest.raises(ValueError, match="settled"):
            checkpoint_engine(engine)

    def test_round_trip_restores_exact_state(self):
        engine, _ = settled_engine()
        checkpoint = checkpoint_engine(engine)
        restored = restore_engine(checkpoint, CONFIG)
        # import_state re-labels post labels and arrival stamps;
        # relative order and envelope identity must survive.
        receives, unexpected = engine.export_state()
        restored_receives, restored_unexpected = restored.export_state()
        assert [r for _, r in restored_receives] == [r for _, r in receives]
        assert [(m.source, m.tag, m.send_seq) for m in restored_unexpected] == [
            (m.source, m.tag, m.send_seq) for m in unexpected
        ]
        assert restored.decisions.peek() == engine.decisions.peek()

    def test_restored_engine_matches_like_the_original(self):
        """Feeding the same continuation to original and restored
        engines yields identical pairings — rollback is transparent."""
        engine, _ = settled_engine()
        restored = restore_engine(checkpoint_engine(engine), CONFIG)
        continuation = [
            MessageEnvelope(source=0, tag=tag, send_seq=3 + i)
            for i, tag in enumerate((2, 3, 4))
        ]
        for msg in continuation:
            engine.submit_message(msg)
            restored.submit_message(msg)
        assert pairings(engine.process_all()) == pairings(restored.process_all())

    def test_decisions_stay_monotone_across_restore(self):
        engine, _ = settled_engine()
        stamped_before = engine.decisions.peek()
        restored = restore_engine(checkpoint_engine(engine), CONFIG)
        restored.submit_message(MessageEnvelope(source=0, tag=2, send_seq=3))
        events = restored.process_all()
        stamps = [e.decision_order for e in events if e.decision_order >= 0]
        assert stamps
        assert min(stamps) >= stamped_before

    def test_carried_stats_object_is_installed(self):
        engine, _ = settled_engine()
        restored = restore_engine(
            checkpoint_engine(engine), CONFIG, stats=engine.stats
        )
        assert restored.stats is engine.stats


class TestHostTakeover:
    def test_host_adopts_live_state_and_stamps(self):
        engine, _ = settled_engine()
        receives, unexpected = engine.export_state()
        host = host_takeover(engine)
        host_receives, host_unexpected = host.export_state()
        assert [r for _, r in host_receives] == [r for _, r in receives]
        assert host_unexpected == unexpected
        assert host.decisions.peek() == engine.decisions.peek()

    def test_takeover_then_matching_stays_monotone(self):
        engine, _ = settled_engine()
        before = engine.decisions.peek()
        host = host_takeover(engine)
        event = host.incoming_message(MessageEnvelope(source=0, tag=2, send_seq=3))
        assert event.decision_order >= before

"""RecoveringMatcher: replay/quarantine/takeover vs. the serial oracle.

The acceptance property from the issue: *replay determinism* — the
same schedule produces identical final pairings with and without
mid-block failures, because rollback+replay (and host takeover) are
transparent to matching semantics.
"""

import pytest

from repro.core import EngineConfig
from repro.matching.list_matcher import ListMatcher
from repro.matching.oracle import pairings, run_stream
from repro.obs.registry import MetricsRegistry
from repro.recovery import CoreFaultPlan, RecoveringMatcher, RecoveryPolicy
from tests.recovery.streams import drive, schedule_rounds

SEEDS = range(1, 13)

CONFIG = EngineConfig(bins=4, block_threads=4, max_receives=128)

STORM = dict(fail_stop_rate=0.15, hang_rate=0.1, bit_flip_rate=0.15)


def storm_matcher(seed, **overrides):
    kwargs = dict(
        cores=8,
        core_plan=CoreFaultPlan.storm(seed=seed, **STORM),
        recovery=RecoveryPolicy(quarantine_threshold=2, repair_epochs=6),
    )
    kwargs.update(overrides)
    return RecoveringMatcher(CONFIG, **kwargs)


class TestOracleEquivalence:
    def test_pairings_identical_under_storm(self):
        """Across a seed pool, faulted runs pair exactly like the
        serial oracle — and the pool is non-vacuous (faults actually
        fired, blocks rolled back, takeovers happened somewhere)."""
        injected = rollbacks = takeovers = reoffloads = 0
        for seed in SEEDS:
            matcher = storm_matcher(seed)
            rounds, ops = schedule_rounds(seed=seed, rounds=10)
            events = drive(matcher, rounds)
            expected = pairings(run_stream(ListMatcher(), ops))
            assert pairings(events) == expected, f"seed {seed} diverged"
            rs = matcher.recovery_stats
            injected += matcher.injector.stats.total_injected()
            rollbacks += rs.block_rollbacks
            takeovers += rs.host_takeovers
            reoffloads += rs.reoffloads
        assert injected > 0
        assert rollbacks > 0
        assert takeovers > 0
        assert reoffloads > 0

    def test_faulty_run_equals_clean_run(self):
        """Same schedule, with and without mid-block failures ->
        identical final pairings (the issue's determinism acceptance)."""
        for seed in (3, 5, 8):
            rounds, _ = schedule_rounds(seed=seed, rounds=10)
            clean = drive(RecoveringMatcher(CONFIG, cores=8), rounds)
            rounds, _ = schedule_rounds(seed=seed, rounds=10)
            faulty_matcher = storm_matcher(seed)
            faulty = drive(faulty_matcher, rounds)
            assert pairings(faulty) == pairings(clean)
            assert faulty_matcher.injector.stats.total_injected() > 0


class TestDeterministicFaultPaths:
    def test_certain_fail_stop_escalates_to_takeover(self):
        """fail_stop_rate=1.0 faults every engine block: the first
        batch quarantines a core past threshold 0 and the host adopts
        the working set; pairings still match the oracle."""
        matcher = RecoveringMatcher(
            CONFIG,
            cores=4,
            core_plan=CoreFaultPlan(seed=2, fail_stop_rate=1.0),
            recovery=RecoveryPolicy(quarantine_threshold=0, repair_epochs=100),
        )
        rounds, ops = schedule_rounds(seed=2, rounds=6)
        events = drive(matcher, rounds)
        assert matcher.degraded
        assert matcher.recovery_stats.host_takeovers == 1
        assert matcher.stats.fallback_spills == 1
        assert matcher.stats.degraded_matches > 0
        assert pairings(events) == pairings(run_stream(ListMatcher(), ops))

    def test_certain_hang_is_detected_and_recovered(self):
        """hang_rate=1.0: every attempt deadlocks until replays exhaust
        and the host takes over — the DeadlockError is attributed, not
        raised."""
        matcher = RecoveringMatcher(
            CONFIG,
            cores=8,
            core_plan=CoreFaultPlan(seed=4, hang_rate=1.0),
            recovery=RecoveryPolicy(quarantine_threshold=4, repair_epochs=100),
        )
        rounds, ops = schedule_rounds(seed=4, rounds=4)
        events = drive(matcher, rounds)
        assert matcher.recovery_stats.core_hangs > 0
        assert matcher.recovery_stats.host_takeovers == 1
        assert pairings(events) == pairings(run_stream(ListMatcher(), ops))

    def test_bit_flips_never_quarantine(self):
        """Transient flips roll back and replay but leave every core in
        service (the core itself is healthy)."""
        matcher = RecoveringMatcher(
            CONFIG,
            cores=4,
            core_plan=CoreFaultPlan(seed=6, bit_flip_rate=1.0),
        )
        rounds, ops = schedule_rounds(seed=6, rounds=4)
        events = drive(matcher, rounds)
        rs = matcher.recovery_stats
        assert rs.core_bit_flips > 0
        assert rs.cores_quarantined == 0
        assert matcher.quarantine.count == 0
        assert pairings(events) == pairings(run_stream(ListMatcher(), ops))

    def test_takeover_then_reoffload_cycle(self):
        """Quick repairs plus a hysteresis-sized working set bring
        matching back onto the accelerator after a takeover."""
        found = False
        for seed in SEEDS:
            matcher = storm_matcher(
                seed,
                recovery=RecoveryPolicy(quarantine_threshold=1, repair_epochs=3),
            )
            rounds, ops = schedule_rounds(seed=seed, rounds=12)
            events = drive(matcher, rounds)
            assert pairings(events) == pairings(run_stream(ListMatcher(), ops))
            rs = matcher.recovery_stats
            if rs.host_takeovers and rs.reoffloads:
                assert matcher.stats.fallback_recoveries == rs.reoffloads
                found = True
        assert found, "no seed exercised the full takeover->reoffload cycle"


class TestResourceEscalation:
    def test_descriptor_overflow_takes_over(self):
        """Descriptor-table exhaustion escalates through the same
        takeover path as core loss (the PR 1 spill contract)."""
        matcher = RecoveringMatcher(
            EngineConfig(bins=4, block_threads=4, max_receives=4), cores=4
        )
        from repro.core.envelope import ReceiveRequest

        for handle in range(8):
            matcher.post_receive(ReceiveRequest(source=0, tag=handle, handle=handle))
        assert matcher.degraded
        assert matcher.recovery_stats.host_takeovers == 1
        assert matcher.posted_count == 8


class TestObservability:
    def test_register_metrics_exposes_recovery_series(self):
        registry = MetricsRegistry()
        matcher = storm_matcher(7)
        matcher.register_metrics(registry)
        rounds, _ = schedule_rounds(seed=7, rounds=8)
        drive(matcher, rounds)
        values = registry.snapshot().values
        assert values["recovery.block_rollbacks"] > 0
        assert "recovery.quarantined" in values
        assert "recovery.degraded" in values
        assert any(n.startswith("recovery.replay_attempts") for n in values)

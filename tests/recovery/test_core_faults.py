"""CoreFaultPlan / CoreFaultInjector / CoreQuarantine semantics."""

import pytest

from repro.core import EngineConfig
from repro.core.threadsim import DeadlockError
from repro.recovery import (
    CoreFaultPlan,
    CoreQuarantine,
    RecoveringMatcher,
    RecoveryPolicy,
)
from tests.recovery.streams import drive, schedule_rounds


class TestCoreFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fail_stop_rate": -0.1},
            {"hang_rate": 1.5},
            {"bit_flip_rate": 2.0},
            {"max_steps": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CoreFaultPlan(**kwargs)

    def test_clean_and_storm(self):
        assert CoreFaultPlan.clean().is_clean
        storm = CoreFaultPlan.storm(seed=3)
        assert not storm.is_clean
        assert storm.seed == 3

    def test_with_options_composes(self):
        plan = CoreFaultPlan.clean().with_options(fail_stop_rate=0.2, seed=9)
        assert plan.fail_stop_rate == 0.2
        assert plan.seed == 9
        assert not plan.is_clean


class TestCoreQuarantine:
    def test_quarantine_and_repair_cycle(self):
        q = CoreQuarantine(4, repair_epochs=3)
        assert q.active_cores() == [0, 1, 2, 3]
        q.quarantine(2, epoch=1)
        q.quarantine(0, epoch=2)
        assert q.count == 2
        assert q.peak == 2
        assert q.is_quarantined(2)
        assert q.active_cores() == [1, 3]
        assert q.repair_due(3) == []  # core 2 repairs at epoch 4
        assert q.repair_due(4) == [2]
        assert q.repair_due(5) == [0]
        assert q.count == 0
        assert q.peak == 2  # peak is sticky

    def test_out_of_range_core_rejected(self):
        q = CoreQuarantine(2, repair_epochs=1)
        with pytest.raises(ValueError, match="out of range"):
            q.quarantine(2, epoch=0)

    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError, match="at least one core"):
            CoreQuarantine(0, repair_epochs=1)


class TestInjectorDeterminism:
    def test_same_seed_same_fault_schedule(self):
        """Two identical runs inject the identical fault sequence and
        land on identical pairings — the FaultPlan reproducibility
        contract, extended to core faults."""

        def one_run():
            matcher = RecoveringMatcher(
                EngineConfig(bins=4, block_threads=4, max_receives=128),
                cores=8,
                core_plan=CoreFaultPlan.storm(
                    seed=11, fail_stop_rate=0.2, hang_rate=0.1, bit_flip_rate=0.2
                ),
                recovery=RecoveryPolicy(quarantine_threshold=2, repair_epochs=6),
            )
            rounds, ops = schedule_rounds(seed=5, rounds=10)
            events = drive(matcher, rounds)
            return matcher, events

        a, events_a = one_run()
        b, events_b = one_run()
        assert a.recovery_stats == b.recovery_stats
        assert a.injector.stats.total_injected() > 0  # non-vacuous
        assert a.injector.stats == b.injector.stats
        assert [str(e) for e in events_a] == [str(e) for e in events_b]


class TestUnattributedFaults:
    def test_engine_bug_is_never_masked(self):
        """A DeadlockError with no armed fault is a genuine engine bug
        and must propagate — replaying it would hide the bug."""
        matcher = RecoveringMatcher(
            EngineConfig(bins=4, block_threads=4, max_receives=64),
            cores=4,
            core_plan=CoreFaultPlan.clean(),
        )
        rounds, _ = schedule_rounds(seed=1, rounds=1)

        def broken_block():
            raise DeadlockError("planted liveness bug")

        matcher.engine.process_block = broken_block
        with pytest.raises(DeadlockError, match="planted"):
            drive(matcher, rounds)
        assert matcher.recovery_stats.block_rollbacks == 0

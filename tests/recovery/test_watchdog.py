"""Online watchdog mutation tests: every planted engine bug must be
caught *while the stream runs*, within bounded ops/blocks — and the
real engine must never be flagged.

The post-hoc counterpart lives in ``tests/core/test_fault_injection``;
this file asserts the same adversarial schedules trip the *online*
:class:`MatchingWatchdog` (satellite (c) of the recovery issue).
"""

import pytest

from repro.core import EngineConfig
from repro.core.faults import MUTANT_ENGINES, engine_by_name
from repro.core.threadsim import RandomPolicy
from repro.matching import OptimisticAdapter
from repro.matching.list_matcher import ListMatcher
from repro.matching.oracle import StreamOp
from repro.recovery import MatchingWatchdog, PairingOracle, WatchdogAlert
from repro.core.envelope import MessageEnvelope, ReceiveRequest

SEEDS = range(24)

#: Block width of the adversarial schedules; checks run at block
#: granularity so full blocks still form between checks.
WIDTH = 4


def wc_burst(n=8):
    """Same-key window drained by a same-key burst: the conflict case."""
    ops = [StreamOp.post(0, 7) for _ in range(n)]
    ops += [StreamOp.message(0, 7) for _ in range(n)]
    return ops


def aba_stream():
    """The interleaved-sequence hazard (incompatible receive chained
    inside a same-key run) that trips an unguarded fast path."""
    ops = [
        StreamOp.post(0, 0),
        StreamOp.post(0, 1),
        StreamOp.post(0, 0),
        StreamOp.post(0, 0),
        StreamOp.post(0, 0),
    ]
    ops += [StreamOp.message(0, 0) for _ in range(4)]
    return ops


def adapter_with(engine_name, seed, **config):
    params = dict(
        bins=1, block_threads=WIDTH, max_receives=256, early_booking_check=False
    )
    params.update(config)
    return OptimisticAdapter(
        EngineConfig(**params),
        policy=RandomPolicy(seed),
        engine_cls=engine_by_name(engine_name),
    )


def hunt(engine_name, ops_factory, **config):
    """First (seed, alert) at which the watchdog catches the mutant."""
    for seed in SEEDS:
        watchdog = MatchingWatchdog(
            adapter_with(engine_name, seed, **config), check_every=WIDTH
        )
        alert = watchdog.run(ops_factory())
        if alert is not None:
            return seed, alert, watchdog
    return None, None, None


class TestMutantsCaughtOnline:
    @pytest.mark.parametrize(
        "engine_name, ops_factory, config",
        [
            ("no_booking", wc_burst, {}),
            ("no_barrier", wc_burst, {}),
            ("no_conflict_detection", wc_burst, {}),
            ("no_sequence_guard", aba_stream, {"enable_fast_path": True}),
        ],
    )
    def test_caught_within_bounded_ops(self, engine_name, ops_factory, config):
        seed, alert, watchdog = hunt(engine_name, ops_factory, **config)
        assert alert is not None, f"{engine_name} never caught on {len(SEEDS)} seeds"
        # Online: flagged at or before the stream's last op, not via a
        # post-run sweep, and within one check window of the stream end.
        ops = ops_factory()
        assert alert.op_index <= len(ops)
        assert alert.kind in ("pairing", "c2", "engine-error")
        # Sticky: subsequent feeds return the same first alert.
        assert watchdog.feed(StreamOp.post(0, 0)) is alert
        assert watchdog.alert is alert

    def test_every_registered_mutant_is_covered(self):
        """The parametrization above must cover the whole registry, so
        a new mutant cannot be added without an online-detection lane."""
        covered = {
            "no_booking",
            "no_barrier",
            "no_conflict_detection",
            "no_sequence_guard",
        }
        assert covered == set(MUTANT_ENGINES)


class TestRealEngineNeverFlagged:
    @pytest.mark.parametrize("ops_factory", [wc_burst, aba_stream])
    def test_clean_on_all_seeds(self, ops_factory):
        for seed in SEEDS:
            watchdog = MatchingWatchdog(
                adapter_with("optimistic", seed, enable_fast_path=True),
                check_every=WIDTH,
            )
            alert = watchdog.run(ops_factory())
            assert alert is None, f"false positive at seed {seed}: {alert}"
            assert watchdog.checks > 0


class TestWatchdogMechanics:
    def test_check_every_validated(self):
        with pytest.raises(ValueError, match="check_every"):
            MatchingWatchdog(ListMatcher(), check_every=0)

    def test_alert_carries_block_counter(self):
        seed, alert, _ = hunt("no_conflict_detection", wc_burst)
        assert alert.block >= 0  # engine block counter was readable

    def test_oracle_vs_itself_is_silent(self):
        watchdog = MatchingWatchdog(ListMatcher(), check_every=1)
        assert watchdog.run(wc_burst()) is None


class TestPairingOracle:
    def test_post_then_message_pairs(self):
        oracle = PairingOracle()
        oracle.post(ReceiveRequest(source=0, tag=5, handle=3))
        oracle.message("0:0", 0, 5)
        assert oracle.want["0:0"] == 3
        assert oracle.divergence("0:0", 3) is None
        assert "oracle says 3" in oracle.divergence("0:0", 9)

    def test_unexpected_then_drain(self):
        oracle = PairingOracle()
        oracle.message("1:0", 1, 2)  # parks unexpected
        assert "1:0" not in oracle.want
        oracle.post(ReceiveRequest(source=1, tag=2, handle=0))
        assert oracle.want["1:0"] == 0

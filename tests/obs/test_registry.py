"""Metrics registry: families, labels, pull collectors, snapshots.

The load-bearing property is that :class:`MetricsSnapshot` values form
a commutative monoid under :meth:`merge` — shard-and-combine
aggregation must not depend on combination order — and that pull-style
collectors read *live* objects, so stats carriers that survive engine
generations report cumulative values with no mirroring step.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stats import EngineStats
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestFamilies:
    def test_counter_accumulates(self) -> None:
        registry = MetricsRegistry()
        counter = registry.counter("runs", "runs executed")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot().values["runs"] == 5.0

    def test_counter_rejects_negative(self) -> None:
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_set_and_function(self) -> None:
        registry = MetricsRegistry()
        registry.gauge("depth").set(7)
        level = {"value": 3.0}
        registry.gauge("live").set_function(lambda: level["value"])
        assert registry.snapshot().values == {"depth": 7.0, "live": 3.0}
        level["value"] = 9.0
        assert registry.snapshot().values["live"] == 9.0

    def test_histogram_buckets_cumulative_names(self) -> None:
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        samples = dict(h.samples())
        assert samples["lat_bucket{le=1}"] == 1.0
        assert samples["lat_bucket{le=10}"] == 1.0
        assert samples["lat_bucket{le=+inf}"] == 1.0
        assert samples["lat_count"] == 3.0
        assert samples["lat_sum"] == 55.5

    def test_labels_fan_out_and_fold_into_names(self) -> None:
        registry = MetricsRegistry()
        runs = registry.counter("chaos.runs")
        runs.labels(profile="clean").inc(2)
        runs.labels(profile="drops").inc(3)
        values = registry.snapshot().values
        assert values["chaos.runs{profile=clean}"] == 2.0
        assert values["chaos.runs{profile=drops}"] == 3.0

    def test_labels_key_is_order_independent(self) -> None:
        c = Counter("x")
        assert c.labels(a=1, b=2) is c.labels(b=2, a=1)

    def test_same_name_same_object(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")

    def test_type_conflict_rejected(self) -> None:
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.gauge("n")

    def test_structural_characters_rejected(self) -> None:
        with pytest.raises(ValueError):
            Counter("bad,name")


class TestCollectors:
    def test_register_stats_pulls_live_values(self) -> None:
        registry = MetricsRegistry()
        stats = EngineStats()
        registry.register_stats("engine", stats)
        stats.retransmits = 4
        assert registry.snapshot().values["engine.retransmits"] == 4.0
        stats.retransmits = 9
        assert registry.snapshot().values["engine.retransmits"] == 9.0

    def test_register_stats_skips_private_bool_and_lists(self) -> None:
        registry = MetricsRegistry()
        registry.register_stats("engine", EngineStats())
        values = registry.snapshot().values
        assert "engine.keep_history" not in values  # bool
        assert "engine.block_history" not in values  # list

    def test_cumulative_across_engine_generations(self) -> None:
        """The carried stats object is the registry's source of truth:
        swapping engines (spill/recovery) does not reset the series."""
        registry = MetricsRegistry()
        stats = EngineStats()
        registry.register_stats("engine", stats)
        stats.fallback_spills += 1
        stats.retransmits += 5
        first = registry.snapshot().values["engine.retransmits"]
        # "New generation": a fresh engine adopts the same stats object.
        stats.fallback_recoveries += 1
        stats.retransmits += 2
        second = registry.snapshot().values["engine.retransmits"]
        assert (first, second) == (5.0, 7.0)
        assert registry.snapshot().values["engine.fallback_recoveries"] == 1.0


snapshots = st.dictionaries(
    st.sampled_from(["a", "b", "c{l=1}", "d.e"]),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    max_size=4,
).map(lambda d: MetricsSnapshot(dict(d)))


class TestSnapshots:
    @given(snapshots, snapshots, snapshots)
    def test_merge_is_associative(
        self, a: MetricsSnapshot, b: MetricsSnapshot, c: MetricsSnapshot
    ) -> None:
        left = a.merge(b).merge(c).values
        right = a.merge(b.merge(c)).values
        assert left.keys() == right.keys()
        for key in left:
            assert left[key] == pytest.approx(right[key])

    @given(snapshots, snapshots)
    def test_merge_is_commutative(self, a: MetricsSnapshot, b: MetricsSnapshot) -> None:
        ab, ba = a.merge(b).values, b.merge(a).values
        assert ab.keys() == ba.keys()
        for key in ab:
            assert ab[key] == pytest.approx(ba[key])

    @given(snapshots)
    def test_empty_is_identity(self, a: MetricsSnapshot) -> None:
        assert a.merge(MetricsSnapshot()).values == a.values

    def test_delta(self) -> None:
        before = MetricsSnapshot({"x": 2.0, "y": 1.0})
        after = MetricsSnapshot({"x": 5.0, "z": 4.0})
        assert after.delta(before).values == {"x": 3.0, "y": -1.0, "z": 4.0}

    def test_json_roundtrip(self) -> None:
        snap = MetricsSnapshot({"a": 1.5, "b{l=x}": 2.0})
        assert MetricsSnapshot.from_json(snap.to_json()).values == snap.values

    def test_from_json_rejects_garbage(self) -> None:
        with pytest.raises(ValueError):
            MetricsSnapshot.from_json('{"not": "a snapshot"}')


class TestHistogramQuantiles:
    def test_interpolates_inside_containing_bucket(self) -> None:
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(5.0)
        # rank 0.5 of 1 sample, uniform inside [0, 10) -> 5.0
        assert h.quantile(0.5) == 5.0
        for v in range(10):
            h.observe(50.0)
        # 10 of 11 samples in (10, 100]: p95 interpolates there.
        assert 10.0 < h.quantile(0.95) <= 100.0

    def test_empty_histogram_reports_zero(self) -> None:
        assert Histogram("lat", buckets=(1.0,)).quantile(0.5) == 0.0

    def test_overflow_clamps_to_last_finite_bound(self) -> None:
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(5000.0)
        assert h.quantile(0.99) == 100.0

    def test_out_of_range_q_rejected(self) -> None:
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0,)).quantile(1.5)

    def test_snapshot_carries_quantile_samples(self) -> None:
        h = Histogram("lat", buckets=(10.0, 100.0))
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        samples = dict(h.samples())
        assert samples["lat_p50"] == h.quantile(0.50)
        assert samples["lat_p95"] == h.quantile(0.95)
        assert samples["lat_p99"] == h.quantile(0.99)


class TestReportQuantiles:
    def test_render_recomputes_quantiles_from_buckets(self) -> None:
        from repro.obs.report import render_metrics

        registry = MetricsRegistry()
        h = registry.histogram("rt.lat", buckets=(10.0, 100.0))
        h.observe(5.0)
        text = render_metrics(registry.snapshot())
        assert "p50=5" in text and "p95=" in text and "p99=" in text
        # The convenience samples must not leak into the bucket bars
        # or the scalar sections.
        assert "rt.lat_p50" not in text

    def test_merged_snapshots_quantile_from_additive_buckets(self) -> None:
        from repro.obs.report import render_metrics

        def snap(value: float) -> MetricsSnapshot:
            registry = MetricsRegistry()
            registry.histogram("m.lat", buckets=(10.0, 100.0)).observe(value)
            return registry.snapshot()

        merged = snap(5.0).merge(snap(5.0))
        # Additive buckets: two samples in [0, 10) -> p50 is still 5.0
        # even though the summed _p50 samples would read 10.0.
        text = render_metrics(merged)
        assert "n=2" in text
        assert "p50=5" in text

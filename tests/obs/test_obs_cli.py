"""``repro-obs`` CLI: attribution / critical-path / flows plumbing."""

from __future__ import annotations

import json

import pytest

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.obs.cli import main
from repro.obs.ledger import FlightRecorder, LedgerDump
from repro.obs.validate import validate_chrome_trace


@pytest.fixture(scope="module")
def ledger_path(tmp_path_factory):
    recorder = FlightRecorder()
    run_chaos(ChaosConfig(seed=2, rounds=3), recorder=recorder)
    path = tmp_path_factory.mktemp("ledger") / "run.ledger.json"
    path.write_text(recorder.export(scenario="cli").to_json())
    return path


class TestSubcommands:
    def test_attribution_ok(self, ledger_path, capsys):
        assert main(["attribution", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario cli:" in out and "p99" in out

    def test_attribution_scenario_miss_is_usage_error(self, ledger_path, capsys):
        # Nothing to analyze is an input problem (2), not a violation (1).
        assert main(["attribution", str(ledger_path), "--scenario", "nope"]) == 2
        assert "no matching scenarios" in capsys.readouterr().err

    def test_critical_path_ok(self, ledger_path, capsys):
        assert main(["critical-path", str(ledger_path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "conserved" in out and "NOT CONSERVED" not in out

    def test_critical_path_empty_ledger_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(LedgerDump().to_json())
        assert main(["critical-path", str(empty)]) == 2
        assert "no chains" in capsys.readouterr().err

    def test_flows_writes_valid_trace(self, ledger_path, tmp_path):
        out = tmp_path / "flows.json"
        assert main(["flows", str(ledger_path), "--out", str(out)]) == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_unreadable_ledger_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["attribution", str(bad)]) == 2
        assert "unreadable ledger" in capsys.readouterr().err
        assert main(["attribution", str(tmp_path / "missing.json")]) == 2

"""Span tracer: Chrome trace_event structure and simulated clocks."""

from __future__ import annotations

import io
import json

from repro.obs.trace import NULL_TRACER, NullTracer, ScopedTracer, SpanTracer
from repro.obs.validate import validate_chrome_trace
from repro.traces.synthetic import generate


class TestSpanTracer:
    def test_tracks_get_metadata_events(self) -> None:
        tracer = SpanTracer()
        track = tracer.track("dpa", "blocks")
        assert track is tracer.track("dpa", "blocks")  # cached
        metas = [e for e in tracer.events if e["ph"] == "M"]
        assert {e["name"] for e in metas} == {"process_name", "thread_name"}
        assert metas[0]["args"]["name"] == "dpa"

    def test_distinct_processes_get_distinct_pids(self) -> None:
        tracer = SpanTracer()
        assert tracer.track("dpa").pid != tracer.track("rc").pid
        assert tracer.track("dpa", "a").tid != tracer.track("dpa", "b").tid

    def test_timestamps_clamped_monotonic_per_track(self) -> None:
        tracer = SpanTracer()
        track = tracer.track("sim")
        tracer.instant(track, "first", 10.0)
        tracer.instant(track, "earlier", 4.0)  # simulated clock reused
        ts = [e["ts"] for e in tracer.events if e["ph"] == "i"]
        assert ts == [10.0, 10.0]

    def test_complete_span_advances_clock_past_duration(self) -> None:
        tracer = SpanTracer()
        track = tracer.track("sim")
        tracer.complete(track, "block", 5.0, 20.0)
        tracer.instant(track, "after", 0.0)
        assert tracer.events[-1]["ts"] == 25.0

    def test_begin_end_balance_and_close(self) -> None:
        tracer = SpanTracer()
        track = tracer.track("rc")
        tracer.begin(track, "retransmit", 1.0)
        tracer.begin(track, "rnr", 2.0)
        tracer.end(track, 3.0)
        tracer.close_open_spans()
        phases = [e["ph"] for e in tracer.events if e["ph"] in "BE"]
        assert phases == ["B", "B", "E", "E"]
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_end_without_open_span_is_noop(self) -> None:
        tracer = SpanTracer()
        track = tracer.track("rc")
        tracer.end(track, 1.0)
        assert [e for e in tracer.events if e["ph"] == "E"] == []

    def test_write_emits_loadable_json(self) -> None:
        tracer = SpanTracer()
        track = tracer.track("dpa")
        tracer.complete(track, "block", 0.0, 2.0, args={"messages": 8})
        buffer = io.StringIO()
        tracer.write(buffer)
        payload = json.loads(buffer.getvalue())
        assert payload["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(payload) == []


class TestNullTracer:
    def test_disabled_and_eventless(self) -> None:
        assert NULL_TRACER.enabled is False
        track = NULL_TRACER.track("anything")
        NULL_TRACER.complete(track, "x", 0, 1)
        NULL_TRACER.begin(track, "y", 0)
        NULL_TRACER.end(track, 1)
        NULL_TRACER.instant(track, "z", 2)
        NULL_TRACER.counter(track, "c", 3, {"v": 1})
        assert NULL_TRACER.events == []

    def test_singleton_class_attribute_fast_path(self) -> None:
        # Hot paths read `.enabled` before building args; it must be a
        # plain attribute on both tracer classes.
        assert SpanTracer.enabled is True
        assert NullTracer.enabled is False


class TestScopedTracer:
    def test_prefixes_process_names_into_shared_storage(self) -> None:
        inner = SpanTracer()
        scoped = ScopedTracer(inner, "spill/")
        track = scoped.track("engine")
        scoped.instant(track, "match", 1.0)
        names = [
            e["args"]["name"]
            for e in inner.events
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert names == ["spill/engine"]
        assert any(e["name"] == "match" for e in inner.events)

    def test_two_scopes_do_not_collide(self) -> None:
        inner = SpanTracer()
        a = ScopedTracer(inner, "a/").track("engine")
        b = ScopedTracer(inner, "b/").track("engine")
        assert a.pid != b.pid

    def test_scoping_null_tracer_stays_disabled(self) -> None:
        scoped = ScopedTracer(NULL_TRACER, "x/")
        assert scoped.enabled is False
        scoped.instant(scoped.track("p"), "e", 1.0)
        assert NULL_TRACER.events == []


class TestMpiTraceExport:
    def test_ranks_become_thread_tracks(self) -> None:
        from repro.obs.trace import mpi_trace_to_chrome

        trace = generate("BoxLib CNS", processes=4, rounds=1)
        tracer = mpi_trace_to_chrome(trace)
        payload = tracer.to_chrome()
        assert validate_chrome_trace(payload) == []
        thread_names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"rank 0", "rank 1", "rank 2", "rank 3"} <= thread_names
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

"""Histogram quantile edge cases and snapshot-merge algebra.

The timeline/health layer leans on two registry contracts: quantiles
stay well-defined at the edges (empty, one bucket, mass in the +inf
overflow), and :meth:`MetricsSnapshot.merge` is a commutative monoid
so shard-and-combine aggregation is order-independent — including for
labelled families, whose labels fold into the flat sample names.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.obs.registry import Histogram, MetricsRegistry, MetricsSnapshot


class TestQuantileEdges:
    def test_empty_histogram_reports_zero(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == 0.0

    def test_out_of_range_q_rejected(self):
        hist = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_single_bucket_interpolates_from_zero(self):
        hist = Histogram("h", buckets=(10.0,))
        for _ in range(4):
            hist.observe(5.0)
        # All mass in [0, 10]: median interpolates to the midpoint.
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_overflow_mass_clamps_to_highest_finite_bound(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for _ in range(10):
            hist.observe(100.0)  # all samples beyond every finite bound
        # Rank lands in the +inf bucket; the estimate clamps rather
        # than reporting infinity.
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(0.99) == 2.0

    def test_mixed_mass_with_overflow_tail(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(0.5)
        hist.observe(100.0)
        assert hist.quantile(0.5) <= 1.0  # median inside the first bucket
        assert hist.quantile(1.0) == 2.0  # tail clamps

    def test_quantile_monotone_in_q(self):
        rng = random.Random(7)
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0, 16.0))
        for _ in range(200):
            hist.observe(rng.uniform(0, 20))
        qs = [i / 20 for i in range(21)]
        estimates = [hist.quantile(q) for q in qs]
        assert estimates == sorted(estimates)


def _snapshot(seed: int, names: tuple[str, ...]) -> MetricsSnapshot:
    rng = random.Random(seed)
    registry = MetricsRegistry()
    counter = registry.counter("events", "e")
    hist = registry.histogram("lat", "l", buckets=(1.0, 4.0, 16.0))
    for _ in range(rng.randrange(1, 30)):
        counter.labels(kind=rng.choice(names)).inc(rng.randrange(1, 5))
        hist.labels(kind=rng.choice(names)).observe(rng.uniform(0, 32))
    return registry.snapshot()


class TestMergeAlgebra:
    NAMES = ("umq", "prq", "spill")

    def test_associative(self):
        a, b, c = (_snapshot(s, self.NAMES) for s in (1, 2, 3))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        # The convenience percentile samples are per-snapshot estimates
        # and explicitly non-additive; the algebra holds for the
        # additive samples (buckets, counts, sums), which is every key.
        assert left.values.keys() == right.values.keys()
        for key in left.values:
            assert left.values[key] == pytest.approx(right.values[key]), key

    def test_commutative_all_orders(self):
        parts = [_snapshot(s, self.NAMES) for s in (4, 5, 6)]
        reference = None
        for perm in itertools.permutations(parts):
            merged = MetricsSnapshot()
            for part in perm:
                merged = merged.merge(part)
            if reference is None:
                reference = merged
                continue
            assert merged.values.keys() == reference.values.keys()
            for key in reference.values:
                assert merged.values[key] == pytest.approx(
                    reference.values[key]
                ), key

    def test_empty_snapshot_is_identity(self):
        a = _snapshot(9, self.NAMES)
        empty = MetricsSnapshot()
        assert empty.merge(a).values == a.values
        assert a.merge(empty).values == a.values

    def test_delta_inverts_merge(self):
        a, b = _snapshot(10, self.NAMES), _snapshot(11, self.NAMES)
        recovered = a.merge(b).delta(a)
        for key, value in b.values.items():
            assert recovered.values[key] == pytest.approx(value), key

"""Observability glue: engine observer spans, degraded-window
reconstruction, and whole-stack metric registration."""

from __future__ import annotations

from repro.core import EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest
from repro.core.stats import EngineStats
from repro.obs.hooks import (
    DegradedWindowWatcher,
    attach_engine_observer,
    register_stack_metrics,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.obs.validate import validate_chrome_trace


def drive_engine(engine: OptimisticMatcher, n: int = 8) -> None:
    for i in range(n):
        engine.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
    for i in range(n):
        engine.submit_message(MessageEnvelope(source=0, tag=i, send_seq=i))
    engine.process_all()


class TestEngineObserver:
    def test_blocks_become_complete_spans(self) -> None:
        tracer = SpanTracer()
        clock = {"now": 0.0}
        engine = OptimisticMatcher(EngineConfig(block_threads=4))
        attach_engine_observer(engine, tracer, lambda: clock["now"])
        drive_engine(engine)
        spans = [e for e in tracer.events if e["ph"] == "X" and e["name"] == "block"]
        assert len(spans) == engine.stats.blocks > 0
        assert all(e["args"]["messages"] >= 1 for e in spans)
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_match_instants_carry_path(self) -> None:
        tracer = SpanTracer()
        engine = OptimisticMatcher(EngineConfig(block_threads=4))
        attach_engine_observer(engine, tracer, lambda: 0.0)
        drive_engine(engine)
        names = {e["name"] for e in tracer.events if e["ph"] == "i"}
        assert any(name.startswith("match:") for name in names)

    def test_disabled_tracer_installs_nothing(self) -> None:
        engine = OptimisticMatcher(EngineConfig())
        assert attach_engine_observer(engine, NULL_TRACER, lambda: 0.0) is None
        assert engine._observer is None


class TestDegradedWindowWatcher:
    def test_reconstructs_windows_from_counters(self) -> None:
        tracer = SpanTracer()
        stats = EngineStats()
        clock = {"now": 0.0}
        watcher = DegradedWindowWatcher(tracer, stats, lambda: clock["now"])

        clock["now"] = 10.0
        stats.fallback_spills += 1
        watcher.poll()
        clock["now"] = 30.0
        stats.fallback_recoveries += 1
        watcher.poll()
        watcher.close()

        spans = [(e["ph"], e["ts"]) for e in tracer.events if e["name"] == "degraded"]
        assert spans == [("B", 10.0), ("E", 30.0)]
        instants = [e["name"] for e in tracer.events if e["ph"] == "i"]
        assert instants == ["spill", "recovery"]
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_multiple_windows_in_one_poll_degenerate_but_balance(self) -> None:
        tracer = SpanTracer()
        stats = EngineStats()
        watcher = DegradedWindowWatcher(tracer, stats, lambda: 5.0)
        stats.fallback_spills = 3
        stats.fallback_recoveries = 3
        watcher.poll()
        watcher.close()
        begins = sum(1 for e in tracer.events if e["ph"] == "B")
        ends = sum(1 for e in tracer.events if e["ph"] == "E")
        assert begins == ends == 3
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_close_balances_unrecovered_window(self) -> None:
        tracer = SpanTracer()
        stats = EngineStats()
        watcher = DegradedWindowWatcher(tracer, stats, lambda: 1.0)
        stats.fallback_spills = 1
        watcher.poll()
        watcher.close()
        assert validate_chrome_trace(tracer.to_chrome()) == []


class TestRegisterStackMetrics:
    def test_registers_engine_series(self) -> None:
        registry = MetricsRegistry()
        stats = EngineStats()
        register_stack_metrics(registry, engine_stats=stats, prefix="stack")
        stats.retransmits = 3
        values = registry.snapshot().values
        assert values["stack.engine.retransmits"] == 3.0

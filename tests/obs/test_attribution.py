"""Latency attribution: conservation holds by construction.

The acceptance criterion for the waterfall: for every record, summing
the per-phase durations reproduces the end-to-end latency *exactly*
(telescoping consecutive-transition gaps, not float bookkeeping). The
property test drives arbitrary stamp sequences through the recorder —
including clock regressions and duplicate phases — and conservation
must survive all of them.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.obs.attribution import (
    attribute,
    check_conservation,
    quantile,
    render_attribution,
)
from repro.obs.ledger import PHASES, FlightRecorder, MessageRecord


class TestQuantile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0
        assert quantile(values, 0.5) == 2.5

    def test_single_sample(self):
        assert quantile([7.0], 0.95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestConservationProperty:
    @given(
        stamps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.sampled_from(PHASES[1:]),  # "send" is stamped by open()
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_arbitrary_stamp_sequences_conserve(self, stamps):
        t = {"now": 0.0}
        recorder = FlightRecorder()
        recorder.set_clock(lambda: t["now"])
        mid = recorder.open(source=0, tag=0)
        for ts, phase in stamps:
            t["now"] = ts
            recorder.stamp(mid, phase)
        rec = recorder.records[mid]
        assert check_conservation(rec)
        # Clamping also guarantees every segment is non-negative.
        assert all(t1 >= t0 for t0, t1, _ in rec.segments())

    def test_empty_record_trivially_conserves(self):
        rec = MessageRecord(0)
        rec.transitions = [(1.0, "send", None)]
        assert check_conservation(rec)


class TestAttributeOverChaos:
    @pytest.mark.parametrize("mode", ["default", "fallback", "pressure"])
    def test_every_chaos_record_conserves(self, mode):
        config = ChaosConfig(
            seed=5,
            rounds=4,
            fallback=(mode == "fallback"),
            pressure=(mode == "pressure"),
        )
        recorder = FlightRecorder()
        report = run_chaos(config, recorder=recorder)
        assert report.ok, report.first_violation
        dump = recorder.export(scenario=mode)
        reports = attribute(dump)
        assert len(reports) == 1
        rep = reports[0]
        assert rep.scenario == mode
        assert rep.messages > 0
        assert rep.violations == []
        # The waterfall itself is conserved: phase totals sum to the
        # aggregate latency.
        assert sum(ph.total for ph in rep.phases) == pytest.approx(
            rep.total_latency
        )

    def test_scenario_filter_and_render(self):
        recorder = FlightRecorder()
        run_chaos(ChaosConfig(seed=3, rounds=3), recorder=recorder)
        dump = recorder.export(scenario="a").merge(
            recorder.export(scenario="b")
        )
        assert [r.scenario for r in attribute(dump)] == ["a", "b"]
        only = attribute(dump, scenario="b")
        assert [r.scenario for r in only] == ["b"]
        text = render_attribution(only)
        assert "scenario b:" in text
        assert "p95" in text and "CONSERVATION VIOLATED" not in text

"""@probe hook points: disabled passthrough and subscription."""

from __future__ import annotations

from repro.core import EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest
from repro.obs import probe as probemod
from repro.obs.probe import probe, probe_names, subscribe, subscribed, unsubscribe


def make_probed(name: str = "test.site"):
    calls: list[tuple] = []

    @probe(name)
    def fn(a, b=1):
        calls.append((a, b))
        return a + b

    return fn, calls


class TestDisabled:
    def test_passthrough_result(self) -> None:
        fn, calls = make_probed("test.passthrough")
        assert not probemod.active()
        assert fn(2, b=3) == 5
        assert calls == [(2, 3)]

    def test_wrapped_original_preserved(self) -> None:
        fn, _ = make_probed("test.wrapped")
        assert fn.__wrapped__(1, b=1) == 2
        assert fn.__probe_name__ == "test.wrapped"

    def test_engine_hot_paths_are_probed(self) -> None:
        # The overhead bench needs the undecorated originals reachable.
        for method in (OptimisticMatcher.post_receive, OptimisticMatcher.process_block):
            assert hasattr(method, "__wrapped__")
            assert method.__probe_name__ in probe_names()


class TestSubscription:
    def test_hook_sees_args_and_result(self) -> None:
        fn, _ = make_probed("test.hook")
        seen: list[tuple] = []
        with subscribed("test.hook", lambda a, k, r: seen.append((a, k, r))):
            assert probemod.active()
            fn(4, b=6)
        assert not probemod.active()
        assert seen == [((4,), {"b": 6}, 10)]

    def test_unsubscribe_closes_gate_only_when_empty(self) -> None:
        fn, _ = make_probed("test.gate")
        hook_a = lambda a, k, r: None  # noqa: E731
        hook_b = lambda a, k, r: None  # noqa: E731
        subscribe("test.gate", hook_a)
        subscribe("test.gate", hook_b)
        unsubscribe("test.gate", hook_a)
        assert probemod.active()
        unsubscribe("test.gate", hook_b)
        assert not probemod.active()

    def test_unsubscribe_unknown_hook_is_noop(self) -> None:
        unsubscribe("test.never-subscribed", lambda a, k, r: None)
        assert not probemod.active()

    def test_engine_probe_fires_on_block(self) -> None:
        engine = OptimisticMatcher(EngineConfig(block_threads=2))
        blocks: list = []
        with subscribed("engine.process_block", lambda a, k, r: blocks.append(r)):
            engine.post_receive(ReceiveRequest(source=0, tag=1, handle=0))
            engine.submit_message(MessageEnvelope(source=0, tag=1, send_seq=0))
            engine.process_all()
        assert len(blocks) >= 1

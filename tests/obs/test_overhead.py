"""Overhead micro-benchmark: structure and the disabled fast path.

The CI gate (`--assert-max-overhead 0.05`) runs the full benchmark;
here we keep rounds tiny and only check the machinery — both variants
produce identical matching results, the report carries every field the
CI step consumes, and the assertion path trips when given an
impossible budget.
"""

from __future__ import annotations

import pytest

from repro.obs import overhead


def test_report_shape_and_consistency() -> None:
    report = overhead.run_overhead_bench(rounds=1, repeat=1)
    for key in (
        "bare_seconds",
        "probed_seconds",
        "overhead_fraction",
        "probe_dispatch_ns",
        "workload",
    ):
        assert key in report, key
    assert report["bare_seconds"] > 0
    assert report["probed_seconds"] > 0
    # Tiny rounds are noisy; the fraction must simply be a finite number.
    assert report["overhead_fraction"] == pytest.approx(
        report["probed_seconds"] / report["bare_seconds"] - 1
    )


def test_cli_assertion_trips_on_impossible_budget(capsys) -> None:
    # Overhead cannot be below -100%; an impossible ceiling must fail.
    rc = overhead.main(
        ["--rounds", "1", "--repeat", "1", "--assert-max-overhead", "-2"]
    )
    assert rc == 1
    assert "exceeds budget" in capsys.readouterr().err


def test_cli_json_output(capsys) -> None:
    assert overhead.main(["--rounds", "1", "--repeat", "1", "--json"]) == 0
    out = capsys.readouterr().out
    assert '"overhead_fraction"' in out


def test_bench_refuses_to_run_with_probes_enabled() -> None:
    from repro.obs.probe import subscribed

    with subscribed("engine.process_block", lambda a, k, r: None):
        with pytest.raises(RuntimeError):
            overhead.run_overhead_bench(rounds=1, repeat=1)

"""Critical-path analysis: the top chain spans the makespan exactly.

Acceptance criterion from the issue: the chain's segment durations sum
to exactly the run's makespan (first open to last completion) — the
backward walk covers a contiguous interval with no gaps and no
overlaps, inserting ``via="program-order"`` idle segments where the
pipeline sat empty between bursts.
"""

from __future__ import annotations

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.obs.critpath import critical_path, render_chains
from repro.obs.ledger import FlightRecorder, LedgerDump


def _hand_built_dump() -> LedgerDump:
    """Two overlapping messages plus one after an idle gap.

    m0: [0, 10]   send -> wire -> complete
    m1: [4, 8]    opens while m0 is in flight (program-order pred = m0)
    m2: [15, 20]  opens 5 after everything finished (idle gap)
    """
    t = {"now": 0.0}
    recorder = FlightRecorder()
    recorder.set_clock(lambda: t["now"])

    m0 = recorder.open(source=0, tag=0)
    t["now"] = 6.0
    recorder.stamp(m0, "wire")
    t["now"] = 10.0
    recorder.complete(m0)

    t["now"] = 4.0
    m1 = recorder.open(source=0, tag=1)
    t["now"] = 8.0
    recorder.complete(m1)

    t["now"] = 15.0
    m2 = recorder.open(source=0, tag=2)
    t["now"] = 20.0
    recorder.complete(m2)
    return recorder.export(scenario="hand")


class TestHandBuiltChain:
    def test_top_chain_spans_makespan_with_idle_gap(self):
        chains = critical_path(_hand_built_dump(), k=1)
        assert len(chains) == 1
        chain = chains[0]
        assert (chain.start, chain.end) == (0.0, 20.0)
        assert chain.conserved()
        assert sum(s.duration for s in chain.segments) == 20.0
        idle = [s for s in chain.segments if s.phase == "idle"]
        assert len(idle) == 1
        assert idle[0].via == "program-order"
        # m2's program-order predecessor is m1 (latest open <= 15), so
        # the gap runs from m1's completion, not m0's.
        assert (idle[0].t0, idle[0].t1) == (8.0, 15.0)

    def test_segments_are_contiguous(self):
        chain = critical_path(_hand_built_dump(), k=1)[0]
        for prev, cur in zip(chain.segments, chain.segments[1:]):
            assert prev.t1 == cur.t0

    def test_top_k_orders_by_latest_completion(self):
        chains = critical_path(_hand_built_dump(), k=3)
        ends = [c.end for c in chains]
        assert ends == sorted(ends, reverse=True)
        # Only the first chain must span the makespan.
        assert chains[0].conserved()

    def test_render_mentions_conservation(self):
        text = render_chains(critical_path(_hand_built_dump(), k=2))
        assert "conserved" in text
        assert "NOT CONSERVED" not in text
        assert "via=program-order" in text


class TestChaosChains:
    def test_chaos_run_chain_is_conserved(self):
        recorder = FlightRecorder()
        report = run_chaos(ChaosConfig(seed=7, rounds=4), recorder=recorder)
        assert report.ok
        dump = recorder.export(scenario="chaos")
        chains = critical_path(dump, k=3)
        assert chains
        top = chains[0]
        assert top.segments
        assert top.conserved()
        records = [rec for _, rec in dump.iter_records("chaos")]
        makespan = max(r.end_ts for r in records) - min(
            r.open_ts for r in records
        )
        assert top.total == makespan

    def test_empty_dump_yields_no_chains(self):
        assert critical_path(LedgerDump()) == []

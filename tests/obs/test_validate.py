"""Trace validator: every structural rule has a failing witness."""

from __future__ import annotations

import json

import pytest

from repro.obs.validate import main, validate_chrome_trace


def event(**overrides) -> dict:
    base = {"name": "e", "ph": "i", "pid": 1, "tid": 1, "ts": 0}
    base.update(overrides)
    return base


class TestRules:
    def test_valid_trace_has_no_errors(self) -> None:
        payload = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {}},
                event(ph="X", ts=1, dur=2),
                event(ph="B", ts=5),
                event(ph="E", ts=6),
            ]
        }
        assert validate_chrome_trace(payload) == []

    def test_bare_array_accepted(self) -> None:
        assert validate_chrome_trace([event()]) == []

    def test_non_trace_rejected(self) -> None:
        assert validate_chrome_trace("nope")
        assert validate_chrome_trace({"events": []})

    def test_missing_required_key(self) -> None:
        bad = event()
        del bad["pid"]
        assert any("missing required key 'pid'" in e for e in validate_chrome_trace([bad]))

    def test_unknown_phase(self) -> None:
        assert any("unknown phase" in e for e in validate_chrome_trace([event(ph="Z")]))

    def test_negative_or_missing_ts(self) -> None:
        assert any("'ts'" in e for e in validate_chrome_trace([event(ts=-1)]))
        bad = event()
        del bad["ts"]
        assert any("'ts'" in e for e in validate_chrome_trace([bad]))

    def test_backwards_ts_on_one_track(self) -> None:
        errors = validate_chrome_trace([event(ts=5), event(ts=3)])
        assert any("goes backwards" in e for e in errors)

    def test_independent_tracks_have_independent_clocks(self) -> None:
        assert validate_chrome_trace([event(ts=5), event(ts=3, tid=2)]) == []

    def test_complete_needs_duration(self) -> None:
        errors = validate_chrome_trace([event(ph="X")])
        assert any("'dur'" in e for e in errors)

    def test_unbalanced_begin_end(self) -> None:
        assert any("unclosed" in e for e in validate_chrome_trace([event(ph="B")]))
        assert any(
            "no open 'B'" in e for e in validate_chrome_trace([event(ph="E")])
        )

    def test_metadata_events_need_no_ts(self) -> None:
        meta = {"name": "process_name", "ph": "M", "pid": 1, "tid": 0}
        assert validate_chrome_trace([meta]) == []


class TestCli:
    def test_ok_and_failing_files(self, tmp_path, capsys: pytest.CaptureFixture) -> None:
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"traceEvents": [event()]}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [event(ts=-2)]}))
        assert main([str(good)]) == 0
        assert main([str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "ok (1 events)" in captured.out
        assert "non-negative" in captured.err

    def test_unreadable_file(self, tmp_path, capsys: pytest.CaptureFixture) -> None:
        path = tmp_path / "nope.json"
        path.write_text("{not json")
        assert main([str(path)]) == 1
        assert "unreadable" in capsys.readouterr().err

"""Health rules engine: rule semantics, detection bounds, reports."""

from __future__ import annotations

import json

import pytest

from repro.obs.health import (
    ALARM_TAXONOMY,
    DriftRule,
    HealthMonitor,
    HealthReport,
    RateRule,
    Severity,
    ThresholdRule,
    default_rules,
)
from repro.obs.timeline import Timeline, TimelineSampler


class TestThresholdRule:
    def test_fires_on_crossing_with_hysteresis(self):
        rule = ThresholdRule("overload", "pressure.level", high=0.8, clear=0.5)
        ticks = [
            (0, 0.2, False),
            (1, 0.9, True),  # crossing fires
            (2, 0.95, False),  # still high: same episode
            (3, 0.7, False),  # below high but above clear: not re-armed
            (4, 0.9, False),  # oscillation across high alone cannot re-fire
            (5, 0.4, False),  # below clear: re-arms
            (6, 0.85, True),  # second genuine episode
        ]
        for tick, value, expect in ticks:
            event = rule.observe("pressure.level", float(tick), value)
            assert (event is not None) == expect, (tick, value)

    def test_clear_must_not_exceed_high(self):
        with pytest.raises(ValueError):
            ThresholdRule("x", "*", high=0.5, clear=0.9)

    def test_pattern_mismatch_is_not_evaluated(self):
        rule = ThresholdRule("overload", "pressure.*", high=1.0)
        assert rule.observe("engine.spills", 0.0, 99.0) is None
        assert rule.evaluated == 0


class TestRateRule:
    def test_edge_triggered_episodes(self):
        rule = RateRule("spill-storm", "engine.spills")
        assert rule.observe("engine.spills", 0.0, 0.0) is None  # baseline
        assert rule.observe("engine.spills", 1.0, 0.0) is None  # flat
        event = rule.observe("engine.spills", 2.0, 3.0)  # first rise fires
        assert event is not None and event.alarm == "spill-storm"
        assert event.observed == 3.0 and event.expected == 0.0
        assert event.window == 1.0  # detection within one interval
        assert rule.observe("engine.spills", 3.0, 5.0) is None  # still climbing
        assert rule.observe("engine.spills", 4.0, 5.0) is None  # flat re-arms
        assert rule.observe("engine.spills", 5.0, 6.0) is not None  # new episode

    def test_fall_direction(self):
        rule = RateRule("rank-down", "ranks.live", direction="fall")
        assert rule.observe("ranks.live", 0.0, 8.0) is None
        assert rule.observe("ranks.live", 1.0, 8.0) is None
        event = rule.observe("ranks.live", 2.0, 7.0)
        assert event is not None
        assert rule.observe("ranks.live", 3.0, 9.0) is None  # rises don't fire

    def test_min_delta_filters_noise(self):
        rule = RateRule("x", "*", min_delta=5.0)
        rule.observe("m", 0.0, 0.0)
        assert rule.observe("m", 1.0, 4.0) is None
        assert rule.observe("m", 2.0, 10.0) is not None

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            RateRule("x", "*", direction="sideways")
        with pytest.raises(ValueError):
            RateRule("x", "*", min_delta=0.0)


class TestDriftRule:
    def test_learns_then_flags_excursion(self):
        rule = DriftRule("storm", "faults.injected", warmup=4, min_delta=2.0)
        for tick in range(4):  # learning: never fires
            assert rule.observe("faults.injected", float(tick), 1.0) is None
        assert rule.observe("faults.injected", 4.0, 1.0) is None  # on-mean
        event = rule.observe("faults.injected", 5.0, 50.0)
        assert event is not None and event.rule == "drift"

    def test_excursion_not_folded_into_ewma(self):
        # A sustained excursion must not teach the detector that broken
        # is normal: after the episode ends, a *second* excursion of the
        # same size must still register as a violation.
        rule = DriftRule("storm", "*", warmup=4, min_delta=2.0)
        for tick in range(5):
            rule.observe("m", float(tick), 10.0)
        assert rule.observe("m", 5.0, 100.0) is not None  # fires
        for tick in range(6, 16):  # holds at the broken level: no folding
            assert rule.observe("m", float(tick), 100.0) is None
        state = rule._state["m"]
        assert state["mean"] == pytest.approx(10.0)  # mean unmoved
        rule.observe("m", 16.0, 10.0)  # recovery closes the episode
        assert rule.observe("m", 17.0, 100.0) is not None  # re-detects

    def test_min_delta_guards_tiny_wiggles(self):
        rule = DriftRule("storm", "*", warmup=3, min_delta=5.0)
        for tick in range(4):
            rule.observe("m", float(tick), 0.0)
        # Zero-variance series: a small absolute bump is infinite sigmas
        # away but under min_delta, so it must not alarm.
        assert rule.observe("m", 4.0, 1.0) is None
        assert rule.observe("m", 5.0, 10.0) is not None


class TestMonitor:
    def _timeline(self, samples):
        timeline = Timeline()
        for name, tick, value in samples:
            timeline.record(name, float(tick), float(value))
        timeline.ticks = len({t for _, t, _ in samples})
        return timeline

    def test_scan_detects_within_one_interval(self):
        samples = [
            ("engine.spills", 0, 0),
            ("engine.spills", 1, 0),
            ("engine.spills", 2, 4),
            ("pressure.level", 0, 0.1),
            ("pressure.level", 1, 0.9),
            ("pressure.level", 2, 0.9),
        ]
        scanned = HealthMonitor(default_rules()).scan(self._timeline(samples))
        assert {e.alarm for e in scanned.events} == {"spill-storm", "overload"}
        spill = next(e for e in scanned.events if e.alarm == "spill-storm")
        # Detection bound: the alarm lands on the first sample after
        # the counter moved — within one sampling interval.
        assert spill.tick == 2.0 and spill.window == 1.0
        bound = ALARM_TAXONOMY["spill-storm"][2]
        assert spill.window <= bound * 1.0

    def test_attach_sees_live_samples(self):
        sampler = TimelineSampler()
        monitor = HealthMonitor(default_rules()).attach(sampler)
        spills = {"n": 0.0}
        sampler.add_probe("engine.spills", lambda: spills["n"])
        sampler.sample(0.0)  # baseline
        spills["n"] = 5.0
        sampler.sample(1.0)  # counter moved: streamed alarm fires now
        assert {e.alarm for e in monitor.events} == {"spill-storm"}
        assert monitor.events[0].tick == 1.0

    def test_clean_series_zero_events_all_rules_evaluated(self):
        samples = []
        for tick in range(6):
            samples += [
                ("engine.spills", tick, 0),
                ("pressure.level", tick, 0.2),
                ("pressure.overruns", tick, 0),
                ("pressure.entries", tick, 0),
                ("pressure.evictions", tick, 0),
                ("net.fabric.dropped", tick, 0),
                ("ranks.live", tick, 8),
                ("faults.injected", tick, 0),
            ]
        monitor = HealthMonitor(default_rules()).scan(self._timeline(samples))
        report = monitor.report()
        assert report.healthy
        # The quiet verdict is evidence, not absence: every rule saw data.
        assert all(r["evaluated"] > 0 for r in report.rules)
        assert all(r["fired"] == 0 for r in report.rules)

    def test_events_flow_to_tracer_and_recorder(self):
        from repro.obs.ledger import FlightRecorder
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer()
        recorder = FlightRecorder()
        monitor = HealthMonitor(
            [RateRule("spill-storm", "engine.spills")],
            tracer=tracer,
            recorder=recorder,
        )
        monitor.observe("engine.spills", 0.0, 0.0)
        monitor.observe("engine.spills", 1.0, 2.0)
        instants = [e for e in tracer.events if e.get("ph") == "i"]
        assert any(e["name"] == "spill-storm" for e in instants)
        assert any(name == "health_alarm" for _, name, _ in recorder.events)


class TestReport:
    def test_round_trip_and_render(self):
        monitor = HealthMonitor(default_rules())
        monitor.observe("engine.spills", 0.0, 0.0)
        monitor.observe("engine.spills", 1.0, 3.0)
        report = monitor.report(ticks=2)
        assert not report.healthy
        assert report.worst == Severity.CRITICAL
        assert report.alarms() == {"spill-storm"}
        clone = HealthReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()
        text = report.render()
        assert "UNHEALTHY (CRITICAL)" in text and "spill-storm" in text

    def test_schema_checked(self):
        payload = json.loads(HealthMonitor([]).report().to_json())
        payload["schema"] = "bogus"
        with pytest.raises(ValueError, match="unsupported schema"):
            HealthReport.from_json(json.dumps(payload))

    def test_taxonomy_covers_default_rules(self):
        alarms = {rule.alarm for rule in default_rules()}
        assert alarms == set(ALARM_TAXONOMY)
        for rule in default_rules():
            series, _, bound = ALARM_TAXONOMY[rule.alarm]
            assert rule.matches(series), (rule.alarm, series)
            assert bound >= 1

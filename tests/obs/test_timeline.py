"""Timeline sampler: rings, polling cadence, probes, export."""

from __future__ import annotations

import json

import pytest

from repro.obs.timeline import (
    NULL_SAMPLER,
    NullSampler,
    Timeline,
    TimelineSampler,
    TimeSeries,
    timeline_to_chrome,
)
from repro.obs.validate import validate_chrome_trace


class TestTimeSeries:
    def test_ring_bound_and_drop_count(self):
        series = TimeSeries("q", capacity=4)
        for i in range(10):
            series.append(float(i), float(i * i))
        assert len(series) == 4
        assert series.dropped == 6
        # Newest samples survive, oldest fall off.
        assert [t for t, _ in series.samples] == [6.0, 7.0, 8.0, 9.0]
        assert series.last() == (9.0, 81.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries("q", capacity=0)

    def test_values_in_order(self):
        series = TimeSeries("q")
        series.append(1, 10)
        series.append(2, 20)
        assert series.values() == [10.0, 20.0]


class TestSamplerCadence:
    def test_interval_gates_polls(self):
        sampler = TimelineSampler(interval=10.0)
        sampler.add_probe("x", lambda: 1.0)
        assert sampler.poll(0.0)  # first poll always samples
        assert not sampler.poll(5.0)  # within the period
        assert not sampler.poll(9.9)
        assert sampler.poll(10.0)  # period elapsed
        assert sampler.timeline.ticks == 2
        assert [t for t, _ in sampler.timeline.series["x"].samples] == [0.0, 10.0]

    def test_zero_interval_samples_every_poll(self):
        sampler = TimelineSampler(interval=0.0)
        sampler.add_probe("x", lambda: 0.0)
        for tick in range(5):
            assert sampler.poll(float(tick))
        assert len(sampler.timeline.series["x"]) == 5

    def test_sample_forces_a_round_regardless_of_interval(self):
        sampler = TimelineSampler(interval=100.0)
        sampler.add_probe("x", lambda: 7.0)
        sampler.poll(0.0)
        sampler.sample(1.0)  # the drivers' final flush
        assert len(sampler.timeline.series["x"]) == 2

    def test_probe_replacement_continues_the_series(self):
        # Engine generations re-install probes over the same name; the
        # series must continue, not fork.
        sampler = TimelineSampler()
        sampler.add_probe("depth", lambda: 1.0)
        sampler.sample(0.0)
        sampler.add_probe("depth", lambda: 2.0)  # silent replace
        sampler.sample(1.0)
        assert sampler.probe_names == ["depth"]
        assert sampler.timeline.series["depth"].values() == [1.0, 2.0]

    def test_add_probes_prefix(self):
        sampler = TimelineSampler()
        sampler.add_probes({"a": lambda: 1.0, "b": lambda: 2.0}, prefix="pressure")
        assert sampler.probe_names == ["pressure.a", "pressure.b"]

    def test_listener_sees_every_sample(self):
        sampler = TimelineSampler()
        seen = []
        sampler.add_listener(lambda name, tick, value: seen.append((name, tick, value)))
        sampler.add_probe("x", lambda: 3.0)
        sampler.sample(5.0)
        assert seen == [("x", 5.0, 3.0)]


class TestTimelineJson:
    def _filled(self) -> Timeline:
        timeline = Timeline(interval=2.0, capacity=8)
        for tick in range(12):  # overflow the ring so dropped > 0
            timeline.record("a.depth", float(tick), float(tick % 3))
        timeline.record("b.level", 0.0, 0.5)
        timeline.ticks = 12
        return timeline

    def test_round_trip(self):
        timeline = self._filled()
        clone = Timeline.from_json(timeline.to_json())
        assert clone.to_dict() == timeline.to_dict()
        assert clone.series["a.depth"].dropped == 4
        assert clone.ticks == 12

    def test_schema_is_checked(self):
        payload = json.loads(self._filled().to_json())
        payload["schema"] = "something/else"
        with pytest.raises(ValueError, match="unsupported schema"):
            Timeline.from_json(json.dumps(payload))

    def test_render_sparklines(self):
        out = self._filled().render(width=20)
        assert "a.depth" in out and "b.level" in out
        assert self._filled().render(match="nope") == "(no series)"


class TestChromeExport:
    def test_counter_events_validate(self, tmp_path):
        timeline = Timeline()
        for tick in range(4):
            timeline.record("engine.umq_depth", float(tick), float(tick * 2))
            timeline.record("pressure.level", float(tick), 0.1 * tick)
        tracer = timeline_to_chrome(timeline)
        counters = [e for e in tracer.events if e.get("ph") == "C"]
        assert len(counters) == 8
        # Counter events are merged in tick order across series.
        assert [e["ts"] for e in counters] == sorted(e["ts"] for e in counters)
        out = tmp_path / "trace.json"
        tracer.write(str(out))
        assert validate_chrome_trace(json.loads(out.read_text())) == []


class TestNullSampler:
    def test_is_disabled_and_inert(self):
        assert NullSampler.enabled is False
        assert TimelineSampler.enabled is True
        sampler = NullSampler()
        sampler.add_probe("x", lambda: 1.0)
        sampler.add_listener(lambda *a: (_ for _ in ()).throw(AssertionError))
        assert sampler.poll(0.0) is False
        sampler.sample(0.0)
        assert sampler.probe_names == []
        assert len(sampler.timeline.series) == 0
        assert sampler.timeline.ticks == 0

    def test_shared_singleton(self):
        assert isinstance(NULL_SAMPLER, NullSampler)
        assert not NULL_SAMPLER.enabled

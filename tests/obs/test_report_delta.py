"""``python -m repro.obs.report --delta``: movement between snapshots."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsSnapshot
from repro.obs.report import main


@pytest.fixture()
def pair(tmp_path):
    base = MetricsSnapshot(
        {"engine.messages": 100.0, "engine.spills": 2.0, "rc.retransmits": 5.0}
    )
    later = MetricsSnapshot(
        {"engine.messages": 150.0, "engine.spills": 2.0, "rc.retransmits": 9.0}
    )
    base_path = tmp_path / "base.json"
    later_path = tmp_path / "later.json"
    base_path.write_text(base.to_json())
    later_path.write_text(later.to_json())
    return base_path, later_path


def test_delta_shows_only_movement(pair, capsys):
    base_path, later_path = pair
    assert main([str(later_path), "--delta", str(base_path)]) == 0
    out = capsys.readouterr().out
    assert "messages" in out and "retransmits" in out
    # Unchanged samples are dropped from the delta report.
    assert "spills" not in out


def test_delta_against_self_reports_no_change(pair, capsys):
    base_path, _ = pair
    assert main([str(base_path), "--delta", str(base_path)]) == 0
    assert "(no change)" in capsys.readouterr().out


def test_unreadable_baseline_exits_2(pair, tmp_path, capsys):
    _, later_path = pair
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    assert main([str(later_path), "--delta", str(bad)]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_plain_report_still_works(pair, capsys):
    base_path, _ = pair
    assert main([str(base_path)]) == 0
    assert "engine" in capsys.readouterr().out

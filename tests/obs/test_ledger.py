"""Flight-recorder ledger: mids, transitions, conservation primitives.

The load-bearing contracts: ``stamp`` keeps each record's transition
list monotone and deduped so attribution segments are non-negative and
telescope exactly; ``mark``/``rewind`` fence speculative block attempts
out of the waterfall; :class:`NullRecorder` is a stateless no-op so the
disabled path stays allocation-free; :class:`LedgerDump` round-trips
through JSON and merges without losing scenarios.
"""

from __future__ import annotations

import pytest

from repro.obs.ledger import (
    NULL_RECORDER,
    SCHEMA,
    FlightRecorder,
    LedgerDump,
    MessageRecord,
    NullRecorder,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clocked() -> tuple[FlightRecorder, FakeClock]:
    recorder = FlightRecorder()
    clock = FakeClock()
    recorder.set_clock(clock)
    return recorder, clock


class TestLifecycle:
    def test_open_stamps_send_and_assigns_unique_mids(self, clocked):
        recorder, clock = clocked
        clock.t = 5.0
        a = recorder.open(source=0, tag=7)
        b = recorder.open(source=1, tag=8, size=4096, protocol="rendezvous")
        assert a != b
        rec = recorder.records[a]
        assert rec.transitions == [(5.0, "send", None)]
        assert recorder.records[b].protocol == "rendezvous"
        assert recorder.records[b].size == 4096

    def test_segments_telescope_to_latency(self, clocked):
        recorder, clock = clocked
        mid = recorder.open(source=0, tag=1)
        for t, phase in ((2.0, "wire"), (3.5, "cq"), (4.0, "engine"),
                         (9.0, "matched")):
            clock.t = t
            recorder.stamp(mid, phase)
        clock.t = 10.0
        recorder.complete(mid)
        rec = recorder.records[mid]
        assert rec.completed
        assert rec.latency == 10.0
        assert sum(t1 - t0 for t0, t1, _ in rec.segments()) == rec.latency
        assert rec.phase_durations() == {
            "send": 2.0, "wire": 1.5, "cq": 0.5, "engine": 5.0, "matched": 1.0
        }

    def test_consecutive_identical_phases_dedupe(self, clocked):
        recorder, clock = clocked
        mid = recorder.open(source=0, tag=1)
        clock.t = 1.0
        recorder.stamp(mid, "umq")
        clock.t = 2.0
        recorder.stamp(mid, "umq")  # second layer double-stamps: ignored
        assert [p for _, p, _ in recorder.records[mid].transitions] == [
            "send", "umq"
        ]

    def test_timestamps_clamp_monotone(self, clocked):
        recorder, clock = clocked
        clock.t = 10.0
        mid = recorder.open(source=0, tag=1)
        clock.t = 4.0  # a layer's clock lags: clamp, never go negative
        recorder.stamp(mid, "wire")
        (t0, _, _), (t1, _, _) = recorder.records[mid].transitions
        assert t1 >= t0

    def test_unknown_mid_and_post_complete_stamps_ignored(self, clocked):
        recorder, clock = clocked
        recorder.stamp(999, "wire")  # foreign traffic: no crash, no record
        assert 999 not in recorder.records
        mid = recorder.open(source=0, tag=1)
        clock.t = 1.0
        recorder.complete(mid)
        clock.t = 2.0
        recorder.stamp(mid, "engine")  # after complete: ignored
        assert recorder.records[mid].transitions[-1][1] == "complete"

    def test_without_clock_stamps_read_zero(self):
        recorder = FlightRecorder()
        mid = recorder.open(source=0, tag=1)
        assert recorder.records[mid].transitions == [(0.0, "send", None)]


class TestSpeculationFence:
    def test_rewind_discards_rolled_back_stamps(self, clocked):
        recorder, clock = clocked
        mid = recorder.open(source=0, tag=1)
        clock.t = 1.0
        recorder.stamp(mid, "engine")
        mark = recorder.mark(mid)
        clock.t = 2.0
        recorder.stamp(mid, "matched")  # speculative attempt
        recorder.rewind(mid, mark)
        recorder.note(mid, "rollback", attempt=1)
        clock.t = 3.0
        recorder.stamp(mid, "matched")  # the replay is authoritative
        rec = recorder.records[mid]
        assert [p for _, p, _ in rec.transitions] == ["send", "engine", "matched"]
        assert rec.transitions[-1][0] == 3.0
        assert [(ts, name) for ts, name, _ in rec.events] == [(2.0, "rollback")]

    def test_mark_of_unknown_mid_is_zero_and_rewind_is_safe(self, clocked):
        recorder, _ = clocked
        assert recorder.mark(123) == 0
        recorder.rewind(123, 0)  # no crash


class TestAnnotationsAndPassport:
    def test_notes_never_alter_the_waterfall(self, clocked):
        recorder, clock = clocked
        mid = recorder.open(source=0, tag=1)
        clock.t = 1.0
        recorder.stamp(mid, "wire")
        recorder.note(mid, "retransmit", psn=3)
        clock.t = 5.0
        recorder.complete(mid)
        rec = recorder.records[mid]
        assert rec.phase_durations() == {"send": 1.0, "wire": 4.0}
        assert rec.events == [(1.0, "retransmit", {"psn": 3})]

    def test_label_binds_passport(self, clocked):
        recorder, clock = clocked
        mid = recorder.open(source=2, tag=9)
        recorder.label(mid, "2:0")
        clock.t = 3.0
        recorder.complete(mid)
        passport = recorder.passport("2:0")
        assert passport is not None
        assert passport["mid"] == mid
        assert passport["label"] == "2:0"
        assert recorder.passport("no-such-ident") is None

    def test_receive_ledger_pairs_fifo_per_handle(self, clocked):
        recorder, clock = clocked
        recorder.open_receive(7, source=0, tag=1)
        clock.t = 1.0
        recorder.open_receive(7, source=0, tag=1)
        clock.t = 2.0
        recorder.close_receive(7, mid=11)
        rows = recorder.receives
        assert rows[0]["completed"] == 2.0 and rows[0]["mid"] == 11
        assert rows[1]["completed"] is None

    def test_run_level_events(self, clocked):
        recorder, clock = clocked
        clock.t = 4.0
        recorder.event("takeover", reason="budget")
        assert recorder.events == [(4.0, "takeover", {"reason": "budget"})]


class TestExportRoundTrip:
    def _populated(self) -> FlightRecorder:
        recorder = FlightRecorder()
        clock = FakeClock()
        recorder.set_clock(clock)
        mid = recorder.open(source=0, tag=1, size=64)
        recorder.label(mid, "0:0")
        clock.t = 2.0
        recorder.stamp(mid, "wire")
        recorder.note(mid, "rnr")
        clock.t = 5.0
        recorder.complete(mid)
        recorder.event("reoffload")
        recorder.open_receive(1, source=0, tag=1)
        recorder.close_receive(1, mid=mid)
        return recorder

    def test_json_round_trip_preserves_everything(self):
        dump = self._populated().export(scenario="unit")
        restored = LedgerDump.from_json(dump.to_json())
        assert restored.to_json() == dump.to_json()
        records = [rec for _, rec in restored.iter_records("unit")]
        assert len(records) == 1
        rec = records[0]
        assert rec.completed and rec.latency == 5.0
        assert rec.events == [(2.0, "rnr", None)]

    def test_from_json_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            LedgerDump.from_dict({"schema": "bogus/v0", "scenarios": {}})
        assert SCHEMA == "repro.obs.ledger/v1"

    def test_merge_suffixes_duplicate_scenarios(self):
        a = self._populated().export(scenario="run")
        b = self._populated().export(scenario="run")
        merged = a.merge(b).merge(self._populated().export(scenario="run"))
        assert sorted(merged.scenarios) == ["run", "run#2", "run#3"]
        assert len(list(merged.iter_records())) == 3

    def test_message_record_dict_round_trip(self):
        rec = MessageRecord(3, source=1, tag=2, size=8, protocol="rendezvous",
                            label="1:9")
        rec.transitions = [(0.0, "send", None), (1.0, "wire", {"psn": 4})]
        rec.events = [(0.5, "credit_stall", None)]
        clone = MessageRecord.from_dict(rec.to_dict())
        assert clone.to_dict() == rec.to_dict()
        assert clone.transitions == rec.transitions
        assert clone.events == rec.events


class TestNullRecorder:
    def test_disabled_flag_is_class_attribute(self):
        assert NullRecorder.enabled is False
        assert FlightRecorder.enabled is True
        assert NULL_RECORDER.enabled is False

    def test_every_operation_is_a_stateless_noop(self):
        recorder = NullRecorder()
        assert recorder.open(source=0, tag=1) == -1
        assert recorder.new_mid() == -1
        recorder.set_clock(lambda: 99.0)
        assert recorder.now() == 0.0
        recorder.stamp(0, "wire")
        recorder.complete(0)
        recorder.note(0, "retransmit")
        assert recorder.mark(0) == 0
        recorder.rewind(0, 0)
        recorder.label(0, "x")
        assert recorder.passport("x") is None
        recorder.open_receive(0, source=0, tag=0)
        recorder.close_receive(0)
        recorder.event("takeover")
        assert recorder.export().scenarios == {}
        assert not hasattr(recorder, "records")  # truly allocation-free

"""Perfetto flow-event export: valid traces, paired s/f flows."""

from __future__ import annotations

import json

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.obs.flows import ledger_to_chrome, write_flow_trace
from repro.obs.ledger import FlightRecorder
from repro.obs.validate import validate_chrome_trace


def _chaos_dump():
    recorder = FlightRecorder()
    run_chaos(ChaosConfig(seed=4, rounds=3), recorder=recorder)
    return recorder.export(scenario="flows")


class TestChromeExport:
    def test_trace_passes_validator(self):
        events = ledger_to_chrome(_chaos_dump())
        assert events
        assert validate_chrome_trace({"traceEvents": events}) == []

    def test_flows_are_paired_per_mid(self):
        events = ledger_to_chrome(_chaos_dump())
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        finishes = {e["id"] for e in events if e.get("ph") == "f"}
        assert starts
        assert starts == finishes

    def test_spans_cover_every_segment(self):
        dump = _chaos_dump()
        segment_count = sum(
            len(rec.segments()) for _, rec in dump.iter_records()
        )
        spans = [e for e in ledger_to_chrome(dump) if e.get("ph") == "X"]
        assert len(spans) == segment_count
        assert all(e["dur"] >= 0 for e in spans)

    def test_layer_tracks_named(self):
        events = ledger_to_chrome(_chaos_dump())
        procs = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert {"host", "wire"} <= procs

    def test_write_flow_trace_round_trips(self, tmp_path):
        path = tmp_path / "flows.json"
        count = write_flow_trace(_chaos_dump(), str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert validate_chrome_trace(payload) == []

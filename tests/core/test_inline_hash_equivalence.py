"""Property: inline hashes are a pure optimization — decisions are
identical with and without them, only the hash-compute count differs."""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest
from repro.core.hashing import compute_inline_hashes

COMMON = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


ops = st.lists(
    st.tuples(st.booleans(), st.integers(0, 3), st.integers(0, 3)),
    max_size=60,
)


def run(op_list, inline: bool):
    engine = OptimisticMatcher(
        EngineConfig(bins=8, block_threads=4, max_receives=4096)
    )
    handle = 0
    seq = 0
    events = []
    for is_post, source, tag in op_list:
        if is_post:
            engine.post_receive(ReceiveRequest(source=source, tag=tag, handle=handle))
            handle += 1
        else:
            msg = MessageEnvelope(
                source=source,
                tag=tag,
                send_seq=seq,
                inline_hashes=compute_inline_hashes(source, tag) if inline else None,
            )
            seq += 1
            engine.submit_message(msg)
    events.extend(engine.process_all())
    return engine, events


def strip_hashes(event):
    return dataclasses.replace(
        event, message=dataclasses.replace(event.message, inline_hashes=None)
    )


class TestInlineHashEquivalence:
    @COMMON
    @given(op_list=ops)
    def test_identical_decisions(self, op_list):
        engine_inline, events_inline = run(op_list, inline=True)
        engine_plain, events_plain = run(op_list, inline=False)
        assert [strip_hashes(e) for e in events_inline] == events_plain
        assert engine_inline.posted_receives == engine_plain.posted_receives
        assert engine_inline.unexpected_count == engine_plain.unexpected_count

    @COMMON
    @given(op_list=ops)
    def test_inline_never_computes_more_hashes(self, op_list):
        engine_inline, _ = run(op_list, inline=True)
        engine_plain, _ = run(op_list, inline=False)
        assert engine_inline.stats.hashes_computed <= engine_plain.stats.hashes_computed

    def test_disabled_by_config_falls_back_to_compute(self):
        engine = OptimisticMatcher(
            EngineConfig(
                bins=8, block_threads=4, max_receives=64, use_inline_hashes=False
            )
        )
        engine.post_receive(ReceiveRequest(source=0, tag=0))
        engine.submit_message(
            MessageEnvelope(source=0, tag=0, inline_hashes=compute_inline_hashes(0, 0))
        )
        engine.process_all()
        assert engine.stats.hashes_computed > 0

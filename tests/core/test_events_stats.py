"""Direct unit tests for match events and statistics containers."""

import pytest

from repro.core import MatchKind, MessageEnvelope, ReceiveRequest, ResolutionPath
from repro.core.events import MatchEvent
from repro.core.stats import BlockStats, EngineStats


def event(kind=MatchKind.EXPECTED, **kw):
    defaults = dict(
        message=MessageEnvelope(source=1, tag=2, send_seq=3),
        receive=ReceiveRequest(source=1, tag=2, handle=9),
        receive_post_label=4,
    )
    defaults.update(kw)
    return MatchEvent(kind=kind, **defaults)


class TestMatchEvent:
    def test_is_match(self):
        assert event().is_match()
        assert event(MatchKind.UNEXPECTED_DRAIN).is_match()
        assert not event(
            MatchKind.STORED_UNEXPECTED, receive=None, receive_post_label=None
        ).is_match()

    def test_pairing_identity(self):
        msg_id, label = event().pairing()
        assert msg_id == (1, 3, 0)
        assert label == 4

    def test_pairing_unmatched(self):
        _, label = event(
            MatchKind.STORED_UNEXPECTED, receive=None, receive_post_label=None
        ).pairing()
        assert label is None

    def test_default_decision_order_unstamped(self):
        assert event().decision_order == -1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            event().kind = MatchKind.EXPECTED


class TestBlockStats:
    def test_defaults(self):
        block = BlockStats()
        assert block.messages == 0
        assert block.thread_steps == []
        assert block.fast_path == 0


class TestEngineStats:
    def make_block(self, **kw):
        block = BlockStats(messages=4)
        block.conflicts = kw.get("conflicts", 1)
        block.fast_path = kw.get("fast", 1)
        block.slow_path = kw.get("slow", 0)
        block.optimistic_hits = kw.get("optimistic", 2)
        block.unexpected = kw.get("unexpected", 1)
        block.probes_walked = 10
        block.bookings = 3
        return block

    def test_absorb_accumulates(self):
        stats = EngineStats(keep_history=False)
        stats.absorb(self.make_block())
        stats.absorb(self.make_block(conflicts=2))
        assert stats.blocks == 2
        assert stats.messages == 8
        assert stats.conflicts == 3
        assert stats.expected_matches == 6  # 8 messages - 2 unexpected
        assert stats.unexpected_stored == 2
        assert stats.probes_walked == 20
        assert stats.block_history == []

    def test_history_kept_when_asked(self):
        stats = EngineStats(keep_history=True)
        block = self.make_block()
        stats.absorb(block)
        assert stats.block_history == [block]

    def test_conflict_rate(self):
        stats = EngineStats()
        assert stats.conflict_rate() == 0.0
        stats.absorb(self.make_block(conflicts=2))
        assert stats.conflict_rate() == pytest.approx(0.5)

    def test_path_mix(self):
        stats = EngineStats()
        stats.absorb(self.make_block(fast=1, slow=2, optimistic=1))
        assert stats.path_mix() == {"optimistic": 1, "fast": 1, "slow": 2}


class TestResolutionPathEnum:
    def test_values_are_stable(self):
        # These strings appear in reports and saved artifacts; renames
        # are breaking changes.
        assert ResolutionPath.OPTIMISTIC.value == "optimistic"
        assert ResolutionPath.FAST.value == "fast"
        assert ResolutionPath.SLOW.value == "slow"
        assert ResolutionPath.SERIAL.value == "serial"
        assert MatchKind.STORED_UNEXPECTED.value == "stored-unexpected"

"""Tests for the multi-communicator DPA resource manager (§III-E)."""

import pytest

from repro.core import EngineConfig
from repro.core.manager import OffloadManager


def cfg(bins=128, receives=1024):
    return EngineConfig(bins=bins, block_threads=8, max_receives=receives)


class TestFootprint:
    def test_footprint_arithmetic(self):
        # 2 index sets x 3 tables x bins x 20 B + descriptors x 64 B.
        config = cfg(bins=128, receives=1024)
        expected = 2 * 3 * 128 * 20 + 1024 * 64
        assert OffloadManager.footprint(config) == expected

    def test_footprint_scales_with_bins(self):
        assert OffloadManager.footprint(cfg(bins=256)) > OffloadManager.footprint(
            cfg(bins=64)
        )


class TestAllocation:
    def test_allocates_within_budget(self):
        manager = OffloadManager(cfg(), budget_bytes=1 << 20)
        allocation = manager.comm_create(0)
        assert allocation.offloaded
        assert allocation.engine is not None
        assert allocation.engine.comm == 0
        assert manager.reserved_bytes == allocation.bytes_reserved > 0

    def test_falls_back_when_budget_exhausted(self):
        footprint = OffloadManager.footprint(cfg())
        manager = OffloadManager(cfg(), budget_bytes=2 * footprint)
        first = manager.comm_create(0)
        second = manager.comm_create(1)
        third = manager.comm_create(2)  # no room left
        assert first.offloaded and second.offloaded
        assert third.software
        assert third.engine is None
        assert manager.offloaded_comms() == [0, 1]

    def test_info_hint_disables_offload(self):
        manager = OffloadManager(cfg(), budget_bytes=1 << 30)
        allocation = manager.comm_create(0, allow_offload=False)
        assert allocation.software

    def test_free_returns_budget(self):
        footprint = OffloadManager.footprint(cfg())
        manager = OffloadManager(cfg(), budget_bytes=footprint)
        manager.comm_create(0)
        assert manager.comm_create(1).software  # full
        manager.comm_free(0)
        assert manager.reserved_bytes == 0
        assert manager.comm_create(2).offloaded  # space again

    def test_duplicate_comm_rejected(self):
        manager = OffloadManager(cfg())
        manager.comm_create(0)
        with pytest.raises(ValueError):
            manager.comm_create(0)

    def test_free_unknown_comm_rejected(self):
        with pytest.raises(KeyError):
            OffloadManager(cfg()).comm_free(7)

    def test_per_comm_config_override(self):
        manager = OffloadManager(cfg(), budget_bytes=1 << 30)
        small = manager.comm_create(0, config=cfg(bins=16, receives=64))
        large = manager.comm_create(1, config=cfg(bins=512, receives=8192))
        assert small.bytes_reserved < large.bytes_reserved

    def test_utilization(self):
        footprint = OffloadManager.footprint(cfg())
        manager = OffloadManager(cfg(), budget_bytes=4 * footprint)
        manager.comm_create(0)
        assert manager.utilization() == pytest.approx(0.25)


class TestEnginesAreIndependent:
    def test_comm_isolation(self):
        from repro.core import MessageEnvelope, ReceiveRequest

        manager = OffloadManager(cfg(), budget_bytes=1 << 30)
        a = manager.comm_create(0).engine
        b = manager.comm_create(1).engine
        a.post_receive(ReceiveRequest(source=0, tag=1, comm=0))
        b.submit_message(MessageEnvelope(source=0, tag=1, comm=1))
        events = b.process_all()
        # Communicator 1's message must not see communicator 0's receive.
        assert events[0].kind.value == "stored-unexpected"
        assert a.posted_receives == 1

    def test_default_budget_is_l3(self):
        manager = OffloadManager(cfg())
        assert manager.budget_bytes == 3 * 1024 * 1024

"""Tests for the partial barrier."""

from repro.core.barrier import PartialBarrier
from repro.core.threadsim import RandomPolicy, SteppedExecutor


class TestPartialBarrier:
    def test_thread_zero_passes_immediately(self):
        barrier = PartialBarrier(4)
        assert barrier.passed(0)

    def test_waits_on_all_lower(self):
        barrier = PartialBarrier(4)
        barrier.enter(0)
        assert barrier.passed(1)
        assert not barrier.passed(2)
        barrier.enter(1)
        assert barrier.passed(2)

    def test_higher_threads_do_not_matter(self):
        # Partial: thread 1 must not wait on threads 2, 3.
        barrier = PartialBarrier(4)
        barrier.enter(3)
        barrier.enter(0)
        assert barrier.passed(1)

    def test_entered(self):
        barrier = PartialBarrier(2)
        assert not barrier.entered(1)
        barrier.enter(1)
        assert barrier.entered(1)

    def test_reset(self):
        barrier = PartialBarrier(2)
        barrier.enter(0)
        barrier.reset()
        assert not barrier.entered(0)
        assert not barrier.passed(1)

    def test_under_executor_orders_exits(self):
        """Whatever the schedule, barrier exit order must respect IDs:
        thread i exits only after all j < i entered."""
        for seed in range(10):
            barrier = PartialBarrier(4)
            entered: set[int] = set()
            exit_snapshots = {}

            def proc(tid, barrier=None):
                yield None  # pre-barrier work
                entered.add(tid)
                barrier.enter(tid)
                yield barrier.wait_condition(tid)
                exit_snapshots[tid] = set(entered)

            SteppedExecutor(RandomPolicy(seed)).run(
                [proc(t, barrier=barrier) for t in range(4)]
            )
            assert set(exit_snapshots) == {0, 1, 2, 3}
            for tid, snapshot in exit_snapshots.items():
                # When thread i exited, every j < i had already entered.
                assert snapshot.issuperset(range(tid))

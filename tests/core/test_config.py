"""Tests for EngineConfig and matcher cost accounting."""

import pytest

from repro.core import EngineConfig
from repro.matching.base import MatcherCosts


class TestEngineConfig:
    def test_defaults_match_paper(self):
        config = EngineConfig()
        assert config.bins == 128
        assert config.block_threads == 32
        assert config.max_receives == 8192
        assert config.lazy_removal
        assert config.early_booking_check
        assert config.enable_fast_path
        assert config.use_inline_hashes
        assert not config.allow_overtaking

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bins": 0},
            {"bins": -1},
            {"block_threads": 0},
            {"max_receives": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_with_options_replaces_selected_fields(self):
        base = EngineConfig(bins=64)
        changed = base.with_options(enable_fast_path=False, bins=32)
        assert changed.bins == 32
        assert not changed.enable_fast_path
        assert changed.block_threads == base.block_threads
        # Original untouched (frozen).
        assert base.bins == 64
        assert base.enable_fast_path

    def test_with_options_validates(self):
        with pytest.raises(ValueError):
            EngineConfig().with_options(bins=-5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EngineConfig().bins = 7

    def test_hashable_for_caching(self):
        assert len({EngineConfig(), EngineConfig(), EngineConfig(bins=2)}) == 2


class TestMatcherCosts:
    def test_record_walk_accumulates(self):
        costs = MatcherCosts()
        costs.record_walk(3)
        costs.record_walk(5)
        assert costs.walked == 8
        assert costs.walk_samples == []  # sampling off by default

    def test_keep_samples(self):
        costs = MatcherCosts(keep_samples=True)
        costs.record_walk(3)
        costs.record_walk(0)
        assert costs.walk_samples == [3, 0]
        assert costs.walked == 3

"""Tests for the fixed-size descriptor table."""

import pytest

from repro.core.descriptor import DESCRIPTOR_BYTES, DescriptorTable, DescriptorTableFull
from repro.core.envelope import ReceiveRequest


def make_table(capacity=4, width=4):
    return DescriptorTable(capacity, width)


class TestAllocation:
    def test_allocate_assigns_fields(self):
        table = make_table()
        descr = table.allocate(ReceiveRequest(source=1, tag=2), post_label=5, sequence_id=3)
        assert descr.post_label == 5
        assert descr.sequence_id == 3
        assert descr.source == 1 and descr.tag == 2
        assert not descr.consumed
        assert descr.booking.is_empty()
        assert table.in_use == 1

    def test_capacity_overflow_raises(self):
        table = make_table(capacity=2)
        table.allocate(ReceiveRequest(), 0, 0)
        table.allocate(ReceiveRequest(), 1, 0)
        with pytest.raises(DescriptorTableFull):
            table.allocate(ReceiveRequest(), 2, 0)

    def test_release_recycles_slots(self):
        table = make_table(capacity=1)
        d = table.allocate(ReceiveRequest(), 0, 0)
        table.release(d)
        assert table.in_use == 0
        d2 = table.allocate(ReceiveRequest(), 1, 0)
        assert d2.slot == d.slot

    def test_release_stale_descriptor_rejected(self):
        table = make_table(capacity=1)
        d = table.allocate(ReceiveRequest(), 0, 0)
        table.release(d)
        table.allocate(ReceiveRequest(), 1, 0)
        with pytest.raises(ValueError):
            table.release(d)  # slot now owned by another descriptor

    def test_high_water_tracks_peak(self):
        table = make_table(capacity=8)
        live = [table.allocate(ReceiveRequest(), i, 0) for i in range(5)]
        for d in live:
            table.release(d)
        table.allocate(ReceiveRequest(), 9, 0)
        assert table.high_water == 5

    def test_get_by_slot(self):
        table = make_table()
        d = table.allocate(ReceiveRequest(), 0, 0)
        assert table.get(d.slot) is d

    @pytest.mark.parametrize("capacity,width", [(0, 4), (4, 0), (-1, 1)])
    def test_invalid_params_rejected(self, capacity, width):
        with pytest.raises(ValueError):
            DescriptorTable(capacity, width)


class TestFootprint:
    def test_footprint_model(self):
        # §III-E: 8 K receives at 64 B each ≈ 512 KiB of descriptors.
        table = DescriptorTable(8192, 32)
        assert table.footprint_bytes == 8192 * DESCRIPTOR_BYTES
        assert table.footprint_bytes == 512 * 1024


class TestCompatibility:
    def test_compatible_with(self):
        table = make_table()
        a = table.allocate(ReceiveRequest(source=1, tag=2), 0, 0)
        b = table.allocate(ReceiveRequest(source=1, tag=2), 1, 0)
        c = table.allocate(ReceiveRequest(source=1, tag=3), 2, 1)
        assert a.compatible_with(b)
        assert not a.compatible_with(c)

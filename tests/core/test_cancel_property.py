"""Property: cancellation preserves oracle equivalence.

Streams of posts, messages, and cancels must produce identical
pairings on the optimistic engine and the linked-list matcher — the
cancel command is serialized with blocks exactly like a post, so the
two implementations see the same semantic order.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest
from repro.core.events import MatchKind
from repro.matching import ListMatcher

COMMON = settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: op: (kind 0=post / 1=message / 2=cancel, source, tag, cancel_target)
ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 30),
    ),
    max_size=60,
)


def run_engine(ops):
    engine = OptimisticMatcher(EngineConfig(bins=4, block_threads=4, max_receives=4096))
    events = []
    handle = 0
    seq = 0
    cancelled = []
    for kind, source, tag, target in ops:
        if kind == 0:
            event = engine.post_receive(ReceiveRequest(source=source, tag=tag, handle=handle))
            handle += 1
            if event is not None:
                events.append(event)
        elif kind == 1:
            engine.submit_message(MessageEnvelope(source=source, tag=tag, send_seq=seq))
            seq += 1
        else:
            cancelled.append((target, engine.cancel_receive(target)))
    events.extend(engine.process_all())
    return events, cancelled


def run_oracle(ops):
    matcher = ListMatcher()
    events = []
    handle = 0
    seq = 0
    cancelled = []
    for kind, source, tag, target in ops:
        if kind == 0:
            event = matcher.post_receive(ReceiveRequest(source=source, tag=tag, handle=handle))
            handle += 1
            if event is not None:
                events.append(event)
        elif kind == 1:
            events.append(
                matcher.incoming_message(MessageEnvelope(source=source, tag=tag, send_seq=seq))
            )
            seq += 1
        else:
            cancelled.append((target, matcher.cancel_receive(target)))
    return events, cancelled


def pairing_map(events):
    out = {}
    for event in events:
        key = (event.message.source, event.message.send_seq)
        if event.kind is MatchKind.STORED_UNEXPECTED:
            out.setdefault(key, None)
        else:
            out[key] = event.receive.handle
    return out


class TestCancelProperty:
    @COMMON
    @given(ops=ops_strategy)
    def test_engine_matches_oracle_with_cancels(self, ops):
        engine_events, engine_cancelled = run_engine(ops)
        oracle_events, oracle_cancelled = run_oracle(ops)
        assert pairing_map(engine_events) == pairing_map(oracle_events)
        assert engine_cancelled == oracle_cancelled

    @COMMON
    @given(ops=ops_strategy)
    def test_cancelled_handles_never_match(self, ops):
        events, cancelled = run_engine(ops)
        removed = {target for target, success in cancelled if success}
        matched = {
            event.receive.handle
            for event in events
            if event.kind is not MatchKind.STORED_UNEXPECTED
        }
        assert removed.isdisjoint(matched)

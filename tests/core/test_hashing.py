"""Tests for the hash family and inline hashes."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.envelope import MessageEnvelope
from repro.core.hashing import (
    bucket_of,
    compute_inline_hashes,
    hash_src,
    hash_src_tag,
    hash_tag,
    message_hashes,
    mix64,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_fits_64_bits(self):
        assert 0 <= mix64((1 << 80) + 17) < (1 << 64)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_range(self, x):
        assert 0 <= mix64(x) < (1 << 64)


class TestKeySeparation:
    def test_src_tag_order_matters(self):
        assert hash_src_tag(1, 2) != hash_src_tag(2, 1)

    def test_domains_are_separated(self):
        # hash(tag=x) must not equal hash(src=x): the two wildcard
        # tables would otherwise alias each other's keys.
        collisions = sum(hash_tag(x) == hash_src(x) for x in range(1000))
        assert collisions == 0

    def test_inline_hashes_match_receiver_side(self):
        ih = compute_inline_hashes(3, 7)
        assert ih.src_tag == hash_src_tag(3, 7)
        assert ih.tag_only == hash_tag(7)
        assert ih.src_only == hash_src(3)


class TestBucketDistribution:
    def test_clustered_keys_spread(self):
        """MPI ranks/tags are small dense ints; the mixer must spread
        them across bins (the whole point of binning, Fig. 7)."""
        bins = 128
        counts = np.zeros(bins, dtype=int)
        for src in range(64):
            for tag in range(16):
                counts[bucket_of(hash_src_tag(src, tag), bins)] += 1
        # 1024 keys over 128 bins: expect mean 8, no pathological bin.
        assert counts.max() <= 8 * 4
        assert (counts == 0).sum() <= bins // 8

    def test_bucket_of_rejects_nonpositive_bins(self):
        import pytest

        with pytest.raises(ValueError):
            bucket_of(123, 0)


class TestMessageHashes:
    def test_uses_inline_when_present(self):
        ih = compute_inline_hashes(1, 2)
        msg = MessageEnvelope(source=1, tag=2, inline_hashes=ih)
        assert message_hashes(msg) is ih

    def test_computes_when_absent(self):
        msg = MessageEnvelope(source=1, tag=2)
        assert message_hashes(msg) == compute_inline_hashes(1, 2)

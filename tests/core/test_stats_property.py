"""Property: ``EngineStats`` cumulative fields are exactly the sum of
absorbed block history.

The observability layer pulls the cumulative fields; the cycle model
walks ``block_history``. Both views must agree — and bounding the
history (``history_limit``) must bound *only* the history, never the
cumulative counters.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.stats import BlockStats, EngineStats

#: Fields absorbed 1:1 from each block into the cumulative totals.
SUMMED = (
    "messages",
    "conflicts",
    "fast_path",
    "slow_path",
    "optimistic_hits",
    "probes_walked",
    "buckets_probed",
    "hashes_computed",
    "bookings",
    "early_skips",
    "wait_polls",
    "swept",
)

blocks_strategy = st.lists(
    st.builds(
        BlockStats,
        messages=st.integers(0, 16),
        probes_walked=st.integers(0, 50),
        buckets_probed=st.integers(0, 50),
        hashes_computed=st.integers(0, 50),
        bookings=st.integers(0, 50),
        conflicts=st.integers(0, 16),
        fast_path=st.integers(0, 16),
        slow_path=st.integers(0, 16),
        optimistic_hits=st.integers(0, 16),
        unexpected=st.integers(0, 16),
        early_skips=st.integers(0, 16),
        wait_polls=st.integers(0, 100),
        swept=st.integers(0, 16),
    ),
    max_size=30,
)


@given(blocks_strategy)
def test_history_sums_to_cumulative_fields(blocks: list[BlockStats]) -> None:
    stats = EngineStats()
    for block in blocks:
        stats.absorb(block)
    assert stats.blocks == len(blocks) == len(stats.block_history)
    for name in SUMMED:
        total = sum(getattr(b, name) for b in stats.block_history)
        assert getattr(stats, name) == total, name
    assert stats.unexpected_stored == sum(b.unexpected for b in stats.block_history)
    assert stats.expected_matches == sum(
        b.messages - b.unexpected for b in stats.block_history
    )


@given(blocks_strategy, st.integers(min_value=0, max_value=5))
def test_history_limit_bounds_history_not_counters(
    blocks: list[BlockStats], limit: int
) -> None:
    bounded = EngineStats(history_limit=limit)
    unbounded = EngineStats()
    for block in blocks:
        bounded.absorb(block)
        unbounded.absorb(block)
    assert len(bounded.block_history) <= limit
    # The retained suffix is the *most recent* blocks, in order.
    if bounded.block_history:
        assert bounded.block_history == unbounded.block_history[-limit:]
    for name in SUMMED:
        assert getattr(bounded, name) == getattr(unbounded, name), name


@given(blocks_strategy)
def test_keep_history_off_still_accumulates(blocks: list[BlockStats]) -> None:
    stats = EngineStats(keep_history=False)
    for block in blocks:
        stats.absorb(block)
    assert stats.block_history == []
    assert stats.messages == sum(b.messages for b in blocks)

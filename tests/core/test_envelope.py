"""Tests for message envelopes and receive requests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constants import ANY_SOURCE, ANY_TAG, WildcardClass
from repro.core.envelope import MessageEnvelope, ReceiveRequest


class TestMessageEnvelope:
    def test_rejects_wildcard_source(self):
        with pytest.raises(ValueError):
            MessageEnvelope(source=ANY_SOURCE, tag=0)

    def test_rejects_wildcard_tag(self):
        with pytest.raises(ValueError):
            MessageEnvelope(source=0, tag=ANY_TAG)

    def test_key(self):
        assert MessageEnvelope(source=3, tag=9).key() == (3, 9)


class TestReceiveRequestMatching:
    def test_exact_match(self):
        req = ReceiveRequest(source=1, tag=2)
        assert req.matches(MessageEnvelope(source=1, tag=2))
        assert not req.matches(MessageEnvelope(source=1, tag=3))
        assert not req.matches(MessageEnvelope(source=2, tag=2))

    def test_any_source(self):
        req = ReceiveRequest(source=ANY_SOURCE, tag=2)
        assert req.matches(MessageEnvelope(source=7, tag=2))
        assert not req.matches(MessageEnvelope(source=7, tag=3))

    def test_any_tag(self):
        req = ReceiveRequest(source=4, tag=ANY_TAG)
        assert req.matches(MessageEnvelope(source=4, tag=100))
        assert not req.matches(MessageEnvelope(source=5, tag=100))

    def test_both_wildcards_match_everything_in_comm(self):
        req = ReceiveRequest()
        assert req.matches(MessageEnvelope(source=0, tag=0))
        assert req.matches(MessageEnvelope(source=9, tag=9))

    def test_communicator_isolation(self):
        req = ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG, comm=1)
        assert not req.matches(MessageEnvelope(source=0, tag=0, comm=0))
        assert req.matches(MessageEnvelope(source=0, tag=0, comm=1))

    def test_wildcard_class(self):
        assert ReceiveRequest(source=1, tag=1).wildcard_class() is WildcardClass.NONE
        assert ReceiveRequest(tag=1).wildcard_class() is WildcardClass.SOURCE
        assert ReceiveRequest(source=1).wildcard_class() is WildcardClass.TAG
        assert ReceiveRequest().wildcard_class() is WildcardClass.BOTH

    def test_handle_not_part_of_equality(self):
        a = ReceiveRequest(source=1, tag=1, handle=5)
        b = ReceiveRequest(source=1, tag=1, handle=9)
        assert a == b

    @given(
        st.integers(0, 5),
        st.integers(0, 5),
        st.integers(-1, 5),
        st.integers(-1, 5),
    )
    def test_matching_definition(self, msrc, mtag, rsrc, rtag):
        req = ReceiveRequest(source=rsrc, tag=rtag)
        msg = MessageEnvelope(source=msrc, tag=mtag)
        expected = (rsrc in (ANY_SOURCE, msrc)) and (rtag in (ANY_TAG, mtag))
        assert req.matches(msg) == expected

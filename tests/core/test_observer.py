"""Tests for the engine observability hook."""

from repro.core import EngineConfig, MessageEnvelope, OptimisticMatcher, ReceiveRequest


def build(log, **cfg):
    params = dict(bins=8, block_threads=4, max_receives=64)
    params.update(cfg)
    return OptimisticMatcher(
        EngineConfig(**params), observer=lambda event, data: log.append((event, data))
    )


class TestObserver:
    def test_consume_events_in_decision_order(self):
        log = []
        engine = build(log)
        for i in range(4):
            engine.post_receive(ReceiveRequest(source=0, tag=i))
        for i in range(4):
            engine.submit_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        engine.process_all()
        consumes = [data for event, data in log if event == "consume"]
        assert len(consumes) == 4
        assert all(data["path"] == "optimistic" for data in consumes)

    def test_block_end_summarizes(self):
        log = []
        engine = build(log, early_booking_check=False)
        for _ in range(4):
            engine.post_receive(ReceiveRequest(source=0, tag=7))
        for i in range(4):
            engine.submit_message(MessageEnvelope(source=0, tag=7, send_seq=i))
        engine.process_all()
        (block_end,) = [data for event, data in log if event == "block_end"]
        assert block_end["messages"] == 4
        assert block_end["conflicts"] > 0
        assert block_end["fast"] + block_end["slow"] > 0

    def test_unexpected_events(self):
        log = []
        engine = build(log)
        engine.submit_message(MessageEnvelope(source=3, tag=9))
        engine.process_all()
        (unexpected,) = [data for event, data in log if event == "unexpected"]
        assert unexpected == {"thread": 0, "source": 3, "tag": 9}

    def test_no_observer_no_cost(self):
        engine = OptimisticMatcher(EngineConfig(bins=8, block_threads=4, max_receives=64))
        engine.submit_message(MessageEnvelope(source=0, tag=0))
        engine.process_all()  # must simply not raise

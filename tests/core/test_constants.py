"""Tests for wildcard classification."""

import pytest

from repro.core.constants import ANY_SOURCE, ANY_TAG, WildcardClass, classify


@pytest.mark.parametrize(
    ("source", "tag", "expected"),
    [
        (0, 0, WildcardClass.NONE),
        (5, 99, WildcardClass.NONE),
        (ANY_SOURCE, 7, WildcardClass.SOURCE),
        (3, ANY_TAG, WildcardClass.TAG),
        (ANY_SOURCE, ANY_TAG, WildcardClass.BOTH),
    ],
)
def test_classify(source, tag, expected):
    assert classify(source, tag) is expected


def test_wildcard_sentinels_are_negative():
    # Real ranks/tags are non-negative; the sentinels must not collide.
    assert ANY_SOURCE < 0
    assert ANY_TAG < 0

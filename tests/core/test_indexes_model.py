"""Model-based property tests: the unexpected-message indexes against
a brute-force reference model."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.indexes import UnexpectedIndexes, UnexpectedMessage

COMMON = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class _ListModel:
    """Reference semantics: a plain arrival-ordered list."""

    def __init__(self):
        self.messages = []

    def insert(self, envelope):
        self.messages.append(envelope)

    def search(self, request):
        for envelope in self.messages:
            if request.matches(envelope):
                return envelope
        return None

    def remove(self, envelope):
        self.messages.remove(envelope)


#: ops: (is_insert, source, tag, wildcard_src, wildcard_tag)
ops_strategy = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 2),
        st.integers(0, 2),
        st.booleans(),
        st.booleans(),
    ),
    max_size=80,
)


class TestUnexpectedIndexesModel:
    @COMMON
    @given(ops=ops_strategy, bins=st.sampled_from([1, 2, 8, 64]))
    def test_matches_reference_model(self, ops, bins):
        indexes = UnexpectedIndexes(bins)
        model = _ListModel()
        arrival = 0
        live: dict[int, UnexpectedMessage] = {}
        for is_insert, source, tag, wc_src, wc_tag in ops:
            if is_insert:
                envelope = MessageEnvelope(source=source, tag=tag, arrival=arrival)
                arrival += 1
                um = UnexpectedMessage(envelope=envelope)
                indexes.insert(um)
                model.insert(envelope)
                live[envelope.arrival] = um
            else:
                request = ReceiveRequest(
                    source=ANY_SOURCE if wc_src else source,
                    tag=ANY_TAG if wc_tag else tag,
                )
                found = indexes.search(request)
                expected = model.search(request)
                if expected is None:
                    assert found is None
                else:
                    assert found is not None
                    assert found.envelope == expected
                    indexes.remove(found)
                    model.remove(expected)
                    del live[found.envelope.arrival]
            assert len(indexes) == len(model.messages)

    @COMMON
    @given(ops=ops_strategy)
    def test_structure_counts_stay_consistent(self, ops):
        """Every message is in all four structures until removed."""
        indexes = UnexpectedIndexes(8)
        count = 0
        for is_insert, source, tag, _w1, _w2 in ops:
            if is_insert:
                indexes.insert(
                    UnexpectedMessage(
                        envelope=MessageEnvelope(source=source, tag=tag, arrival=count)
                    )
                )
                count += 1
            elif count > 0:
                found = indexes.search(ReceiveRequest())  # catch-all
                if found is not None:
                    indexes.remove(found)
                    count -= 1
            assert indexes.no_wildcard.total_live() == count
            assert indexes.source_wildcard.total_live() == count
            assert indexes.tag_wildcard.total_live() == count
            assert len(indexes.both_wildcard) == count

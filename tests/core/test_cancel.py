"""Tests for receive cancellation (MPI_Cancel semantics)."""

import pytest

from repro.core import (
    ANY_SOURCE,
    ANY_TAG,
    EngineConfig,
    MessageEnvelope,
    OptimisticMatcher,
    ReceiveRequest,
)


@pytest.fixture
def engine():
    return OptimisticMatcher(EngineConfig(bins=8, block_threads=4, max_receives=32))


class TestCancel:
    def test_cancel_live_receive(self, engine):
        engine.post_receive(ReceiveRequest(source=0, tag=1, handle=10))
        assert engine.cancel_receive(10)
        assert engine.posted_receives == 0
        assert engine.stats.receives_cancelled == 1
        # Slot recycled.
        assert engine.table.in_use == 0

    def test_cancel_unknown_handle(self, engine):
        assert engine.cancel_receive(999) is False

    def test_cancel_wildcard_receive(self, engine):
        engine.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG, handle=7))
        assert engine.cancel_receive(7)
        # A later message goes unexpected rather than matching it.
        engine.submit_message(MessageEnvelope(source=1, tag=1))
        events = engine.process_all()
        assert events[0].kind.value == "stored-unexpected"

    def test_message_in_flight_wins_the_race(self, engine):
        engine.post_receive(ReceiveRequest(source=0, tag=2, handle=5))
        engine.submit_message(MessageEnvelope(source=0, tag=2))
        # Cancel processes pending messages first (§ hardware race):
        # the match completes, cancellation reports failure.
        assert engine.cancel_receive(5) is False
        assert engine.stats.expected_matches == 1

    def test_cancelled_receive_does_not_match(self, engine):
        engine.post_receive(ReceiveRequest(source=0, tag=3, handle=1))
        engine.post_receive(ReceiveRequest(source=0, tag=3, handle=2))
        engine.cancel_receive(1)
        engine.submit_message(MessageEnvelope(source=0, tag=3))
        (event,) = engine.process_all()
        assert event.receive.handle == 2

    def test_cancel_middle_of_compatible_run(self, engine):
        """Cancelling inside a compatible run must not break fast-path
        safety for the remaining receives."""
        for handle in range(4):
            engine.post_receive(ReceiveRequest(source=1, tag=9, handle=handle))
        engine.cancel_receive(1)
        for seq in range(3):
            engine.submit_message(MessageEnvelope(source=1, tag=9, send_seq=seq))
        events = engine.process_all()
        assert [event.receive.handle for event in events] == [0, 2, 3]
        seqs = [event.message.send_seq for event in events]
        assert seqs == sorted(seqs)

    def test_double_cancel(self, engine):
        engine.post_receive(ReceiveRequest(source=0, tag=0, handle=4))
        assert engine.cancel_receive(4)
        assert not engine.cancel_receive(4)
        assert engine.stats.receives_cancelled == 1

"""Mutation testing: the validation suite must catch planted bugs.

If the oracle cross-checks and C1/C2 audits were too weak, a broken
engine would sail through them — and the green property tests would
prove nothing. Each test here drives a deliberately faulty engine
variant and asserts the validation machinery *detects* the fault on at
least one schedule from a fixed seed pool.
"""

import pytest

from repro.core import EngineConfig
from repro.core.faults import (
    NoBarrierEngine,
    NoBookingEngine,
    NoConflictDetectionEngine,
    NoSequenceGuardEngine,
)
from repro.core.threadsim import RandomPolicy
from repro.matching import OptimisticAdapter, ValidationError, cross_validate
from repro.matching.oracle import StreamOp

SEEDS = range(24)


def wc_burst(n=8):
    """Same-key window drained by a same-key burst: the conflict case."""
    ops = [StreamOp.post(0, 7) for _ in range(n)]
    ops += [StreamOp.message(0, 7) for _ in range(n)]
    return ops


def aba_stream():
    """The §III-D.3a interleaved-sequence hazard.

    With 1 bin, the incompatible (0, 1) receive chains *physically
    between* the (0, 0) run members; every message targets (0, 0), so
    all block threads book the head and the fast path fires. A
    sequence-unguarded shift walks straight onto the (0, 1) receive.
    """
    ops = [
        StreamOp.post(0, 0),
        StreamOp.post(0, 1),  # incompatible receive inside the run
        StreamOp.post(0, 0),
        StreamOp.post(0, 0),
        StreamOp.post(0, 0),
    ]
    ops += [StreamOp.message(0, 0) for _ in range(4)]
    return ops


def adapter_with(engine_cls, seed, **config):
    params = dict(
        bins=1, block_threads=4, max_receives=256, early_booking_check=False
    )
    params.update(config)
    adapter = OptimisticAdapter(EngineConfig(**params), policy=RandomPolicy(seed))
    # Swap the engine for the faulty variant, keeping the config.
    adapter.engine = engine_cls(
        EngineConfig(**params), policy=RandomPolicy(seed)
    )
    return adapter


def detects_fault(engine_cls, ops, **config) -> bool:
    """Whether validation flags the faulty engine on any seed."""
    for seed in SEEDS:
        try:
            cross_validate(adapter_with(engine_cls, seed, **config), ops)
        except (ValidationError, AssertionError):
            return True
    return False


class TestFaultsAreDetected:
    def test_no_barrier_breaks_c2(self):
        assert detects_fault(NoBarrierEngine, wc_burst())

    def test_no_conflict_detection_breaks_ordering(self):
        assert detects_fault(NoConflictDetectionEngine, wc_burst())

    def test_no_booking_double_consumes(self):
        """Without bitmap writes, detection sees no conflicts and two
        threads consume the same receive — the assertion layer or the
        oracle comparison must trip."""
        assert detects_fault(NoBookingEngine, wc_burst())

    def test_no_sequence_guard_breaks_c1(self):
        assert detects_fault(
            NoSequenceGuardEngine, aba_stream(), enable_fast_path=True
        )


class TestCorrectEngineSurvivesTheSameGauntlet:
    """Control arm: the real engine passes every seed on the exact
    streams that catch the mutants."""

    @pytest.mark.parametrize("ops", [wc_burst(), aba_stream()], ids=["wc", "aba"])
    def test_real_engine_clean(self, ops):
        for seed in SEEDS:
            adapter = OptimisticAdapter(
                EngineConfig(
                    bins=1,
                    block_threads=4,
                    max_receives=256,
                    early_booking_check=False,
                ),
                policy=RandomPolicy(seed),
            )
            cross_validate(adapter, ops)

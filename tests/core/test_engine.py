"""Behavioural tests for the optimistic matching engine."""

import pytest

from repro.core import (
    ANY_SOURCE,
    ANY_TAG,
    EngineConfig,
    MatchKind,
    MessageEnvelope,
    OptimisticMatcher,
    ReceiveRequest,
    ResolutionPath,
)
from repro.core.descriptor import DescriptorTableFull
from repro.core.engine import HintViolation
from repro.core.hashing import compute_inline_hashes
from repro.core.threadsim import RandomPolicy


def cfg(**kw):
    base = dict(bins=16, block_threads=4, max_receives=128)
    base.update(kw)
    return EngineConfig(**base)


class TestPostReceive:
    def test_indexed_when_no_unexpected(self):
        eng = OptimisticMatcher(cfg())
        assert eng.post_receive(ReceiveRequest(source=0, tag=0)) is None
        assert eng.posted_receives == 1

    def test_drains_unexpected(self):
        eng = OptimisticMatcher(cfg())
        eng.submit_message(MessageEnvelope(source=0, tag=0))
        eng.process_all()
        assert eng.unexpected_count == 1
        event = eng.post_receive(ReceiveRequest(source=0, tag=0))
        assert event is not None and event.kind is MatchKind.UNEXPECTED_DRAIN
        assert eng.unexpected_count == 0
        assert eng.posted_receives == 0

    def test_drain_respects_arrival_order(self):
        eng = OptimisticMatcher(cfg())
        for seq in range(3):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
        eng.process_all()
        event = eng.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG))
        assert event.message.send_seq == 0

    def test_wrong_comm_rejected(self):
        eng = OptimisticMatcher(cfg(), comm=1)
        with pytest.raises(ValueError, match="communicator"):
            eng.post_receive(ReceiveRequest(source=0, tag=0, comm=2))
        with pytest.raises(ValueError, match="communicator"):
            eng.submit_message(MessageEnvelope(source=0, tag=0, comm=0))

    def test_table_overflow_raises(self):
        eng = OptimisticMatcher(cfg(max_receives=2))
        eng.post_receive(ReceiveRequest(source=0, tag=0))
        eng.post_receive(ReceiveRequest(source=0, tag=1))
        with pytest.raises(DescriptorTableFull):
            eng.post_receive(ReceiveRequest(source=0, tag=2))

    def test_slots_recycled_after_match(self):
        eng = OptimisticMatcher(cfg(max_receives=2))
        for round_ in range(5):
            eng.post_receive(ReceiveRequest(source=0, tag=0))
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=round_))
            events = eng.process_all()
            assert events[0].kind is MatchKind.EXPECTED


class TestBlockProcessing:
    def test_empty_block(self):
        eng = OptimisticMatcher(cfg())
        assert eng.process_block() == []

    def test_partial_block(self):
        eng = OptimisticMatcher(cfg(block_threads=8))
        eng.post_receive(ReceiveRequest(source=0, tag=0))
        eng.submit_message(MessageEnvelope(source=0, tag=0))
        events = eng.process_block()
        assert len(events) == 1
        assert events[0].kind is MatchKind.EXPECTED

    def test_multiple_blocks(self):
        eng = OptimisticMatcher(cfg(block_threads=2))
        for i in range(5):
            eng.post_receive(ReceiveRequest(source=0, tag=i))
        for i in range(5):
            eng.submit_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        events = eng.process_all()
        assert len(events) == 5
        assert eng.stats.blocks == 3

    def test_unmatched_goes_unexpected(self):
        eng = OptimisticMatcher(cfg())
        eng.submit_message(MessageEnvelope(source=0, tag=0))
        events = eng.process_all()
        assert events[0].kind is MatchKind.STORED_UNEXPECTED
        assert eng.unexpected_count == 1

    def test_decision_order_is_arrival_order(self):
        eng = OptimisticMatcher(cfg(block_threads=4))
        for i in range(4):
            eng.post_receive(ReceiveRequest(source=0, tag=i))
        for i in range(4):
            eng.submit_message(MessageEnvelope(source=0, tag=3 - i, send_seq=i))
        events = eng.process_all()
        orders = [e.decision_order for e in events]
        assert orders == sorted(orders)


class TestConstraintScenarios:
    def test_c1_oldest_receive_wins_across_indexes(self):
        """Wildcard receive posted before an exact one must win."""
        eng = OptimisticMatcher(cfg())
        eng.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=5))  # label 0
        eng.post_receive(ReceiveRequest(source=1, tag=5))  # label 1
        eng.submit_message(MessageEnvelope(source=1, tag=5))
        (event,) = eng.process_all()
        assert event.receive_post_label == 0

    def test_c2_same_sender_in_order(self):
        eng = OptimisticMatcher(cfg(), policy=RandomPolicy(11))
        for _ in range(4):
            eng.post_receive(ReceiveRequest(source=0, tag=0))
        for seq in range(4):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
        events = eng.process_all()
        labels = [e.receive_post_label for e in events]
        seqs = [e.message.send_seq for e in events]
        assert labels == sorted(labels)
        assert seqs == sorted(seqs)

    def test_interleaved_sequence_hazard(self):
        """§III-D.3a: receive posted between two compatible runs must
        not be jumped over by the fast path."""
        eng = OptimisticMatcher(cfg(), policy=RandomPolicy(3))
        eng.post_receive(ReceiveRequest(source=0, tag=0))  # label 0, seq 0
        eng.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=0))  # label 1, seq 1
        eng.post_receive(ReceiveRequest(source=0, tag=0))  # label 2, seq 2
        for seq in range(3):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
        events = eng.process_all()
        assert [e.receive_post_label for e in events] == [0, 1, 2]


class TestResolutionPaths:
    def test_fast_path_on_compatible_run(self):
        eng = OptimisticMatcher(
            cfg(early_booking_check=False), policy=RandomPolicy(1)
        )
        for _ in range(4):
            eng.post_receive(ReceiveRequest(source=0, tag=0))
        for seq in range(4):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
        eng.process_all()
        # With all four threads booking the head receive, conflicted
        # threads must resolve via the fast path.
        assert eng.stats.conflicts > 0
        assert eng.stats.fast_path > 0
        assert eng.stats.slow_path == 0

    def test_fast_path_disabled_uses_slow(self):
        eng = OptimisticMatcher(
            cfg(early_booking_check=False, enable_fast_path=False),
            policy=RandomPolicy(1),
        )
        for _ in range(4):
            eng.post_receive(ReceiveRequest(source=0, tag=0))
        for seq in range(4):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
        eng.process_all()
        assert eng.stats.fast_path == 0
        assert eng.stats.slow_path > 0

    def test_no_conflicts_all_optimistic(self):
        eng = OptimisticMatcher(cfg())
        for tag in range(4):
            eng.post_receive(ReceiveRequest(source=0, tag=tag))
        for tag in range(4):
            eng.submit_message(MessageEnvelope(source=0, tag=tag, send_seq=tag))
        eng.process_all()
        assert eng.stats.conflicts == 0
        assert eng.stats.optimistic_hits == 4

    def test_early_booking_check_reduces_conflicts(self):
        def conflicts(early):
            eng = OptimisticMatcher(cfg(early_booking_check=early))
            for _ in range(8):
                eng.post_receive(ReceiveRequest(source=0, tag=0))
            for seq in range(8):
                eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
            eng.process_all()
            return eng.stats.conflicts

        # Round-robin schedule: with the check, later threads see the
        # earlier bookings and sidestep the conflict entirely.
        assert conflicts(True) <= conflicts(False)


class TestHints:
    def test_no_any_source_rejects_wildcard_post(self):
        eng = OptimisticMatcher(cfg(assert_no_any_source=True))
        with pytest.raises(HintViolation):
            eng.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=0))

    def test_no_any_tag_rejects_wildcard_post(self):
        eng = OptimisticMatcher(cfg(assert_no_any_tag=True))
        with pytest.raises(HintViolation):
            eng.post_receive(ReceiveRequest(source=0, tag=ANY_TAG))

    def test_hinted_engine_probes_fewer_buckets(self):
        def buckets(**hints):
            eng = OptimisticMatcher(cfg(**hints))
            for tag in range(8):
                eng.post_receive(ReceiveRequest(source=0, tag=tag))
            for tag in range(8):
                eng.submit_message(MessageEnvelope(source=0, tag=tag, send_seq=tag))
            eng.process_all()
            return eng.stats.buckets_probed

        full = buckets()
        hinted = buckets(assert_no_any_source=True, assert_no_any_tag=True)
        assert hinted < full

    def test_allow_overtaking_matches_everything(self):
        eng = OptimisticMatcher(cfg(allow_overtaking=True), policy=RandomPolicy(5))
        for _ in range(8):
            eng.post_receive(ReceiveRequest(source=0, tag=0))
        for seq in range(8):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
        events = eng.process_all()
        assert all(e.kind is MatchKind.EXPECTED for e in events)
        # Every posted receive consumed exactly once.
        labels = sorted(e.receive_post_label for e in events)
        assert labels == list(range(8))


class TestOptimizations:
    def test_inline_hashes_skip_hash_compute(self):
        def hashes(inline):
            eng = OptimisticMatcher(cfg())
            eng.post_receive(ReceiveRequest(source=0, tag=0))
            msg = MessageEnvelope(
                source=0,
                tag=0,
                inline_hashes=compute_inline_hashes(0, 0) if inline else None,
            )
            eng.submit_message(msg)
            eng.process_all()
            return eng.stats.hashes_computed

        assert hashes(inline=True) < hashes(inline=False)

    def test_lazy_removal_defers_sweep(self):
        eng = OptimisticMatcher(cfg(lazy_removal=True, block_threads=2))
        eng.post_receive(ReceiveRequest(source=0, tag=0))
        eng.submit_message(MessageEnvelope(source=0, tag=0))
        eng.process_all()
        # One consumed node, below the sweep threshold: still linked.
        assert eng.indexes.no_wildcard.bucket_at(0) is not None
        total_physical = sum(
            b.physical_length for b in eng.indexes.no_wildcard
        )
        assert total_physical == 1

    def test_eager_removal_sweeps_each_block(self):
        eng = OptimisticMatcher(cfg(lazy_removal=False))
        eng.post_receive(ReceiveRequest(source=0, tag=0))
        eng.submit_message(MessageEnvelope(source=0, tag=0))
        eng.process_all()
        total_physical = sum(
            b.physical_length for b in eng.indexes.no_wildcard
        )
        assert total_physical == 0


class TestStats:
    def test_message_and_block_counts(self):
        eng = OptimisticMatcher(cfg(block_threads=4))
        for i in range(10):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=i))
        eng.process_all()
        assert eng.stats.messages == 10
        assert eng.stats.blocks == 3
        assert eng.stats.unexpected_stored == 10

    def test_history_disabled_by_default(self):
        eng = OptimisticMatcher(cfg())
        eng.submit_message(MessageEnvelope(source=0, tag=0))
        eng.process_all()
        assert eng.stats.block_history == []

    def test_history_enabled(self):
        eng = OptimisticMatcher(cfg(), keep_history=True)
        eng.submit_message(MessageEnvelope(source=0, tag=0))
        eng.process_all()
        assert len(eng.stats.block_history) == 1


class TestExportState:
    def test_export_orders_receives_and_unexpected(self):
        eng = OptimisticMatcher(cfg())
        eng.post_receive(ReceiveRequest(source=0, tag=1))
        eng.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=2))
        eng.post_receive(ReceiveRequest(source=3, tag=ANY_TAG))
        eng.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG))
        for seq in range(2):
            eng.submit_message(MessageEnvelope(source=9, tag=9, send_seq=seq))
        eng.process_all()
        receives, unexpected = eng.export_state()
        # The (ANY, ANY) receive (label 3) matched the first message;
        # the second message went unexpected.
        assert [label for label, _ in receives] == [0, 1, 2]
        assert [m.send_seq for m in unexpected] == [1]

"""Tests for the receive indexes and unexpected-message indexes."""

import pytest

from repro.core.constants import ANY_SOURCE, ANY_TAG, WildcardClass
from repro.core.descriptor import DescriptorTable
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.indexes import ReceiveIndexes, UnexpectedIndexes, UnexpectedMessage


@pytest.fixture
def table():
    return DescriptorTable(64, 4)


@pytest.fixture
def indexes():
    return ReceiveIndexes(bins=8)


def post(indexes, table, source, tag, label, seq=0):
    d = table.allocate(ReceiveRequest(source=source, tag=tag), label, seq)
    indexes.insert(d)
    return d


class TestReceiveIndexes:
    def test_insert_selects_structure(self, indexes, table):
        post(indexes, table, 1, 2, 0)
        post(indexes, table, ANY_SOURCE, 2, 1)
        post(indexes, table, 1, ANY_TAG, 2)
        post(indexes, table, ANY_SOURCE, ANY_TAG, 3)
        assert indexes.no_wildcard.total_live() == 1
        assert indexes.source_wildcard.total_live() == 1
        assert indexes.tag_wildcard.total_live() == 1
        assert len(indexes.both_wildcard) == 1
        assert indexes.total_live() == 4

    def test_candidate_chains_four_targets(self, indexes):
        msg = MessageEnvelope(source=1, tag=2)
        chains = indexes.candidate_chains(msg)
        assert [wc for wc, _, _ in chains] == [
            WildcardClass.NONE,
            WildcardClass.SOURCE,
            WildcardClass.TAG,
            WildcardClass.BOTH,
        ]

    def test_candidate_predicates(self, indexes, table):
        d_exact = post(indexes, table, 1, 2, 0)
        d_src = post(indexes, table, ANY_SOURCE, 2, 1)
        d_tag = post(indexes, table, 1, ANY_TAG, 2)
        d_both = post(indexes, table, ANY_SOURCE, ANY_TAG, 3)
        msg = MessageEnvelope(source=1, tag=2)
        found = []
        for wc, chain, pred in indexes.candidate_chains(msg):
            for descr in chain:
                if pred(descr):
                    found.append(descr)
                    break
        assert found == [d_exact, d_src, d_tag, d_both]

    def test_predicate_rejects_collisions(self, indexes, table):
        # Two different keys can land in the same bucket with 8 bins;
        # the predicate must filter them.
        post(indexes, table, 5, 9, 0)
        msg = MessageEnvelope(source=1, tag=2)
        for wc, chain, pred in indexes.candidate_chains(msg):
            if wc is WildcardClass.NONE:
                assert all(not pred(d) for d in chain)

    def test_consume_lazy_then_sweep(self, indexes, table):
        d = post(indexes, table, 1, 2, 0)
        indexes.consume(d, lazy=True)
        assert d.consumed
        assert indexes.total_live() == 0
        assert d.node.owner is not None  # still physically linked
        removed = indexes.sweep()
        assert removed == 1

    def test_consume_eager_unlinks(self, indexes, table):
        d = post(indexes, table, 1, 2, 0)
        indexes.consume(d, lazy=False)
        assert d.node is None
        assert indexes.sweep() == 0


class TestUnexpectedIndexes:
    def test_message_indexed_everywhere(self):
        um_idx = UnexpectedIndexes(bins=8)
        um = UnexpectedMessage(MessageEnvelope(source=1, tag=2))
        um_idx.insert(um)
        assert len(um_idx) == 1
        assert um_idx.no_wildcard.total_live() == 1
        assert um_idx.source_wildcard.total_live() == 1
        assert um_idx.tag_wildcard.total_live() == 1
        assert len(um_idx.both_wildcard) == 1

    @pytest.mark.parametrize(
        ("source", "tag"),
        [(1, 2), (ANY_SOURCE, 2), (1, ANY_TAG), (ANY_SOURCE, ANY_TAG)],
    )
    def test_search_finds_by_any_wildcard_class(self, source, tag):
        um_idx = UnexpectedIndexes(bins=8)
        um = UnexpectedMessage(MessageEnvelope(source=1, tag=2))
        um_idx.insert(um)
        assert um_idx.search(ReceiveRequest(source=source, tag=tag)) is um

    def test_search_misses(self):
        um_idx = UnexpectedIndexes(bins=8)
        um_idx.insert(UnexpectedMessage(MessageEnvelope(source=1, tag=2)))
        assert um_idx.search(ReceiveRequest(source=1, tag=3)) is None
        assert um_idx.search(ReceiveRequest(source=2, tag=2)) is None

    def test_search_returns_oldest_arrival(self):
        um_idx = UnexpectedIndexes(bins=8)
        first = UnexpectedMessage(MessageEnvelope(source=1, tag=2, arrival=0))
        second = UnexpectedMessage(MessageEnvelope(source=1, tag=2, arrival=1))
        um_idx.insert(first)
        um_idx.insert(second)
        assert um_idx.search(ReceiveRequest(source=1, tag=2)) is first
        assert um_idx.search(ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG)) is first

    def test_remove_clears_all_structures(self):
        um_idx = UnexpectedIndexes(bins=8)
        um = UnexpectedMessage(MessageEnvelope(source=1, tag=2))
        um_idx.insert(um)
        um_idx.remove(um)
        assert len(um_idx) == 0
        assert um_idx.no_wildcard.total_live() == 0
        assert len(um_idx.both_wildcard) == 0
        assert um_idx.search(ReceiveRequest()) is None

    def test_double_remove_rejected(self):
        um_idx = UnexpectedIndexes(bins=8)
        um = UnexpectedMessage(MessageEnvelope(source=1, tag=2))
        um_idx.insert(um)
        um_idx.remove(um)
        with pytest.raises(ValueError):
            um_idx.remove(um)

    def test_probe_accounting(self):
        from repro.core.indexes import SearchProbeCount

        um_idx = UnexpectedIndexes(bins=8)
        for i in range(3):
            um_idx.insert(
                UnexpectedMessage(MessageEnvelope(source=1, tag=2, arrival=i))
            )
        probes = SearchProbeCount()
        um_idx.search(ReceiveRequest(source=9, tag=9), probes)
        assert probes.buckets == 1
        # Bucket for (9, 9) may collide with (1, 2) entries or not;
        # walked is bounded by the store size.
        assert 0 <= probes.walked <= 3


class TestHashTableStatistics:
    def test_depths_and_empty_fraction(self):
        idx = ReceiveIndexes(bins=4)
        table = DescriptorTable(16, 4)
        for i in range(4):
            post(idx, table, 1, 2, i)  # same key -> same bucket
        depths = idx.no_wildcard.depths()
        assert sum(depths) == 4
        assert max(depths) == 4
        assert idx.no_wildcard.empty_fraction() == 3 / 4

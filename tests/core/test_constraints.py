"""Property tests: the optimistic engine upholds MPI matching
semantics for *any* operation stream under *any* thread interleaving.

These are the reproduction's core correctness theorems:

* **Oracle equivalence** — the engine's message->receive pairings
  equal the traditional linked-list matcher's, which trivially
  implements C1/C2.
* **Schedule independence** — the above holds when hypothesis chooses
  the thread schedule adversarially (ScriptedPolicy), not just for
  round-robin.
* **Conservation** — receives and messages are conserved: nothing is
  matched twice, dropped, or invented.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, MatchKind
from repro.core.threadsim import RandomPolicy, ScriptedPolicy
from repro.matching import ListMatcher, OptimisticAdapter
from repro.matching.oracle import check_c2, cross_validate, pairings, run_stream
from tests.conftest import op_streams, schedules

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_adapter(policy, bins=4, block_threads=4):
    return OptimisticAdapter(
        EngineConfig(bins=bins, block_threads=block_threads, max_receives=4096),
        policy=policy,
    )


class TestOracleEquivalence:
    @COMMON
    @given(ops=op_streams())
    def test_round_robin_schedule(self, ops):
        cross_validate(make_adapter(None), ops)

    @COMMON
    @given(ops=op_streams(), seed=st.integers(0, 2**16))
    def test_random_schedules(self, ops, seed):
        cross_validate(make_adapter(RandomPolicy(seed)), ops)

    @COMMON
    @given(ops=op_streams(max_size=40), script=schedules)
    def test_adversarial_scripted_schedules(self, ops, script):
        cross_validate(make_adapter(ScriptedPolicy(script)), ops)

    @COMMON
    @given(ops=op_streams(), bins=st.sampled_from([1, 2, 8, 64]))
    def test_any_bin_count(self, ops, bins):
        cross_validate(make_adapter(None, bins=bins), ops)

    @COMMON
    @given(ops=op_streams(), width=st.sampled_from([1, 2, 3, 8, 33]))
    def test_any_block_width(self, ops, width):
        cross_validate(make_adapter(None, block_threads=width), ops)

    @COMMON
    @given(ops=op_streams(allow_wildcards=False), seed=st.integers(0, 2**16))
    def test_wildcard_free_streams(self, ops, seed):
        cross_validate(make_adapter(RandomPolicy(seed)), ops)

    @COMMON
    @given(ops=op_streams(max_rank=0, max_tag=0), seed=st.integers(0, 2**16))
    def test_single_key_streams_maximal_conflicts(self, ops, seed):
        """Every op shares one key: the with-conflict worst case."""
        cross_validate(make_adapter(RandomPolicy(seed)), ops)


class TestOptimizationTogglesPreserveSemantics:
    @COMMON
    @given(
        ops=op_streams(max_size=40),
        early=st.booleans(),
        fast=st.booleans(),
        lazy=st.booleans(),
        seed=st.integers(0, 2**10),
    )
    def test_all_toggle_combinations(self, ops, early, fast, lazy, seed):
        adapter = OptimisticAdapter(
            EngineConfig(
                bins=4,
                block_threads=4,
                max_receives=4096,
                early_booking_check=early,
                enable_fast_path=fast,
                lazy_removal=lazy,
            ),
            policy=RandomPolicy(seed),
        )
        cross_validate(adapter, ops)


class TestConservation:
    @COMMON
    @given(ops=op_streams(), seed=st.integers(0, 2**16))
    def test_each_receive_consumed_at_most_once(self, ops, seed):
        events = run_stream(make_adapter(RandomPolicy(seed)), ops)
        matched_handles = [
            e.receive.handle for e in events if e.kind is not MatchKind.STORED_UNEXPECTED
        ]
        assert len(matched_handles) == len(set(matched_handles))

    @COMMON
    @given(ops=op_streams(), seed=st.integers(0, 2**16))
    def test_every_message_accounted(self, ops, seed):
        adapter = make_adapter(RandomPolicy(seed))
        events = run_stream(adapter, ops)
        n_messages = sum(1 for op in ops if op.kind == "message")
        decided = pairings(events)
        assert len(decided) == n_messages
        matched = sum(1 for v in decided.values() if v is not None)
        assert matched + adapter.unexpected_count == n_messages

    @COMMON
    @given(ops=op_streams(), seed=st.integers(0, 2**16))
    def test_final_queue_sizes_match_oracle(self, ops, seed):
        oracle = ListMatcher()
        run_stream(oracle, ops)
        adapter = make_adapter(RandomPolicy(seed))
        run_stream(adapter, ops)
        assert adapter.posted_count == oracle.posted_count
        assert adapter.unexpected_count == oracle.unexpected_count


class TestC2Audit:
    @COMMON
    @given(ops=op_streams(), seed=st.integers(0, 2**16))
    def test_c2_holds_directly(self, ops, seed):
        events = run_stream(make_adapter(RandomPolicy(seed)), ops)
        check_c2(events)

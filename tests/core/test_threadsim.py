"""Tests for the stepped-thread executor and schedule policies."""

import pytest
from hypothesis import given

from repro.core.threadsim import (
    DeadlockError,
    RandomPolicy,
    RoundRobinPolicy,
    ScriptedPolicy,
    SteppedExecutor,
)
from tests.conftest import schedules


def worker(log, tid, steps):
    for i in range(steps):
        log.append((tid, i))
        yield None


class TestBasicExecution:
    def test_all_threads_complete(self):
        log = []
        SteppedExecutor().run([worker(log, 0, 3), worker(log, 1, 2)])
        assert sorted(log) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]

    def test_round_robin_interleaves(self):
        log = []
        SteppedExecutor(RoundRobinPolicy()).run([worker(log, 0, 2), worker(log, 1, 2)])
        assert log == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_empty_thread_list(self):
        stats = SteppedExecutor().run([])
        assert stats.total_steps() == 0

    def test_zero_step_thread(self):
        def empty():
            return
            yield  # pragma: no cover - makes this a generator

        SteppedExecutor().run([empty()])

    def test_stats_count_steps(self):
        log = []
        stats = SteppedExecutor().run([worker(log, 0, 5)])
        # 5 yields plus the final resume that finishes the generator.
        assert stats.steps[0] == 6


class TestWaitConditions:
    def test_wait_until_flag(self):
        state = {"flag": False}
        order = []

        def setter():
            yield None
            state["flag"] = True
            order.append("set")

        def waiter():
            yield lambda: state["flag"]
            order.append("woke")

        SteppedExecutor(RoundRobinPolicy()).run([waiter(), setter()])
        assert order == ["set", "woke"]

    def test_deadlock_detected(self):
        def stuck():
            yield lambda: False

        with pytest.raises(DeadlockError):
            SteppedExecutor().run([stuck()])

    def test_mutual_wait_deadlock(self):
        a_done = {"v": False}
        b_done = {"v": False}

        def thread_a():
            yield lambda: b_done["v"]
            a_done["v"] = True

        def thread_b():
            yield lambda: a_done["v"]
            b_done["v"] = True

        with pytest.raises(DeadlockError):
            SteppedExecutor().run([thread_a(), thread_b()])

    def test_livelock_guard(self):
        def spinner():
            while True:
                yield None

        with pytest.raises(RuntimeError, match="steps"):
            SteppedExecutor(max_steps=100).run([spinner()])


class TestPolicies:
    def test_random_policy_reproducible(self):
        def run(seed):
            log = []
            SteppedExecutor(RandomPolicy(seed)).run(
                [worker(log, 0, 5), worker(log, 1, 5), worker(log, 2, 5)]
            )
            return log

        assert run(3) == run(3)

    def test_random_policy_seeds_differ(self):
        def run(seed):
            log = []
            SteppedExecutor(RandomPolicy(seed)).run(
                [worker(log, 0, 10), worker(log, 1, 10)]
            )
            return log

        assert any(run(a) != run(b) for a, b in [(1, 2), (3, 4), (5, 6)])

    def test_scripted_policy_follows_script(self):
        log = []
        # Always pick the highest runnable thread (index 1 of 2, then
        # the remaining one).
        policy = ScriptedPolicy([1] * 10)
        SteppedExecutor(policy).run([worker(log, 0, 2), worker(log, 1, 2)])
        assert log[:2] == [(1, 0), (1, 1)]

    def test_scripted_policy_exhausted_falls_back(self):
        log = []
        SteppedExecutor(ScriptedPolicy([])).run([worker(log, 0, 2), worker(log, 1, 2)])
        assert log == [(0, 0), (0, 1), (1, 0), (1, 1)]

    @given(schedules)
    def test_any_script_completes_all_threads(self, script):
        log = []
        SteppedExecutor(ScriptedPolicy(script)).run(
            [worker(log, t, 3) for t in range(4)]
        )
        assert len(log) == 12

"""Surgical tests of the §III-D.3 conflict-resolution machinery."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    EngineConfig,
    MessageEnvelope,
    OptimisticMatcher,
    ReceiveRequest,
)
from repro.core.conflict import fast_path_eligible, fast_path_target
from repro.core.descriptor import DescriptorTable
from repro.core.indexes import ReceiveIndexes
from repro.core.threadsim import RandomPolicy, ScriptedPolicy
from repro.util.counters import SequenceLabeler


def build_run(keys):
    """Index a posting sequence; returns the descriptors."""
    indexes = ReceiveIndexes(bins=8)
    table = DescriptorTable(64, 8)
    labeler = SequenceLabeler()
    descriptors = []
    for label, (source, tag) in enumerate(keys):
        descr = table.allocate(
            ReceiveRequest(source=source, tag=tag), label, labeler.label(source, tag)
        )
        indexes.insert(descr)
        descriptors.append(descr)
    return descriptors


class TestFastPathTarget:
    def test_shift_within_run(self):
        descriptors = build_run([(0, 7)] * 5)
        head = descriptors[0]
        assert fast_path_target(head, 1) is descriptors[1]
        assert fast_path_target(head, 4) is descriptors[4]

    def test_offset_beyond_run_returns_none(self):
        descriptors = build_run([(0, 7)] * 3)
        assert fast_path_target(descriptors[0], 3) is None

    def test_sequence_boundary_aborts(self):
        # Same bucket would be required; different key = different
        # sequence, so the shift must stop even if chained together.
        descriptors = build_run([(0, 7), (0, 7), (0, 7)])
        # Simulate an interleaved incompatible post by bumping the
        # third receive's sequence id (what the host labeler would do).
        descriptors[2].sequence_id += 1
        assert fast_path_target(descriptors[0], 2) is None
        assert fast_path_target(descriptors[0], 1) is descriptors[1]

    def test_marked_nodes_count_as_offsets(self):
        """Lower threads mark their targets concurrently; offsets keep
        counting physically present nodes."""
        descriptors = build_run([(0, 7)] * 4)
        node = descriptors[1].node
        node.owner.mark(node)  # thread 1 already consumed its target
        descriptors[1].consumed = True
        assert fast_path_target(descriptors[0], 2) is descriptors[2]

    def test_offset_zero_invalid(self):
        descriptors = build_run([(0, 7)] * 2)
        assert fast_path_target(descriptors[0], 0) is None


class TestFastPathEligibility:
    def test_requires_full_booking(self):
        descriptors = build_run([(0, 7)] * 2)
        head = descriptors[0]
        head.booking.set(0)
        assert not fast_path_eligible(head, active_threads=3)
        head.booking.set(1)
        head.booking.set(2)
        assert fast_path_eligible(head, active_threads=3)

    def test_partial_block_uses_active_count(self):
        descriptors = build_run([(0, 7)] * 2)
        head = descriptors[0]
        head.booking.set(0)
        head.booking.set(1)
        # Block of 8 threads but only 2 messages active.
        assert fast_path_eligible(head, active_threads=2)


class TestEngineSequenceHazards:
    """End-to-end versions of the §III-D.3a hazard under many
    schedules: the A-B-A posting pattern where the fast path must not
    jump across the interleaved B receive."""

    @pytest.mark.parametrize("seed", range(8))
    def test_aba_posting_pattern(self, seed):
        eng = OptimisticMatcher(
            EngineConfig(
                bins=4, block_threads=4, max_receives=64, early_booking_check=False
            ),
            policy=RandomPolicy(seed),
        )
        eng.post_receive(ReceiveRequest(source=0, tag=0))  # label 0 seq 0
        eng.post_receive(ReceiveRequest(source=0, tag=1))  # label 1 seq 1
        eng.post_receive(ReceiveRequest(source=0, tag=0))  # label 2 seq 2
        eng.post_receive(ReceiveRequest(source=0, tag=0))  # label 3 seq 2
        for seq in range(3):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
        events = eng.process_all()
        assert [e.receive_post_label for e in events] == [0, 2, 3]

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(script=st.lists(st.integers(0, 1000), max_size=120))
    def test_compatible_run_any_schedule(self, script):
        """A pure compatible run drained by a same-size burst: labels
        must come out in order whatever the schedule does."""
        eng = OptimisticMatcher(
            EngineConfig(
                bins=4, block_threads=4, max_receives=64, early_booking_check=False
            ),
            policy=ScriptedPolicy(script),
        )
        for _ in range(4):
            eng.post_receive(ReceiveRequest(source=1, tag=9))
        for seq in range(4):
            eng.submit_message(MessageEnvelope(source=1, tag=9, send_seq=seq))
        events = eng.process_all()
        assert [e.receive_post_label for e in events] == [0, 1, 2, 3]
        assert [e.message.send_seq for e in events] == [0, 1, 2, 3]


class TestSlowPathCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_slow_path_without_fast(self, seed):
        eng = OptimisticMatcher(
            EngineConfig(
                bins=4,
                block_threads=4,
                max_receives=64,
                early_booking_check=False,
                enable_fast_path=False,
            ),
            policy=RandomPolicy(seed),
        )
        for _ in range(8):
            eng.post_receive(ReceiveRequest(source=0, tag=0))
        for seq in range(8):
            eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=seq))
        events = eng.process_all()
        assert [e.receive_post_label for e in events] == list(range(8))
        assert eng.stats.fast_path == 0

    def test_slow_path_rematch_after_steal(self):
        """A thread whose candidate is consumed by a lower thread's
        re-match must find the next live receive."""
        eng = OptimisticMatcher(
            EngineConfig(
                bins=1,  # force every key into one bucket
                block_threads=3,
                max_receives=64,
                early_booking_check=False,
                enable_fast_path=False,
            ),
        )
        eng.post_receive(ReceiveRequest(source=0, tag=0))
        eng.post_receive(ReceiveRequest(source=0, tag=1))
        eng.post_receive(ReceiveRequest(source=0, tag=0))
        eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=0))
        eng.submit_message(MessageEnvelope(source=0, tag=1, send_seq=0))
        eng.submit_message(MessageEnvelope(source=0, tag=0, send_seq=1))
        events = eng.process_all()
        assert [e.receive_post_label for e in events] == [0, 1, 2]

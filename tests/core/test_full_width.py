"""Full-hardware-width tests: blocks at the BF3's 256 threads.

The prototype uses 32 threads ("limited by the bookkeeping bitmap
size", §VI); the simulation carries no such word-size limit, so the
engine is exercised at the DPA's full 256 hardware threads to show
the protocol itself scales with the bitmap.
"""

from repro.core import (
    EngineConfig,
    MessageEnvelope,
    OptimisticMatcher,
    ReceiveRequest,
)
from repro.dpa import BF3_THREADS, DpaMachine


class TestFullWidthBlocks:
    def test_256_thread_clean_block(self):
        engine = OptimisticMatcher(
            EngineConfig(bins=1024, block_threads=BF3_THREADS, max_receives=512)
        )
        for i in range(BF3_THREADS):
            engine.post_receive(ReceiveRequest(source=0, tag=i))
        for i in range(BF3_THREADS):
            engine.submit_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        events = engine.process_all()
        assert len(events) == BF3_THREADS
        assert engine.stats.blocks == 1
        assert engine.stats.conflicts == 0

    def test_256_thread_full_conflict_block(self):
        """Worst case: 256 threads chasing one compatible run."""
        engine = OptimisticMatcher(
            EngineConfig(
                bins=1024,
                block_threads=BF3_THREADS,
                max_receives=512,
                early_booking_check=False,
            )
        )
        for _ in range(BF3_THREADS):
            engine.post_receive(ReceiveRequest(source=0, tag=7))
        for i in range(BF3_THREADS):
            engine.submit_message(MessageEnvelope(source=0, tag=7, send_seq=i))
        events = engine.process_all()
        labels = [event.receive_post_label for event in events]
        assert labels == list(range(BF3_THREADS))
        # Fast path resolves the conflicted tail.
        assert engine.stats.fast_path > 0

    def test_machine_accepts_full_width(self):
        machine = DpaMachine(
            EngineConfig(bins=1024, block_threads=BF3_THREADS, max_receives=512)
        )
        for i in range(BF3_THREADS):
            machine.post_receive(ReceiveRequest(source=0, tag=i))
            machine.deliver(MessageEnvelope(source=0, tag=i, send_seq=i))
        machine.run()
        assert machine.report.messages == BF3_THREADS

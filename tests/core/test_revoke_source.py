"""Dead-peer UMQ revocation: ``OptimisticMatcher.revoke_source``."""

from repro.core import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest

CONFIG = EngineConfig(bins=4, block_threads=4, max_receives=64)


def engine_with_unexpected():
    """Unexpected messages parked from two sources, none matched."""
    engine = OptimisticMatcher(CONFIG)
    for seq, (source, tag) in enumerate([(3, 0), (3, 1), (5, 0)]):
        engine.submit_message(MessageEnvelope(source=source, tag=tag, send_seq=seq))
    engine.process_all()
    assert engine.unexpected_count == 3
    return engine


class TestRevokeSource:
    def test_purges_only_the_dead_source(self):
        engine = engine_with_unexpected()
        assert engine.revoke_source(3) == 2
        assert engine.unexpected_count == 1
        # The survivor's message still matches a later receive.
        event = engine.post_receive(ReceiveRequest(source=5, tag=0, handle=0))
        assert event is not None and event.message.source == 5

    def test_revoked_entries_never_match_again(self):
        engine = engine_with_unexpected()
        engine.revoke_source(3)
        engine.post_receive(ReceiveRequest(source=3, tag=0, handle=1))
        assert engine.process_all() == []
        assert engine.posted_receives == 1  # still parked, nothing to pair

    def test_in_flight_message_wins_the_race(self):
        """A message still pending when the revoke lands is processed
        first — as it would be on hardware — then dropped from the UMQ."""
        engine = OptimisticMatcher(CONFIG)
        engine.submit_message(MessageEnvelope(source=3, tag=0, send_seq=0))
        assert engine.pending_messages == 1
        assert engine.revoke_source(3) == 1
        assert engine.pending_messages == 0
        assert engine.unexpected_count == 0

    def test_revoking_absent_source_is_a_noop(self):
        engine = engine_with_unexpected()
        assert engine.revoke_source(9) == 0
        assert engine.unexpected_count == 3

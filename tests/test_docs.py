"""Documentation accuracy guards.

The README's quickstart must actually run, and the documented CLI
entry points must exist — docs that drift from the code are worse
than no docs.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_snippet_runs(self, capsys):
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = python_blocks(readme)
        assert blocks, "README must contain a python quickstart"
        exec(compile(blocks[0], "<README quickstart>", "exec"), {})
        out = capsys.readouterr().out
        assert "optimistic" in out

    def test_documented_commands_exist(self):
        import tomllib

        pyproject = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        scripts = pyproject["project"]["scripts"]
        readme = (REPO_ROOT / "README.md").read_text()
        for command in (
            "repro-analyze",
            "repro-fleet",
            "repro-msgrate",
            "repro-reproduce",
        ):
            assert command in scripts, command
            assert command in readme, command
            # And the target is importable with a callable main().
            module_path, _, attr = scripts[command].partition(":")
            module = __import__(module_path, fromlist=[attr])
            assert callable(getattr(module, attr))

    def test_documented_files_exist(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for relative in re.findall(r"\]\(([\w/]+\.md)\)", readme):
            assert (REPO_ROOT / relative).exists(), relative


class TestExamplesDocumented:
    def test_every_example_listed_in_examples_readme(self):
        listing = (REPO_ROOT / "examples" / "README.md").read_text()
        for script in sorted((REPO_ROOT / "examples").glob("*.py")):
            assert script.name in listing, script.name

    def test_design_experiment_index_covers_benchmarks(self):
        """Every figure/table benchmark file appears in DESIGN.md or
        EXPERIMENTS.md so the per-experiment index stays complete."""
        design = (REPO_ROOT / "DESIGN.md").read_text()
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        combined = design + experiments
        for bench in sorted((REPO_ROOT / "benchmarks").glob("test_*.py")):
            stem = bench.name
            assert stem in combined or stem.replace("test_", "") in combined, stem

"""Shared fixtures and hypothesis strategies.

The central strategy is :func:`op_streams`: arbitrary interleavings of
receive postings (with all four wildcard combinations) and incoming
messages over small rank/tag domains — small domains maximize key
collisions, which is where matching order bugs live.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.core import ANY_SOURCE, ANY_TAG, EngineConfig
from repro.matching.oracle import StreamOp


@st.composite
def stream_ops(
    draw: st.DrawFn,
    max_rank: int = 3,
    max_tag: int = 2,
    allow_wildcards: bool = True,
) -> StreamOp:
    """One post or message op over a deliberately tiny domain."""
    is_post = draw(st.booleans())
    source = draw(st.integers(min_value=0, max_value=max_rank))
    tag = draw(st.integers(min_value=0, max_value=max_tag))
    if is_post and allow_wildcards:
        wild = draw(st.sampled_from(["none", "none", "src", "tag", "both"]))
        if wild in ("src", "both"):
            source = ANY_SOURCE
        if wild in ("tag", "both"):
            tag = ANY_TAG
    return StreamOp("post" if is_post else "message", source, tag)


def op_streams(
    max_size: int = 60,
    max_rank: int = 3,
    max_tag: int = 2,
    allow_wildcards: bool = True,
) -> st.SearchStrategy[list[StreamOp]]:
    """Lists of interleaved posts/messages for matcher validation."""
    return st.lists(
        stream_ops(max_rank=max_rank, max_tag=max_tag, allow_wildcards=allow_wildcards),
        max_size=max_size,
    )


#: Schedules for the ScriptedPolicy: arbitrary ints, reduced mod the
#: runnable set inside the policy, so any list is a valid schedule.
schedules = st.lists(st.integers(min_value=0, max_value=1_000_000), max_size=200)


@pytest.fixture
def small_config() -> EngineConfig:
    """A small engine configuration that stresses collisions."""
    return EngineConfig(bins=4, block_threads=4, max_receives=256)

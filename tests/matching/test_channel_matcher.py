"""Tests for the NCCL-style channel matcher (§VII extension)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ANY_SOURCE, ANY_TAG, MatchKind, MessageEnvelope, ReceiveRequest
from repro.matching import ChannelMatcher, ChannelSemanticsError, cross_validate
from repro.matching.oracle import StreamOp


class TestSemantics:
    def test_fifo_per_channel(self):
        m = ChannelMatcher()
        for i in range(3):
            m.post_receive(ReceiveRequest(source=0, tag=1, handle=i))
        events = [
            m.incoming_message(MessageEnvelope(source=0, tag=1, send_seq=i))
            for i in range(3)
        ]
        assert [e.receive.handle for e in events] == [0, 1, 2]

    def test_channels_are_independent(self):
        m = ChannelMatcher()
        m.post_receive(ReceiveRequest(source=0, tag=1, handle=10))
        m.post_receive(ReceiveRequest(source=0, tag=2, handle=20))
        event = m.incoming_message(MessageEnvelope(source=0, tag=2))
        assert event.receive.handle == 20

    def test_peers_are_independent(self):
        m = ChannelMatcher()
        m.post_receive(ReceiveRequest(source=0, tag=1, handle=10))
        m.post_receive(ReceiveRequest(source=1, tag=1, handle=11))
        event = m.incoming_message(MessageEnvelope(source=1, tag=1))
        assert event.receive.handle == 11

    def test_unexpected_then_drain(self):
        m = ChannelMatcher()
        m.incoming_message(MessageEnvelope(source=0, tag=0, send_seq=0))
        assert m.unexpected_count == 1
        event = m.post_receive(ReceiveRequest(source=0, tag=0))
        assert event.kind is MatchKind.UNEXPECTED_DRAIN
        assert m.unexpected_count == 0

    @pytest.mark.parametrize(
        ("source", "tag"), [(ANY_SOURCE, 0), (0, ANY_TAG), (ANY_SOURCE, ANY_TAG)]
    )
    def test_wildcards_rejected(self, source, tag):
        with pytest.raises(ChannelSemanticsError):
            ChannelMatcher().post_receive(ReceiveRequest(source=source, tag=tag))

    def test_o1_cost(self):
        """No search whatever the queue depth: the specialization's
        whole point."""
        m = ChannelMatcher()
        for i in range(1000):
            m.post_receive(ReceiveRequest(source=0, tag=i % 4, handle=i))
        m.costs.walked = 0
        m.incoming_message(MessageEnvelope(source=0, tag=3))
        assert m.costs.walked <= 1


class TestEquivalenceOnChannelWorkloads:
    """On wildcard-free FIFO workloads, channel semantics coincide
    with MPI semantics — the oracle must agree."""

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        ops=st.lists(
            st.tuples(
                st.booleans(),
                st.integers(0, 2),
                st.integers(0, 2),
            ),
            max_size=60,
        )
    )
    def test_matches_oracle(self, ops):
        stream = [
            StreamOp.post(src, tag) if is_post else StreamOp.message(src, tag)
            for is_post, src, tag in ops
        ]
        cross_validate(ChannelMatcher(), stream)

"""Tests for the software tag-matching fallback (§III-B/E)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, MatchKind, MessageEnvelope, ReceiveRequest
from repro.matching import FallbackMatcher, cross_validate
from tests.conftest import op_streams


def tiny_fallback(capacity=4):
    return FallbackMatcher(
        EngineConfig(bins=4, block_threads=4, max_receives=capacity)
    )


class TestFallbackTrigger:
    def test_stays_offloaded_under_capacity(self):
        fb = tiny_fallback(capacity=8)
        for tag in range(8):
            fb.post_receive(ReceiveRequest(source=0, tag=tag))
        assert fb.offloaded
        assert fb.fallback_events == 0

    def test_overflow_migrates(self):
        fb = tiny_fallback(capacity=4)
        for tag in range(5):
            fb.post_receive(ReceiveRequest(source=0, tag=tag))
        assert not fb.offloaded
        assert fb.fallback_events == 1
        assert fb.posted_count == 5

    def test_matching_continues_after_migration(self):
        fb = tiny_fallback(capacity=4)
        for tag in range(5):
            fb.post_receive(ReceiveRequest(source=0, tag=tag))
        for tag in range(5):
            event = fb.incoming_message(MessageEnvelope(source=0, tag=tag, send_seq=tag))
            assert event.kind is MatchKind.EXPECTED
        assert fb.posted_count == 0

    def test_unexpected_migrate_too(self):
        fb = tiny_fallback(capacity=2)
        fb.incoming_message(MessageEnvelope(source=9, tag=9, send_seq=0))
        fb.flush()
        for tag in range(3):  # third post overflows
            fb.post_receive(ReceiveRequest(source=0, tag=tag))
        assert not fb.offloaded
        assert fb.unexpected_count == 1
        drain = fb.post_receive(ReceiveRequest(source=9, tag=9))
        assert drain.kind is MatchKind.UNEXPECTED_DRAIN

    def test_labels_preserved_across_migration(self):
        fb = tiny_fallback(capacity=2)
        fb.post_receive(ReceiveRequest(source=0, tag=0))  # label 0
        fb.post_receive(ReceiveRequest(source=0, tag=1))  # label 1
        fb.post_receive(ReceiveRequest(source=0, tag=2))  # overflow -> migrate
        event = fb.incoming_message(MessageEnvelope(source=0, tag=1))
        assert event.receive_post_label == 1

    def test_no_events_lost_across_migration(self):
        fb = tiny_fallback(capacity=2)
        # Buffer a message inside the engine, then overflow on posts.
        fb.incoming_message(MessageEnvelope(source=0, tag=0, send_seq=0))
        fb.post_receive(ReceiveRequest(source=1, tag=1))
        fb.post_receive(ReceiveRequest(source=1, tag=2))
        fb.post_receive(ReceiveRequest(source=1, tag=3))  # overflow
        events = fb.flush()
        kinds = {e.kind for e in events}
        assert MatchKind.STORED_UNEXPECTED in kinds


class TestFallbackSemantics:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops=op_streams(max_size=50), capacity=st.sampled_from([1, 2, 4, 8]))
    def test_oracle_equivalence_across_migration(self, ops, capacity):
        """Fallback at any overflow point must preserve semantics."""
        cross_validate(
            FallbackMatcher(
                EngineConfig(bins=4, block_threads=4, max_receives=capacity)
            ),
            ops,
        )

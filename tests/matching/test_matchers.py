"""Unit tests for the serial baseline matchers."""

import pytest

from repro.core import ANY_SOURCE, ANY_TAG, MatchKind, MessageEnvelope, ReceiveRequest
from repro.matching import BinMatcher, ListMatcher, RankMatcher


@pytest.fixture(params=[ListMatcher, lambda: BinMatcher(8), RankMatcher])
def matcher(request):
    return request.param()


class TestCommonBehaviour:
    def test_message_without_receive_is_unexpected(self, matcher):
        event = matcher.incoming_message(MessageEnvelope(source=0, tag=0))
        assert event.kind is MatchKind.STORED_UNEXPECTED
        assert matcher.unexpected_count == 1

    def test_post_then_message_matches(self, matcher):
        assert matcher.post_receive(ReceiveRequest(source=0, tag=0)) is None
        event = matcher.incoming_message(MessageEnvelope(source=0, tag=0))
        assert event.kind is MatchKind.EXPECTED
        assert matcher.posted_count == 0

    def test_message_then_post_drains(self, matcher):
        matcher.incoming_message(MessageEnvelope(source=0, tag=0))
        event = matcher.post_receive(ReceiveRequest(source=0, tag=0))
        assert event is not None and event.kind is MatchKind.UNEXPECTED_DRAIN
        assert matcher.unexpected_count == 0

    def test_non_matching_tag_stays(self, matcher):
        matcher.post_receive(ReceiveRequest(source=0, tag=1))
        event = matcher.incoming_message(MessageEnvelope(source=0, tag=2))
        assert event.kind is MatchKind.STORED_UNEXPECTED
        assert matcher.posted_count == 1

    def test_wildcard_receive_matches_any(self, matcher):
        matcher.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG))
        event = matcher.incoming_message(MessageEnvelope(source=3, tag=9))
        assert event.kind is MatchKind.EXPECTED

    def test_c1_oldest_receive_first(self, matcher):
        matcher.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=7))
        matcher.post_receive(ReceiveRequest(source=2, tag=7))
        event = matcher.incoming_message(MessageEnvelope(source=2, tag=7))
        assert event.receive.source == ANY_SOURCE

    def test_c2_oldest_unexpected_first(self, matcher):
        for seq in range(3):
            matcher.incoming_message(MessageEnvelope(source=1, tag=0, send_seq=seq))
        event = matcher.post_receive(ReceiveRequest(source=1, tag=0))
        assert event.message.send_seq == 0

    def test_wildcard_drain_takes_oldest_arrival(self, matcher):
        matcher.incoming_message(MessageEnvelope(source=2, tag=5, send_seq=0))
        matcher.incoming_message(MessageEnvelope(source=1, tag=5, send_seq=0))
        event = matcher.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=5))
        assert event.message.source == 2

    def test_decision_order_monotone(self, matcher):
        matcher.post_receive(ReceiveRequest(source=0, tag=0))
        e1 = matcher.incoming_message(MessageEnvelope(source=0, tag=0))
        e2 = matcher.incoming_message(MessageEnvelope(source=0, tag=1))
        assert e1.decision_order < e2.decision_order


class TestCostAccounting:
    def test_list_matcher_walk_grows_with_queue(self):
        m = ListMatcher()
        for tag in range(50):
            m.post_receive(ReceiveRequest(source=0, tag=tag))
        m.costs.walked = 0
        m.incoming_message(MessageEnvelope(source=0, tag=49))
        assert m.costs.walked == 50  # full scan to the tail

    def test_bin_matcher_walk_short_with_bins(self):
        m = BinMatcher(bins=64)
        for tag in range(50):
            m.post_receive(ReceiveRequest(source=0, tag=tag))
        m.costs.walked = 0
        m.incoming_message(MessageEnvelope(source=0, tag=49))
        # Expected bucket depth 50/64 < 1; generous bound for collisions.
        assert m.costs.walked <= 5

    def test_rank_matcher_partitions_by_source(self):
        m = RankMatcher()
        for src in range(10):
            m.post_receive(ReceiveRequest(source=src, tag=0))
        m.costs.walked = 0
        m.incoming_message(MessageEnvelope(source=9, tag=0))
        assert m.costs.walked == 1


class TestListMatcherSeedState:
    def test_seeded_state_behaves_like_posted(self):
        m = ListMatcher()
        m.seed_state(
            [(0, ReceiveRequest(source=0, tag=0)), (1, ReceiveRequest(source=0, tag=1))],
            [MessageEnvelope(source=5, tag=5, send_seq=0)],
        )
        assert m.posted_count == 2
        assert m.unexpected_count == 1
        event = m.incoming_message(MessageEnvelope(source=0, tag=1))
        assert event.receive_post_label == 1
        drain = m.post_receive(ReceiveRequest(source=5, tag=5))
        assert drain.kind is MatchKind.UNEXPECTED_DRAIN
        # New posts continue labels past the seeded ones.
        m.post_receive(ReceiveRequest(source=7, tag=7))
        event = m.incoming_message(MessageEnvelope(source=7, tag=7))
        assert event.receive_post_label >= 2

    def test_seed_requires_empty_matcher(self):
        m = ListMatcher()
        m.post_receive(ReceiveRequest(source=0, tag=0))
        with pytest.raises(ValueError):
            m.seed_state([], [])

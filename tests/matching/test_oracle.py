"""Tests for the oracle/validation machinery itself."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MatchKind, MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent
from repro.matching import (
    BinMatcher,
    ListMatcher,
    RankMatcher,
    StreamOp,
    ValidationError,
    check_c2,
    cross_validate,
    pairings,
    run_stream,
)

COMMON = settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestRunStream:
    def test_assigns_handles_and_seqs(self):
        ops = [
            StreamOp.post(0, 0),
            StreamOp.post(0, 1),
            StreamOp.message(0, 1),
            StreamOp.message(0, 0),
        ]
        events = run_stream(ListMatcher(), ops)
        by_tag = {e.receive.tag: e for e in events}
        assert by_tag[0].receive.handle == 0
        assert by_tag[1].receive.handle == 1
        assert by_tag[1].message.send_seq == 0
        assert by_tag[0].message.send_seq == 1

    def test_send_seq_per_source(self):
        ops = [StreamOp.message(0, 0), StreamOp.message(1, 0), StreamOp.message(0, 0)]
        events = run_stream(ListMatcher(), ops)
        seqs = [(e.message.source, e.message.send_seq) for e in events]
        assert seqs == [(0, 0), (1, 0), (0, 1)]


class TestPairings:
    def test_drain_overrides_stored(self):
        ops = [StreamOp.message(0, 0), StreamOp.post(0, 0)]
        events = run_stream(ListMatcher(), ops)
        assert pairings(events) == {(0, 0, 0): 0}

    def test_unmatched_is_none(self):
        events = run_stream(ListMatcher(), [StreamOp.message(0, 0)])
        assert pairings(events) == {(0, 0, 0): None}


class TestCheckC2:
    def test_detects_violation(self):
        recv = ReceiveRequest(source=0, tag=0)
        events = [
            MatchEvent(
                kind=MatchKind.EXPECTED,
                message=MessageEnvelope(source=0, tag=0, send_seq=1),
                receive=recv,
                receive_post_label=0,
                decision_order=0,
            ),
            MatchEvent(
                kind=MatchKind.EXPECTED,
                message=MessageEnvelope(source=0, tag=0, send_seq=0),
                receive=recv,
                receive_post_label=1,
                decision_order=1,
            ),
        ]
        with pytest.raises(ValidationError, match="C2"):
            check_c2(events)

    def test_sorts_by_decision_order(self):
        recv = ReceiveRequest(source=0, tag=0)
        # Events listed out of decision order but decisions are fine.
        events = [
            MatchEvent(
                kind=MatchKind.EXPECTED,
                message=MessageEnvelope(source=0, tag=0, send_seq=1),
                receive=recv,
                receive_post_label=1,
                decision_order=1,
            ),
            MatchEvent(
                kind=MatchKind.EXPECTED,
                message=MessageEnvelope(source=0, tag=0, send_seq=0),
                receive=recv,
                receive_post_label=0,
                decision_order=0,
            ),
        ]
        check_c2(events)  # must not raise

    def test_different_senders_independent(self):
        recv = ReceiveRequest(source=-1, tag=0)
        events = [
            MatchEvent(
                kind=MatchKind.EXPECTED,
                message=MessageEnvelope(source=5, tag=0, send_seq=3),
                receive=recv,
                receive_post_label=0,
                decision_order=0,
            ),
            MatchEvent(
                kind=MatchKind.EXPECTED,
                message=MessageEnvelope(source=6, tag=0, send_seq=0),
                receive=recv,
                receive_post_label=1,
                decision_order=1,
            ),
        ]
        check_c2(events)


class TestCrossValidateBaselines:
    """The serial baselines must themselves agree with the oracle —
    the Table I comparison is only meaningful if all strategies
    implement identical semantics."""

    @COMMON
    @given(ops=st.data())
    def test_bin_matcher_all_bin_counts(self, ops):
        from tests.conftest import op_streams

        stream = ops.draw(op_streams())
        bins = ops.draw(st.sampled_from([1, 2, 16, 128]))
        cross_validate(BinMatcher(bins), stream)

    @COMMON
    @given(ops=st.data())
    def test_rank_matcher(self, ops):
        from tests.conftest import op_streams

        cross_validate(RankMatcher(), ops.draw(op_streams()))

    def test_oracle_vs_itself(self):
        ops = [StreamOp.post(0, 0), StreamOp.message(0, 0)]
        cross_validate(ListMatcher(), ops)

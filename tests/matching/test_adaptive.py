"""Tests for the dynamic/adaptive matcher (Table I 'Dynamic' row)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MessageEnvelope, ReceiveRequest
from repro.matching import cross_validate
from repro.matching.adaptive import AdaptiveMatcher
from repro.matching.oracle import StreamOp
from tests.conftest import op_streams


def deep_stream(n_keys=64, sequences=4):
    ops = []
    for _ in range(sequences):
        keys = [(k % 8, k) for k in range(n_keys)]
        ops.extend(StreamOp.post(src, tag) for src, tag in keys)
        ops.extend(StreamOp.message(src, tag) for src, tag in reversed(keys))
    return ops


class TestSwitching:
    def test_starts_on_list(self):
        matcher = AdaptiveMatcher()
        assert matcher.active_strategy == "linked-list"
        assert matcher.migrations == 0

    def test_promotes_under_deep_queues(self):
        matcher = AdaptiveMatcher(promote_walk=8.0, min_dwell=32)
        for op in deep_stream():
            if op.kind == "post":
                matcher.post_receive(ReceiveRequest(source=op.source, tag=op.tag))
            else:
                matcher.incoming_message(MessageEnvelope(source=op.source, tag=op.tag))
        assert matcher.migrations >= 1
        assert matcher.active_strategy == "bin-based"

    def test_stays_on_list_for_shallow_queues(self):
        matcher = AdaptiveMatcher(min_dwell=16)
        for i in range(200):
            matcher.post_receive(ReceiveRequest(source=0, tag=i))
            matcher.incoming_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        assert matcher.active_strategy == "linked-list"
        assert matcher.migrations == 0

    def test_demotes_with_hysteresis(self):
        matcher = AdaptiveMatcher(promote_walk=8.0, demote_walk=1.0, min_dwell=32)
        # Phase 1: deep queues -> promote.
        for op in deep_stream(sequences=2):
            if op.kind == "post":
                matcher.post_receive(ReceiveRequest(source=op.source, tag=op.tag))
            else:
                matcher.incoming_message(MessageEnvelope(source=op.source, tag=op.tag))
        assert matcher.active_strategy == "bin-based"
        # Phase 2: long shallow phase -> demote.
        for i in range(400):
            matcher.post_receive(ReceiveRequest(source=0, tag=i % 4))
            matcher.incoming_message(
                MessageEnvelope(source=0, tag=i % 4, send_seq=i)
            )
        assert matcher.active_strategy == "linked-list"
        assert matcher.migrations >= 2

    def test_min_dwell_damps_flapping(self):
        matcher = AdaptiveMatcher(min_dwell=10_000)
        for op in deep_stream():
            if op.kind == "post":
                matcher.post_receive(ReceiveRequest(source=op.source, tag=op.tag))
            else:
                matcher.incoming_message(MessageEnvelope(source=op.source, tag=op.tag))
        assert matcher.migrations == 0  # dwell not reached

    def test_invalid_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveMatcher(promote_walk=1.0, demote_walk=2.0)


class TestSemanticsAcrossMigrations:
    def test_state_survives_migration(self):
        matcher = AdaptiveMatcher(promote_walk=4.0, min_dwell=16)
        # Leave receives outstanding while forcing a migration.
        for i in range(64):
            matcher.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(63, 31, -1):  # reverse drain: deep walks
            matcher.incoming_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        assert matcher.migrations >= 1
        # The untouched half must still match, post-migration.
        for i in range(32):
            event = matcher.incoming_message(
                MessageEnvelope(source=0, tag=i, send_seq=i)
            )
            assert event.receive.handle == i
        assert matcher.posted_count == 0

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops=op_streams(max_size=80), dwell=st.sampled_from([4, 16, 64]))
    def test_oracle_equivalence_any_stream(self, ops, dwell):
        cross_validate(
            AdaptiveMatcher(promote_walk=2.0, demote_walk=0.5, min_dwell=dwell), ops
        )


class TestDecisionOrderRegression:
    def test_decision_stamps_monotone_across_migration(self):
        """Regression: the backing matcher's decision counter restarts
        on migration; the adaptive matcher must re-stamp events with
        its own monotone counter or the C2 audit sees phantom
        violations. Exact stream found by hypothesis."""
        ops = (
            [StreamOp.message(0, 0)] * 7
            + [StreamOp.message(0, 1)]
            + [StreamOp.post(0, 1)] * 3
            + [StreamOp.message(0, 1)]
        )
        events = cross_validate(
            AdaptiveMatcher(promote_walk=2.0, demote_walk=0.5, min_dwell=4), ops
        )
        orders = [event.decision_order for event in events]
        assert orders == sorted(orders)
        assert len(set(orders)) == len(orders)

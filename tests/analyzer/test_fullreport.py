"""Tests for the one-page per-application report."""

import pytest

from repro.analyzer import format_app_report
from repro.traces.synthetic import generate


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return format_app_report(generate("BoxLib CNS", processes=8, rounds=3))

    def test_all_sections_present(self, report):
        for marker in (
            "matching profile",
            "call mix",
            "topology",
            "bins",
            "keys:",
            "theory @",
            "engine replay",
            "sizing",
        ):
            assert marker in report, marker

    def test_depth_rows_per_bin(self, report):
        # Default bins list: 1, 32, 128.
        for bins in ("     1", "    32", "   128"):
            assert bins in report

    def test_offload_verdict(self, report):
        assert "offload friendly" in report

    def test_collective_only_app(self):
        report = format_app_report(generate("HILO", rounds=2))
        assert "no p2p traffic" in report
        assert "collectives 100.0%" in report

    def test_custom_bins_list(self):
        report = format_app_report(
            generate("AMG", rounds=2), bins_list=(1, 8)
        )
        depth_rows = [
            line for line in report.splitlines()
            if line[:6].strip().isdigit()
        ]
        assert [int(line[:6]) for line in depth_rows] == [1, 8]

    def test_cli_flag(self, capsys):
        from repro.analyzer.cli import main

        assert main(["--app", "SNAP", "--rounds", "2", "--full-report"]) == 0
        out = capsys.readouterr().out
        assert "SNAP — matching profile" in out

"""Tests for the communication-graph and balls-in-bins model modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer.commgraph import build_comm_graph, graph_stats
from repro.analyzer.model import compare_with_measurement, predict
from repro.traces.synthetic import generate


class TestCommGraph:
    def test_halo_app_is_symmetric_neighbor_exchange(self):
        stats = graph_stats(generate("FillBoundary", processes=27, rounds=2))
        assert stats.symmetry == pytest.approx(1.0)
        assert stats.is_neighbor_exchange()
        assert stats.components == 1
        assert stats.max_in_degree == 6  # 3-D face neighbors

    def test_cns_has_26_neighbors(self):
        stats = graph_stats(generate("BoxLib CNS", processes=27, rounds=2))
        assert stats.max_in_degree == 26

    def test_manytoone_is_hotspot(self):
        from repro.traces.synthetic import TraceBuilder, manytoone_round

        builder = TraceBuilder("gather", 16)
        manytoone_round(builder)
        stats = graph_stats(builder.build())
        # Only the root receives: extreme hotspot, zero symmetry.
        assert stats.hotspot_factor == pytest.approx(1.0)  # single receiver
        assert stats.symmetry == 0.0
        assert stats.max_in_degree == 15

    def test_pure_collective_app_has_empty_graph(self):
        stats = graph_stats(generate("HILO", rounds=2))
        assert stats.edges == 0
        assert stats.messages == 0

    def test_edge_weights_count_messages(self):
        trace = generate("MOCFE", processes=8, rounds=2)
        graph = build_comm_graph(trace)
        total = sum(w for _, _, w in graph.edges(data="weight"))
        from repro.traces.model import OpKind

        sends = sum(
            1
            for rank_trace in trace.ranks
            for op in rank_trace.ops
            if op.kind in (OpKind.ISEND, OpKind.SEND)
        )
        assert total == sends

    def test_in_degree_tracks_queue_depth_driver(self):
        """Apps with higher in-degree have deeper 1-bin queues: the
        topology-to-matching link."""
        deep = graph_stats(generate("BoxLib CNS", processes=27, rounds=2))
        shallow = graph_stats(generate("SNAP", processes=16, rounds=2))
        assert deep.max_in_degree > shallow.max_in_degree


class TestBallsInBins:
    def test_zero_keys(self):
        prediction = predict(0, 32)
        assert prediction.expected_collisions == 0.0
        assert prediction.expected_max_load == 0.0
        assert prediction.expected_empty_fraction == pytest.approx(1.0)

    def test_single_bin_degenerates(self):
        prediction = predict(10, 1)
        assert prediction.expected_max_load == 10.0
        assert prediction.expected_empty_fraction == 0.0

    def test_sparse_regime(self):
        # 26 keys in 384 bins: nearly collision-free.
        prediction = predict(26, 384)
        assert prediction.expected_collisions < 1.5
        assert prediction.expected_max_load <= 3.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            predict(-1, 8)
        with pytest.raises(ValueError):
            predict(1, 0)

    @settings(max_examples=40, deadline=None)
    @given(keys=st.integers(0, 500), bins=st.integers(1, 512))
    def test_predictions_sane(self, keys, bins):
        prediction = predict(keys, bins)
        assert 0.0 <= prediction.expected_empty_fraction <= 1.0
        assert 0.0 <= prediction.expected_collisions <= keys
        assert prediction.expected_max_load <= max(keys, 0)

    def test_measured_hash_behaves_like_random(self):
        """The repo's hash family must track the analytic model: hash
        the CNS key population into 32 bins and compare max load."""
        from repro.core.hashing import bucket_of, hash_src_tag

        keys = [(src, tag) for src in range(26) for tag in range(4)]
        bins = 32
        loads = [0] * bins
        for src, tag in keys:
            loads[bucket_of(hash_src_tag(src, tag), bins)] += 1
        report = compare_with_measurement(
            len(keys), bins, measured_max_depth=max(loads)
        )
        assert report["max_within_tolerance"], report

    def test_compare_reports_collisions(self):
        report = compare_with_measurement(
            26, 384, measured_max_depth=2, measured_collisions=1
        )
        assert report["collisions_within_tolerance"]
        assert "expected_collisions" in report

"""Tests for the bin-count recommendation utility."""

import pytest

from repro.analyzer.recommend import recommend_bins
from repro.traces.synthetic import generate


@pytest.fixture(scope="module")
def cns_trace():
    return generate("BoxLib CNS", processes=8, rounds=3)


class TestRecommendation:
    def test_meets_target(self, cns_trace):
        rec = recommend_bins(cns_trace, target_depth=1.0)
        assert rec.meets_target()
        assert rec.mean_depth <= 1.0
        assert not rec.saturated

    def test_smaller_target_needs_more_bins(self, cns_trace):
        loose = recommend_bins(cns_trace, target_depth=3.0)
        tight = recommend_bins(cns_trace, target_depth=0.2)
        assert tight.bins >= loose.bins

    def test_deep_app_needs_more_than_one_bin(self, cns_trace):
        rec = recommend_bins(cns_trace, target_depth=1.0)
        assert rec.bins > 1

    def test_memory_cost_reported(self, cns_trace):
        rec = recommend_bins(cns_trace, target_depth=1.0)
        from repro.dpa.memory import BYTES_PER_BIN, INDEX_TABLES

        assert rec.bin_table_bytes == INDEX_TABLES * rec.bins * BYTES_PER_BIN

    def test_saturation_flag(self, cns_trace):
        rec = recommend_bins(cns_trace, target_depth=0.0, candidates=(1, 2))
        assert rec.saturated
        assert rec.bins == 2  # best available

    def test_trivial_app_needs_one_bin(self):
        trace = generate("SNAP", processes=8, rounds=2)
        rec = recommend_bins(trace, target_depth=1.0)
        assert rec.bins == 1

    def test_sweep_exposed(self, cns_trace):
        rec = recommend_bins(cns_trace, target_depth=1.0)
        assert 1 in rec.sweep
        assert rec.bins in rec.sweep

    def test_invalid_inputs(self, cns_trace):
        with pytest.raises(ValueError):
            recommend_bins(cns_trace, target_depth=-1)
        with pytest.raises(ValueError):
            recommend_bins(cns_trace, candidates=())

"""Tests for the emulated matching structures."""

from repro.analyzer.structures import EmulatedMatcher
from repro.core import ANY_SOURCE, ANY_TAG, MessageEnvelope, ReceiveRequest


class TestEmulatedMatching:
    def test_post_then_deliver_matches(self):
        m = EmulatedMatcher(bins=8)
        assert m.post_receive(ReceiveRequest(source=0, tag=0)) is False
        assert m.deliver(MessageEnvelope(source=0, tag=0)) is True
        assert m.indexes.total_live() == 0

    def test_unexpected_then_drain(self):
        m = EmulatedMatcher(bins=8)
        assert m.deliver(MessageEnvelope(source=0, tag=0)) is False
        assert m.unexpected_total == 1
        assert m.post_receive(ReceiveRequest(source=0, tag=0)) is True
        assert m.drained_total == 1
        assert len(m.unexpected) == 0

    def test_c1_across_indexes(self):
        m = EmulatedMatcher(bins=8)
        m.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=7))
        m.post_receive(ReceiveRequest(source=1, tag=7))
        m.deliver(MessageEnvelope(source=1, tag=7))
        # Older wildcard receive consumed; exact one remains.
        assert m.indexes.source_wildcard.total_live() == 0
        assert m.indexes.no_wildcard.total_live() == 1

    def test_collision_counting(self):
        m = EmulatedMatcher(bins=1)
        m.post_receive(ReceiveRequest(source=0, tag=0))
        m.post_receive(ReceiveRequest(source=0, tag=1))  # same single bin
        assert m.collisions == 1

    def test_no_collision_when_spread(self):
        m = EmulatedMatcher(bins=4096)
        for tag in range(4):
            m.post_receive(ReceiveRequest(source=0, tag=tag))
        assert m.collisions == 0


class TestWalkMetric:
    def test_match_at_head_has_zero_depth(self):
        m = EmulatedMatcher(bins=1)
        m.post_receive(ReceiveRequest(source=0, tag=0))
        m.deliver(MessageEnvelope(source=0, tag=0))
        interval_max, interval_mean, _ = m.take_datapoint()
        assert interval_max == 0
        assert interval_mean == 0.0

    def test_match_behind_others_counts_walk(self):
        m = EmulatedMatcher(bins=1)
        for tag in range(5):
            m.post_receive(ReceiveRequest(source=0, tag=tag))
        m.deliver(MessageEnvelope(source=0, tag=4))  # walks past 4 entries
        interval_max, _, _ = m.take_datapoint()
        assert interval_max == 4

    def test_binning_reduces_walk(self):
        def max_walk(bins):
            m = EmulatedMatcher(bins=bins)
            for tag in range(16):
                m.post_receive(ReceiveRequest(source=0, tag=tag))
            for tag in reversed(range(16)):
                m.deliver(MessageEnvelope(source=0, tag=tag))
            interval_max, _, _ = m.take_datapoint()
            return interval_max

        assert max_walk(1) == 15
        assert max_walk(256) < 4

    def test_datapoint_resets_interval(self):
        m = EmulatedMatcher(bins=1)
        for tag in range(3):
            m.post_receive(ReceiveRequest(source=0, tag=tag))
        m.deliver(MessageEnvelope(source=0, tag=2))
        first, _, _ = m.take_datapoint()
        second, _, _ = m.take_datapoint()
        assert first == 2
        assert second == 0

    def test_unexpected_walk_counts_all_probed(self):
        m = EmulatedMatcher(bins=1)
        for tag in range(3):
            m.post_receive(ReceiveRequest(source=0, tag=tag))
        m.deliver(MessageEnvelope(source=9, tag=9))  # matches nothing
        interval_max, _, _ = m.take_datapoint()
        assert interval_max == 3


class TestSnapshot:
    def test_snapshot_counts(self):
        m = EmulatedMatcher(bins=8)
        m.post_receive(ReceiveRequest(source=0, tag=0))
        m.post_receive(ReceiveRequest(source=ANY_SOURCE, tag=ANY_TAG))
        m.deliver(MessageEnvelope(source=5, tag=5))  # consumed by any/any
        snap = m.snapshot()
        assert snap.total_posted == 1
        assert snap.unexpected == 0
        assert snap.wildcard_list_depth == 0

    def test_empty_fraction_interval(self):
        m = EmulatedMatcher(bins=2)
        m.post_receive(ReceiveRequest(source=0, tag=0))
        m.deliver(MessageEnvelope(source=0, tag=0))
        _, _, snap = m.take_datapoint()
        # At the fullest moment one of the 6 buckets was occupied.
        assert snap.empty_fraction < 1.0

"""Tests for engine replay and the artifact-layout export."""

import json

import pytest

from repro.analyzer import (
    ReplayResult,
    analyze,
    export_artifact,
    export_trace_analysis,
    load_summary,
    replay_trace,
)
from repro.core import EngineConfig
from repro.traces.synthetic import generate


class TestReplay:
    def test_replay_counts_match_trace(self):
        trace = generate("FillBoundary", processes=8, rounds=3)
        result = replay_trace(trace)
        from repro.traces.model import OpKind

        sends = sum(
            1
            for rank_trace in trace.ranks
            for op in rank_trace.ops
            if op.kind in (OpKind.ISEND, OpKind.SEND)
        )
        # Every send either matched a posted receive or was stored and
        # later drained — all of them traverse the engines.
        assert result.messages + result.unexpected >= sends
        assert result.optimistic + result.fast_path + result.slow_path + result.unexpected >= sends

    def test_offload_friendliness(self):
        """The paper's claim: the mini-apps are offload-friendly (few
        conflicts). Halo/sweep apps must come out clean."""
        for name in ("BoxLib CNS", "SNAP", "FillBoundary"):
            result = replay_trace(generate(name, processes=8, rounds=3))
            assert result.offload_friendly(), name
            assert result.optimistic_fraction > 0.7

    def test_replay_respects_config(self):
        trace = generate("AMG", rounds=2)
        result = replay_trace(
            trace, EngineConfig(bins=4, block_threads=4, max_receives=4096)
        )
        assert isinstance(result, ReplayResult)
        assert result.messages > 0

    def test_pure_collective_app_has_no_messages(self):
        result = replay_trace(generate("HILO", rounds=3))
        assert result.messages == 0
        assert result.conflict_rate == 0.0
        assert result.optimistic_fraction == 1.0


class TestArtifactExport:
    def test_single_trace_layout(self, tmp_path):
        trace = generate("AMG", rounds=2)
        results = export_trace_analysis(trace, tmp_path, bins_list=(1, 32))
        assert set(results) == {1, 32}
        for bins in (1, 32):
            stats = json.loads((tmp_path / "AMG" / str(bins) / "stats.json").read_text())
            assert stats["bins"] == bins
            assert stats["name"] == "AMG"
            assert (tmp_path / "AMG" / str(bins) / "tag_usage.csv").exists()

    def test_stats_match_direct_analysis(self, tmp_path):
        trace = generate("SNAP", rounds=2)
        export_trace_analysis(trace, tmp_path, bins_list=(32,))
        stats = json.loads((tmp_path / "SNAP" / "32" / "stats.json").read_text())
        direct = analyze(trace, 32)
        assert stats["mean_depth"] == pytest.approx(direct.depth.mean_depth)
        assert stats["collisions"] == direct.depth.collisions

    def test_full_artifact_summary(self, tmp_path):
        out = export_artifact(
            tmp_path / "artifact",
            bins_list=(1, 32),
            rounds=2,
            names=["AMG", "HILO"],
        )
        summary = load_summary(out)
        assert set(summary) == {"AMG", "HILO"}
        assert set(summary["AMG"]) == {"1", "32"}
        # HILO is pure collectives: no p2p datapoint depth.
        assert summary["HILO"]["1"]["mean_depth"] == 0.0

    def test_six_bin_default_sweep(self, tmp_path):
        out = export_artifact(tmp_path / "a", rounds=1, names=["MOCFE"])
        # "6 folders representing the number of bins used (from 1 to
        # 256, in powers of 2)".
        bins_dirs = sorted(
            int(p.name) for p in (out / "MOCFE").iterdir() if p.is_dir()
        )
        assert len(bins_dirs) == 6
        assert bins_dirs[0] == 1 and bins_dirs[-1] == 256

    def test_tag_csv_contents(self, tmp_path):
        trace = generate("PARTISN", rounds=2)
        export_trace_analysis(trace, tmp_path, bins_list=(1,))
        csv = (tmp_path / "PARTISN" / "1" / "tag_usage.csv").read_text().splitlines()
        assert csv[0] == "tag,count"
        assert len(csv) > 1

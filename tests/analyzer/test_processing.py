"""Tests for the trace-processing stage and the report layer."""

import pytest

from repro.analyzer import (
    analyze,
    depth_reduction_summary,
    figure6_rows,
    figure7_rows,
    format_figure6,
    format_figure7,
    format_table2,
    sweep_applications,
    sweep_trace,
    table2_rows,
)
from repro.core.constants import ANY_SOURCE
from repro.core import WildcardClass
from repro.traces.model import OpGroup, OpKind, RankTrace, Trace, TraceOp
from repro.traces.synthetic import TraceBuilder, generate, halo_exchange_round


def two_rank_trace():
    """Rank 1 posts two receives, rank 0 sends two messages, rank 1
    progresses — one clean datapoint."""
    r0 = RankTrace(
        0,
        [
            TraceOp(kind=OpKind.ISEND, peer=1, tag=0, request=0, walltime=0.5),
            TraceOp(kind=OpKind.ISEND, peer=1, tag=1, request=1, walltime=0.6),
        ],
    )
    r1 = RankTrace(
        1,
        [
            TraceOp(kind=OpKind.IRECV, peer=0, tag=0, request=0, walltime=0.1),
            TraceOp(kind=OpKind.IRECV, peer=0, tag=1, request=1, walltime=0.2),
            TraceOp(kind=OpKind.WAITALL, size=2, walltime=0.9),
        ],
    )
    return Trace(name="two-rank", nprocs=2, ranks=[r0, r1])


class TestAnalyze:
    def test_basic_counts(self):
        analysis = analyze(two_rank_trace(), bins=8)
        assert analysis.nprocs == 2
        assert analysis.total_ops == 5
        assert analysis.depth.datapoints == 1
        assert analysis.depth.unexpected_total == 0
        assert analysis.p2p_kinds[OpKind.ISEND] == 2
        assert analysis.p2p_kinds[OpKind.IRECV] == 2

    def test_call_mix(self):
        mix = analyze(two_rank_trace(), bins=8).call_mix
        assert mix[OpGroup.P2P] == 1.0

    def test_unique_pairs_and_tags(self):
        analysis = analyze(two_rank_trace(), bins=8)
        assert analysis.unique_pairs == 2
        assert analysis.unique_tags() == 2

    def test_wildcard_usage_recorded(self):
        trace = Trace(
            name="wc",
            nprocs=2,
            ranks=[
                RankTrace(0, [TraceOp(kind=OpKind.ISEND, peer=1, tag=0, walltime=0.5)]),
                RankTrace(
                    1,
                    [
                        TraceOp(kind=OpKind.IRECV, peer=ANY_SOURCE, tag=0, walltime=0.1),
                        TraceOp(kind=OpKind.WAIT, request=0, walltime=0.9),
                    ],
                ),
            ],
        )
        analysis = analyze(trace, bins=8)
        assert analysis.wildcard_usage[WildcardClass.SOURCE] == 1

    def test_unexpected_message_counted(self):
        trace = Trace(
            name="unexpected",
            nprocs=2,
            ranks=[
                RankTrace(0, [TraceOp(kind=OpKind.ISEND, peer=1, tag=3, walltime=0.1)]),
                RankTrace(
                    1,
                    [
                        TraceOp(kind=OpKind.IRECV, peer=0, tag=3, walltime=0.5),
                        TraceOp(kind=OpKind.WAIT, request=0, walltime=0.9),
                    ],
                ),
            ],
        )
        analysis = analyze(trace, bins=8)
        assert analysis.depth.unexpected_total == 1
        assert analysis.depth.drained_total == 1

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            analyze(two_rank_trace(), bins=0)

    def test_queue_depth_equals_prepost_count_at_one_bin(self):
        """A k-deep pre-posted halo must show ~k-1 max walk at 1 bin
        (the last-matched receive walks past the k-1 posted before it)."""
        builder = TraceBuilder("halo", 8)
        halo_exchange_round(builder, (2, 2, 2))
        analysis = analyze(builder.build(), bins=1)
        # 2x2x2 periodic face-neighbors: 3 distinct neighbors.
        assert analysis.depth.max_depth == 2


class TestSweepMonotonicity:
    def test_depth_decreases_with_bins(self):
        trace = generate("BoxLib CNS", processes=8, rounds=3)
        results = sweep_trace(trace, (1, 32, 128))
        depths = [results[b].depth.mean_depth for b in (1, 32, 128)]
        assert depths[0] > depths[1] >= depths[2]

    def test_reduction_summary(self):
        results = sweep_applications(
            bins_list=(1, 32), rounds=3, names=["BoxLib CNS", "AMG"]
        )
        summary = depth_reduction_summary(results)
        assert summary[1][1] is None
        avg1, _ = summary[1]
        avg32, reduction = summary[32]
        assert avg32 < avg1
        assert reduction == pytest.approx(100 * (1 - avg32 / avg1))


class TestReportFormatting:
    def test_figure6_rows_percentages(self):
        analyses = {"two-rank": analyze(two_rank_trace(), bins=1)}
        ((name, p2p, coll, one_sided),) = figure6_rows(analyses)
        assert name == "two-rank"
        assert p2p == pytest.approx(100.0)
        assert coll == 0.0 and one_sided == 0.0

    def test_format_figure6_contains_apps(self):
        analyses = {"two-rank": analyze(two_rank_trace(), bins=1)}
        text = format_figure6(analyses)
        assert "two-rank" in text
        assert "p2p%" in text

    def test_figure7_rows_sorted_descending(self):
        results = sweep_applications(
            bins_list=(1, 32), rounds=3, names=["BoxLib CNS", "SNAP"]
        )
        rows = figure7_rows(results)
        assert rows[0][0] == "BoxLib CNS"  # deeper queues first

    def test_format_figure7_smoke(self):
        results = sweep_applications(bins_list=(1,), rounds=2, names=["AMG"])
        text = format_figure7(results)
        assert "AMG" in text
        assert "average queue depth" in text

    def test_table2_is_the_paper_table(self):
        rows = table2_rows()
        assert len(rows) == 16
        as_dict = {name: processes for name, _, processes in rows}
        assert as_dict["MiniFe"] == 1152
        assert as_dict["BigFFT"] == 1024
        text = format_table2()
        assert "CrystalRouter" in text and "1152" in text

"""Commgraph-driven placement recommendation (satellite 3).

The contract under test: whatever the recommender picks is *never
worse than block placement* on the routed-volume cost model, and on
structured traces (halo neighborhoods) the greedy layout finds real
savings when ranks outnumber hosts.
"""

from repro.analyzer.placement import placement_cost, recommend_placement
from repro.analyzer.commgraph import build_comm_graph
from repro.net.cluster import cluster_workload
from repro.net.placement import Placement
from repro.net.routing import RouteTable
from repro.net.topology import fat_tree, ring, torus2d


class TestRecommendation:
    def test_never_worse_than_block_on_halo(self):
        trace = cluster_workload("halo", 16, rounds=2)
        for topo in (torus2d(2, 2), ring(4), fat_tree(4)):
            rec = recommend_placement(trace, topo)
            assert rec.costs[rec.scheme] <= rec.costs["block"]
            assert rec.improvement_over_block >= 0.0

    def test_greedy_beats_baselines_on_packed_halo(self):
        """16 halo ranks on 4 hosts: neighborhood locality is real."""
        trace = cluster_workload("halo", 16, rounds=2)
        rec = recommend_placement(trace, torus2d(2, 2))
        assert rec.scheme == "greedy"
        assert rec.costs["greedy"] < rec.costs["block"]

    def test_ties_prefer_block(self):
        """One host per rank: every placement is the identity map, so
        all costs tie and the recommendation stays block."""
        trace = cluster_workload("halo", 8, rounds=1)
        rec = recommend_placement(trace, torus2d(2, 4))
        assert rec.scheme == "block"
        assert rec.improvement_over_block == 0.0

    def test_recommended_placement_is_usable(self):
        trace = cluster_workload("hotspot", 16, rounds=1)
        topo = torus2d(2, 2)
        rec = recommend_placement(trace, topo)
        assert rec.placement.ranks == 16
        assert set(rec.placement.nodes) <= set(topo.hosts)

    def test_cost_model_counts_routed_volume(self):
        trace = cluster_workload("halo", 8, rounds=1)
        topo = ring(8)
        graph = build_comm_graph(trace)
        routes = RouteTable(topo)
        cost = placement_cost(graph, Placement.block(8, topo.hosts), routes)
        manual = sum(
            w * routes.hops(f"h{s}", f"h{d}")
            for s, d, w in graph.edges(data="weight", default=1)
        )
        assert cost == manual > 0

"""Tests for the analysis comparison tool."""

import pytest

from repro.analyzer import analyze
from repro.analyzer.compare import compare_analyses
from repro.traces.synthetic import generate


class TestCompare:
    def test_self_comparison_matches(self):
        trace = generate("LULESH", rounds=3)
        left = analyze(trace, 32)
        right = analyze(trace, 32)
        report = compare_analyses(left, right)
        assert report.ok
        assert all(delta.relative == 0.0 for delta in report.deltas)

    def test_same_app_different_rounds_still_matches(self):
        """Scale-invariance: more rounds of the same pattern keep the
        per-round statistics, so the comparison passes — this is what
        makes synthetic-vs-real comparisons meaningful."""
        left = analyze(generate("FillBoundary", rounds=3), 32)
        right = analyze(generate("FillBoundary", rounds=6), 32)
        report = compare_analyses(left, right)
        assert report.ok, report.format()

    def test_different_apps_diverge(self):
        left = analyze(generate("BoxLib CNS", rounds=3), 32)
        right = analyze(generate("SNAP", rounds=3), 32)
        report = compare_analyses(left, right)
        assert not report.ok
        assert any(d.metric == "mean_depth" for d in report.divergent())

    def test_bin_mismatch_rejected(self):
        trace = generate("AMG", rounds=2)
        with pytest.raises(ValueError, match="bin counts"):
            compare_analyses(analyze(trace, 1), analyze(trace, 32))

    def test_format_output(self):
        trace = generate("AMG", rounds=2)
        report = compare_analyses(analyze(trace, 32), analyze(trace, 32))
        text = report.format()
        assert "mean_depth" in text
        assert "yes" in text

    def test_mix_tolerance_tight(self):
        """Call-mix divergence is flagged even when depths agree."""
        left = analyze(generate("MultiGrid", rounds=4), 32)  # ~p2p only
        right = analyze(generate("MiniFe", rounds=4), 32)  # heavy collectives
        report = compare_analyses(left, right)
        flagged = {delta.metric for delta in report.divergent()}
        assert "collective_fraction" in flagged

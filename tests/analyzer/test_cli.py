"""Tests for the repro-analyze CLI."""

import pytest

from repro.analyzer.cli import main
from repro.traces.reader import save_trace
from repro.traces.synthetic import generate


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "BoxLib CNS" in out
        assert len(out.strip().splitlines()) == 16

    def test_table2(self, capsys):
        assert main(["--table", "2"]) == 0
        assert "Processes" in capsys.readouterr().out

    def test_single_app(self, capsys):
        assert main(["--app", "AMG", "--bins", "1,32", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "AMG" in out

    def test_trace_dir(self, capsys, tmp_path):
        save_trace(generate("AMG", rounds=2), tmp_path / "amg")
        assert main(["--trace-dir", str(tmp_path / "amg"), "--bins", "1"]) == 0
        # The name comes from meta.txt, not the directory.
        assert "AMG" in capsys.readouterr().out

    def test_bad_bins_rejected(self):
        with pytest.raises(SystemExit):
            main(["--app", "AMG", "--bins", "0"])
        with pytest.raises(SystemExit):
            main(["--app", "AMG", "--bins", "abc"])

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro-analyze" in capsys.readouterr().out

    def test_figure6_small(self, capsys):
        # Uses every app at tiny scale; keep rounds low for speed.
        assert main(["--figure", "6", "--rounds", "2", "--processes", "8"]) == 0
        out = capsys.readouterr().out
        assert "HILO" in out


class TestPlotFlags:
    def test_figure7_plot(self, capsys):
        from repro.analyzer.cli import main

        assert main(["--figure", "7", "--bins", "1,32", "--rounds", "2",
                     "--processes", "8", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "mean experienced depth" in out
        assert "│" in out

    def test_bench_plot(self, capsys):
        from repro.bench.cli import main as bench_main

        assert bench_main(["--k", "16", "--repetitions", "2", "--in-flight", "32",
                           "--threads", "4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "message rate (Mmsg/s)" in out
        assert "█" in out


class TestCompareMode:
    def test_compare_identical_traces(self, capsys, tmp_path):
        from repro.analyzer.cli import main
        from repro.traces.reader import save_trace
        from repro.traces.synthetic import generate

        trace = generate("AMG", rounds=2)
        save_trace(trace, tmp_path / "a")
        save_trace(trace, tmp_path / "b")
        code = main(["--compare", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--bins", "32"])
        assert code == 0
        assert "mean_depth" in capsys.readouterr().out

    def test_compare_divergent_traces_exit_code(self, capsys, tmp_path):
        from repro.analyzer.cli import main
        from repro.traces.reader import save_trace
        from repro.traces.synthetic import generate

        save_trace(generate("BoxLib CNS", rounds=2), tmp_path / "a")
        save_trace(generate("SNAP", rounds=2), tmp_path / "b")
        code = main(["--compare", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--bins", "32"])
        assert code == 1

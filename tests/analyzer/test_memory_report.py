"""The §III-E memory-footprint report (repro-analyze --memory)."""

from types import SimpleNamespace

from repro.analyzer.report import _provision, format_memory, memory_rows
from repro.dpa.memory import MemoryModel


def fake_results(mean_posted_by_bins):
    """results-shaped dict from mean posted depths: app -> bins -> cell."""
    return {
        app: {
            bins: SimpleNamespace(depth=SimpleNamespace(mean_posted=posted))
            for bins, posted in per_bins.items()
        }
        for app, per_bins in mean_posted_by_bins.items()
    }


class TestProvision:
    def test_rounds_twice_the_mean_up_to_a_power_of_two(self):
        assert _provision(0.0) == 1
        assert _provision(0.4) == 1
        assert _provision(1.0) == 2
        assert _provision(3.2) == 8  # ceil(6.4) -> 7 -> 8
        assert _provision(4.0) == 8
        assert _provision(5.0) == 16


class TestMemoryRows:
    def test_rows_agree_with_the_memory_model(self):
        results = fake_results({"AMG": {1: 8.2, 32: 0.8, 128: 0.33}})
        rows = memory_rows(results)
        assert [(r[0], r[1]) for r in rows] == [("AMG", 1), ("AMG", 32), ("AMG", 128)]
        for app, bins, posted, provisioned, kib, l2, l3 in rows:
            model = MemoryModel(bins=bins, max_receives=provisioned)
            assert provisioned == _provision(posted)
            assert kib == model.total_bytes() / 1024
            assert l2 == model.fits_l2()
            assert l3 == model.fits_l3()

    def test_shallow_queues_fit_l2(self):
        # The paper's observation: real applications' posted queues are
        # shallow, so binned tables stay cache-resident.
        results = fake_results({"CNS": {128: 0.5}})
        (_, _, _, _, _, l2, _), = memory_rows(results)
        assert l2 is True


class TestFormat:
    def test_verdict_ladder(self):
        # A mean posted depth of 20000 provisions 65536 descriptors:
        # 4+ MiB of table, past the 3 MiB L3 -> software fallback.
        results = fake_results(
            {"shallow": {128: 1.0}, "pathological": {128: 20000.0}}
        )
        text = format_memory(results)
        assert "fits L2" in text
        assert "FALLBACK (>L3)" in text

    def test_ceilings_section_lists_cache_caps(self):
        results = fake_results({"app": {32: 1.0, 128: 1.0}})
        text = format_memory(results)
        assert "BF3 ceilings" in text
        for bins in (32, 128):
            assert f"{bins:5d} bins:" in text
        # The printed caps are real: one step further must overflow.
        for line in text.splitlines():
            if "receives in L2" in line:
                bins = int(line.split("bins:")[0])
                l2_cap = int(line.split("<=")[1].split("receives")[0])
                assert MemoryModel(bins=bins, max_receives=l2_cap).fits_l2()
                assert not MemoryModel(bins=bins, max_receives=2 * l2_cap).fits_l2()

"""Tests for the assembled offloaded endpoint."""

import pytest

from repro.core import EngineConfig, ReceiveRequest
from repro.dpa.pipeline import OffloadedEndpoint
from repro.rdma import QueuePair, RdmaSender, Wire


def build(config=None):
    wire = Wire("tx", "rx")
    tx = QueuePair(wire, "tx")
    rx = QueuePair(wire, "rx")
    sender = RdmaSender(tx, rank=0, eager_threshold=128)
    endpoint = OffloadedEndpoint(
        rx,
        config
        if config is not None
        else EngineConfig(bins=64, block_threads=8, max_receives=256),
    )
    return sender, endpoint, tx


class TestEndpoint:
    def test_end_to_end_delivery_with_accounting(self):
        sender, endpoint, tx = build()
        for i in range(16):
            endpoint.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(16):
            sender.send(tag=i, payload=bytes([i]) * 32)
        endpoint.progress()
        assert len(endpoint.completed) == 16
        assert endpoint.dpa_cycles > 0
        assert endpoint.cycles_per_message() > 0
        assert endpoint.dpa_seconds > 0

    def test_rendezvous_through_endpoint(self):
        sender, endpoint, tx = build()
        endpoint.post_receive(ReceiveRequest(source=0, tag=1, handle=1))
        sender.send(tag=1, payload=b"big" * 1000)
        endpoint.progress()
        tx.process_inbound()  # serve the RDMA read
        endpoint.progress()
        (delivery,) = endpoint.completed
        assert delivery.protocol == "rndv"
        assert delivery.payload == b"big" * 1000

    def test_unexpected_counted(self):
        sender, endpoint, tx = build()
        sender.send(tag=9, payload=b"x")
        endpoint.progress()
        assert endpoint.unexpected_count == 1
        assert endpoint.completed == []

    def test_oversized_configuration_rejected_at_creation(self):
        """§III-E: if the DPA cannot hold the structures, the
        communicator must be created in software — the endpoint
        refuses rather than silently thrashing."""
        wire = Wire("tx", "rx")
        rx = QueuePair(wire, "rx")
        with pytest.raises(ValueError, match="software"):
            OffloadedEndpoint(
                rx, EngineConfig(bins=128, block_threads=8, max_receives=1 << 17)
            )

    def test_cycles_accumulate_across_progress_calls(self):
        sender, endpoint, tx = build()
        for i in range(8):
            endpoint.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        sender.send(tag=0, payload=b"a")
        endpoint.progress()
        first = endpoint.dpa_cycles
        sender.send(tag=1, payload=b"b")
        endpoint.progress()
        assert endpoint.dpa_cycles > first

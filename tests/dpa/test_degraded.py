"""Graceful degradation: spill to host resources, recover, never fail.

Covers the two spill controllers — :class:`repro.dpa.machine.DpaMachine`
(descriptor-table exhaustion -> host list matcher, host cycles charged)
and :class:`repro.matching.fallback.FallbackMatcher` in recoverable
mode — plus the accounting contract: one cumulative
:class:`repro.core.stats.EngineStats` narrates spills, recoveries, and
degraded matches across engine generations.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.descriptor import DescriptorTableFull
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.dpa.machine import DpaMachine
from repro.matching.fallback import FallbackMatcher
from repro.matching.list_matcher import ListMatcher
from repro.matching.oracle import StreamOp, cross_validate, run_stream, pairings


def overflow_then_drain_ops():
    """Overflow a capacity-4 table, drain, then keep going: exercises
    spill, degraded matching, recovery, and post-recovery matching."""
    ops = [StreamOp.post(0, i) for i in range(10)]
    ops += [StreamOp.message(0, i) for i in range(9)]
    ops += [StreamOp.post(0, 20 + i) for i in range(3)]
    ops += [StreamOp.message(0, 20 + i) for i in range(3)]
    ops += [StreamOp.message(0, 9)]
    return ops


SMALL = dict(max_receives=4, block_threads=4)


class TestDpaMachineSpill:
    def test_overflow_spills_instead_of_raising(self):
        machine = DpaMachine(EngineConfig(**SMALL))
        for i in range(10):
            machine.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        assert machine.degraded
        assert machine.engine.stats.fallback_spills == 1

    def test_degrade_disabled_keeps_hard_failure(self):
        machine = DpaMachine(EngineConfig(**SMALL), degrade_to_host=False)
        with pytest.raises(DescriptorTableFull):
            for i in range(10):
                machine.post_receive(ReceiveRequest(source=0, tag=i, handle=i))

    def test_host_matching_is_charged_host_cycles(self):
        machine = DpaMachine(EngineConfig(**SMALL))
        for i in range(10):
            machine.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(6):
            machine.deliver(MessageEnvelope(source=0, tag=i, send_seq=i))
        machine.run()
        assert machine.report.host_messages == 6
        assert machine.report.host_matching_cycles > 0
        assert machine.engine.stats.degraded_matches == 6

    def test_recovery_once_working_set_drains(self):
        machine = DpaMachine(EngineConfig(**SMALL))
        for i in range(10):
            machine.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        events = []
        for i in range(8):  # drain to 2 <= 4 // 2
            machine.deliver(MessageEnvelope(source=0, tag=i, send_seq=i))
        events.extend(machine.run())
        machine.post_receive(ReceiveRequest(source=0, tag=50, handle=50))
        assert not machine.degraded
        assert machine.engine.stats.fallback_recoveries == 1
        # The migrated-back receives still match on the accelerator.
        machine.deliver(MessageEnvelope(source=0, tag=8, send_seq=8))
        machine.deliver(MessageEnvelope(source=0, tag=50, send_seq=9))
        events.extend(machine.run())
        matched = {e.receive.handle for e in events if e.receive is not None}
        assert {8, 50} <= matched

    def test_decision_order_monotone_across_both_migrations(self):
        machine = DpaMachine(EngineConfig(**SMALL))
        events = []
        for i in range(10):
            machine.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(8):
            machine.deliver(MessageEnvelope(source=0, tag=i, send_seq=i))
        events.extend(machine.run())
        machine.post_receive(ReceiveRequest(source=0, tag=50, handle=50))
        for i in range(8, 10):
            machine.deliver(MessageEnvelope(source=0, tag=i, send_seq=i))
        machine.deliver(MessageEnvelope(source=0, tag=50, send_seq=10))
        events.extend(machine.run())
        orders = [e.decision_order for e in events]
        assert orders == sorted(orders)
        assert len(set(orders)) == len(orders)


class TestRecoverableFallbackMatcher:
    def test_matches_oracle_through_spill_and_recovery(self):
        matcher = FallbackMatcher(EngineConfig(**SMALL), recoverable=True)
        cross_validate(matcher, overflow_then_drain_ops())
        assert matcher.stats.fallback_spills >= 1
        assert matcher.stats.fallback_recoveries >= 1
        assert matcher.stats.degraded_matches > 0
        assert matcher.offloaded  # ended back on the accelerator

    def test_one_way_mode_unchanged(self):
        matcher = FallbackMatcher(EngineConfig(**SMALL))
        cross_validate(matcher, overflow_then_drain_ops())
        assert matcher.fallback_events == 1
        assert matcher.stats.fallback_recoveries == 0
        assert not matcher.offloaded

    def test_repeated_spill_recovery_cycles(self):
        """Thrash the boundary: several overflow/drain waves, one stats
        object accumulating the whole story."""
        ops = []
        for wave in range(3):
            base = wave * 100
            ops += [StreamOp.post(0, base + i) for i in range(8)]
            ops += [StreamOp.message(0, base + i) for i in range(8)]
        matcher = FallbackMatcher(EngineConfig(**SMALL), recoverable=True)
        events = cross_validate(matcher, ops)
        assert matcher.stats.fallback_spills >= 2
        assert matcher.stats.fallback_recoveries >= 2
        want = pairings(run_stream(ListMatcher(), ops))
        assert pairings(events) == want

    def test_stats_object_identity_survives_recovery(self):
        matcher = FallbackMatcher(EngineConfig(**SMALL), recoverable=True)
        stats = matcher.stats
        cross_validate(matcher, overflow_then_drain_ops())
        assert matcher.stats is stats
        assert matcher._offloaded.engine.stats is stats

"""Tests for the §III-E memory-footprint model — the paper's own
arithmetic is the expected output."""

import pytest

from repro.dpa.memory import BYTES_PER_BIN, INDEX_TABLES, MemoryModel


class TestPaperNumbers:
    def test_bin_entry_is_20_bytes(self):
        # 4 B remove lock + 8 B head + 8 B tail.
        assert BYTES_PER_BIN == 20

    def test_128_bins_cost_7_5_kib(self):
        model = MemoryModel(bins=128, max_receives=1)
        assert model.bin_table_bytes() == pytest.approx(7.5 * 1024)
        assert INDEX_TABLES == 3

    def test_8k_receives_about_520_kib(self):
        model = MemoryModel(bins=128, max_receives=8192)
        total_kib = model.total_bytes() / 1024
        # Paper: "about 520 KiB" (512 KiB descriptors + 7.5 KiB bins).
        assert 515 <= total_kib <= 525

    def test_8k_receives_fit_caches(self):
        model = MemoryModel(bins=128, max_receives=8192)
        assert model.fits_l2()
        assert model.fits_l3()
        assert not model.requires_fallback()


class TestFallbackBoundary:
    def test_oversized_table_requires_fallback(self):
        model = MemoryModel(bins=128, max_receives=64 * 1024)
        assert model.total_bytes() > model.l3_bytes
        assert model.requires_fallback()

    def test_summary_keys(self):
        summary = MemoryModel(bins=128, max_receives=8192).summary()
        assert summary["fits_l2"] is True
        assert summary["total_kib"] == pytest.approx(519.5, abs=1.0)

    def test_footprint_monotone_in_bins(self):
        small = MemoryModel(bins=32, max_receives=1024).total_bytes()
        large = MemoryModel(bins=256, max_receives=1024).total_bytes()
        assert large > small

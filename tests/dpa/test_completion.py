"""Tests for the §IV-A strided completion-polling discipline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dpa import StridedPoller


class TestStridedPoller:
    def test_queue_depth_must_cover_threads(self):
        # §IV-A: "the completion queue needs to have a depth greater
        # or equal to N".
        with pytest.raises(ValueError, match="depth"):
            StridedPoller(threads=8, queue_depth=4)

    def test_thread_for_entry(self):
        p = StridedPoller(threads=4, queue_depth=16)
        assert [p.thread_for_entry(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_entries_for_thread(self):
        p = StridedPoller(threads=4, queue_depth=16)
        assert p.entries_for_thread(1, total=10) == [1, 5, 9]

    def test_entries_for_thread_bounds(self):
        p = StridedPoller(threads=4, queue_depth=16)
        with pytest.raises(IndexError):
            p.entries_for_thread(4, total=10)

    def test_batches_preserve_order(self):
        p = StridedPoller(threads=4, queue_depth=16)
        batches = list(p.batches(list(range(10))))
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert p.consumed == 10

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=100),
    )
    def test_assignment_is_partition(self, threads, total):
        """Every entry handled by exactly one thread, in stride order."""
        p = StridedPoller(threads=threads, queue_depth=threads)
        seen = sorted(
            entry
            for tid in range(threads)
            for entry in p.entries_for_thread(tid, total)
        )
        assert seen == list(range(total))
        for tid in range(threads):
            for entry in p.entries_for_thread(tid, total):
                assert p.thread_for_entry(entry) == tid

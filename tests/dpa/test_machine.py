"""Tests for the DPA machine model."""

import pytest

from repro.core import EngineConfig, MessageEnvelope, ReceiveRequest
from repro.dpa import BF3_THREADS, DpaMachine


def machine(**kw):
    base = dict(bins=16, block_threads=4, max_receives=128)
    base.update(kw)
    return DpaMachine(EngineConfig(**base))


class TestDpaMachine:
    def test_rejects_block_width_beyond_hardware(self):
        with pytest.raises(ValueError, match="hardware threads"):
            DpaMachine(EngineConfig(block_threads=BF3_THREADS + 1))

    def test_run_charges_cycles(self):
        m = machine()
        for tag in range(8):
            m.post_receive(ReceiveRequest(source=0, tag=tag))
        for tag in range(8):
            m.deliver(MessageEnvelope(source=0, tag=tag, send_seq=tag))
        events = m.run()
        assert len(events) == 8
        assert m.report.messages == 8
        assert m.report.blocks == 2
        assert m.report.dpa_cycles > 0
        assert m.report.dpa_seconds > 0

    def test_host_cycles_are_zero(self):
        # The offload's headline claim: no host matching work.
        m = machine()
        m.post_receive(ReceiveRequest(source=0, tag=0))
        m.deliver(MessageEnvelope(source=0, tag=0))
        m.run()
        assert m.report.host_matching_cycles == 0.0

    def test_conflicts_cost_more_than_clean_runs(self):
        def cycles(same_key: bool):
            m = machine(early_booking_check=False)
            for i in range(32):
                m.post_receive(
                    ReceiveRequest(source=0, tag=0 if same_key else i)
                )
            for i in range(32):
                m.deliver(
                    MessageEnvelope(source=0, tag=0 if same_key else i, send_seq=i)
                )
            m.run()
            return m.report.dpa_cycles

        assert cycles(same_key=True) > cycles(same_key=False)

    def test_block_history_optional(self):
        m = DpaMachine(
            EngineConfig(bins=16, block_threads=4, max_receives=128),
            keep_block_history=True,
        )
        for i in range(8):
            m.deliver(MessageEnvelope(source=0, tag=0, send_seq=i))
        m.run()
        assert len(m.report.per_block_cycles) == 2

    def test_memory_model_attached(self):
        m = machine(bins=128, max_receives=8192)
        assert m.memory.total_bytes() > 0

    def test_mean_cycles_per_message(self):
        m = machine()
        m.deliver(MessageEnvelope(source=0, tag=0))
        m.run()
        assert m.report.mean_cycles_per_message() == m.report.dpa_cycles

"""DpaMachine core-fault mode: guarded blocks, wasted-cycle accounting,
quarantine-aware costing, and takeover/re-offload through the spill path."""

from repro.core import EngineConfig, MessageEnvelope, ReceiveRequest
from repro.dpa import DpaMachine
from repro.matching.oracle import pairings
from repro.obs.registry import MetricsRegistry
from repro.recovery import CoreFaultPlan, RecoveryPolicy
from repro.util.rng import make_rng

CONFIG = dict(bins=4, block_threads=4, max_receives=256)


def machine(**kw):
    return DpaMachine(EngineConfig(**CONFIG), **kw)


def run_schedule(m, seed, rounds=10, senders=2, tags=3):
    """Posts + deliveries in rounds; returns all match events."""
    rng = make_rng(seed)
    events = []
    handle = 0
    seqs = {}
    for _ in range(rounds):
        for _ in range(int(rng.integers(1, 6))):
            request = ReceiveRequest(
                source=int(rng.integers(senders)),
                tag=int(rng.integers(tags)),
                handle=handle,
            )
            handle += 1
            event = m.post_receive(request)
            if event is not None:
                events.append(event)
        for _ in range(int(rng.integers(1, 6))):
            source = int(rng.integers(senders))
            seq = seqs.get(source, 0)
            seqs[source] = seq + 1
            m.deliver(
                MessageEnvelope(
                    source=source, tag=int(rng.integers(tags)), send_seq=seq
                )
            )
        events.extend(m.run())
    events.extend(m.run())
    return events


STORM = CoreFaultPlan(seed=9, fail_stop_rate=0.2, hang_rate=0.1, bit_flip_rate=0.2)
#: Threshold high enough that the storm never escalates off the DPA —
#: all waste stays on the accelerator clock (takeover has its own test).
POLICY = RecoveryPolicy(quarantine_threshold=7, repair_epochs=5)


class TestFaultMode:
    def test_pairings_match_clean_run_and_cycles_cost_more(self):
        clean = machine()
        clean_events = run_schedule(clean, seed=1)
        faulty = machine(cores=8, core_faults=STORM, recovery=POLICY)
        faulty_events = run_schedule(faulty, seed=1)
        assert pairings(faulty_events) == pairings(clean_events)
        rs = faulty.recovery_stats
        assert (
            rs.core_fail_stops + rs.core_hangs + rs.core_bit_flips > 0
        )  # non-vacuous
        assert faulty.report.replayed_blocks > 0
        assert faulty.report.replay_cycles > 0
        # No takeover at this threshold, so every wasted attempt and
        # hang-watchdog timeout lands on the accelerator clock.
        assert rs.host_takeovers == 0
        assert faulty.report.dpa_cycles > clean.report.dpa_cycles
        assert faulty.report.messages == clean.report.messages

    def test_quarantine_raises_per_block_cost(self):
        """Blocks are costed over surviving cores: with half the cores
        dead, the same work takes more cycles per block."""
        base = machine(keep_block_history=True)
        run_schedule(base, seed=3, rounds=6)
        hurt = machine(
            cores=8,
            keep_block_history=True,
            core_faults=CoreFaultPlan(seed=5, fail_stop_rate=0.6),
            recovery=RecoveryPolicy(quarantine_threshold=6, repair_epochs=200),
        )
        run_schedule(hurt, seed=3, rounds=6)
        assert hurt.recovery_stats.cores_quarantined > 0
        assert hurt.report.dpa_cycles > base.report.dpa_cycles

    def test_takeover_and_reoffload_through_spill_path(self):
        """Past the quarantine threshold the host adopts matching (the
        PR 1 spill path: host cycles now nonzero), and quick repairs
        bring it back on-NIC."""
        m = machine(
            cores=4,
            core_faults=CoreFaultPlan(seed=2, fail_stop_rate=1.0),
            recovery=RecoveryPolicy(quarantine_threshold=0, repair_epochs=2),
        )
        events = run_schedule(m, seed=2, rounds=10)
        rs = m.recovery_stats
        assert rs.host_takeovers >= 1
        assert m.report.host_messages > 0
        assert m.report.host_matching_cycles > 0
        assert rs.reoffloads >= 1
        assert m.engine.stats.fallback_spills == rs.host_takeovers
        # Matching itself stayed correct across every migration.
        clean_events = run_schedule(machine(), seed=2, rounds=10)
        assert pairings(events) == pairings(clean_events)

    def test_determinism(self):
        a = machine(cores=8, core_faults=STORM, recovery=POLICY)
        events_a = run_schedule(a, seed=4)
        b = machine(cores=8, core_faults=STORM, recovery=POLICY)
        events_b = run_schedule(b, seed=4)
        assert pairings(events_a) == pairings(events_b)
        assert a.report.dpa_cycles == b.report.dpa_cycles
        assert a.recovery_stats == b.recovery_stats


class TestObservability:
    def test_recovery_metrics_registered(self):
        registry = MetricsRegistry()
        m = machine(cores=8, core_faults=STORM, recovery=POLICY)
        m.register_metrics(registry)
        run_schedule(m, seed=6)
        values = registry.snapshot().values
        assert values["dpa.recovery.block_rollbacks"] > 0
        assert "dpa.quarantined" in values
        assert any(n.startswith("dpa.replay_cycles") for n in values)

"""Tests for the cycle-cost models."""

import pytest

from repro.core.stats import BlockStats
from repro.dpa.costs import DpaCostModel, HostCostModel, WireModel


def block(messages=4, steps=(10, 10, 10, 10), **kw):
    b = BlockStats(messages=messages, thread_steps=list(steps))
    for key, value in kw.items():
        setattr(b, key, value)
    return b


class TestDpaCostModel:
    def test_empty_block_is_free(self):
        assert DpaCostModel().block_cycles(BlockStats(), cores=16) == 0.0

    def test_span_bounds_parallel_time(self):
        model = DpaCostModel()
        balanced = model.block_cycles(block(steps=(10, 10, 10, 10)), cores=16)
        skewed = model.block_cycles(block(steps=(37, 1, 1, 1)), cores=16)
        assert skewed > balanced  # critical path dominates

    def test_work_bounds_with_few_cores(self):
        model = DpaCostModel()
        many = model.block_cycles(block(steps=(10,) * 4), cores=16)
        one = model.block_cycles(block(steps=(10,) * 4), cores=1)
        assert one > many

    def test_conflict_work_costs_cycles(self):
        model = DpaCostModel()
        clean = model.block_cycles(block(), cores=16)
        conflicted = model.block_cycles(block(slow_path=3, wait_polls=50), cores=16)
        assert conflicted > clean

    def test_inline_hash_saves_cycles(self):
        model = DpaCostModel()
        with_hash = model.block_cycles(block(hashes_computed=12), cores=16)
        without = model.block_cycles(block(hashes_computed=0), cores=16)
        assert with_hash > without

    def test_cycles_to_seconds(self):
        model = DpaCostModel(clock_ghz=2.0)
        assert model.cycles_to_seconds(2e9) == pytest.approx(1.0)


class TestHostCostModel:
    def test_walk_scales_cost(self):
        model = HostCostModel()
        short = model.matching_cycles(messages=100, walked=100)
        long = model.matching_cycles(messages=100, walked=10_000)
        assert long > short

    def test_per_message_floor(self):
        model = HostCostModel()
        assert model.matching_cycles(messages=10, walked=0) == 10 * model.per_message_overhead


class TestWireModel:
    def test_sequence_time_scales_with_k(self):
        wire = WireModel()
        assert wire.sequence_seconds(200) > wire.sequence_seconds(100)

    def test_latency_paid_twice(self):
        wire = WireModel(latency_s=1e-6, per_message_s=0.0)
        assert wire.sequence_seconds(100) == pytest.approx(2e-6)

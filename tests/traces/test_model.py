"""Tests for the trace model."""

import pytest

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.traces.model import OpGroup, OpKind, RankTrace, Trace, TraceOp


class TestOpClassification:
    @pytest.mark.parametrize(
        ("kind", "group"),
        [
            (OpKind.ISEND, OpGroup.P2P),
            (OpKind.RECV, OpGroup.P2P),
            (OpKind.WAIT, OpGroup.PROGRESS),
            (OpKind.WAITALL, OpGroup.PROGRESS),
            (OpKind.ALLTOALL, OpGroup.COLLECTIVE),
            (OpKind.BARRIER, OpGroup.COLLECTIVE),
            (OpKind.PUT, OpGroup.ONE_SIDED),
            (OpKind.GET, OpGroup.ONE_SIDED),
        ],
    )
    def test_groups(self, kind, group):
        assert TraceOp(kind=kind).group is group

    def test_wildcard_detection(self):
        assert TraceOp(kind=OpKind.IRECV, peer=ANY_SOURCE, tag=0).uses_wildcard()
        assert TraceOp(kind=OpKind.IRECV, peer=0, tag=ANY_TAG).uses_wildcard()
        assert not TraceOp(kind=OpKind.IRECV, peer=0, tag=0).uses_wildcard()
        # Sends never count as wildcard even with odd fields.
        assert not TraceOp(kind=OpKind.ISEND, peer=-1, tag=-1).uses_wildcard()


class TestTraceAggregation:
    def make_trace(self):
        r0 = RankTrace(
            0,
            [
                TraceOp(kind=OpKind.ISEND, peer=1, tag=0),
                TraceOp(kind=OpKind.IRECV, peer=1, tag=0),
                TraceOp(kind=OpKind.WAITALL, size=2),
                TraceOp(kind=OpKind.ALLREDUCE),
            ],
        )
        r1 = RankTrace(1, [TraceOp(kind=OpKind.PUT)])
        return Trace(name="t", nprocs=2, ranks=[r0, r1])

    def test_counts_by_group(self):
        counts = self.make_trace().counts_by_group()
        assert counts[OpGroup.P2P] == 2
        assert counts[OpGroup.PROGRESS] == 1
        assert counts[OpGroup.COLLECTIVE] == 1
        assert counts[OpGroup.ONE_SIDED] == 1

    def test_call_mix_excludes_progress(self):
        mix = self.make_trace().call_mix()
        assert mix[OpGroup.P2P] == pytest.approx(0.5)
        assert mix[OpGroup.COLLECTIVE] == pytest.approx(0.25)
        assert mix[OpGroup.ONE_SIDED] == pytest.approx(0.25)

    def test_call_mix_empty_trace(self):
        trace = Trace(name="empty", nprocs=1, ranks=[RankTrace(0, [])])
        mix = trace.call_mix()
        assert all(v == 0.0 for v in mix.values())

    def test_total_ops(self):
        assert self.make_trace().total_ops() == 5

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            Trace(name="bad", nprocs=0)

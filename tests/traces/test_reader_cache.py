"""Tests for trace directory I/O and the binary cache."""

import pytest

from repro.traces import load_trace, save_trace
from repro.traces.cache import cache_path, load_cached, store_cache
from repro.traces.model import OpKind, RankTrace, Trace, TraceOp
from repro.traces.synthetic import generate


def small_trace():
    return Trace(
        name="unit",
        nprocs=2,
        ranks=[
            RankTrace(
                0,
                [
                    TraceOp(kind=OpKind.IRECV, peer=1, tag=0, request=0, walltime=0.1),
                    TraceOp(kind=OpKind.WAIT, request=0, walltime=0.2),
                ],
            ),
            RankTrace(1, [TraceOp(kind=OpKind.ISEND, peer=0, tag=0, request=0, walltime=0.15)]),
        ],
    )


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        save_trace(small_trace(), tmp_path / "unit")
        loaded = load_trace(tmp_path / "unit", use_cache=False, parallel=False)
        assert loaded.name == "unit"
        assert loaded.nprocs == 2
        assert loaded.rank(0).ops[0].kind is OpKind.IRECV
        assert loaded.rank(1).ops[0].kind is OpKind.ISEND

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nothing" / "here", use_cache=False)

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "empty", use_cache=False)

    def test_non_contiguous_ranks_rejected(self, tmp_path):
        d = tmp_path / "gappy"
        d.mkdir()
        (d / "dumpi-0.txt").write_text("")
        (d / "dumpi-2.txt").write_text("")
        with pytest.raises(ValueError, match="non-contiguous"):
            load_trace(d, use_cache=False)

    def test_synthetic_round_trip(self, tmp_path):
        original = generate("AMG", processes=8, rounds=2)
        save_trace(original, tmp_path / "amg")
        loaded = load_trace(tmp_path / "amg", use_cache=False, parallel=False)
        assert loaded.total_ops() == original.total_ops()
        assert loaded.counts_by_group() == original.counts_by_group()


class TestCache:
    def test_cache_hit_after_first_load(self, tmp_path):
        d = tmp_path / "cached"
        save_trace(small_trace(), d)
        first = load_trace(d, parallel=False)
        assert cache_path(d).exists()
        second = load_trace(d, parallel=False)
        assert second.total_ops() == first.total_ops()

    def test_cache_invalidated_on_change(self, tmp_path):
        import os

        d = tmp_path / "inv"
        save_trace(small_trace(), d)
        load_trace(d, parallel=False)
        # Touch a rank file with a different size: fingerprint changes.
        path = d / "dumpi-0.txt"
        path.write_text(path.read_text() + "\n")
        os.utime(path, (1, 1))
        assert load_cached(d) is None

    def test_corrupt_cache_ignored(self, tmp_path):
        d = tmp_path / "corrupt"
        save_trace(small_trace(), d)
        store_cache(d, small_trace())
        cache_path(d).write_bytes(b"garbage")
        assert load_cached(d) is None
        # And loading falls back to parsing.
        assert load_trace(d, parallel=False).nprocs == 2

    def test_store_load_identity(self, tmp_path):
        d = tmp_path / "ident"
        save_trace(small_trace(), d)
        trace = small_trace()
        store_cache(d, trace)
        cached = load_cached(d)
        assert cached is not None
        assert cached.name == trace.name
        assert cached.total_ops() == trace.total_ops()

"""Tests for the DUMPI ASCII parser/writer."""

import pytest

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.traces.dumpi import (
    TraceParseError,
    format_rank_trace,
    parse_rank_text,
)
from repro.traces.model import OpKind, RankTrace, TraceOp

SAMPLE = """\
MPI_Irecv entering at walltime 11.0816, cputime 0.0005 seconds in thread 0.
int count=512
datatype datatype=11 (MPI_DOUBLE)
int source=3
int tag=42
comm comm=2 (MPI_COMM_WORLD)
request request=7
MPI_Irecv returning at walltime 11.0817, cputime 0.0005 seconds in thread 0.
MPI_Isend entering at walltime 11.0901, cputime 0.0006 seconds in thread 0.
int count=512
datatype datatype=11 (MPI_DOUBLE)
int dest=3
int tag=42
comm comm=2 (MPI_COMM_WORLD)
request request=8
MPI_Isend returning at walltime 11.0902, cputime 0.0006 seconds in thread 0.
MPI_Waitall entering at walltime 11.1000, cputime 0.0007 seconds in thread 0.
int count=2
MPI_Waitall returning at walltime 11.2000, cputime 0.0008 seconds in thread 0.
"""


class TestParser:
    def test_parses_sample(self):
        trace = parse_rank_text(SAMPLE, rank=5)
        assert trace.rank == 5
        kinds = [op.kind for op in trace.ops]
        assert kinds == [OpKind.IRECV, OpKind.ISEND, OpKind.WAITALL]

    def test_irecv_fields(self):
        op = parse_rank_text(SAMPLE, 0).ops[0]
        assert op.peer == 3
        assert op.tag == 42
        assert op.comm == 2
        assert op.size == 512
        assert op.request == 7
        assert op.walltime == pytest.approx(11.0816)

    def test_waitall_count(self):
        op = parse_rank_text(SAMPLE, 0).ops[2]
        assert op.size == 2

    def test_wildcards_mapped(self):
        text = (
            "MPI_Irecv entering at walltime 1.0, cputime 0 seconds in thread 0.\n"
            "int source=-1\n"
            "int tag=-1\n"
            "MPI_Irecv returning at walltime 1.0, cputime 0 seconds in thread 0.\n"
        )
        op = parse_rank_text(text, 0).ops[0]
        assert op.peer == ANY_SOURCE
        assert op.tag == ANY_TAG
        assert op.uses_wildcard()

    def test_unknown_calls_skipped(self):
        text = (
            "MPI_Cart_create entering at walltime 1.0, cputime 0 seconds in thread 0.\n"
            "int ndims=2\n"
            "MPI_Cart_create returning at walltime 1.0, cputime 0 seconds in thread 0.\n"
            "MPI_Send entering at walltime 2.0, cputime 0 seconds in thread 0.\n"
            "int dest=1\n"
            "int tag=0\n"
            "MPI_Send returning at walltime 2.0, cputime 0 seconds in thread 0.\n"
        )
        trace = parse_rank_text(text, 0)
        assert [op.kind for op in trace.ops] == [OpKind.SEND]

    def test_truncated_block_raises(self):
        text = "MPI_Send entering at walltime 1.0, cputime 0 seconds in thread 0.\nint dest=1\n"
        with pytest.raises(TraceParseError, match="never returned"):
            parse_rank_text(text, 0)

    def test_noise_lines_ignored(self):
        trace = parse_rank_text("random noise\n\nmore noise\n", 0)
        assert trace.ops == []

    def test_collectives_counted(self):
        text = (
            "MPI_Allreduce entering at walltime 1.0, cputime 0 seconds in thread 0.\n"
            "int count=4\n"
            "comm comm=2 (MPI_COMM_WORLD)\n"
            "MPI_Allreduce returning at walltime 1.0, cputime 0 seconds in thread 0.\n"
        )
        op = parse_rank_text(text, 0).ops[0]
        assert op.kind is OpKind.ALLREDUCE
        assert op.size == 4


class TestRoundTrip:
    def ops_fixture(self):
        return RankTrace(
            0,
            [
                TraceOp(kind=OpKind.IRECV, peer=2, tag=5, size=64, request=0, walltime=0.5),
                TraceOp(
                    kind=OpKind.IRECV,
                    peer=ANY_SOURCE,
                    tag=ANY_TAG,
                    size=1,
                    request=1,
                    walltime=0.6,
                ),
                TraceOp(kind=OpKind.ISEND, peer=2, tag=5, size=64, request=2, walltime=0.7),
                TraceOp(kind=OpKind.WAIT, request=0, walltime=0.8),
                TraceOp(kind=OpKind.WAITALL, size=3, walltime=0.9),
                TraceOp(kind=OpKind.ALLREDUCE, size=8, walltime=1.0),
            ],
        )

    def test_format_parse_round_trip(self):
        original = self.ops_fixture()
        text = format_rank_trace(original)
        parsed = parse_rank_text(text, 0)
        assert len(parsed.ops) == len(original.ops)
        for a, b in zip(original.ops, parsed.ops):
            assert a.kind == b.kind
            assert a.peer == b.peer or b.kind not in (OpKind.IRECV, OpKind.ISEND)
            assert a.tag == b.tag or b.kind not in (OpKind.IRECV, OpKind.ISEND)
            assert a.request == b.request
            assert a.walltime == pytest.approx(b.walltime, abs=1e-4)

    def test_empty_trace_formats_empty(self):
        assert format_rank_trace(RankTrace(0, [])) == ""

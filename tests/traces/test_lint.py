"""Tests for the trace linter."""

import pytest

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.traces.lint import lint_trace
from repro.traces.model import OpKind, RankTrace, Trace, TraceOp
from repro.traces.synthetic import app_names, generate


def trace_of(ops_by_rank):
    return Trace(
        name="lint",
        nprocs=len(ops_by_rank),
        ranks=[RankTrace(r, ops) for r, ops in enumerate(ops_by_rank)],
    )


class TestErrors:
    def test_send_to_invalid_rank(self):
        report = lint_trace(
            trace_of([[TraceOp(kind=OpKind.ISEND, peer=5, tag=0, walltime=0.1)], []])
        )
        assert not report.ok
        assert "invalid rank" in report.errors()[0].message

    def test_time_going_backwards(self):
        report = lint_trace(
            trace_of(
                [
                    [
                        TraceOp(kind=OpKind.ISEND, peer=1, tag=0, walltime=2.0),
                        TraceOp(kind=OpKind.ISEND, peer=1, tag=0, walltime=1.0),
                    ],
                    [],
                ]
            ),
            require_balance=False,
        )
        assert any("backwards" in issue.message for issue in report.errors())

    def test_negative_send_tag(self):
        report = lint_trace(
            trace_of([[TraceOp(kind=OpKind.ISEND, peer=1, tag=-1, walltime=0.1)], []])
        )
        assert any("negative tag" in e.message for e in report.errors())

    def test_wildcard_receive_is_legal(self):
        report = lint_trace(
            trace_of(
                [
                    [
                        TraceOp(
                            kind=OpKind.IRECV,
                            peer=ANY_SOURCE,
                            tag=ANY_TAG,
                            walltime=0.1,
                        ),
                        TraceOp(kind=OpKind.WAIT, request=0, walltime=0.2),
                    ],
                    [TraceOp(kind=OpKind.ISEND, peer=0, tag=0, walltime=0.15)],
                ]
            )
        )
        assert report.ok


class TestWarnings:
    def test_unbalanced_traffic(self):
        report = lint_trace(
            trace_of([[TraceOp(kind=OpKind.ISEND, peer=1, tag=0, walltime=0.1)], []])
        )
        assert any("unbalanced" in w.message for w in report.warnings())

    def test_missing_progress_op(self):
        report = lint_trace(
            trace_of(
                [
                    [TraceOp(kind=OpKind.IRECV, peer=1, tag=0, walltime=0.1)],
                    [TraceOp(kind=OpKind.ISEND, peer=0, tag=0, walltime=0.2),
                     TraceOp(kind=OpKind.WAITALL, size=1, walltime=0.3)],
                ]
            )
        )
        assert any("no progress op" in w.message for w in report.warnings())

    def test_duplicate_request_ids(self):
        report = lint_trace(
            trace_of(
                [
                    [
                        TraceOp(kind=OpKind.IRECV, peer=1, tag=0, request=3, walltime=0.1),
                        TraceOp(kind=OpKind.IRECV, peer=1, tag=1, request=3, walltime=0.2),
                        TraceOp(kind=OpKind.WAITALL, size=2, walltime=0.3),
                    ],
                    [
                        TraceOp(kind=OpKind.ISEND, peer=0, tag=0, walltime=0.15),
                        TraceOp(kind=OpKind.ISEND, peer=0, tag=1, walltime=0.16),
                    ],
                ]
            )
        )
        assert any("reused" in w.message for w in report.warnings())


class TestRegisteredGenerators:
    @pytest.mark.parametrize("name", app_names())
    def test_every_generator_lints_clean(self, name):
        """No registered application trace may carry lint errors, and
        the p2p ones must be balanced."""
        trace = generate(name, rounds=3)
        report = lint_trace(trace)
        assert report.ok, [issue.message for issue in report.errors()]
        assert not any("unbalanced" in w.message for w in report.warnings()), name

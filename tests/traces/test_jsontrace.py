"""Tests for the JSON trace format (the second-reader extension)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.traces.jsontrace import (
    JsonTraceError,
    dump_rank_jsonl,
    load_trace_json,
    parse_rank_jsonl,
    save_trace_json,
)
from repro.traces.model import OpKind, RankTrace, Trace, TraceOp
from repro.traces.synthetic import generate


def sample_trace():
    return Trace(
        name="json-unit",
        nprocs=2,
        ranks=[
            RankTrace(
                0,
                [
                    TraceOp(kind=OpKind.IRECV, peer=ANY_SOURCE, tag=ANY_TAG, request=0,
                            walltime=0.25),
                    TraceOp(kind=OpKind.WAIT, request=0, walltime=0.5),
                ],
            ),
            RankTrace(
                1, [TraceOp(kind=OpKind.ISEND, peer=0, tag=3, size=16, walltime=0.3)]
            ),
        ],
    )


class TestRoundTrip:
    def test_rank_round_trip_is_exact(self):
        original = sample_trace().rank(0)
        parsed = parse_rank_jsonl(dump_rank_jsonl(original), 0)
        assert parsed.ops == original.ops

    def test_directory_round_trip(self, tmp_path):
        trace = sample_trace()
        save_trace_json(trace, tmp_path / "t")
        loaded = load_trace_json(tmp_path / "t")
        assert loaded.name == trace.name
        assert loaded.nprocs == 2
        for a, b in zip(loaded.ranks, trace.ranks):
            assert a.ops == b.ops

    def test_synthetic_app_round_trip(self, tmp_path):
        trace = generate("SNAP", processes=8, rounds=2)
        save_trace_json(trace, tmp_path / "snap")
        loaded = load_trace_json(tmp_path / "snap")
        assert loaded.total_ops() == trace.total_ops()
        assert loaded.counts_by_group() == trace.counts_by_group()

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(list(OpKind)),
                st.integers(-1, 8),
                st.integers(-1, 8),
                st.floats(0, 100, allow_nan=False),
            ),
            max_size=30,
        )
    )
    def test_any_ops_round_trip(self, ops):
        original = RankTrace(
            0,
            [
                TraceOp(kind=kind, peer=peer, tag=tag, walltime=t)
                for kind, peer, tag, t in ops
            ],
        )
        parsed = parse_rank_jsonl(dump_rank_jsonl(original), 0)
        assert parsed.ops == original.ops


class TestErrors:
    def test_invalid_json_line(self):
        with pytest.raises(JsonTraceError, match="invalid JSON"):
            parse_rank_jsonl('{"op": "MPI_Send"}\nnot json\n', 0)

    def test_unknown_op(self):
        with pytest.raises(JsonTraceError, match="unknown"):
            parse_rank_jsonl('{"op": "MPI_Nonexistent"}\n', 0)

    def test_blank_lines_tolerated(self):
        parsed = parse_rank_jsonl('\n{"op": "MPI_Barrier"}\n\n', 0)
        assert len(parsed.ops) == 1

    def test_missing_meta(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_json(tmp_path)

    def test_version_mismatch(self, tmp_path):
        (tmp_path / "meta.json").write_text('{"name": "x", "nprocs": 1, "version": 99}')
        with pytest.raises(JsonTraceError, match="version"):
            load_trace_json(tmp_path)

    def test_missing_rank_file(self, tmp_path):
        (tmp_path / "meta.json").write_text('{"name": "x", "nprocs": 2, "version": 1}')
        (tmp_path / "rank-0.jsonl").write_text("")
        with pytest.raises(JsonTraceError, match="rank-1"):
            load_trace_json(tmp_path)


class TestAnalyzerInterop:
    def test_analyzer_consumes_json_loaded_trace(self, tmp_path):
        from repro.analyzer import analyze

        trace = generate("AMG", rounds=2)
        save_trace_json(trace, tmp_path / "amg")
        loaded = load_trace_json(tmp_path / "amg")
        direct = analyze(trace, 32)
        via_json = analyze(loaded, 32)
        assert via_json.depth.mean_depth == pytest.approx(direct.depth.mean_depth)
        assert via_json.depth.collisions == direct.depth.collisions

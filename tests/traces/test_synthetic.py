"""Tests for the synthetic pattern library and the app registry."""

import pytest

from repro.traces.model import OpGroup, OpKind
from repro.traces.synthetic import (
    APPLICATIONS,
    TraceBuilder,
    alltoall_p2p_round,
    app_names,
    generate,
    grid_dims,
    grid_neighbors,
    halo_exchange_round,
    irregular_round,
    manytoone_round,
    ring_round,
    sweep_round,
)


class TestGridHelpers:
    @pytest.mark.parametrize(
        ("n", "d", "expected"),
        [(8, 3, (2, 2, 2)), (64, 3, (4, 4, 4)), (16, 2, (4, 4)), (12, 2, (3, 4)), (7, 2, (1, 7))],
    )
    def test_grid_dims_factorize(self, n, d, expected):
        dims = grid_dims(n, d)
        assert len(dims) == d
        product = 1
        for extent in dims:
            product *= extent
        assert product == n
        assert sorted(dims) == sorted(expected)

    def test_face_neighbors_3d(self):
        neighbors = grid_neighbors(13, (3, 3, 3))  # centre of 3x3x3
        assert len(neighbors) == 6

    def test_diagonal_neighbors_3d(self):
        neighbors = grid_neighbors(13, (3, 3, 3), diagonals=True)
        assert len(neighbors) == 26

    def test_periodic_wraps(self):
        neighbors = grid_neighbors(0, (4, 4), periodic=True)
        assert len(neighbors) == 4

    def test_non_periodic_corner(self):
        neighbors = grid_neighbors(0, (4, 4), periodic=False)
        assert len(neighbors) == 2

    def test_small_grid_dedupes(self):
        # On a 2-wide axis, +1 and -1 reach the same rank.
        neighbors = grid_neighbors(0, (2, 2))
        assert sorted(neighbors) == [1, 2]


def sends_and_recvs(trace):
    sends, recvs = [], []
    for rank_trace in trace.ranks:
        for op in rank_trace.ops:
            if op.kind is OpKind.ISEND:
                sends.append((rank_trace.rank, op.peer, op.tag))
            elif op.kind is OpKind.IRECV:
                recvs.append((op.peer, rank_trace.rank, op.tag))
    return sends, recvs


class TestPatternsBalance:
    """Every send must have a matching posted receive: traces that
    violate this would poison the analyzer with phantom unexpecteds."""

    @pytest.mark.parametrize(
        "emit",
        [
            lambda b: halo_exchange_round(b, grid_dims(b.nprocs, 2)),
            lambda b: halo_exchange_round(b, grid_dims(b.nprocs, 3), diagonals=True),
            lambda b: alltoall_p2p_round(b),
            lambda b: manytoone_round(b),
            lambda b: manytoone_round(b, wildcard_source=True),
            lambda b: sweep_round(b, grid_dims(b.nprocs, 2)),
            lambda b: ring_round(b),
            lambda b: irregular_round(b, degree=3, tag_space=4, seed=1),
        ],
    )
    def test_sends_match_recvs(self, emit):
        builder = TraceBuilder("pattern", 16)
        emit(builder)
        trace = builder.build()
        sends, recvs = sends_and_recvs(trace)
        concrete = [r for r in recvs if r[0] >= 0]
        wildcards = [r for r in recvs if r[0] < 0]
        # Each concrete (src, dst, tag) receive pairs 1:1 with a send.
        assert sorted(sends) == sorted(concrete) or len(wildcards) > 0
        assert len(sends) == len(recvs)

    def test_recvs_posted_before_sends(self):
        builder = TraceBuilder("order", 9)
        halo_exchange_round(builder, (3, 3))
        trace = builder.build()
        for rank_trace in trace.ranks:
            recv_times = [o.walltime for o in rank_trace.ops if o.kind is OpKind.IRECV]
            send_times = [o.walltime for o in rank_trace.ops if o.kind is OpKind.ISEND]
            assert max(recv_times) < min(send_times)


class TestRegistry:
    def test_sixteen_applications(self):
        assert len(APPLICATIONS) == 16

    def test_table2_process_counts(self):
        expected = {
            "AMG": 8,
            "AMR MiniApp": 64,
            "BigFFT": 1024,
            "BoxLib CNS": 64,
            "BoxLib MultiGrid": 64,
            "CrystalRouter": 100,
            "FillBoundary": 1000,
            "HILO": 256,
            "HILO 2D": 256,
            "LULESH": 64,
            "MiniFe": 1152,
            "MOCFE": 64,
            "MultiGrid": 1000,
            "Nekbone": 64,
            "PARTISN": 168,
            "SNAP": 168,
        }
        assert {n: s.table_processes for n, s in APPLICATIONS.items()} == expected

    def test_alphabetical_order(self):
        names = app_names()
        assert names == sorted(names, key=str.lower)

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="unknown application"):
            generate("NoSuchApp")

    def test_all_apps_generate(self):
        for name in app_names():
            trace = generate(name, rounds=2)
            assert trace.total_ops() > 0
            assert trace.nprocs == APPLICATIONS[name].default_processes

    def test_call_mix_matches_figure6(self):
        """Fig. 6: 3 apps exclusively p2p, HILO's two versions
        exclusively collectives, nobody one-sided."""
        pure_p2p, pure_coll = [], []
        for name in app_names():
            mix = generate(name, rounds=6).call_mix()
            assert mix[OpGroup.ONE_SIDED] == 0.0
            if mix[OpGroup.COLLECTIVE] == 0.0 and mix[OpGroup.P2P] > 0:
                pure_p2p.append(name)
            if mix[OpGroup.P2P] == 0.0 and mix[OpGroup.COLLECTIVE] > 0:
                pure_coll.append(name)
        assert len(pure_p2p) == 3
        assert sorted(pure_coll) == ["HILO", "HILO 2D"]

    def test_generation_deterministic(self):
        a = generate("CrystalRouter", rounds=3)
        b = generate("CrystalRouter", rounds=3)
        assert a.total_ops() == b.total_ops()
        for ra, rb in zip(a.ranks, b.ranks):
            assert ra.ops == rb.ops

    def test_custom_scale(self):
        trace = generate("AMG", processes=27, rounds=1)
        assert trace.nprocs == 27

"""Flight recorder wired through the chaos harness.

Three integration contracts: (1) an attached recorder is pure
bookkeeping — the chaos report is byte-identical with and without it;
(2) when a mutant engine trips the watchdog, the v4 report carries the
first violating message's full lifecycle passport; (3) ledgers flow
through the soak driver and the fleet result codec.
"""

from __future__ import annotations

import io
from dataclasses import replace

import pytest

from repro.chaos.coresoak import MUTANT_PROFILES
from repro.chaos.harness import ChaosConfig, ChaosReport, run_chaos
from repro.chaos.soak import soak
from repro.fleet.codec import decode_result, encode_result
from repro.obs.attribution import check_conservation
from repro.obs.ledger import FlightRecorder, LedgerDump, MessageRecord

MUTANT_SEEDS = range(1, 9)


class TestRecorderIsPureBookkeeping:
    @pytest.mark.parametrize(
        "config",
        [
            ChaosConfig(seed=6, rounds=4),
            ChaosConfig(seed=6, rounds=4, fallback=True),
            ChaosConfig(seed=6, rounds=4, pressure=True),
        ],
        ids=["plain", "fallback", "pressure"],
    )
    def test_report_identical_with_and_without_recorder(self, config):
        baseline = run_chaos(config)
        recorded = run_chaos(config, recorder=FlightRecorder())
        assert recorded.to_json() == baseline.to_json()

    def test_recorder_captures_every_sent_message(self):
        recorder = FlightRecorder()
        report = run_chaos(ChaosConfig(seed=6, rounds=4), recorder=recorder)
        assert report.ok
        assert len(recorder.records) == report.sent
        assert all(rec.label for rec in recorder.records.values())
        assert all(
            check_conservation(rec) for rec in recorder.records.values()
        )


class TestViolationPassport:
    def test_mutant_violation_carries_passport(self):
        template = MUTANT_PROFILES[sorted(MUTANT_PROFILES)[0]]
        for seed in MUTANT_SEEDS:
            recorder = FlightRecorder()
            report = run_chaos(
                replace(template, seed=seed), recorder=recorder
            )
            if not report.detected_violation:
                continue
            assert report.passport, "violation reported without a passport"
            rec = MessageRecord.from_dict(report.passport)
            assert rec.transitions, "passport has no lifecycle"
            assert rec.label == report.passport["label"]
            # The passport survives the v4 report codec.
            restored = ChaosReport.from_json(report.to_json())
            assert restored.passport == report.passport
            return
        pytest.fail(f"no violating seed in {list(MUTANT_SEEDS)}")

    def test_clean_run_has_empty_passport(self):
        report = run_chaos(
            ChaosConfig(seed=3, rounds=3), recorder=FlightRecorder()
        )
        assert report.ok
        assert report.passport == {}


class TestLedgerPlumbing:
    def test_soak_fills_ledger_sink(self):
        sink: list[LedgerDump] = []
        runs, failures = soak(
            ["clean"],
            range(1, 3),
            out=io.StringIO(),
            err=io.StringIO(),
            ledger_sink=sink,
        )
        assert failures == 0 and runs == 2
        assert len(sink) == 1  # one representative dump per profile
        assert "clean" in sink[0].scenarios
        assert any(True for _ in sink[0].iter_records())

    def test_ledger_dump_round_trips_fleet_codec(self):
        recorder = FlightRecorder()
        run_chaos(ChaosConfig(seed=2, rounds=3), recorder=recorder)
        dump = recorder.export(scenario="codec")
        restored = decode_result(encode_result(dump))
        assert isinstance(restored, LedgerDump)
        assert restored.to_json() == dump.to_json()

"""Chaos harness v2: core-fault lanes, mutant lanes, report schema."""

from dataclasses import replace

import pytest

from repro.chaos.coresoak import CORE_PROFILES, MUTANT_PROFILES
from repro.chaos.harness import (
    ChaosConfig,
    ChaosReport,
    config_from_params,
    config_to_params,
    run_chaos,
)
from repro.recovery import CoreFaultPlan, RecoveryPolicy

MUTANT_SEEDS = range(1, 9)


class TestConfig:
    def test_params_round_trip_with_recovery(self):
        config = ChaosConfig(
            seed=5,
            core_plan=CoreFaultPlan.storm(seed=9),
            recovery=RecoveryPolicy(quarantine_threshold=2, repair_epochs=7),
            cores=8,
            engine="optimistic",
            watchdog=True,
        )
        assert config_from_params(config_to_params(config)) == config

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError):
            ChaosConfig(engine="no_such_engine")

    def test_fallback_and_core_faults_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ChaosConfig(fallback=True, core_plan=CoreFaultPlan.storm())

    def test_fallback_requires_real_engine(self):
        with pytest.raises(ValueError, match="optimistic engine"):
            ChaosConfig(fallback=True, engine="no_barrier")


class TestRealEngineLanes:
    def test_core_fault_lanes_stay_correct(self):
        """Every real-engine core-fault lane survives a small seed pool
        with zero violations, and the pool is non-vacuous overall."""
        injected = replayed = takeovers = 0
        for name, template in CORE_PROFILES.items():
            for seed in range(1, 7):
                report = run_chaos(replace(template, seed=seed))
                assert report.ok, f"{name} seed={seed}: {report.first_violation!r}"
                assert report.watchdog_checks > 0  # online checks ran
                injected += (
                    report.core_fail_stops
                    + report.core_hangs
                    + report.core_bit_flips
                )
                replayed += report.blocks_replayed
                takeovers += report.host_takeovers
        assert injected > 0
        assert replayed > 0
        assert takeovers > 0

    def test_same_seed_is_bit_identical(self):
        config = replace(CORE_PROFILES["storm"], seed=7)
        assert run_chaos(config).to_json() == run_chaos(config).to_json()

    def test_wire_and_core_fault_streams_are_independent(self):
        """One run seed derives distinct wire and core schedules: core
        faults fire even when the wire plan is clean, and the wire
        counters match a wire-only control run."""
        storm = replace(CORE_PROFILES["storm"], seed=13)
        report = run_chaos(storm)
        core_only = replace(storm, plan=storm.plan.with_options(
            drop_rate=0.0, duplicate_rate=0.0, reorder_rate=0.0
        ))
        control = run_chaos(core_only)
        assert control.faults_injected == 0
        assert (
            control.core_fail_stops + control.core_hangs + control.core_bit_flips
            > 0
        )
        assert report.ok and control.ok


class TestMutantLanes:
    @pytest.mark.parametrize("name", sorted(MUTANT_PROFILES))
    def test_each_mutant_caught_on_some_seed(self, name):
        template = MUTANT_PROFILES[name]
        for seed in MUTANT_SEEDS:
            report = run_chaos(replace(template, seed=seed))
            if report.detected_violation:
                # Satellite (a): the first violation is attributable
                # from the report alone — seed, round, block.
                assert report.seed == seed
                if report.first_violation:
                    assert report.first_violation_block >= 0
                else:
                    assert report.engine_failed and report.engine_error
                return
        pytest.fail(f"{name} sailed through seeds {list(MUTANT_SEEDS)}")

    def test_detected_violation_drives_ok(self):
        template = MUTANT_PROFILES[sorted(MUTANT_PROFILES)[0]]
        for seed in MUTANT_SEEDS:
            report = run_chaos(replace(template, seed=seed))
            if report.detected_violation:
                assert not report.ok
                return
        pytest.fail("no violating seed found")


class TestReportSchema:
    def test_v5_round_trip(self):
        report = run_chaos(replace(CORE_PROFILES["storm"], seed=3))
        restored = ChaosReport.from_json(report.to_json())
        assert restored.to_json() == report.to_json()
        assert ChaosReport.SCHEMA == "repro.chaos.report/v5"

    def test_v5_carries_passport_field(self):
        report = run_chaos(replace(CORE_PROFILES["storm"], seed=3))
        payload = report.to_dict()
        assert "passport" in payload
        assert payload["passport"] == {}  # clean run: no violation, no passport

    def test_recovery_counters_survive_the_codec(self):
        report = run_chaos(replace(CORE_PROFILES["takeover"], seed=2))
        payload = report.to_dict()
        for field_name in (
            "core_fail_stops",
            "blocks_replayed",
            "host_takeovers",
            "reoffloads",
            "watchdog_checks",
            "first_violation_round",
        ):
            assert field_name in payload
        restored = ChaosReport.from_dict(payload)
        assert restored.host_takeovers == report.host_takeovers

"""Cluster network-fault soak (satellite 5's chaos half).

Faults cost time, never correctness: every profile x seed must end
with all sends delivered and zero C2 ordering violations, and the
partition profile must actually exercise recovery (drops observed).
"""

import io

from repro.chaos.cluster import CLUSTER_PROFILES, main as cluster_main, soak


class TestSoak:
    def test_all_profiles_zero_violations(self):
        out, err = io.StringIO(), io.StringIO()
        result = soak(schedules=2, ranks=8, rounds=2, out=out, err=err)
        assert result.ok, err.getvalue()
        assert result.runs == 2 * len(CLUSTER_PROFILES)
        assert result.violations == 0

    def test_partition_profile_exercises_recovery(self):
        out = io.StringIO()
        result = soak(schedules=3, ranks=8, rounds=2, out=out, err=out)
        assert result.ok, out.getvalue()
        # The partition windows must have actually dropped packets —
        # a soak that never faults proves nothing.
        assert result.drops > 0
        assert result.retransmits > 0

    def test_profiles_cover_fault_families(self):
        assert CLUSTER_PROFILES["clean"].is_clean
        assert CLUSTER_PROFILES["flaps"].flap_links > 0
        assert CLUSTER_PROFILES["partition"].partition_at >= 0


class TestCli:
    def test_main_exits_zero(self, capsys):
        assert cluster_main(["--schedules", "1", "--rounds", "1"]) == 0
        assert "cluster soak:" in capsys.readouterr().out

    def test_chaos_frontdoor_dispatches(self, capsys):
        from repro.chaos.cli import main as chaos_main

        assert chaos_main(["cluster", "--schedules", "1", "--rounds", "1"]) == 0
        captured = capsys.readouterr()
        assert "cluster soak:" in captured.out

    def test_unknown_subcommand(self, capsys):
        from repro.chaos.cli import main as chaos_main

        assert chaos_main(["bogus"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

"""Chaos harness: seeded full-stack schedules on a lossy wire.

The acceptance bar for the reliability layer: across hundreds of
seeded schedules and every fault profile, the pipeline delivers each
message exactly once, pairs it with the same receive the serial oracle
picks, and never hangs — hostile fault plans end in a deterministic
``TransportError``, not a stall.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.chaos.soak import PROFILES, main as soak_main
from repro.rdma.faultwire import FaultPlan

#: 5 profiles x 55 seeds = 275 schedules.
SEEDS_PER_PROFILE = 55


def _config(profile: str, seed: int) -> ChaosConfig:
    return replace(PROFILES[profile], seed=seed)


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_soak_profile(profile: str) -> None:
    """Every seed of every profile: exactly-once, oracle-identical."""
    faults = 0
    for seed in range(1, SEEDS_PER_PROFILE + 1):
        report = run_chaos(_config(profile, seed))
        assert report.ok, (
            f"{profile} seed={seed}: missing={report.missing[:3]} "
            f"duplicates={report.duplicates[:3]} mismatches={report.mismatches[:3]} "
            f"transport={report.transport_error}"
        )
        assert report.delivered == report.sent
        faults += report.faults_injected
    if profile not in ("clean", "degraded", "overload"):
        # The schedules must actually exercise the fault machinery.
        # ("degraded" and "overload" run a clean wire: their fault
        # domains are resources and memory, asserted non-vacuously in
        # test_degraded_profile_spills_to_host and tests/chaos/
        # test_overload.py respectively.)
        assert faults > 0, f"profile {profile} injected no faults"


def test_degraded_profile_spills_to_host() -> None:
    """The undersized-pool profile really takes the host-spill path."""
    spills = 0
    for seed in range(1, SEEDS_PER_PROFILE + 1):
        report = run_chaos(_config("degraded", seed))
        assert report.ok
        spills += report.host_spills
        assert report.host_spills == report.degraded_stagings
    assert spills > 0


def test_reports_are_deterministic() -> None:
    """Same seed, same plan -> bit-identical report (faults included)."""
    config = ChaosConfig(
        seed=5,
        plan=FaultPlan(
            drop_rate=0.05, duplicate_rate=0.08, reorder_rate=0.12, corrupt_rate=0.05
        ),
    )
    first = run_chaos(config)
    second = run_chaos(config)
    assert first.ok
    assert asdict(first) == asdict(second)


def test_hostile_plan_fails_deterministically() -> None:
    """A near-dead link ends in TransportError — never a hang — and the
    failure reproduces exactly from the seed."""
    config = ChaosConfig(seed=11, plan=FaultPlan(drop_rate=0.97))
    first = run_chaos(config)
    second = run_chaos(config)
    assert first.transport_failed
    assert "retry budget exhausted" in first.transport_error
    assert asdict(first) == asdict(second)


def test_retransmits_reach_engine_stats() -> None:
    """Transport recovery is visible in the delivered report counters."""
    report = run_chaos(ChaosConfig(seed=1, plan=FaultPlan(drop_rate=0.08)))
    assert report.ok
    assert report.retransmits > 0
    assert report.dropped > 0


def test_soak_cli_smoke(capsys: pytest.CaptureFixture[str]) -> None:
    """The CLI entry point runs green on a small seed range."""
    assert soak_main(["--seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert f"{2 * len(PROFILES)} runs, 0 failures" in out

"""One soak invocation must yield a Perfetto-valid trace and a metrics
snapshot whose reliability counters are cumulative across engine
generations — the acceptance bar for the observability layer."""

from __future__ import annotations

import json

import pytest

from repro.chaos.soak import PROFILES
from repro.chaos.soak import main as soak_main
from repro.obs.registry import MetricsSnapshot
from repro.obs.validate import validate_chrome_trace


@pytest.fixture(scope="module")
def soak_artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("soak-obs")
    trace_path = tmp / "soak.trace.json"
    metrics_path = tmp / "soak.metrics.json"
    rc = soak_main(
        [
            "--seeds",
            "6",
            "--trace-out",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
        ]
    )
    assert rc == 0
    return json.loads(trace_path.read_text()), MetricsSnapshot.from_json(
        metrics_path.read_text()
    )


def _process_names(payload) -> dict[int, str]:
    return {
        e["pid"]: e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }


class TestTrace:
    def test_trace_is_structurally_valid(self, soak_artifacts) -> None:
        payload, _ = soak_artifacts
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"], "trace must not be empty"

    def test_one_scope_per_profile(self, soak_artifacts) -> None:
        payload, _ = soak_artifacts
        scopes = {name.split("/")[0] for name in _process_names(payload).values()}
        assert scopes == set(PROFILES)

    def test_block_slowpath_retransmit_and_spill_events_present(
        self, soak_artifacts
    ) -> None:
        payload, _ = soak_artifacts
        names = _process_names(payload)
        kinds = {
            (names[e["pid"]].split("/", 1)[1], e["name"], e["ph"])
            for e in payload["traceEvents"]
            if e["ph"] != "M"
        }
        assert ("engine", "block", "X") in kinds
        assert ("rc", "retransmit", "B") in kinds
        assert ("matcher", "spill", "i") in kinds
        assert ("matcher", "recovery", "i") in kinds
        assert ("matcher", "degraded", "B") in kinds
        assert ("matcher", "degraded", "E") in kinds

    def test_simulated_clocks_never_rewind(self, soak_artifacts) -> None:
        payload, _ = soak_artifacts
        last: dict[tuple, float] = {}
        for e in payload["traceEvents"]:
            if e["ph"] == "M":
                continue
            track = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(track, 0.0)
            last[track] = e["ts"]


class TestMetrics:
    def test_spill_profile_spans_multiple_generations(self, soak_artifacts) -> None:
        _, snapshot = soak_artifacts
        assert snapshot.get("chaos.fallback_spills{profile=spill}") >= 1
        assert snapshot.get("chaos.fallback_recoveries{profile=spill}") >= 1

    def test_reliability_counters_cumulative_across_generations(
        self, soak_artifacts
    ) -> None:
        """The engine-side mirror (carried across >= 2 generations in
        the spill profile) must equal the wires' cumulative counts."""
        _, snapshot = soak_artifacts
        for profile in sorted(PROFILES):
            wire = snapshot.get(f"chaos.retransmits{{profile={profile}}}")
            engine = snapshot.get(f"chaos.engine_retransmits{{profile={profile}}}")
            assert engine == wire, profile
        assert snapshot.get("chaos.retransmits{profile=spill}") > 0

    def test_run_and_histogram_accounting(self, soak_artifacts) -> None:
        _, snapshot = soak_artifacts
        for profile in ("clean", "spill"):
            assert snapshot.get(f"chaos.runs{{profile={profile}}}") == 6.0
            assert (
                snapshot.get(f"chaos.retransmits_per_run{{profile={profile}}}_count")
                == 6.0
            )
        assert snapshot.get("chaos.failures{profile=spill}", 0.0) == 0.0

    def test_report_renders(self, soak_artifacts, capsys) -> None:
        _, snapshot = soak_artifacts
        from repro.obs.report import render_metrics

        text = render_metrics(snapshot, match="chaos.retransmits")
        assert "chaos" in text and "profile=spill" in text

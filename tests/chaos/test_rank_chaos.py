"""Rank fail-stop soak lanes + the ChaosReport v5 rank counters."""

import io

from repro.chaos.harness import ChaosReport
from repro.chaos.ranksoak import (
    MUTANT_PROFILES,
    RANK_PROFILES,
    main as ranks_main,
    rank_soak,
)


class TestSoak:
    def test_real_lanes_hold_and_mutants_are_caught(self):
        out, err = io.StringIO(), io.StringIO()
        result = rank_soak(schedules=2, out=out, err=err)
        assert result.ok, err.getvalue()
        assert result.runs == 2 * (len(RANK_PROFILES) + len(MUTANT_PROFILES))
        assert result.false_suspicions == 0
        # The fault lanes must actually kill and recover something.
        assert result.kills > 0
        assert result.detections > 0
        assert result.shrinks > 0 and result.restarts > 0
        assert result.mutants_missed == []

    def test_mutant_lanes_cover_every_planted_bug(self):
        from repro.resilience.cluster import MUTANTS

        planted = {p["mutant"] for p in MUTANT_PROFILES.values()}
        assert planted == {m for m in MUTANTS if m}

    def test_profiles_cover_detection_modes(self):
        assert RANK_PROFILES["clean"]["plan"].is_clean
        assert RANK_PROFILES["silent"]["heartbeat"] is None
        assert RANK_PROFILES["kill-shrink"]["size"] > 1024  # rendezvous kills
        assert RANK_PROFILES["kill-respawn"]["recovery"] == "respawn"


class TestCli:
    def test_main_exits_zero(self, capsys):
        assert ranks_main(["--schedules", "1", "--no-mutants"]) == 0
        assert "rank soak:" in capsys.readouterr().out

    def test_chaos_frontdoor_dispatches(self, capsys):
        from repro.chaos.cli import main as chaos_main

        assert chaos_main(["ranks", "--schedules", "1", "--no-mutants"]) == 0
        assert "rank soak:" in capsys.readouterr().out

    def test_usage_lists_ranks(self, capsys):
        from repro.chaos.cli import main as chaos_main

        assert chaos_main([]) == 2
        assert "ranks" in capsys.readouterr().out


class TestChaosReportV5:
    def test_schema_is_v5(self):
        assert ChaosReport.SCHEMA == "repro.chaos.report/v5"

    def test_rank_counters_round_trip(self):
        report = ChaosReport(
            seed=7,
            sent=10,
            delivered=9,
            rank_kills=2,
            rank_failures_detected=2,
            rank_false_suspicions=0,
            rank_restarts=1,
            comm_shrinks=1,
            rank_failed_recvs=3,
            rank_detection_latency_max=250,
            rank_recovery_ticks=136,
            rank_backstop_aborts=0,
        )
        restored = ChaosReport.from_json(report.to_json())
        assert restored == report
        assert restored.rank_kills == 2
        assert restored.rank_detection_latency_max == 250

    def test_rank_counters_default_to_zero(self):
        """Pre-rank-chaos producers omit the counters entirely."""
        report = ChaosReport(seed=1, sent=5, delivered=5)
        restored = ChaosReport.from_json(report.to_json())
        assert restored.rank_kills == 0
        assert restored.rank_backstop_aborts == 0

    def test_fleet_codec_round_trip(self):
        from repro.fleet.codec import decode_result, encode_result

        report = ChaosReport(seed=3, sent=1, delivered=1, rank_kills=1)
        restored = decode_result(encode_result(report))
        assert isinstance(restored, ChaosReport)
        assert restored == report

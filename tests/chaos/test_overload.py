"""Overload soak lanes and the ∞-budget equivalence guarantee."""

import io

import pytest

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.chaos.overload import OVERLOAD_PROFILES, overload_soak

#: Report fields allowed to differ between a pressure=False run and a
#: pressure=True run with an unlimited budget: the books are kept (and
#: reported) but nothing else may move.
BOOKKEEPING_FIELDS = ("budget_bytes", "peak_charged_bytes")


class TestProfiles:
    def test_lanes_cover_the_ladder(self):
        assert set(OVERLOAD_PROFILES) == {"paper", "evict", "takeover"}
        budgets = [c.budget_bytes for c in OVERLOAD_PROFILES.values()]
        assert budgets == sorted(budgets, reverse=True) or budgets[0] == 0
        for config in OVERLOAD_PROFILES.values():
            assert config.pressure
            assert config.watchdog  # online oracle, not just post-hoc

    def test_pressure_excludes_fallback_and_core_faults(self):
        from repro.recovery.faults import CoreFaultPlan

        with pytest.raises(ValueError, match="mutually exclusive"):
            ChaosConfig(pressure=True, fallback=True)
        with pytest.raises(ValueError, match="mutually exclusive"):
            ChaosConfig(
                pressure=True, core_plan=CoreFaultPlan(seed=1, fail_stop_rate=0.5)
            )
        with pytest.raises(ValueError, match="budget_bytes"):
            ChaosConfig(budget_bytes=-2)


class TestSoak:
    def test_small_matrix_is_clean_and_nonvacuous(self):
        result = overload_soak(6, out=io.StringIO(), err=io.StringIO())
        assert result.runs == 6 * len(OVERLOAD_PROFILES)
        assert result.failures == 0
        assert result.budget_overruns == 0
        # Each rung of the degradation ladder actually fired somewhere
        # in the matrix — a soak that never evicts proves nothing.
        assert result.posts_deferred > 0
        assert result.demotions > 0
        assert result.evictions > 0
        assert result.recalls > 0
        assert result.takeovers > 0
        assert result.peak_charged_bytes > 0


class TestUnlimitedEquivalence:
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_infinite_budget_changes_nothing(self, seed):
        """pressure=True with budget_bytes=-1 must produce the exact
        pre-PR report, field for field, minus the new bookkeeping."""
        base = ChaosConfig(seed=seed, rounds=8, senders=3, watchdog=True)
        armed = ChaosConfig(
            seed=seed, rounds=8, senders=3, watchdog=True,
            pressure=True, budget_bytes=-1,
        )
        want = run_chaos(base).to_dict()
        got = run_chaos(armed).to_dict()
        assert got["budget_bytes"] == -1
        assert got["peak_charged_bytes"] > 0  # books were kept
        for field in BOOKKEEPING_FIELDS:
            want.pop(field)
            got.pop(field)
        assert got == want

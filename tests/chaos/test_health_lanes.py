"""Health-alarm chaos lanes: the two-sided detector contract.

Every lane must (a) raise its matching taxonomy alarm on the faulty
run and (b) stay perfectly silent on the clean twin — the
zero-false-alarm / bounded-detection guarantee TESTING.md documents.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos.health import LANES, main, run_lane
from repro.obs.health import ALARM_TAXONOMY


@pytest.mark.parametrize("lane", sorted(LANES))
def test_lane_two_sided_contract(lane):
    result = run_lane(lane, seed=1)
    assert result.fired, f"{lane}: {result.expected_alarm} did not fire"
    assert result.clean.healthy, (
        f"{lane}: clean twin raised {sorted(result.clean.alarms())}"
    )
    assert result.ok
    assert result.expected_alarm in ALARM_TAXONOMY
    assert result.first_tick is not None and result.first_tick > 0
    # The clean twin is evidence, not absence: its monitor evaluated
    # samples on every rule that the faulty side tripped.
    fired_rules = {e.alarm for e in result.faulty.events}
    for rule_row in result.clean.rules:
        if rule_row["alarm"] in fired_rules:
            assert rule_row["evaluated"] > 0, rule_row


@pytest.mark.parametrize("seed", [2, 3])
def test_spill_lane_holds_across_seeds(seed):
    # The storm config spills on every seed, not just lucky ones.
    assert run_lane("spill", seed=seed).ok


def test_unknown_lane_raises():
    with pytest.raises(KeyError, match="unknown health lane"):
        run_lane("nope")


class TestCli:
    def test_all_lanes_exit_0(self, capsys, tmp_path):
        verdicts = tmp_path / "lanes.json"
        timeline = tmp_path / "timeline.json"
        code = main(
            [
                "--seed",
                "1",
                "--json-out",
                str(verdicts),
                "--timeline-out",
                str(timeline),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4/4 ok" in out
        payload = json.loads(verdicts.read_text())
        assert {entry["lane"] for entry in payload} == set(LANES)
        assert all(entry["ok"] for entry in payload)
        # The exported timeline is loadable by the repro-obs CLI path.
        from repro.obs.timeline import Timeline

        dumped = Timeline.from_json(timeline.read_text())
        assert dumped.series

    def test_single_lane_selection(self, capsys):
        assert main(["--lane", "spill", "--seed", "1"]) == 0
        assert "1/1 ok" in capsys.readouterr().out

    def test_bad_lane_is_usage_error(self, capsys):
        assert main(["--lane", "bogus"]) == 2

"""Integration: the MPI runtime produces identical application-level
results whatever matcher backs it — offloaded optimistic, software
list, or binned — including across the software-fallback boundary."""

import pytest

from repro.core import ANY_SOURCE, ANY_TAG, EngineConfig
from repro.matching import BinMatcher, ListMatcher
from repro.mpisim import MpiSim, alltoall, bcast, gather
from repro.util.rng import make_rng


def random_program(sim: MpiSim, seed: int, n_ops: int = 120) -> dict:
    """A randomized but deterministic p2p program; returns the map of
    receive results for cross-backend comparison."""
    rng = make_rng(seed)
    received: dict[int, bytes] = {}
    pending = []
    for i in range(n_ops):
        kind = rng.random()
        src = int(rng.integers(sim.size))
        dst = int(rng.integers(sim.size))
        tag = int(rng.integers(4))
        if kind < 0.5:
            sim.isend(src, dst, tag, f"m{i}".encode())
        else:
            source = ANY_SOURCE if rng.random() < 0.2 else src
            use_tag = ANY_TAG if rng.random() < 0.2 else tag
            pending.append((i, sim.irecv(dst, source=source, tag=use_tag)))
    sim.progress()
    for i, req in pending:
        if req.completed:
            received[i] = req.payload
    return received


MATCHER_FACTORIES = {
    "optimistic": None,  # MpiSim default (FallbackMatcher, offloaded)
    "list": lambda cfg: ListMatcher(),
    "bin": lambda cfg: BinMatcher(64),
}


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_same_results_across_backends(self, seed):
        results = {}
        for name, factory in MATCHER_FACTORIES.items():
            sim = MpiSim(
                6,
                config=EngineConfig(bins=16, block_threads=4, max_receives=4096),
                matcher_factory=factory,
            )
            results[name] = random_program(sim, seed)
        assert results["optimistic"] == results["list"] == results["bin"]

    def test_collectives_across_backends(self):
        for name, factory in MATCHER_FACTORIES.items():
            sim = MpiSim(5, matcher_factory=factory)
            assert bcast(sim, 0, b"hi")[4] == b"hi", name
            out = gather(sim, 1, {r: bytes([r]) for r in range(5)})
            assert out == [bytes([r]) for r in range(5)], name


class TestFallbackUnderLoad:
    def test_application_survives_fallback(self):
        """A tiny descriptor table forces mid-run migration to software
        matching; the application must not notice."""
        sim = MpiSim(4, config=EngineConfig(bins=8, block_threads=4, max_receives=8))
        # Burst of 16 outstanding receives per rank: guaranteed overflow.
        requests = {
            rank: [
                sim.irecv(rank, source=(rank + 1) % 4, tag=t) for t in range(16)
            ]
            for rank in range(4)
        }
        for rank in range(4):
            for t in range(16):
                sim.isend(rank, (rank - 1) % 4, t, bytes([t]))
        for rank in range(4):
            sim.waitall(requests[rank])
        for rank in range(4):
            matcher = sim.matcher_of(rank)
            assert not matcher.offloaded  # migration happened
            payloads = sorted(req.payload[0] for req in requests[rank])
            assert payloads == list(range(16))  # nothing lost

    def test_alltoall_with_tiny_tables(self):
        sim = MpiSim(6, config=EngineConfig(bins=4, block_threads=2, max_receives=3))
        payloads = {(s, d): bytes([s * 6 + d]) for s in range(6) for d in range(6)}
        received = alltoall(sim, payloads)
        for dst in range(6):
            for src in range(6):
                assert received[(dst, src)] == bytes([src * 6 + dst])


class TestWildcardHeavyWorkload:
    def test_manytoone_any_source_server(self):
        """A server rank drains clients with ANY_SOURCE receives in
        arrival order — the §II-A serialization-hostile pattern."""
        sim = MpiSim(8, config=EngineConfig(bins=16, block_threads=4, max_receives=256))
        for client in range(1, 8):
            sim.isend(client, 0, 5, bytes([client]))
        sim.progress()
        seen = [sim.recv(0, source=ANY_SOURCE, tag=5)[0] for _ in range(7)]
        assert sorted(seen) == list(range(1, 8))

    def test_mixed_wildcard_and_exact(self):
        sim = MpiSim(3, config=EngineConfig(bins=8, block_threads=4, max_receives=64))
        any_req = sim.irecv(0, source=ANY_SOURCE, tag=ANY_TAG)  # oldest
        exact_req = sim.irecv(0, source=1, tag=3)
        sim.isend(1, 0, 3, b"first")
        sim.isend(1, 0, 3, b"second")
        sim.waitall([any_req, exact_req])
        # C1: the older catch-all wins the first message.
        assert any_req.payload == b"first"
        assert exact_req.payload == b"second"

"""Tests for the one-shot reproduction report tool."""

import json

from repro.tools.reproduce import main, reproduce_all, write_report


class TestReproduceAll:
    def test_results_tree_complete(self, tmp_path):
        results = reproduce_all(rounds=2, repetitions=2)
        assert set(results) >= {
            "figure6",
            "figure7",
            "figure8",
            "table2",
            "memory",
            "replay",
        }
        assert len(results["figure6"]["call_mix"]) == 16
        assert "1" in results["figure7"]["average_depth"]
        assert "32" in results["figure7"]["reductions_pct"]
        assert "RDMA-CPU" in results["figure8"]["rates_mmsg_s"]

    def test_shape_invariants_in_results(self):
        results = reproduce_all(rounds=2, repetitions=2)
        rates = results["figure8"]["rates_mmsg_s"]
        assert rates["RDMA-CPU"] > rates["MPI-CPU"]
        assert rates["Optimistic-DPA NC"] > rates["Optimistic-DPA WC-SP"]
        host = results["figure8"]["host_cycles_per_msg"]
        assert host["Optimistic-DPA NC"] == 0.0
        reductions = results["figure7"]["reductions_pct"]
        assert reductions["32"] > 50.0

    def test_write_report(self, tmp_path):
        results = reproduce_all(rounds=2, repetitions=2)
        md_path, json_path = write_report(results, tmp_path / "report")
        assert md_path.exists() and json_path.exists()
        report = md_path.read_text()
        assert "## Figure 7" in report
        assert "## Figure 8" in report
        assert "conflict rate" in report
        parsed = json.loads(json_path.read_text())
        assert parsed["memory"]["fits_l2"] is True

    def test_cli_main(self, tmp_path, capsys):
        assert main(["--out", str(tmp_path / "r"), "--rounds", "2",
                     "--repetitions", "2"]) == 0
        assert (tmp_path / "r" / "REPORT.md").exists()
        assert "wrote" in capsys.readouterr().out

"""Cross-module property tests."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analyzer import analyze
from repro.core import ANY_SOURCE, ANY_TAG, EngineConfig
from repro.matching import ListMatcher
from repro.mpisim import MpiSim
from repro.rdma import QueuePair, RdmaReceiver, RdmaSender, Wire, pump
from repro.core import OptimisticMatcher, ReceiveRequest
from repro.traces.model import OpKind, RankTrace, Trace, TraceOp

COMMON = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


#: One random mpisim op: (is_send, src, dst, tag, wildcard_src, wildcard_tag)
sim_ops = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 3),
        st.integers(0, 3),
        st.integers(0, 2),
        st.booleans(),
        st.booleans(),
    ),
    max_size=50,
)


def run_sim(sim: MpiSim, ops) -> dict[int, bytes | None]:
    requests = {}
    for i, (is_send, src, dst, tag, wc_src, wc_tag) in enumerate(ops):
        if is_send:
            sim.isend(src, dst, tag, f"p{i}".encode())
        else:
            requests[i] = sim.irecv(
                dst,
                source=ANY_SOURCE if wc_src else src,
                tag=ANY_TAG if wc_tag else tag,
            )
    sim.progress()
    return {i: (req.payload if req.completed else None) for i, req in requests.items()}


class TestRuntimeBackendEquivalence:
    @COMMON
    @given(ops=sim_ops)
    def test_optimistic_equals_list_backend(self, ops):
        """Whatever the program, the offloaded runtime delivers exactly
        what the software runtime delivers."""
        optimistic = MpiSim(
            4, config=EngineConfig(bins=4, block_threads=4, max_receives=4096)
        )
        software = MpiSim(4, matcher_factory=lambda cfg: ListMatcher())
        assert run_sim(optimistic, ops) == run_sim(software, ops)


class TestProtocolPayloadIntegrity:
    @COMMON
    @given(
        payloads=st.lists(st.binary(max_size=3000), min_size=1, max_size=25),
        threshold=st.sampled_from([0, 64, 1024]),
    )
    def test_all_payloads_survive_the_link(self, payloads, threshold):
        wire = Wire("tx", "rx")
        tx = QueuePair(wire, "tx")
        rx = QueuePair(wire, "rx")
        sender = RdmaSender(tx, rank=0, eager_threshold=threshold)
        matcher = OptimisticMatcher(
            EngineConfig(bins=32, block_threads=4, max_receives=4096)
        )
        receiver = RdmaReceiver(rx, matcher)
        for i in range(len(payloads)):
            receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i, payload in enumerate(payloads):
            sender.send(tag=i, payload=payload)
        pump(receiver, tx, max_rounds=128)
        received = {d.handle: d.payload for d in receiver.completed}
        assert received == dict(enumerate(payloads))


class TestAnalyzerConservation:
    @COMMON
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 2), st.integers(0, 2)),
            max_size=60,
        )
    )
    def test_message_conservation(self, ops):
        """Analyzer invariant: every send is matched, drained, or still
        stored unexpected; every post is drained-into, matched, or
        still live."""
        rank0_ops = []
        rank1_ops = []
        time = 0.0
        for is_send, _src, tag in ops:
            time += 1.0
            if is_send:
                rank0_ops.append(
                    TraceOp(kind=OpKind.ISEND, peer=1, tag=tag, walltime=time)
                )
            else:
                rank1_ops.append(
                    TraceOp(kind=OpKind.IRECV, peer=0, tag=tag, walltime=time)
                )
        rank1_ops.append(TraceOp(kind=OpKind.WAITALL, size=0, walltime=time + 1))
        trace = Trace(
            name="prop",
            nprocs=2,
            ranks=[RankTrace(0, rank0_ops), RankTrace(1, rank1_ops)],
        )
        analysis = analyze(trace, bins=4)
        sends = len(rank0_ops)
        posts = len(rank1_ops) - 1
        matched_from_flight = (
            sends - analysis.depth.unexpected_total
        )  # matched a live posted receive on arrival
        # Receives: drained + matched + leftover == posts.
        leftover_receives = posts - analysis.depth.drained_total - matched_from_flight
        assert leftover_receives >= 0
        # Messages: matched + drained + still-unexpected == sends.
        still_unexpected = (
            analysis.depth.unexpected_total - analysis.depth.drained_total
        )
        assert still_unexpected >= 0
        assert matched_from_flight + analysis.depth.drained_total + still_unexpected == sends

"""Soak tests: sustained mixed workloads through the full stack.

Long randomized runs shake out state-accumulation bugs that short
property tests miss: slot leaks in the descriptor table, bounce
buffers never released, lazy-removal marks accumulating unswept,
counters drifting from structure contents.
"""

import pytest

from repro.core import (
    ANY_SOURCE,
    ANY_TAG,
    EngineConfig,
    MessageEnvelope,
    OptimisticMatcher,
    ReceiveRequest,
)
from repro.core.threadsim import RandomPolicy
from repro.util.rng import make_rng


class TestEngineSoak:
    def test_sustained_mixed_traffic(self):
        """5k operations of interleaved posts/messages with wildcards;
        verify conservation and resource hygiene at every checkpoint."""
        engine = OptimisticMatcher(
            EngineConfig(bins=32, block_threads=8, max_receives=512),
            policy=RandomPolicy(99),
        )
        rng = make_rng(42)
        posted = 0
        sent = 0
        send_seq = 0
        for step in range(5000):
            choice = rng.random()
            if choice < 0.45 and engine.table.in_use < 500:
                source = int(rng.integers(4))
                tag = int(rng.integers(4))
                if rng.random() < 0.15:
                    source = ANY_SOURCE
                if rng.random() < 0.15:
                    tag = ANY_TAG
                engine.post_receive(ReceiveRequest(source=source, tag=tag))
                posted += 1
            elif choice < 0.9:
                engine.submit_message(
                    MessageEnvelope(
                        source=int(rng.integers(4)),
                        tag=int(rng.integers(4)),
                        send_seq=send_seq,
                    )
                )
                send_seq += 1
                sent += 1
            else:
                engine.process_all()
            if step % 500 == 499:
                engine.process_all()
                # Conservation: everything posted/sent is accounted.
                stats = engine.stats
                assert (
                    stats.expected_matches
                    + stats.receives_matched_from_unexpected
                    + engine.posted_receives
                    == posted
                )
                assert (
                    stats.expected_matches
                    + stats.receives_matched_from_unexpected
                    + engine.unexpected_count
                    == sent
                )
                # Descriptor slots match live receives.
                assert engine.table.in_use == engine.posted_receives
        engine.process_all()
        assert engine.stats.messages == sent

    def test_descriptor_slots_never_leak(self):
        """Tight table, massive churn: every slot must recycle."""
        engine = OptimisticMatcher(
            EngineConfig(bins=8, block_threads=4, max_receives=16)
        )
        for round_ in range(500):
            for i in range(16):
                engine.post_receive(ReceiveRequest(source=0, tag=i))
            for i in range(16):
                engine.submit_message(
                    MessageEnvelope(source=0, tag=i, send_seq=round_ * 16 + i)
                )
            engine.process_all()
            assert engine.table.in_use == 0
        assert engine.stats.expected_matches == 500 * 16

    def test_lazy_marks_eventually_swept(self):
        engine = OptimisticMatcher(
            EngineConfig(bins=4, block_threads=4, max_receives=256, lazy_removal=True)
        )
        for i in range(1000):
            engine.post_receive(ReceiveRequest(source=0, tag=i % 8))
            engine.submit_message(MessageEnvelope(source=0, tag=i % 8, send_seq=i))
            engine.process_all()
        physical = sum(
            bucket.physical_length for bucket in engine.indexes.no_wildcard
        )
        # Marks are bounded by the sweep threshold, not growing with
        # the 1000 consumed receives.
        assert physical <= 4 * engine.config.block_threads + 8


class TestRuntimeSoak:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_many_rank_random_traffic(self, seed):
        from repro.matching import ListMatcher
        from repro.mpisim import MpiSim

        rng = make_rng(seed)
        offloaded = MpiSim(
            8, config=EngineConfig(bins=16, block_threads=4, max_receives=4096)
        )
        software = MpiSim(8, matcher_factory=lambda cfg: ListMatcher())
        outcomes = ([], [])
        for sim, log in zip((offloaded, software), outcomes):
            local_rng = make_rng(seed)  # identical streams
            pending = []
            for i in range(1500):
                if local_rng.random() < 0.5:
                    sim.isend(
                        int(local_rng.integers(8)),
                        int(local_rng.integers(8)),
                        int(local_rng.integers(3)),
                        f"{i}".encode(),
                    )
                else:
                    pending.append(
                        sim.irecv(
                            int(local_rng.integers(8)),
                            source=int(local_rng.integers(8)),
                            tag=int(local_rng.integers(3)),
                        )
                    )
                if i % 100 == 99:
                    sim.progress()
            sim.progress()
            log.extend(
                (req.handle, req.payload) for req in pending if req.completed
            )
        assert outcomes[0] == outcomes[1]

"""Acceptance: the full stack under resource exhaustion AND a lossy wire.

The ISSUE's degraded-mode bar: an undersized bounce pool on a dropping
link must complete every transfer via host fallback — nonzero
degraded-staging and retransmit counters, pairings identical to the
serial oracle — rather than raising ``BouncePoolExhausted`` or hanging.
"""

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.core import EngineConfig, OptimisticMatcher, ReceiveRequest
from repro.rdma import (
    BounceBufferPool,
    QueuePair,
    RdmaReceiver,
    RdmaSender,
    ReliableWire,
    pump,
)
from repro.rdma.faultwire import FaultPlan, FaultyWire


class TestDegradedStackAcceptance:
    def test_undersized_pool_on_lossy_wire_completes_via_host(self):
        """2 bounce buffers, 5% drop, 30 messages: all delivered, all
        oracle-correct, with both degradation and recovery visible."""
        report = run_chaos(
            ChaosConfig(
                seed=1,
                plan=FaultPlan(drop_rate=0.05),
                bounce_buffers=2,
                host_spill=True,
                rounds=10,
            )
        )
        assert report.ok, (report.missing, report.duplicates, report.mismatches)
        assert report.delivered == report.sent > 0
        assert report.degraded_stagings > 0
        assert report.host_spills == report.degraded_stagings
        assert report.retransmits > 0
        assert report.dropped > 0

    def test_without_host_spill_rnr_backpressure_carries_the_load(self):
        """Same undersized pool, no host spill: the RNR probe must slow
        the sender instead; nothing lost, pool never overshoots."""
        wire = ReliableWire(FaultyWire("tx", "rx", plan=FaultPlan.drops(0.05, seed=2)))
        pool = BounceBufferPool(2, 4096)
        rx_qp = QueuePair(wire, "rx", bounce_pool=pool)
        tx_qp = QueuePair(wire, "tx")
        matcher = OptimisticMatcher(EngineConfig(block_threads=4, max_receives=64))
        receiver = RdmaReceiver(rx_qp, matcher)
        sender = RdmaSender(tx_qp, rank=0, eager_threshold=1024)

        for i in range(12):
            receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(12):
            sender.send(i, f"payload-{i}".encode())
        pump(receiver, tx_qp, max_rounds=4096)

        assert len(receiver.completed) == 12
        assert [d.handle for d in receiver.completed] == list(range(12))
        assert pool.high_water <= 2
        assert rx_qp.host_spills == 0
        assert wire.stats.rnr_naks > 0
        # The receiver pipeline mirrors transport health into stats.
        assert matcher.stats.rnr_naks == wire.stats.rnr_naks
        assert matcher.stats.retransmits == wire.stats.retransmits

    def test_degraded_chaos_profile_holds_across_seeds(self):
        """A band of seeds on the degraded profile: exactly-once and
        oracle-identical every time, with spills actually occurring."""
        total_spills = 0
        for seed in range(1, 21):
            report = run_chaos(
                ChaosConfig(
                    seed=seed,
                    plan=FaultPlan(drop_rate=0.05),
                    bounce_buffers=2,
                    host_spill=True,
                )
            )
            assert report.ok, f"seed {seed}: {report}"
            total_spills += report.host_spills
        assert total_spills > 0

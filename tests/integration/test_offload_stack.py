"""Integration: the full offload stack (core + rdma + dpa) working
together, as deployed in §IV."""

import pytest

from repro.core import EngineConfig, OptimisticMatcher, ReceiveRequest
from repro.dpa import DpaCostModel, DpaMachine, MemoryModel, StridedPoller
from repro.rdma import (
    BouncePoolExhausted,
    BounceBufferPool,
    QueuePair,
    RdmaReceiver,
    RdmaSender,
    Wire,
    pump,
)


def build_link(*, bounce_buffers=4096, eager_threshold=256, bins=256, threads=8):
    wire = Wire("tx", "rx")
    tx = QueuePair(wire, "tx")
    rx = QueuePair(wire, "rx", bounce_pool=BounceBufferPool(bounce_buffers, 8192))
    sender = RdmaSender(tx, rank=0, eager_threshold=eager_threshold)
    matcher = OptimisticMatcher(
        EngineConfig(bins=bins, block_threads=threads, max_receives=4096)
    )
    receiver = RdmaReceiver(rx, matcher)
    return sender, receiver, tx


class TestMixedTraffic:
    def test_large_mixed_stream(self):
        """500 messages across protocols, wildcards, and unexpecteds."""
        sender, receiver, tx = build_link()
        for i in range(250):
            receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i in range(500):
            size = 64 if i % 2 == 0 else 2048  # eager / rendezvous
            sender.send(tag=i, payload=bytes([i % 256]) * size)
        pump(receiver, tx, max_rounds=256)
        # First 250 matched; the rest staged unexpected.
        assert len(receiver.completed) == 250
        assert receiver.matcher.unexpected_count == 250
        for i in range(250, 500):
            receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
            pump(receiver, tx, max_rounds=16)
        assert len(receiver.completed) == 500
        handles = sorted(d.handle for d in receiver.completed)
        assert handles == list(range(500))

    def test_payload_integrity_across_protocols(self):
        sender, receiver, tx = build_link(eager_threshold=100)
        payloads = {i: bytes([i]) * (50 if i % 2 else 5000) for i in range(20)}
        for i in range(20):
            receiver.post_receive(ReceiveRequest(source=0, tag=i, handle=i))
        for i, payload in payloads.items():
            sender.send(tag=i, payload=payload)
        pump(receiver, tx, max_rounds=64)
        received = {d.handle: d.payload for d in receiver.completed}
        assert received == payloads


class TestBackpressure:
    def test_bounce_pool_exhaustion_surfaces(self):
        """A flood of unexpected eager messages exhausts NIC staging;
        the substrate must refuse rather than drop silently."""
        sender, receiver, tx = build_link(bounce_buffers=8)
        for i in range(9):
            sender.send(tag=1000 + i, payload=b"x" * 32)
        with pytest.raises(BouncePoolExhausted):
            pump(receiver, tx)

    def test_rendezvous_has_no_bounce_pressure(self):
        """Header-only RTS: unexpected rendezvous messages do not
        consume bounce buffers — the §IV-B design point."""
        sender, receiver, tx = build_link(bounce_buffers=4, eager_threshold=16)
        for i in range(32):
            sender.send(tag=2000 + i, payload=b"y" * 1024)
        pump(receiver, tx, max_rounds=64)
        assert receiver.matcher.unexpected_count == 32
        assert receiver.qp.bounce_pool.in_use == 0


class TestDpaMachineIntegration:
    def test_machine_accounts_full_workload(self):
        machine = DpaMachine(
            EngineConfig(bins=128, block_threads=16, max_receives=2048)
        )
        for i in range(256):
            machine.post_receive(ReceiveRequest(source=0, tag=i))
        from repro.core import MessageEnvelope

        for i in range(256):
            machine.deliver(MessageEnvelope(source=0, tag=i, send_seq=i))
        events = machine.run()
        assert len(events) == 256
        assert machine.report.blocks == 16
        assert machine.report.dpa_seconds > 0
        # Memory model consistent with the engine's configuration.
        assert machine.memory.bins == 128

    def test_poller_feeds_machine_in_blocks(self):
        """StridedPoller batches are exactly the machine's blocks."""
        poller = StridedPoller(threads=8, queue_depth=64)
        machine = DpaMachine(EngineConfig(bins=64, block_threads=8, max_receives=512))
        from repro.core import MessageEnvelope

        for i in range(40):
            machine.post_receive(ReceiveRequest(source=0, tag=i))
        entries = [MessageEnvelope(source=0, tag=i, send_seq=i) for i in range(40)]
        for batch in poller.batches(entries):
            for msg in batch:
                machine.deliver(msg)
            machine.run()
        assert machine.report.messages == 40
        assert machine.report.blocks == 5

    def test_footprint_guard_before_offload(self):
        """The §III-E deployment rule: configurations that overflow L3
        must not be offloaded (fall back to software from creation)."""
        oversized = MemoryModel(bins=128, max_receives=1 << 17)
        assert oversized.requires_fallback()
        in_cache = MemoryModel(bins=128, max_receives=8192)
        assert not in_cache.requires_fallback()
        # The machine itself accepts either; the deployment layer
        # (mpisim communicator) makes the call.
        DpaMachine(EngineConfig(bins=128, block_threads=8, max_receives=8192))


class TestCostModelShape:
    def test_wc_stream_costs_more_cycles_than_nc(self):
        costs = DpaCostModel()

        def run(same_key):
            machine = DpaMachine(
                EngineConfig(
                    bins=512,
                    block_threads=16,
                    max_receives=1024,
                    early_booking_check=False,
                ),
                cost_model=costs,
            )
            from repro.core import MessageEnvelope

            for i in range(128):
                machine.post_receive(
                    ReceiveRequest(source=0, tag=0 if same_key else i)
                )
            for i in range(128):
                machine.deliver(
                    MessageEnvelope(source=0, tag=0 if same_key else i, send_seq=i)
                )
            machine.run()
            return machine.report.dpa_cycles

        assert run(same_key=True) > run(same_key=False)

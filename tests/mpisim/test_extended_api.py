"""Tests for waitany / testall / sendrecv."""

import pytest

from repro.core import EngineConfig
from repro.mpisim import MpiSim, ProgressStall


@pytest.fixture
def sim():
    return MpiSim(4, config=EngineConfig(bins=8, block_threads=4, max_receives=128))


class TestWaitany:
    def test_returns_completed_index(self, sim):
        requests = [sim.irecv(0, source=1, tag=t) for t in range(3)]
        sim.isend(1, 0, tag=1, payload=b"middle")
        index = sim.waitany(requests)
        assert index == 1
        assert requests[1].payload == b"middle"
        assert not requests[0].completed and not requests[2].completed

    def test_already_completed_short_circuits(self, sim):
        sim.send(1, 0, tag=0, payload=b"x")
        requests = [sim.irecv(0, source=1, tag=0)]
        sim.progress()
        assert sim.waitany(requests) == 0

    def test_stall_detected(self, sim):
        requests = [sim.irecv(0, source=1, tag=0)]
        with pytest.raises(ProgressStall):
            sim.waitany(requests)

    def test_empty_list_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.waitany([])


class TestTestall:
    def test_false_then_true(self, sim):
        requests = [sim.irecv(0, source=1, tag=t) for t in range(2)]
        assert sim.testall(requests) is False
        sim.isend(1, 0, tag=0, payload=b"a")
        sim.isend(1, 0, tag=1, payload=b"b")
        assert sim.testall(requests) is True

    def test_empty_list_trivially_true(self, sim):
        assert sim.testall([]) is True


class TestSendrecv:
    def test_ring_shift(self, sim):
        """Classic ring: every rank sendrecvs simultaneously; the
        combined primitive must not deadlock."""
        n = sim.size
        # Pre-post all receives via irecv halves to emulate the
        # concurrent sendrecv on every rank.
        recvs = [sim.irecv(r, source=(r - 1) % n, tag=9) for r in range(n)]
        for r in range(n):
            sim.isend(r, (r + 1) % n, 9, bytes([r]))
        sim.waitall(recvs)
        for r in range(n):
            assert recvs[r].payload == bytes([(r - 1) % n])

    def test_two_rank_exchange(self, sim):
        """sendrecv against a matching partner send/recv."""
        partner_recv = sim.irecv(1, source=0, tag=5)
        sim.isend(1, 0, tag=6, payload=b"from-1")
        got = sim.sendrecv(0, dest=1, send_tag=5, payload=b"from-0",
                           source=1, recv_tag=6)
        assert got == b"from-1"
        sim.wait(partner_recv)
        assert partner_recv.payload == b"from-0"

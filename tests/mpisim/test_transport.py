"""Pluggable mpisim transports (satellite 2).

The refactor's contract: the default transport is behaviour-identical
to the old inline channel dict — same delivery order, same
ProgressStall semantics — and a FabricTransport delivers the same
messages over a simulated network without breaking either.
"""

import pytest

from repro.mpisim import MpiSim, ProgressStall
from repro.mpisim.transport import FabricTransport, InFlight, PairChannelTransport
from repro.net.fabric import Fabric
from repro.net.placement import Placement
from repro.net.topology import torus2d


def run_pattern(sim):
    """A deterministic cross-pair pattern; returns delivery order."""
    order = []
    for rank in range(sim.size):
        for i in range(3):
            sim.isend(rank, (rank + 1) % sim.size, tag=i, payload=f"{rank}:{i}".encode())
    reqs = [
        sim.irecv(rank, source=(rank - 1) % sim.size, tag=i)
        for rank in range(sim.size)
        for i in range(3)
    ]
    sim.waitall(reqs)
    for req in reqs:
        order.append((req.rank, req.status.source, req.status.tag, req.payload))
    return order


class TestDefaultIsByteIdentical:
    def test_explicit_pair_transport_matches_default(self):
        base = run_pattern(MpiSim(4))
        explicit = run_pattern(MpiSim(4, transport=PairChannelTransport()))
        assert base == explicit

    def test_drain_order_is_channel_creation_order(self):
        """The original inline semantics: channels drain fully, in the
        order the (src, dst) pair first sent."""
        t = PairChannelTransport()

        class Env:
            def __init__(self, n):
                self.comm, self.source, self.send_seq = 0, 0, n

        t.enqueue(1, 0, InFlight(Env(0), b"b-first"))
        t.enqueue(0, 1, InFlight(Env(1), b"a-first"))
        t.enqueue(1, 0, InFlight(Env(2), b"b-second"))
        drained = [(dst, inf.payload) for dst, inf in t.drain()]
        assert drained == [(0, b"b-first"), (0, b"b-second"), (1, b"a-first")]
        assert t.in_flight() == 0

    def test_progress_stall_preserved(self):
        sim = MpiSim(2)
        req = sim.irecv(0, source=1, tag=9)
        with pytest.raises(ProgressStall, match="no message in flight"):
            sim.wait(req)


class TestFabricTransport:
    def _sim(self, size=4):
        topo = torus2d(2, 2)
        fabric = Fabric(topo)
        placement = Placement.block(size, topo.hosts)
        return MpiSim(size, transport=FabricTransport(fabric, placement)), fabric

    def test_same_deliveries_as_default(self):
        base = run_pattern(MpiSim(4))
        sim, fabric = self._sim()
        fabric_order = run_pattern(sim)
        # Same multiset of completions (arrival interleaving may differ;
        # per-pair FIFO keeps each stream ordered).
        assert sorted(base) == sorted(fabric_order)
        assert fabric.delivered > 0
        assert fabric.clock > 0

    def test_progress_stall_still_detected(self):
        sim, _ = self._sim()
        req = sim.irecv(0, source=1, tag=9)
        with pytest.raises(ProgressStall):
            sim.wait(req)

    def test_per_pair_fifo_over_fabric(self):
        sim, _ = self._sim(2)
        for i in range(10):
            sim.isend(0, 1, tag=0, payload=bytes([i]))
        got = [sim.recv(1, source=0, tag=0) for _ in range(10)]
        assert got == [bytes([i]) for i in range(10)]

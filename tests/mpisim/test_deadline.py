"""Blocking-wait progress deadlines (satellite 1).

A wait that spins past ``progress_deadline`` progress rounds raises a
:class:`ProgressStall` that *names* the stuck request — peer, tag,
handle, in-flight count — instead of looping forever while unrelated
traffic keeps the runtime busy.
"""

import pytest

from repro.mpisim import MpiSim, ProgressStall
from repro.mpisim.transport import FabricTransport
from repro.net.fabric import Fabric
from repro.net.placement import Placement
from repro.net.topology import torus2d


def fabric_sim(size=4, **kwargs):
    topo = torus2d(2, 2)
    fabric = Fabric(topo)
    placement = Placement.block(size, topo.hosts)
    return MpiSim(size, transport=FabricTransport(fabric, placement), **kwargs)


class TestConfiguration:
    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError, match="progress_deadline"):
            MpiSim(2, progress_deadline=0)

    def test_default_is_unbounded(self):
        assert MpiSim(2).progress_deadline is None


class TestDeadline:
    def test_stall_names_peer_tag_and_handle(self):
        """Rank 1 waits on rank 2 (which never sends) while rank 0's
        traffic to rank 3 keeps progress() busy forever: only the
        deadline can diagnose this."""
        sim = fabric_sim(progress_deadline=10)
        stuck = sim.irecv(1, source=2, tag=99)
        for i in range(40):
            sim.isend(0, 3, tag=0, payload=bytes([i]))
        with pytest.raises(ProgressStall) as excinfo:
            sim.wait(stuck)
        message = str(excinfo.value)
        assert "source=2" in message and "tag=99" in message
        assert f"handle {stuck.handle}" in message
        assert "messages in flight" in message
        assert excinfo.value.requests == [stuck]

    def test_completion_in_final_round_wins(self):
        """A request that completes during the deadline's last progress
        round is not a stall."""
        sim = fabric_sim(progress_deadline=1)
        req = sim.irecv(1, source=0, tag=7)
        sim.isend(0, 1, tag=7, payload=b"x" * 16)
        sim.wait(req)
        assert req.completed

    def test_generous_deadline_never_fires(self):
        sim = fabric_sim(progress_deadline=10_000)
        req = sim.irecv(1, source=0, tag=7)
        sim.isend(0, 1, tag=7, payload=b"x" * 16)
        sim.wait(req)
        assert req.completed

    def test_waitany_applies_the_deadline(self):
        sim = fabric_sim(progress_deadline=5)
        never = [sim.irecv(1, source=2, tag=1), sim.irecv(1, source=2, tag=2)]
        for i in range(40):
            sim.isend(0, 3, tag=0, payload=bytes([i]))
        with pytest.raises(ProgressStall) as excinfo:
            sim.waitany(never)
        assert set(excinfo.value.requests) == set(never)

    def test_idle_stall_still_immediate(self):
        """Nothing in flight fails fast regardless of the deadline,
        and now names the request."""
        sim = MpiSim(2, progress_deadline=10_000)
        req = sim.irecv(0, source=1, tag=5)
        with pytest.raises(ProgressStall, match="source=1, tag=5"):
            sim.wait(req)


class TestDescribe:
    def test_recv_renders_wildcards(self):
        sim = MpiSim(2)
        req = sim.irecv(0)
        assert "ANY_SOURCE" in req.describe() and "ANY_TAG" in req.describe()

    def test_send_describes_itself(self):
        sim = MpiSim(2)
        req = sim.isend(0, 1, tag=3, payload=b"hi")
        assert "send" in req.describe() and "rank 0" in req.describe()

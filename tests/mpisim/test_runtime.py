"""Tests for the MPI runtime simulator."""

import pytest

from repro.core import ANY_SOURCE, ANY_TAG, EngineConfig
from repro.matching import BinMatcher, ListMatcher
from repro.mpisim import MpiSim, ProgressStall, RequestKind


def sim(size=4, **cfg):
    base = dict(bins=8, block_threads=4, max_receives=256)
    base.update(cfg)
    return MpiSim(size, config=EngineConfig(**base))


class TestBasics:
    def test_send_recv_round_trip(self):
        s = sim(2)
        s.send(0, 1, tag=7, payload=b"ping")
        assert s.recv(1, source=0, tag=7) == b"ping"

    def test_recv_before_send(self):
        s = sim(2)
        req = s.irecv(1, source=0, tag=7)
        assert not req.test()
        s.send(0, 1, tag=7, payload=b"late")
        s.wait(req)
        assert req.payload == b"late"
        assert req.status.source == 0
        assert req.status.tag == 7
        assert req.status.count == 4

    def test_isend_completes_locally(self):
        s = sim(2)
        req = s.isend(0, 1, tag=0, payload=b"x")
        assert req.completed
        assert req.kind is RequestKind.SEND

    def test_self_send(self):
        s = sim(2)
        s.send(0, 0, tag=1, payload=b"loop")
        assert s.recv(0, source=0, tag=1) == b"loop"

    def test_invalid_rank_rejected(self):
        s = sim(2)
        with pytest.raises(ValueError):
            s.send(0, 5, tag=0)
        with pytest.raises(ValueError):
            s.irecv(0, source=9)

    def test_negative_send_tag_rejected(self):
        s = sim(2)
        with pytest.raises(ValueError):
            s.send(0, 1, tag=-3)

    def test_wait_stalls_when_impossible(self):
        s = sim(2)
        req = s.irecv(0, source=1, tag=0)
        with pytest.raises(ProgressStall):
            s.wait(req)


class TestOrderingSemantics:
    def test_same_channel_fifo(self):
        s = sim(2)
        for i in range(10):
            s.send(0, 1, tag=3, payload=bytes([i]))
        got = [s.recv(1, source=0, tag=3) for _ in range(10)]
        assert got == [bytes([i]) for i in range(10)]

    def test_wildcard_source(self):
        s = sim(3)
        s.send(1, 0, tag=2, payload=b"from1")
        s.progress()
        data = s.recv(0, source=ANY_SOURCE, tag=2)
        assert data == b"from1"

    def test_wildcard_tag_in_order(self):
        s = sim(2)
        s.send(0, 1, tag=5, payload=b"a")
        s.send(0, 1, tag=6, payload=b"b")
        s.progress()
        assert s.recv(1, source=0, tag=ANY_TAG) == b"a"
        assert s.recv(1, source=0, tag=ANY_TAG) == b"b"

    def test_tag_selective_receive(self):
        s = sim(2)
        s.send(0, 1, tag=1, payload=b"one")
        s.send(0, 1, tag=2, payload=b"two")
        assert s.recv(1, source=0, tag=2) == b"two"
        assert s.recv(1, source=0, tag=1) == b"one"

    def test_many_to_one_burst(self):
        s = sim(8)
        reqs = [s.irecv(0, source=src, tag=0) for src in range(1, 8)]
        for src in range(1, 8):
            s.send(src, 0, tag=0, payload=bytes([src]))
        s.waitall(reqs)
        assert sorted(r.payload[0] for r in reqs) == list(range(1, 8))


class TestCommunicators:
    def test_comm_isolation(self):
        s = sim(2)
        comm2 = s.comm_create()
        s.send(0, 1, tag=1, payload=b"world", comm=s.world)
        s.send(0, 1, tag=1, payload=b"comm2", comm=comm2)
        assert s.recv(1, source=0, tag=1, comm=comm2) == b"comm2"
        assert s.recv(1, source=0, tag=1, comm=s.world) == b"world"

    def test_hinted_communicator_rejects_wildcards(self):
        from repro.core.engine import HintViolation

        s = sim(2)
        hinted = s.comm_create({"mpi_assert_no_any_source": "true"})
        with pytest.raises(HintViolation):
            s.irecv(0, source=ANY_SOURCE, tag=0, comm=hinted)

    def test_unknown_hint_ignored(self):
        s = sim(2)
        comm = s.comm_create({"mpi_unknown_future_hint": "true"})
        s.send(0, 1, tag=0, payload=b"ok", comm=comm)
        assert s.recv(1, source=0, tag=0, comm=comm) == b"ok"

    def test_bad_hint_value_rejected(self):
        s = sim(2)
        with pytest.raises(ValueError):
            s.comm_create({"mpi_assert_no_any_tag": "yes"})

    def test_overtaking_communicator_still_delivers(self):
        s = sim(2)
        comm = s.comm_create({"mpi_assert_allow_overtaking": "true"})
        for i in range(8):
            s.send(0, 1, tag=0, payload=bytes([i]), comm=comm)
        got = sorted(s.recv(1, source=0, tag=0, comm=comm)[0] for _ in range(8))
        assert got == list(range(8))


class TestPluggableMatchers:
    @pytest.mark.parametrize(
        "factory", [lambda cfg: ListMatcher(), lambda cfg: BinMatcher(32)]
    )
    def test_software_matchers(self, factory):
        s = MpiSim(3, matcher_factory=factory)
        s.send(0, 2, tag=4, payload=b"sw")
        assert s.recv(2, source=0, tag=4) == b"sw"

    def test_fallback_is_default(self):
        from repro.matching import FallbackMatcher

        s = sim(2)
        assert isinstance(s.matcher_of(0), FallbackMatcher)

"""Unit tests for request objects and communicator info parsing."""

import pytest

from repro.core import EngineConfig
from repro.mpisim import Communicator, CommunicatorInfo, Request, RequestKind, Status


class TestRequest:
    def test_complete_once(self):
        req = Request(RequestKind.RECV, handle=1, rank=0)
        req.complete(b"data", Status(source=2, tag=3, count=4))
        assert req.completed
        assert req.payload == b"data"
        assert req.status.source == 2

    def test_double_complete_rejected(self):
        req = Request(RequestKind.SEND, handle=1, rank=0)
        req.complete()
        with pytest.raises(RuntimeError, match="twice"):
            req.complete()

    def test_test_reflects_state(self):
        req = Request(RequestKind.RECV, handle=1, rank=0)
        assert not req.test()
        req.complete(b"")
        assert req.test()


class TestCommunicatorInfo:
    def test_empty_hints(self):
        info = CommunicatorInfo.from_hints(None)
        assert not info.no_any_source
        assert not info.no_any_tag
        assert not info.allow_overtaking

    def test_all_asserts(self):
        info = CommunicatorInfo.from_hints(
            {
                "mpi_assert_no_any_source": "true",
                "mpi_assert_no_any_tag": "true",
                "mpi_assert_allow_overtaking": "true",
            }
        )
        assert info.no_any_source and info.no_any_tag and info.allow_overtaking

    def test_false_values(self):
        info = CommunicatorInfo.from_hints({"mpi_assert_no_any_source": "false"})
        assert not info.no_any_source

    def test_unknown_keys_ignored(self):
        info = CommunicatorInfo.from_hints({"mpi_future_thing": "whatever"})
        assert not info.no_any_source

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="true"):
            CommunicatorInfo.from_hints({"mpi_assert_no_any_tag": "1"})

    def test_apply_to_config(self):
        info = CommunicatorInfo.from_hints(
            {"mpi_assert_no_any_source": "true", "mpi_assert_allow_overtaking": "true"}
        )
        config = info.apply_to(EngineConfig(bins=8, block_threads=4, max_receives=64))
        assert config.assert_no_any_source
        assert not config.assert_no_any_tag
        assert config.allow_overtaking
        assert config.bins == 8  # untouched fields preserved


class TestCommunicator:
    def test_rank_validation(self):
        comm = Communicator(comm_id=0, size=4)
        comm.check_rank(0)
        comm.check_rank(3)
        with pytest.raises(ValueError):
            comm.check_rank(4)
        with pytest.raises(ValueError):
            comm.check_rank(-1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Communicator(comm_id=0, size=0)

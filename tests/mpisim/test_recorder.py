"""Tests for the trace recorder (simulate -> record -> analyze)."""

import pytest

from repro.analyzer import analyze
from repro.core import EngineConfig
from repro.mpisim import MpiSim
from repro.mpisim.recorder import RecordingSim
from repro.traces.model import OpKind


@pytest.fixture
def recorder():
    sim = MpiSim(4, config=EngineConfig(bins=16, block_threads=4, max_receives=256))
    return RecordingSim(sim, name="unit-app")


class TestRecording:
    def test_ops_recorded_per_rank(self, recorder):
        req = recorder.irecv(1, source=0, tag=5)
        recorder.isend(0, 1, 5, b"data")
        recorder.wait(req)
        trace = recorder.trace()
        assert trace.nprocs == 4
        assert [op.kind for op in trace.rank(1).ops] == [OpKind.IRECV, OpKind.WAIT]
        assert [op.kind for op in trace.rank(0).ops] == [OpKind.ISEND]
        assert trace.rank(0).ops[0].size == 4

    def test_walltimes_monotone(self, recorder):
        for i in range(5):
            recorder.isend(0, 1, i, b"x")
        times = [op.walltime for op in recorder.trace().rank(0).ops]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_delivery_still_works(self, recorder):
        req = recorder.irecv(2, source=3, tag=1)
        recorder.isend(3, 2, 1, b"payload")
        recorder.wait(req)
        assert req.payload == b"payload"

    def test_waitall_recorded_once(self, recorder):
        reqs = [recorder.irecv(0, source=1, tag=t) for t in range(3)]
        for t in range(3):
            recorder.isend(1, 0, t, b"m")
        recorder.waitall(reqs)
        waitalls = [
            op for op in recorder.trace().rank(0).ops if op.kind is OpKind.WAITALL
        ]
        assert len(waitalls) == 1
        assert waitalls[0].size == 3

    def test_annotation(self, recorder):
        recorder.annotate(0, OpKind.ALLREDUCE, size=8)
        ops = recorder.trace().rank(0).ops
        assert ops[-1].kind is OpKind.ALLREDUCE


class TestRecordAnalyzeLoop:
    def test_recorded_halo_matches_generator_depth(self):
        """Record a live halo exchange and verify the analyzer sees
        the same queue depth a generated trace of the same pattern
        shows."""
        from repro.traces.synthetic import grid_dims, grid_neighbors

        sim = MpiSim(8, config=EngineConfig(bins=16, block_threads=4, max_receives=256))
        recorder = RecordingSim(sim, name="live-halo")
        dims = grid_dims(8, 3)
        for step in range(3):
            requests = {
                rank: [
                    recorder.irecv(rank, source=n, tag=step)
                    for n in grid_neighbors(rank, dims)
                ]
                for rank in range(8)
            }
            for rank in range(8):
                for n in grid_neighbors(rank, dims):
                    recorder.isend(rank, n, step, b"edge")
            for rank in range(8):
                recorder.waitall(requests[rank])

        analysis = analyze(recorder.trace(), bins=1)
        # 2x2x2 grid: 3 distinct neighbors pre-posted -> depth ~2-3.
        assert 1 <= analysis.depth.max_depth <= 4
        assert analysis.depth.unexpected_total == 0

    def test_recorded_trace_round_trips_to_disk(self, tmp_path, recorder):
        from repro.traces import load_trace, save_trace

        req = recorder.irecv(1, source=0, tag=0)
        recorder.isend(0, 1, 0, b"x")
        recorder.wait(req)
        save_trace(recorder.trace(), tmp_path / "rec")
        loaded = load_trace(tmp_path / "rec", parallel=False)
        assert loaded.total_ops() == recorder.trace().total_ops()

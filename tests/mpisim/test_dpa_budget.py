"""Tests for DPA-budget-aware communicator creation (§III-E)."""

import pytest

from repro.core import EngineConfig
from repro.core.manager import OffloadManager
from repro.matching import FallbackMatcher, ListMatcher
from repro.mpisim import MpiSim


def cfg():
    return EngineConfig(bins=64, block_threads=4, max_receives=256)


def budget_for(n_comms: int) -> int:
    return n_comms * OffloadManager.footprint(cfg())


class TestBudgetedCommunicators:
    def test_world_offloaded_within_budget(self):
        sim = MpiSim(2, config=cfg(), dpa_budget_bytes=budget_for(2))
        assert sim.world.offloaded
        assert isinstance(sim.matcher_of(0), FallbackMatcher)

    def test_overflow_comm_is_software(self):
        sim = MpiSim(2, config=cfg(), dpa_budget_bytes=budget_for(1))
        # World consumed the budget; the next communicator is software.
        comm2 = sim.comm_create()
        assert sim.world.offloaded
        assert not comm2.offloaded
        assert isinstance(sim.matcher_of(0, comm2), ListMatcher)

    def test_software_comm_still_functions(self):
        sim = MpiSim(2, config=cfg(), dpa_budget_bytes=budget_for(1))
        comm2 = sim.comm_create()
        sim.send(0, 1, tag=3, payload=b"sw", comm=comm2)
        assert sim.recv(1, source=0, tag=3, comm=comm2) == b"sw"

    def test_comm_free_returns_budget(self):
        sim = MpiSim(2, config=cfg(), dpa_budget_bytes=budget_for(2))
        comm2 = sim.comm_create()
        assert comm2.offloaded
        sim.comm_free(comm2)
        comm3 = sim.comm_create()
        assert comm3.offloaded  # reuses the freed budget

    def test_world_cannot_be_freed(self):
        sim = MpiSim(2, config=cfg(), dpa_budget_bytes=budget_for(2))
        with pytest.raises(ValueError, match="COMM_WORLD"):
            sim.comm_free(sim.world)

    def test_unbudgeted_default_unchanged(self):
        sim = MpiSim(2, config=cfg())
        comm2 = sim.comm_create()
        assert comm2.offloaded
        assert isinstance(sim.matcher_of(0, comm2), FallbackMatcher)

    def test_free_unknown_comm(self):
        sim = MpiSim(2, config=cfg(), dpa_budget_bytes=budget_for(4))
        comm2 = sim.comm_create()
        sim.comm_free(comm2)
        with pytest.raises(KeyError):
            sim.comm_free(comm2)

"""Tests for the p2p-based collectives."""

import pytest

from repro.core import EngineConfig
from repro.mpisim import MpiSim, alltoall, barrier, bcast, gather


@pytest.fixture
def sim():
    return MpiSim(4, config=EngineConfig(bins=8, block_threads=4, max_receives=512))


class TestBcast:
    def test_all_ranks_receive(self, sim):
        out = bcast(sim, root=0, payload=b"hello")
        assert out == {r: b"hello" for r in range(4)}

    def test_nonzero_root(self, sim):
        out = bcast(sim, root=2, payload=b"r2")
        assert set(out.values()) == {b"r2"}


class TestGather:
    def test_rank_order(self, sim):
        payloads = {r: bytes([r]) for r in range(4)}
        out = gather(sim, root=0, payloads=payloads)
        assert out == [bytes([r]) for r in range(4)]

    def test_gather_to_middle_rank(self, sim):
        payloads = {r: bytes([r * 2]) for r in range(4)}
        out = gather(sim, root=2, payloads=payloads)
        assert out == [bytes([r * 2]) for r in range(4)]


class TestAlltoall:
    def test_transpose(self, sim):
        payloads = {
            (src, dst): f"{src}->{dst}".encode() for src in range(4) for dst in range(4)
        }
        received = alltoall(sim, payloads)
        for dst in range(4):
            for src in range(4):
                assert received[(dst, src)] == f"{src}->{dst}".encode()


class TestBarrier:
    def test_barrier_completes(self, sim):
        barrier(sim)  # must simply not deadlock

    def test_barrier_then_traffic(self, sim):
        barrier(sim)
        sim.send(0, 1, tag=9, payload=b"after")
        assert sim.recv(1, source=0, tag=9) == b"after"

"""FleetScheduler semantics: retries, quarantine, caching, obs export.

Serial-mode tests run jobs inline (fast); a small number of tests
exercise the real spawn pool and are kept deliberately tiny because
spawning interpreters dominates their runtime.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetError, JobSpec, RetryPolicy, run_jobs
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import SpanTracer
from tests.fleet.jobkinds import REQUIRES


def _echo_specs(n):
    return [JobSpec(kind="test_echo", params={"value": i}, seed=i) for i in range(n)]


def _crash_hook(tmp_path, indices, countdown):
    """Fault hook crashing the first ``countdown`` attempts of ``indices``."""
    markers = {}
    for index in indices:
        marker = tmp_path / f"crash-{index}"
        marker.write_text(str(countdown))
        markers[index] = str(marker)

    def hook(index, spec):
        if index in markers:
            return {"crash_countdown": markers[index]}
        return None

    return hook


class TestRetryPolicy:
    def test_backoff_shape(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff=2.0, max_delay_s=0.35)
        assert policy.delay_for(0) == 0.0
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.35)  # capped

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff": 0.5},
            {"base_delay_s": -1},
            {"timeout_s": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestSerial:
    def test_results_in_job_order(self):
        run = run_jobs(_echo_specs(4), requires=REQUIRES)
        assert [o.status for o in run.outcomes] == ["ok"] * 4
        assert run.results() == [{"value": i, "seed": i} for i in range(4)]
        assert run.report.total == 4
        assert run.report.executed == 4
        assert run.report.ok

    def test_generator_stream(self):
        stream = (JobSpec(kind="test_echo", params={"value": i}) for i in range(3))
        run = run_jobs(stream, requires=REQUIRES)
        assert [o.result["value"] for o in run.outcomes] == [0, 1, 2]

    def test_crash_is_retried_then_succeeds(self, tmp_path):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        run = run_jobs(
            _echo_specs(3),
            requires=REQUIRES,
            policy=policy,
            fault_hook=_crash_hook(tmp_path, {1}, countdown=1),
        )
        assert [o.status for o in run.outcomes] == ["ok"] * 3
        assert run.outcomes[1].attempts == 2
        assert run.outcomes[0].attempts == 1
        assert run.report.retries == 1

    def test_poisoned_job_is_quarantined_not_fatal(self):
        specs = _echo_specs(2) + [JobSpec(kind="test_fail")]
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        run = run_jobs(specs, requires=REQUIRES, policy=policy)
        assert [o.status for o in run.outcomes] == ["ok", "ok", "quarantined"]
        bad = run.outcomes[2]
        assert bad.attempts == 2
        assert "injected failure" in bad.error
        assert run.report.quarantined == 1
        with pytest.raises(FleetError, match="quarantined"):
            run.require_ok()

    def test_quarantined_ids_surface_in_report(self):
        """Satellite: quarantined job ids are first-class report data,
        so a sweep's nonzero exit is attributable without records."""
        specs = _echo_specs(2) + [JobSpec(kind="test_fail", seed=7)]
        run = run_jobs(
            specs, requires=REQUIRES, policy=RetryPolicy(max_attempts=1)
        )
        report = run.report
        assert report.quarantined_ids == ["#2 test_fail seed=7"]
        assert "#2 test_fail seed=7" in report.summary()
        assert report.to_dict()["quarantined_ids"] == ["#2 test_fail seed=7"]
        from repro.fleet import FleetReport

        restored = FleetReport.from_json(report.to_json())
        assert restored.quarantined_ids == report.quarantined_ids
        assert not restored.ok

    def test_clean_run_has_no_quarantined_ids(self):
        run = run_jobs(_echo_specs(2), requires=REQUIRES)
        assert run.report.quarantined_ids == []

    def test_faults_never_reach_the_cache_key(self, tmp_path):
        plain = run_jobs(_echo_specs(2), requires=REQUIRES)
        faulted = run_jobs(
            _echo_specs(2),
            requires=REQUIRES,
            policy=RetryPolicy(base_delay_s=0.0),
            fault_hook=_crash_hook(tmp_path, {0}, countdown=1),
        )
        assert [o.digest for o in plain.outcomes] == [o.digest for o in faulted.outcomes]


class TestCache:
    def test_warm_run_executes_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_jobs(_echo_specs(3), requires=REQUIRES, cache_dir=cache_dir)
        warm = run_jobs(_echo_specs(3), requires=REQUIRES, cache_dir=cache_dir)
        assert cold.report.executed == 3 and cold.report.cached == 0
        assert warm.report.executed == 0 and warm.report.cached == 3
        assert warm.results() == cold.results()
        assert warm.report.cache == {"hits": 3, "misses": 0, "writes": 0}

    def test_quarantined_jobs_are_never_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        policy = RetryPolicy(max_attempts=1)
        first = run_jobs(
            [JobSpec(kind="test_fail")],
            requires=REQUIRES,
            policy=policy,
            cache_dir=cache_dir,
        )
        again = run_jobs(
            [JobSpec(kind="test_fail")],
            requires=REQUIRES,
            policy=policy,
            cache_dir=cache_dir,
        )
        assert first.outcomes[0].status == "quarantined"
        assert again.outcomes[0].status == "quarantined"
        assert again.report.cached == 0


class TestObs:
    def test_counters_and_trace(self, tmp_path):
        registry = MetricsRegistry()
        tracer = SpanTracer()
        run_jobs(
            _echo_specs(3),
            requires=REQUIRES,
            registry=registry,
            tracer=tracer,
            cache_dir=str(tmp_path / "cache"),
            policy=RetryPolicy(base_delay_s=0.0),
            fault_hook=_crash_hook(tmp_path, {2}, countdown=1),
        )
        snap = registry.snapshot()
        assert snap.get("fleet.jobs{status=ok}") == 3.0
        assert snap.get("fleet.cache_misses") == 3.0
        assert snap.get("fleet.retries") == 1.0
        assert snap.get("fleet.workers") == 1.0
        assert snap.get("fleet.job_seconds_count") == 3.0
        assert len(tracer) >= 3


class TestParallel:
    """Real spawn-pool runs — kept tiny, interpreters dominate."""

    def test_parallel_payloads_match_serial(self):
        serial = run_jobs(_echo_specs(4), requires=REQUIRES)
        parallel = run_jobs(_echo_specs(4), jobs=2, requires=REQUIRES)
        assert [o.payload for o in parallel.outcomes] == [
            o.payload for o in serial.outcomes
        ]
        assert parallel.report.executed == 4

    def test_worker_crash_retry_and_quarantine_isolation(self, tmp_path):
        """A dying worker must not take innocent neighbours with it.

        Job 1 hard-crashes its pooled attempt (killing the pool under
        every in-flight job — charged to nobody, blame is ambiguous)
        and its first isolated re-run (charged), then succeeds; the
        others must come back ok with no attempts charged to them.
        """
        markers = _crash_hook(tmp_path, {1}, countdown=2)
        run = run_jobs(
            _echo_specs(3),
            jobs=2,
            requires=REQUIRES,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            fault_hook=markers,
        )
        assert [o.status for o in run.outcomes] == ["ok"] * 3
        assert run.outcomes[1].attempts == 2
        assert run.outcomes[0].attempts <= 1 and run.outcomes[2].attempts <= 1
        assert run.report.retries >= 1
        assert run.report.worker_restarts >= 1
        assert run.results() == [{"value": i, "seed": i} for i in range(3)]

    def test_poisoned_job_quarantined_without_collateral(self, tmp_path):
        """A job that crashes every attempt is quarantined alone."""
        run = run_jobs(
            _echo_specs(3),
            jobs=2,
            requires=REQUIRES,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            fault_hook=_crash_hook(tmp_path, {0}, countdown=99),
        )
        assert [o.status for o in run.outcomes] == ["quarantined", "ok", "ok"]
        assert run.outcomes[0].attempts == 2
        assert run.report.quarantined == 1

    def test_hung_worker_times_out(self, tmp_path):
        def hook(index, spec):
            return {"sleep_s": 30.0} if index == 0 else None

        run = run_jobs(
            _echo_specs(2),
            jobs=2,
            requires=REQUIRES,
            policy=RetryPolicy(max_attempts=1, base_delay_s=0.0, timeout_s=1.0),
            fault_hook=hook,
        )
        assert run.outcomes[0].status == "quarantined"
        assert "Timeout" in run.outcomes[0].error
        assert run.outcomes[1].status == "ok"
        assert run.report.timeouts >= 1

"""Cheap job kinds for scheduler tests.

Importing this module registers the kinds — which is exactly how a
spawned worker learns them: the scheduler's ``requires`` list names
this module and :func:`repro.fleet.worker.execute_payload` imports it
before resolving the kind in the fresh interpreter.
"""

from __future__ import annotations

from repro.fleet import register_kind

REQUIRES = ("tests.fleet.jobkinds",)


def _echo(params, seed):
    return {"value": params.get("value"), "seed": seed}


def _fail(params, seed):
    raise RuntimeError("injected failure")


register_kind("test_echo", _echo)
register_kind("test_fail", _fail)

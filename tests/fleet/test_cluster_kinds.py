"""Fleet integration for the cluster kinds (satellite 6).

``cluster_bench`` / ``cluster_chaos`` jobs must run from pure-literal
specs, their :class:`ClusterReport` results must survive the codec
round-trip, and warm cache runs must decode to equal reports.
"""

from repro.fleet import JobSpec, run_jobs
from repro.fleet.codec import decode_result, encode_result
from repro.fleet.kinds import kind_salt, resolve_kind
from repro.net.cluster import ClusterReport

BENCH_PARAMS = {
    "app": "halo",
    "ranks": 4,
    "topology": "torus",
    "placement": "block",
    "rounds": 1,
    "size": 128,
}


class TestKinds:
    def test_registered_with_salts(self):
        for name in ("cluster_bench", "cluster_chaos"):
            spec = resolve_kind(name)
            assert spec.version == "1"
            assert name in kind_salt(name)

    def test_cluster_bench_runs_from_literals(self):
        spec = resolve_kind("cluster_bench")
        report = spec.fn(BENCH_PARAMS, 0)
        assert isinstance(report, ClusterReport)
        assert report.ok

    def test_cluster_chaos_seed_overrides_plan_seed(self):
        spec = resolve_kind("cluster_chaos")
        params = dict(
            BENCH_PARAMS,
            plan={
                "seed": 0,
                "flap_links": 1,
                "flaps_per_link": 1,
                "flap_ticks": 16,
                "flap_horizon": 128,
                "partition_at": -1,
                "partition_ticks": 64,
                "partition_victim": -1,
            },
        )
        a = spec.fn(params, 7)
        b = spec.fn(params, 7)
        assert a.ok and b.ok
        assert a.results == b.results  # same seed, same faults
        assert a.params["plan"]["seed"] == 7


class TestCodec:
    def test_cluster_report_round_trips(self):
        report = resolve_kind("cluster_bench").fn(BENCH_PARAMS, 0)
        payload = encode_result(report)
        assert payload["type"] == "ClusterReport"
        clone = decode_result(payload)
        assert isinstance(clone, ClusterReport)
        assert clone.results == report.results


class TestCaching:
    def test_warm_run_is_all_hits_and_equal(self, tmp_path):
        specs = [JobSpec(kind="cluster_bench", params=BENCH_PARAMS)]
        cold = run_jobs(iter(specs), cache_dir=str(tmp_path))
        warm = run_jobs(iter(specs), cache_dir=str(tmp_path))
        cold.require_ok(), warm.require_ok()
        assert warm.report.cached == 1
        assert warm.report.executed == 0
        (a,), (b,) = list(cold.results()), list(warm.results())
        assert a.results == b.results

"""Satellite property: parallel sweeps are byte-identical to serial.

``sweep_applications`` over several synthetic apps must produce
byte-identical ``AppAnalysis`` JSON at ``--jobs 1`` and ``--jobs 4`` —
including when a worker is crashed mid-sweep and the job retried — and
the chaos soak matrix must likewise be order- and
parallelism-independent. These are the determinism guarantees the
drivers advertise.
"""

from __future__ import annotations

import pytest

from repro.analyzer.sweep import sweep_applications
from repro.chaos.soak import iter_soak_jobs
from repro.fleet import RetryPolicy, run_jobs

#: Small but non-trivial: three apps with different op mixes.
APPS = ["AMG", "BigFFT", "MiniFe"]
BINS = (1, 32)


def _flatten(results) -> dict[tuple[str, int], str]:
    return {
        (name, bins): results[name][bins].to_json()
        for name in results
        for bins in results[name]
    }


def test_sweep_parallel_bytes_match_serial():
    serial = _flatten(sweep_applications(bins_list=BINS, rounds=2, names=APPS, jobs=1))
    parallel = _flatten(
        sweep_applications(bins_list=BINS, rounds=2, names=APPS, jobs=4)
    )
    assert serial == parallel


def test_sweep_identical_after_worker_crash_and_retry(tmp_path):
    """Crash the worker running the first cell; bytes must not change.

    A countdown of 2 crashes both the pooled attempt (pool break,
    charged to nobody) and the first isolated re-run (charged — a real
    retry), so the cell succeeds on its second charged attempt.
    """
    marker = tmp_path / "crash"
    marker.write_text("2")

    def hook(index, spec):
        return {"crash_countdown": str(marker)} if index == 0 else None

    serial = _flatten(sweep_applications(bins_list=BINS, rounds=2, names=APPS, jobs=1))
    crashed, report = sweep_applications(
        bins_list=BINS,
        rounds=2,
        names=APPS,
        jobs=4,
        policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        fault_hook=hook,
        with_report=True,
    )
    assert report.retries >= 1
    assert report.worker_restarts >= 1
    assert _flatten(crashed) == serial


def test_sweep_warm_cache_bytes_match(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold, cold_report = sweep_applications(
        bins_list=BINS, rounds=2, names=APPS, jobs=1, cache_dir=cache_dir,
        with_report=True,
    )
    warm, warm_report = sweep_applications(
        bins_list=BINS, rounds=2, names=APPS, jobs=1, cache_dir=cache_dir,
        with_report=True,
    )
    assert cold_report.executed == len(APPS) * len(BINS)
    assert warm_report.executed == 0
    assert warm_report.cached == len(APPS) * len(BINS)
    assert _flatten(warm) == _flatten(cold)


def test_non_strict_sweep_omits_quarantined_cells(tmp_path):
    """``strict=False``: a permanently-crashing cell is quarantined,
    its id lands in the report, and the surviving grid comes back."""
    marker = tmp_path / "crash"
    marker.write_text("99")  # crashes every attempt

    def hook(index, spec):
        return {"crash_countdown": str(marker)} if index == 0 else None

    results, report = sweep_applications(
        bins_list=BINS,
        rounds=2,
        names=APPS,
        policy=RetryPolicy(max_attempts=1, base_delay_s=0.0),
        fault_hook=hook,
        with_report=True,
        strict=False,
    )
    assert not report.ok
    assert report.quarantined == 1
    assert report.quarantined_ids == ["#0 analyze_app seed=0"]
    # Index 0 is app-major, bins-minor: (APPS[0], BINS[0]) is missing,
    # every other cell survived.
    assert set(results[APPS[0]]) == set(BINS) - {BINS[0]}
    for name in APPS[1:]:
        assert set(results[name]) == set(BINS)


def test_strict_sweep_raises_on_quarantine(tmp_path):
    from repro.fleet import FleetError

    marker = tmp_path / "crash"
    marker.write_text("99")

    def hook(index, spec):
        return {"crash_countdown": str(marker)} if index == 0 else None

    with pytest.raises(FleetError, match="quarantined"):
        sweep_applications(
            bins_list=BINS,
            rounds=2,
            names=APPS,
            policy=RetryPolicy(max_attempts=1, base_delay_s=0.0),
            fault_hook=hook,
        )


def test_soak_matrix_parallelism_independent():
    """chaos_run payloads are identical at jobs=1 and jobs=2."""
    names = ["clean", "drops"]
    seeds = range(1, 3)
    serial = run_jobs(iter_soak_jobs(names, seeds), jobs=1)
    parallel = run_jobs(iter_soak_jobs(names, seeds), jobs=2)
    assert [o.payload for o in serial.outcomes] == [
        o.payload for o in parallel.outcomes
    ]
    assert [o.result.to_json() for o in serial.outcomes] == [
        o.result.to_json() for o in parallel.outcomes
    ]

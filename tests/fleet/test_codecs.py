"""Result-object JSON codecs (satellite: cache round-trip fidelity).

Every object a job can return must survive ``to_json``/``from_json``
exactly — including enum-keyed and int-keyed mappings, which plain
``json`` would silently stringify — because the scheduler routes every
result (inline, pooled, or cached) through one codec.
"""

from __future__ import annotations

import pytest

from repro.analyzer.processing import analyze
from repro.analyzer.statistics import AppAnalysis
from repro.bench.pingpong import PingPongBench, RateResult
from repro.bench.scenarios import scenario_by_name
from repro.chaos.harness import (
    ChaosConfig,
    ChaosReport,
    config_from_params,
    config_to_params,
    run_chaos,
)
from repro.core import (
    EngineConfig,
    EngineStats,
    MessageEnvelope,
    OptimisticMatcher,
    ReceiveRequest,
)
from repro.fleet.codec import decode_result, encode_result, register_result_type
from repro.fleet.report import FleetReport
from repro.traces.model import OpGroup
from repro.traces.synthetic import generate


def _chaos_report() -> ChaosReport:
    return run_chaos(ChaosConfig(rounds=4, seed=3))


def _app_analysis() -> AppAnalysis:
    return analyze(generate("AMG", rounds=2), 32)


def _engine_stats() -> EngineStats:
    engine = OptimisticMatcher(EngineConfig(bins=8, block_threads=4, max_receives=16))
    for i in range(4):
        engine.post_receive(ReceiveRequest(source=0, tag=i))
    for i in range(4):
        engine.submit_message(MessageEnvelope(source=0, tag=i, send_seq=i))
    engine.process_all()
    return engine.stats


def _rate_result() -> RateResult:
    return PingPongBench(k=10, repetitions=2).run_optimistic(scenario_by_name("nc"))


@pytest.mark.parametrize(
    "make",
    [_chaos_report, _app_analysis, _engine_stats, _rate_result],
    ids=["ChaosReport", "AppAnalysis", "EngineStats", "RateResult"],
)
def test_json_round_trip_is_exact(make):
    original = make()
    cls = type(original)
    restored = cls.from_json(original.to_json())
    assert restored.to_json() == original.to_json()
    # And the dict path (what the cache stores) agrees.
    assert cls.from_dict(original.to_dict()).to_dict() == original.to_dict()


def test_app_analysis_restores_enum_and_int_keys():
    analysis = _app_analysis()
    restored = AppAnalysis.from_json(analysis.to_json())
    assert restored.call_mix == analysis.call_mix
    assert all(isinstance(k, OpGroup) for k in restored.call_mix)
    assert restored.tag_usage == analysis.tag_usage
    assert all(isinstance(k, int) for k in restored.tag_usage)
    assert restored.wildcard_usage == analysis.wildcard_usage


def test_engine_stats_block_history_survives():
    stats = _engine_stats()
    restored = EngineStats.from_json(stats.to_json())
    assert len(restored.block_history) == len(stats.block_history)
    for a, b in zip(restored.block_history, stats.block_history):
        assert a.to_dict() == b.to_dict()


@pytest.mark.parametrize(
    "make, cls",
    [(_chaos_report, ChaosReport), (_engine_stats, EngineStats)],
    ids=["ChaosReport", "EngineStats"],
)
def test_schema_version_is_enforced(make, cls):
    text = make().to_json()
    assert cls.SCHEMA in text
    bogus = cls.SCHEMA.rsplit("/v", 1)[0] + "/v999"
    with pytest.raises(ValueError, match="unsupported schema"):
        cls.from_json(text.replace(cls.SCHEMA, bogus))


def test_chaos_config_params_round_trip():
    config = ChaosConfig(rounds=9, seed=4, host_spill=True, bounce_buffers=2)
    assert config_from_params(config_to_params(config)) == config


def test_fleet_report_round_trip():
    report = FleetReport(
        jobs=4,
        total=3,
        executed=2,
        cached=1,
        retries=1,
        wall_s=1.5,
        cache={"hits": 1, "misses": 2, "writes": 2},
        records=[{"index": 0, "status": "ok"}],
    )
    assert FleetReport.from_json(report.to_json()).to_json() == report.to_json()
    with pytest.raises(ValueError, match="unsupported schema"):
        FleetReport.from_json(report.to_json().replace("/v1", "/v999"))


class TestResultEnvelope:
    def test_literal_passthrough(self):
        payload = encode_result({"cells": [1, 2], "ok": True})
        assert payload["type"] == "literal"
        assert decode_result(payload) == {"cells": [1, 2], "ok": True}

    def test_typed_round_trip(self):
        report = _chaos_report()
        payload = encode_result(report)
        assert payload["type"] == "ChaosReport"
        assert decode_result(payload).to_json() == report.to_json()

    def test_unencodable_result_is_rejected(self):
        with pytest.raises(TypeError, match="neither a registered result type"):
            encode_result(object())

    def test_register_result_type_requires_codec(self):
        with pytest.raises(TypeError, match="to_dict"):
            register_result_type("Nope", object)


def test_pressure_report_v3_counters_survive_codec():
    """A pressure-mode report with live schema-v3 counters (the evict
    overload lane) must round-trip through the fleet result codec
    exactly — the soak's registry folds are only as good as what the
    cache hands back."""
    from repro.chaos.overload import OVERLOAD_PROFILES
    from dataclasses import replace

    report = run_chaos(replace(OVERLOAD_PROFILES["evict"], seed=4))
    # Non-vacuous: this run actually exercised the v3 fields.
    assert report.budget_bytes > 0
    assert report.peak_charged_bytes > 0
    assert report.evictions > 0 or report.posts_deferred > 0

    encoded = encode_result(report)
    restored = decode_result(encoded)
    assert isinstance(restored, ChaosReport)
    assert restored.to_dict() == report.to_dict()
    for field in (
        "budget_bytes",
        "peak_charged_bytes",
        "budget_overruns",
        "demotions",
        "evictions",
        "recalls",
        "posts_deferred",
        "credit_holds",
        "pressure_entries",
        "pressure_exits",
        "pressure_takeovers",
        "pressure_reoffloads",
    ):
        assert getattr(restored, field) == getattr(report, field)

"""JobSpec canonicalization/digests and the content-addressed cache."""

from __future__ import annotations

import json

import pytest

from repro.fleet.cache import CACHE_SCHEMA, ResultCache
from repro.fleet.job import JOB_SCHEMA, JobSpec, ensure_literal


class TestJobSpec:
    def test_canonical_is_key_order_independent(self):
        a = JobSpec(kind="k", params={"x": 1, "y": [2, 3]})
        b = JobSpec(kind="k", params={"y": [2, 3], "x": 1})
        assert a.canonical() == b.canonical()
        assert a.digest("s") == b.digest("s")

    def test_tuples_freeze_to_lists(self):
        spec = JobSpec(kind="k", params={"bins": (1, 32, 128)})
        assert spec.params["bins"] == [1, 32, 128]
        round_tripped = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert round_tripped.canonical() == spec.canonical()

    def test_digest_covers_spec_seed_and_salt(self):
        base = JobSpec(kind="k", params={"x": 1})
        assert base.digest("s") != JobSpec(kind="k", params={"x": 2}).digest("s")
        assert base.digest("s") != JobSpec(kind="k", params={"x": 1}, seed=7).digest("s")
        assert base.digest("v1") != base.digest("v2")

    def test_non_literal_params_rejected(self):
        with pytest.raises(TypeError):
            JobSpec(kind="k", params={"obj": object()})
        with pytest.raises(TypeError):
            JobSpec(kind="k", params={1: "int keys are not JSON"})
        with pytest.raises(ValueError):
            JobSpec(kind="")

    def test_ensure_literal_reports_path(self):
        with pytest.raises(TypeError, match=r"params\.nested\[1\]"):
            ensure_literal({"nested": [0, {1, 2}]})

    def test_from_dict_rejects_unknown_schema(self):
        payload = JobSpec(kind="k").to_dict()
        payload["schema"] = "repro.fleet.job/v999"
        with pytest.raises(ValueError, match="unsupported job schema"):
            JobSpec.from_dict(payload)
        assert JOB_SCHEMA.endswith("/v1")


class TestResultCache:
    def _spec(self):
        return JobSpec(kind="k", params={"x": 1})

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = self._spec()
        digest = spec.digest("s")
        assert cache.get(digest) is None
        cache.put(digest, spec, {"schema": "r/v1", "type": "literal", "data": 42})
        assert digest in cache
        assert cache.get(digest) == {"schema": "r/v1", "type": "literal", "data": 42}
        assert cache.stats() == {"hits": 1, "misses": 1, "writes": 1}

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = self._spec().digest("")
        path = cache.put(digest, self._spec(), {"data": 1})
        assert path == tmp_path / digest[:2] / f"{digest}.json"

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._spec()
        digest = spec.digest("s")
        cache.put(digest, spec, {"data": 1})
        cache.path_for(digest).write_text("{ not json")
        assert cache.get(digest) is None
        assert cache.count() == 0  # entries() skips it too

    def test_wrong_schema_or_digest_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._spec()
        digest = spec.digest("s")
        cache.put(digest, spec, {"data": 1})
        envelope = json.loads(cache.path_for(digest).read_text())
        assert envelope["schema"] == CACHE_SCHEMA
        envelope["digest"] = "0" * 64
        cache.path_for(digest).write_text(json.dumps(envelope))
        assert cache.get(digest) is None

    def test_salt_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._spec()
        cache.put(spec.digest("code/v1"), spec, {"data": 1})
        assert cache.get(spec.digest("code/v2")) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            spec = JobSpec(kind="k", seed=seed)
            cache.put(spec.digest(""), spec, {"data": seed})
        assert cache.count() == 3
        assert cache.clear() == 3
        assert cache.count() == 0

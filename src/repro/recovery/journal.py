"""Block-boundary checkpoints of the matching data structures.

The optimistic engine is run-to-completion per block (§IV), which
gives a natural journal epoch: *between* blocks the engine holds no
in-flight thread state — just the posted-receive indexes, the
unexpected store, and the decision counter. A checkpoint taken there
is tiny (the live working set, not the history), and a mid-block core
fault rolls back by discarding the half-mutated engine and rebuilding
a fresh one from the checkpoint.

Rollback is sound because an aborted block leaks nothing observable:

* no events — ``process_block`` raised before returning outcomes;
* no stats — ``ctx.stats`` is absorbed only in the block epilogue,
  which the fault preempted;
* no decision stamps — ``decisions.next()`` is called only in the
  epilogue and in (serialized, never-concurrent) host commands.

The partially-written booking bitmaps and consumed descriptors die
with the discarded engine object; the replacement re-labels receives
and arrivals preserving relative order (``import_state``'s contract),
so C1/C2 audits hold across any number of rollbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.stats import EngineStats
from repro.core.threadsim import SchedulePolicy
from repro.util.counters import MonotonicCounter

__all__ = ["BlockCheckpoint", "checkpoint_engine", "host_takeover", "restore_engine"]


@dataclass(slots=True)
class BlockCheckpoint:
    """Live matching state at one block boundary."""

    #: Posted receives as ``(post_label, request)`` in posting order.
    receives: list[tuple[int, ReceiveRequest]] = field(default_factory=list)
    #: Unexpected messages in arrival order.
    unexpected: list[MessageEnvelope] = field(default_factory=list)
    #: Decision stamps handed out so far (restores stay monotone).
    decisions: int = 0


def host_takeover(engine: OptimisticMatcher, host=None):
    """Seed a host :class:`repro.matching.list_matcher.ListMatcher`
    with ``engine``'s live working set, decision stamps kept monotone.

    The one migration primitive every escalation path shares: the
    descriptor-table spill (PR 1's :class:`FallbackMatcher` and
    :class:`DpaMachine` degraded mode) and the core-quarantine
    takeover both call this. ``engine`` must be settled (between
    blocks); pass ``host`` to seed an existing (empty) matcher.
    """
    # Imported here, not at module top: repro.matching's package init
    # pulls in FallbackMatcher, which uses this helper — a top-level
    # import would cycle.
    from repro.matching.list_matcher import ListMatcher

    if host is None:
        host = ListMatcher()
    receives, unexpected = engine.export_state()
    host.seed_state(receives, unexpected)
    host.decisions = MonotonicCounter(engine.decisions.peek())
    return host


def checkpoint_engine(engine: OptimisticMatcher) -> BlockCheckpoint:
    """Snapshot ``engine`` at a block boundary (no pending messages)."""
    if engine.pending_messages:
        raise ValueError("checkpoint requires a settled engine (no pending messages)")
    receives, unexpected = engine.export_state()
    return BlockCheckpoint(
        receives=receives,
        unexpected=unexpected,
        decisions=engine.decisions.peek(),
    )


def restore_engine(
    checkpoint: BlockCheckpoint,
    config: EngineConfig,
    *,
    engine_cls: type[OptimisticMatcher] = OptimisticMatcher,
    policy: SchedulePolicy | None = None,
    comm: int = 0,
    stats: EngineStats | None = None,
    observer=None,
    fault_injector=None,
    history_limit: int | None = None,
) -> OptimisticMatcher:
    """Build a fresh engine holding exactly the checkpointed state.

    ``stats``, when given, is installed as the new engine's stats
    object — the same carried-across-generations pattern the spill /
    recovery path uses, so cumulative counters survive rollbacks.
    ``fault_injector`` is re-attached so the fault schedule continues
    across the replay (the injector's own block counter advances per
    *attempt*, keeping the schedule deterministic).
    """
    fresh = engine_cls(
        config,
        policy=policy,
        comm=comm,
        keep_history=True,
        history_limit=history_limit,
        observer=observer,
    )
    if stats is not None:
        fresh.stats = stats
    fresh.decisions = MonotonicCounter(checkpoint.decisions)
    fresh.fault_injector = fault_injector
    fresh.import_state(checkpoint.receives, checkpoint.unexpected)
    return fresh

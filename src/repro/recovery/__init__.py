"""Accelerator fault tolerance: core faults, block-journal recovery,
and online matching-invariant watchdogs.

PR 1 made the *wire* a fault domain (:mod:`repro.rdma.faultwire`) and
the *resources* a degradation trigger (host spill). This package makes
the accelerator's **compute** a fault domain too:

* :mod:`repro.recovery.faults` — a seeded injector for per-core
  fail-stop, hang, and transient bit-flip faults inside the matching
  engine's block threads.
* :mod:`repro.recovery.quarantine` — the recovery policy and the
  quarantine set tracking which DPA cores are currently dead.
* :mod:`repro.recovery.journal` — block-boundary checkpoints of the
  matching data structures, and rollback onto a fresh engine.
* :mod:`repro.recovery.recoverer` — :class:`RecoveringMatcher`, the
  pipeline controller that replays faulted blocks on surviving cores
  and escalates to host takeover past the quarantine threshold.
* :mod:`repro.recovery.watchdog` — online oracle cross-checks: the
  incremental :class:`PairingOracle` for pipelines and the op-stream
  :class:`MatchingWatchdog` for matchers.
"""

from repro.recovery.faults import (
    BitFlipDetected,
    CoreFailStop,
    CoreFault,
    CoreFaultInjector,
    CoreFaultKind,
    CoreFaultPlan,
    CoreFaultStats,
)
from repro.recovery.journal import (
    BlockCheckpoint,
    checkpoint_engine,
    host_takeover,
    restore_engine,
)
from repro.recovery.quarantine import CoreQuarantine, RecoveryPolicy
from repro.recovery.recoverer import RecoveringMatcher, RecoveryStats
from repro.recovery.watchdog import MatchingWatchdog, PairingOracle, WatchdogAlert

__all__ = [
    "BitFlipDetected",
    "BlockCheckpoint",
    "CoreFailStop",
    "CoreFault",
    "CoreFaultInjector",
    "CoreFaultKind",
    "CoreFaultPlan",
    "CoreFaultStats",
    "CoreQuarantine",
    "MatchingWatchdog",
    "PairingOracle",
    "RecoveringMatcher",
    "RecoveryPolicy",
    "RecoveryStats",
    "WatchdogAlert",
    "checkpoint_engine",
    "host_takeover",
    "restore_engine",
]

"""Online matching-invariant watchdogs.

The validation suite checks matching *post-hoc*: replay the schedule
through the serial oracle after the run and diff the pairings. This
module runs the same cross-checks **online**, so a protocol bug (or an
undetected corruption) is flagged within bounded blocks of the fault
instead of at the end of a soak:

* :class:`PairingOracle` — an incremental shadow of the chaos
  harness's oracle replay, for *pipelines*. Posts and sends feed it as
  they are issued; at every transport-quiescence point the pipeline's
  deliveries are compared against :attr:`PairingOracle.want`. The
  reliability layer delivers in send order and posts are synchronous,
  so at quiescence a delivered handle that differs from the oracle's
  is a genuine, stable divergence — there are no legitimate transients
  to debounce.
* :class:`MatchingWatchdog` — an op-stream driver for bare *matchers*
  (the :func:`repro.matching.oracle.run_stream` identity scheme:
  receive handle = posting index, ``send_seq`` per source). It feeds
  the matcher under test and a shadow :class:`ListMatcher` in
  lock-step and periodically flushes + diffs pairings and audits C2.
  An engine-internal assertion (e.g. the double-consume guard a
  mutant trips) is converted into an alert rather than a crash, so
  soak lanes over deliberately broken engines terminate with evidence.

Both watchdogs report the *first* violation as a :class:`WatchdogAlert`
carrying the block index at detection — the soak asserts detection
latency stays within bounded blocks of the fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent
from repro.core.threadsim import DeadlockError
from repro.matching.list_matcher import ListMatcher
from repro.matching.oracle import StreamOp, check_c2, pairings

__all__ = ["MatchingWatchdog", "PairingOracle", "WatchdogAlert"]


@dataclass(frozen=True, slots=True)
class WatchdogAlert:
    """The first invariant violation an online watchdog observed."""

    #: ``"pairing"`` (oracle divergence), ``"c2"`` (overtaking), or
    #: ``"engine-error"`` (an internal engine assertion / deadlock).
    kind: str
    #: Engine block counter at detection (-1 when unknown) — the unit
    #: detection-latency bounds are expressed in.
    block: int
    #: Ops fed to the watchdog when the violation surfaced.
    op_index: int
    detail: str


def _blocks(matcher) -> int:
    """Best-effort engine block counter for detection-latency stamps."""
    for attr in ("stats", "engine"):
        owner = getattr(matcher, attr, None)
        if owner is None:
            continue
        stats = getattr(owner, "stats", owner)
        blocks = getattr(stats, "blocks", None)
        if isinstance(blocks, int):
            return blocks
    return -1


class PairingOracle:
    """Incremental serial-matching shadow for a receive pipeline.

    Feed it every posted receive and every sent message *at issue
    time* (the well-defined serial order); :attr:`want` accumulates
    ``payload ident -> receive handle`` as the oracle pairs them.
    Identities follow the chaos harness: ``"rank:seq"`` strings,
    ``send_seq`` a single global counter in send order (the reliable
    wire delivers in that order, so per-pipeline and per-oracle
    sequence numbers coincide).
    """

    def __init__(self) -> None:
        self._matcher = ListMatcher()
        #: ident -> handle the oracle paired it with (absent = still
        #: unexpected on the oracle side).
        self.want: dict[str, int] = {}
        self._pending: dict[int, str] = {}  # send_seq -> ident
        self._seq = 0

    def post(self, request: ReceiveRequest) -> None:
        """The pipeline posted ``request`` (handle already assigned)."""
        event = self._matcher.post_receive(request)
        if event is not None:
            self.want[self._pending.pop(event.message.send_seq)] = request.handle

    def message(self, ident: str, source: int, tag: int) -> None:
        """The pipeline's sender issued ``ident`` from ``source``."""
        msg = MessageEnvelope(source=source, tag=tag, send_seq=self._seq)
        self._seq += 1
        self._pending[msg.send_seq] = ident
        event = self._matcher.incoming_message(msg)
        if event.receive is not None:
            self.want[ident] = event.receive.handle

    def divergence(self, ident: str, got_handle: int) -> str | None:
        """Check one delivery; returns the mismatch string or None."""
        want = self.want.get(ident)
        if want == got_handle:
            return None
        return f"{ident}: got handle {got_handle}, oracle says {want}"


class MatchingWatchdog:
    """Lock-step oracle cross-check over a matcher op stream."""

    def __init__(self, matcher, *, check_every: int = 1) -> None:
        """``check_every`` trades detection latency for check cost:
        pairings are diffed every that-many ops (every op by default).
        Checks flush the matcher, so block matchers process partial
        blocks at check points — semantically legal (flush is part of
        the matcher contract) and exactly what bounds latency. For
        block engines, keep ``check_every`` at or above the block size
        so full blocks still form between checks; flushing every op
        degenerates to serial one-message blocks, which masks exactly
        the concurrency bugs the watchdog exists to catch."""
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.matcher = matcher
        self.check_every = check_every
        self._oracle = ListMatcher()
        self._matcher_events: list[MatchEvent] = []
        self._oracle_events: list[MatchEvent] = []
        self._post_index = 0
        self._send_seq: dict[int, int] = {}
        self.ops_fed = 0
        self.checks = 0
        #: First violation, sticky once set.
        self.alert: WatchdogAlert | None = None

    # -- feeding ---------------------------------------------------------

    def feed(self, op: StreamOp) -> WatchdogAlert | None:
        """Apply one op to the matcher and the shadow oracle."""
        if self.alert is not None:
            return self.alert
        self.ops_fed += 1
        if op.kind == "post":
            request = ReceiveRequest(
                source=op.source, tag=op.tag, comm=op.comm, handle=self._post_index
            )
            self._post_index += 1
            apply = lambda m: m.post_receive(request)  # noqa: E731
        else:
            seq = self._send_seq.get(op.source, 0)
            self._send_seq[op.source] = seq + 1
            msg = MessageEnvelope(
                source=op.source, tag=op.tag, comm=op.comm, send_seq=seq
            )
            apply = lambda m: m.incoming_message(msg)  # noqa: E731
        event = apply(self._oracle)
        if event is not None:
            self._oracle_events.append(event)
        try:
            event = apply(self.matcher)
        except (AssertionError, DeadlockError) as exc:
            return self._raise_alert("engine-error", f"{type(exc).__name__}: {exc}")
        if event is not None:
            self._matcher_events.append(event)
        if self.ops_fed % self.check_every == 0:
            return self.check()
        return None

    def run(self, ops: list[StreamOp]) -> WatchdogAlert | None:
        """Feed a whole stream, stopping at the first alert; ends with
        a final check so trailing unflushed blocks are covered."""
        for op in ops:
            if self.feed(op) is not None:
                return self.alert
        return self.check()

    # -- checking --------------------------------------------------------

    def check(self) -> WatchdogAlert | None:
        """Flush both sides and diff pairings + audit C2 now."""
        if self.alert is not None:
            return self.alert
        self.checks += 1
        self._oracle_events.extend(self._oracle.flush())
        try:
            self._matcher_events.extend(self.matcher.flush())
        except (AssertionError, DeadlockError) as exc:
            return self._raise_alert("engine-error", f"{type(exc).__name__}: {exc}")
        expected = pairings(self._oracle_events)
        actual = pairings(self._matcher_events)
        if expected != actual:
            diffs = {
                key: (expected.get(key), actual.get(key))
                for key in set(expected) | set(actual)
                if expected.get(key) != actual.get(key)
            }
            return self._raise_alert(
                "pairing",
                f"{len(diffs)} pairings diverged: {dict(sorted(diffs.items())[:5])}",
            )
        try:
            check_c2(self._matcher_events)
        except AssertionError as exc:
            return self._raise_alert("c2", str(exc))
        return None

    def _raise_alert(self, kind: str, detail: str) -> WatchdogAlert:
        self.alert = WatchdogAlert(
            kind=kind,
            block=_blocks(self.matcher),
            op_index=self.ops_fed,
            detail=detail,
        )
        return self.alert

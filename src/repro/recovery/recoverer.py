"""The recovering matcher: block replay, quarantine, host takeover.

:class:`RecoveringMatcher` drives an optimistic engine through the
pipeline matcher interface (``post_receive`` / ``submit_message`` /
``process_all`` — what :class:`repro.rdma.protocol.RdmaReceiver`
expects) while surviving seeded core faults:

1. Incoming messages stage in the matcher's own queue; each block's
   batch is therefore known *before* the engine sees it.
2. Every block attempt starts from a :class:`BlockCheckpoint`. A core
   fault (fail-stop, watchdog-detected hang, detected bit-flip) aborts
   the attempt; the faulted core is quarantined (bit-flips are
   transient — no quarantine), the engine rolls back to the
   checkpoint, and the same batch replays on the surviving cores.
3. When quarantined cores exceed ``RecoveryPolicy.quarantine_threshold``
   (or one batch exhausts ``max_replays_per_block``), matching
   escalates to a host :class:`ListMatcher` takeover via PR 1's
   export/seed migration — decision stamps stay monotone across the
   boundary. Once cores repair and the host working set drains below
   ``reoffload_fraction`` of the table, state migrates back onto a
   fresh engine and offloaded matching resumes.

Replay determinism: the engine is oracle-equivalent under *any* thread
interleaving (the C1/C2 property tests), and rollback restores posted/
unexpected state with relative order intact, so a replayed block — or
a host-matched one — produces the same final pairings as a fault-free
run of the same schedule. ``tests/recovery`` asserts this bit-for-bit.

A :class:`DeadlockError` with *no* armed fault is a genuine engine
liveness bug and is re-raised, never silently "recovered".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.config import EngineConfig
from repro.core.descriptor import DescriptorTableFull
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent
from repro.core.threadsim import DeadlockError, SchedulePolicy
from repro.matching.list_matcher import ListMatcher
from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.recovery.faults import (
    CoreFault,
    CoreFaultInjector,
    CoreFaultKind,
    CoreFaultPlan,
)
from repro.recovery.journal import (
    BlockCheckpoint,
    checkpoint_engine,
    host_takeover,
    restore_engine,
)
from repro.recovery.quarantine import CoreQuarantine, RecoveryPolicy
__all__ = ["RecoveringMatcher", "RecoveryStats"]

#: Default core count (BlueField-3 DPA geometry, §II-C).
DEFAULT_CORES = 16


@dataclass(slots=True)
class RecoveryStats:
    """Cumulative recovery accounting (obs-pullable, JSON-literal)."""

    #: Faults that manifested (one per aborted block attempt).
    core_fail_stops: int = 0
    core_hangs: int = 0
    core_bit_flips: int = 0
    #: Block attempts aborted and rolled back to their checkpoint.
    block_rollbacks: int = 0
    #: Replay attempts started after a rollback.
    blocks_replayed: int = 0
    #: Messages re-run by those replays.
    replay_messages: int = 0
    #: Blocks that completed after at least one rollback.
    blocks_recovered: int = 0
    #: Quarantine events (cores can be quarantined repeatedly).
    cores_quarantined: int = 0
    #: Cores returned from quarantine.
    core_repairs: int = 0
    #: Escalations to the host list matcher.
    host_takeovers: int = 0
    #: Migrations back onto a fresh engine after a takeover.
    reoffloads: int = 0


class RecoveringMatcher:
    """Optimistic engine wrapped in the core-fault recovery loop."""

    name = "optimistic+recovery"

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        policy: SchedulePolicy | None = None,
        comm: int = 0,
        cores: int = DEFAULT_CORES,
        core_plan: CoreFaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
        engine_cls: type[OptimisticMatcher] = OptimisticMatcher,
        observer=None,
        keep_history: bool = False,
        history_limit: int | None = None,
        tracer: SpanTracer = NULL_TRACER,
        clock=None,
        recorder: FlightRecorder = NULL_RECORDER,
    ) -> None:
        """``engine_cls`` selects the engine generation class (the
        mutant lanes of the core-fault soak pass deliberately broken
        subclasses here). ``clock`` supplies timestamps for recovery
        trace spans (defaults to the epoch counter)."""
        self.config = config if config is not None else EngineConfig()
        self._policy = policy
        self._comm = comm
        self._engine_cls = engine_cls
        self._observer = observer
        self._keep_history = keep_history
        self._history_limit = history_limit
        self.recovery_policy = recovery if recovery is not None else RecoveryPolicy()
        self.core_plan = core_plan if core_plan is not None else CoreFaultPlan.clean()
        self.quarantine = CoreQuarantine(
            cores, repair_epochs=self.recovery_policy.repair_epochs
        )
        self.injector = CoreFaultInjector(
            self.core_plan, active_cores=self.quarantine.active_cores
        )
        self.engine = engine_cls(
            self.config,
            policy=policy,
            comm=comm,
            keep_history=keep_history,
            history_limit=history_limit,
            observer=observer,
        )
        self.engine.fault_injector = self.injector
        self.recorder = recorder
        if recorder.enabled:
            self.engine.set_recorder(recorder)
        #: One stats object carried across every engine generation.
        self.stats = self.engine.stats
        self.recovery_stats = RecoveryStats()
        self._staged: deque[MessageEnvelope] = deque()
        self._host: ListMatcher | None = None
        self._host_events: list[MatchEvent] = []
        #: Block-equivalents processed; drives quarantine repairs.
        self._epoch = 0
        self._host_msgs = 0
        self._tracer = tracer
        self._now = clock if clock is not None else (lambda: float(self._epoch))
        self._track = tracer.track("recovery", "cores") if tracer.enabled else None
        self._replay_hist = None

    # -- observability --------------------------------------------------

    def register_metrics(self, registry, *, prefix: str = "recovery") -> None:
        """Expose recovery accounting in a metrics registry: pulled
        counters, live quarantine/degraded gauges, and a histogram of
        replay attempts per recovered block."""
        registry.register_stats(prefix, self.recovery_stats)
        registry.gauge(
            f"{prefix}.quarantined", "cores currently quarantined"
        ).set_function(lambda: float(self.quarantine.count))
        registry.gauge(
            f"{prefix}.quarantined_peak", "most cores ever dead at once"
        ).set_function(lambda: float(self.quarantine.peak))
        registry.gauge(
            f"{prefix}.degraded", "1 while matching is taken over by the host"
        ).set_function(lambda: 1.0 if self.degraded else 0.0)
        self._replay_hist = registry.histogram(
            f"{prefix}.replay_attempts",
            "block attempts needed per recovered block",
            buckets=(1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0),
        )

    @property
    def degraded(self) -> bool:
        """Whether matching is currently taken over by the host."""
        return self._host is not None

    @property
    def posted_count(self) -> int:
        if self._host is not None:
            return self._host.posted_count
        return self.engine.posted_receives

    @property
    def unexpected_count(self) -> int:
        if self._host is not None:
            return self._host.unexpected_count
        return self.engine.unexpected_count

    @property
    def pending_messages(self) -> int:
        return len(self._staged)

    # -- pipeline matcher interface -------------------------------------

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        self._maybe_reoffload()
        if self._host is None:
            try:
                return self.engine.post_receive(request)
            except DescriptorTableFull:
                # Resource pressure escalates through the same takeover
                # path as core loss (PR 1's spill contract).
                self._take_over(())
        return self._host.post_receive(request)

    def submit_message(self, msg: MessageEnvelope) -> None:
        """Stage a message; batches form at ``process_all`` time so a
        faulted block's batch is known for rollback and replay."""
        self._staged.append(msg)

    def process_all(self) -> list[MatchEvent]:
        events, self._host_events = self._host_events, []
        self._maybe_reoffload()
        while self._staged:
            if self._host is not None:
                while self._staged:
                    self._host_deliver(self._staged.popleft())
                break
            width = self.config.block_threads
            batch = [
                self._staged.popleft()
                for _ in range(min(width, len(self._staged)))
            ]
            events.extend(self._run_block(batch))
        events.extend(self._host_events)
        self._host_events = []
        return events

    # -- the recovery loop ----------------------------------------------

    def _run_block(self, batch: list[MessageEnvelope]) -> list[MatchEvent]:
        """One batch, to completion: checkpoint -> attempt -> (fault?
        quarantine + rollback + replay | takeover) -> events."""
        rs = self.recovery_stats
        attempts = 0
        while True:
            self._advance_epoch()
            checkpoint = checkpoint_engine(self.engine)
            marks = None
            if self.recorder.enabled:
                # Speculation fence: an aborted attempt's stamps are
                # rewound so only the surviving attempt shapes the
                # waterfall; the rollback survives as an annotation.
                marks = [(msg.mid, self.recorder.mark(msg.mid)) for msg in batch]
            for msg in batch:
                self.engine.submit_message(msg)
            attempts += 1
            try:
                events = self.engine.process_block()
            except (CoreFault, DeadlockError) as exc:
                fault = self.injector.take_armed()
                if fault is None:
                    # Not ours: a genuine liveness/protocol bug must
                    # surface, not be papered over by a replay.
                    raise
                self._note_fault(fault, exc)
                self._rollback(checkpoint)
                if marks is not None:
                    for mid, mark in marks:
                        self.recorder.rewind(mid, mark)
                        self.recorder.note(
                            mid,
                            "rollback",
                            epoch=self._epoch,
                            attempt=attempts,
                            fault=fault.kind.value,
                        )
                over_threshold = (
                    self.quarantine.count
                    > self.recovery_policy.quarantine_threshold
                )
                if (
                    over_threshold
                    or attempts >= self.recovery_policy.max_replays_per_block
                ):
                    self._take_over(batch)
                    return []
                rs.blocks_replayed += 1
                rs.replay_messages += len(batch)
                continue
            if attempts > 1:
                rs.blocks_recovered += 1
                if self._replay_hist is not None:
                    self._replay_hist.observe(float(attempts))
                if self._track is not None:
                    self._tracer.instant(
                        self._track,
                        "replayed",
                        self._now(),
                        args={"attempts": attempts, "messages": len(batch)},
                    )
            return events

    def _note_fault(self, fault, exc) -> None:
        rs = self.recovery_stats
        if fault.kind is CoreFaultKind.FAIL_STOP:
            rs.core_fail_stops += 1
        elif fault.kind is CoreFaultKind.HANG:
            rs.core_hangs += 1
        else:
            rs.core_bit_flips += 1
        if self._track is not None:
            self._tracer.instant(
                self._track,
                f"fault:{fault.kind.value}",
                self._now(),
                args={"core": fault.core, "thread": fault.thread},
            )
        # Bit-flips are transient (the core itself is healthy);
        # fail-stop and hang take the core out of service.
        if fault.kind is not CoreFaultKind.BIT_FLIP:
            self.quarantine.quarantine(fault.core, self._epoch)
            rs.cores_quarantined += 1
            if self._track is not None:
                self._tracer.instant(
                    self._track,
                    "quarantine",
                    self._now(),
                    args={"core": fault.core, "dead": self.quarantine.count},
                )

    def _rollback(self, checkpoint: BlockCheckpoint) -> None:
        self.engine = restore_engine(
            checkpoint,
            self.config,
            engine_cls=self._engine_cls,
            policy=self._policy,
            comm=self._comm,
            stats=self.stats,
            observer=self._observer,
            fault_injector=self.injector,
            history_limit=self._history_limit,
        )
        if self.recorder.enabled:
            self.engine.set_recorder(self.recorder)
        self.recovery_stats.block_rollbacks += 1

    def _advance_epoch(self) -> None:
        self._epoch += 1
        repaired = self.quarantine.repair_due(self._epoch)
        if repaired:
            self.recovery_stats.core_repairs += len(repaired)
            if self._track is not None:
                self._tracer.instant(
                    self._track,
                    "repair",
                    self._now(),
                    args={"cores": repaired, "dead": self.quarantine.count},
                )

    # -- host takeover / re-offload -------------------------------------

    def _take_over(self, batch) -> None:
        """Quarantine exceeded the threshold (or a batch would not
        stop faulting): the host list matcher adopts the working set.
        The engine is settled (post-rollback or between blocks), so
        its export *is* the last consistent checkpoint."""
        host = host_takeover(self.engine)
        self._host = host
        self.stats.fallback_spills += 1
        self.recovery_stats.host_takeovers += 1
        if self.recorder.enabled:
            self.recorder.event(
                "takeover", reason="core-faults", dead=self.quarantine.count
            )
        if self._track is not None:
            self._tracer.begin(
                self._track,
                "takeover",
                self._now(),
                args={"dead": self.quarantine.count, "posted": host.posted_count},
            )
        for msg in batch:
            self._host_deliver(msg)

    def _host_deliver(self, msg: MessageEnvelope) -> None:
        assert self._host is not None
        event = self._host.incoming_message(msg)
        self.stats.degraded_matches += 1
        self._host_events.append(event)
        # Host traffic still advances repair time, one epoch per
        # block-equivalent of messages.
        self._host_msgs += 1
        if self._host_msgs % self.config.block_threads == 0:
            self._advance_epoch()

    def _maybe_reoffload(self) -> None:
        """Migrate back once cores repaired and the host set drained."""
        if self._host is None:
            return
        if self.quarantine.count > self.recovery_policy.quarantine_threshold:
            return
        limit = int(
            self.config.max_receives * self.recovery_policy.reoffload_fraction
        )
        if self._host.posted_count > limit:
            return
        receives, unexpected = self._host.export_state()
        checkpoint = BlockCheckpoint(
            receives=receives,
            unexpected=unexpected,
            decisions=self._host.decisions.peek(),
        )
        self.engine = restore_engine(
            checkpoint,
            self.config,
            engine_cls=self._engine_cls,
            policy=self._policy,
            comm=self._comm,
            stats=self.stats,
            observer=self._observer,
            fault_injector=self.injector,
            history_limit=self._history_limit,
        )
        if self.recorder.enabled:
            self.engine.set_recorder(self.recorder)
            self.recorder.event("reoffload", reason="core-faults")
        self._host = None
        self.stats.fallback_recoveries += 1
        self.recovery_stats.reoffloads += 1
        if self._track is not None:
            self._tracer.instant(self._track, "reoffload", self._now())
            self._tracer.end(self._track, self._now())

"""Recovery policy and the core-quarantine set.

A faulted core is *quarantined*: removed from the active set so the
injector never victimizes it again and the cycle model charges blocks
to fewer cores. Quarantine is temporary — cores come back after
``repair_epochs`` epochs (an epoch is one processed block, or one
block-equivalent of host traffic while taken over), modelling a reset/
re-attach of the DPA execution unit. When the quarantined count
exceeds ``quarantine_threshold``, the accelerator is no longer trusted
and matching escalates to host takeover via the PR 1 spill path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["CoreQuarantine", "RecoveryPolicy"]


@dataclass(frozen=True, slots=True)
class RecoveryPolicy:
    """Knobs of the quarantine / replay / takeover state machine.

    All fields are JSON literals so the policy ships through the fleet
    worker boundary unchanged (like :class:`ChaosConfig`).
    """

    #: Host takeover once *more than* this many cores are quarantined.
    quarantine_threshold: int = 4
    #: Epochs until a quarantined core is repaired and returns.
    repair_epochs: int = 24
    #: Replays of one block before giving up and taking over (backstop
    #: against a fault schedule that keeps killing the same batch).
    max_replays_per_block: int = 8
    #: Migrate back from host takeover once the host PRQ fits this
    #: fraction of the descriptor table (hysteresis against thrash).
    reoffload_fraction: float = 0.5
    #: DPA cycles the stall watchdog needs to flag a hung core — the
    #: detection latency charged per hang by the cycle model.
    hang_timeout_cycles: float = 8192.0

    def __post_init__(self) -> None:
        if self.quarantine_threshold < 0:
            raise ValueError(
                f"quarantine_threshold must be >= 0, got {self.quarantine_threshold}"
            )
        if self.repair_epochs < 1:
            raise ValueError(f"repair_epochs must be >= 1, got {self.repair_epochs}")
        if self.max_replays_per_block < 1:
            raise ValueError(
                f"max_replays_per_block must be >= 1, got {self.max_replays_per_block}"
            )
        if not 0.0 < self.reoffload_fraction <= 1.0:
            raise ValueError(
                f"reoffload_fraction must be in (0, 1], got {self.reoffload_fraction}"
            )
        if self.hang_timeout_cycles < 0:
            raise ValueError(
                f"hang_timeout_cycles must be >= 0, got {self.hang_timeout_cycles}"
            )

    def with_options(self, **changes: Any) -> "RecoveryPolicy":
        return replace(self, **changes)


class CoreQuarantine:
    """The set of currently-dead cores, with scheduled repairs."""

    def __init__(self, cores: int, *, repair_epochs: int) -> None:
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        self.cores = cores
        self.repair_epochs = repair_epochs
        #: core id -> epoch at which it repairs.
        self._due: dict[int, int] = {}
        self.peak = 0

    @property
    def count(self) -> int:
        return len(self._due)

    def active_cores(self) -> list[int]:
        """Cores currently alive, in id order."""
        return [core for core in range(self.cores) if core not in self._due]

    def is_quarantined(self, core: int) -> bool:
        return core in self._due

    def quarantine(self, core: int, epoch: int) -> None:
        """Mark ``core`` dead until ``epoch + repair_epochs``."""
        if not 0 <= core < self.cores:
            raise ValueError(f"core {core} out of range [0, {self.cores})")
        self._due[core] = epoch + self.repair_epochs
        self.peak = max(self.peak, len(self._due))

    def repair_due(self, epoch: int) -> list[int]:
        """Un-quarantine every core whose repair epoch has arrived."""
        repaired = sorted(core for core, due in self._due.items() if due <= epoch)
        for core in repaired:
            del self._due[core]
        return repaired

"""Seeded core-fault injection inside the matching engine.

:class:`FaultyWire` injects faults *below* the transport;
:class:`CoreFaultInjector` injects them *inside the accelerator*: it
wraps the per-thread block generators that
:meth:`repro.core.engine.OptimisticMatcher.process_block` runs and,
deterministically from a seed, makes one victim core misbehave
mid-block:

* **fail-stop** — the victim thread raises :class:`CoreFailStop` after
  a seeded number of steps: the core died with its booking half-done.
* **hang** — the victim thread blocks on a condition that never
  becomes true. The stepped executor's liveness check is the watchdog:
  the stall surfaces as a deterministic
  :class:`repro.core.threadsim.DeadlockError`.
* **bit-flip** — a bit in the victim thread's candidate/booking state
  is flipped, then :class:`BitFlipDetected` is raised. This models an
  ECC/parity-*detected* transient: the corruption never escapes the
  block because detection aborts it (undetected flips are a different
  threat model — they would need end-to-end checksums on the match
  state, not a recoverer).

All three faults abort the block before its epilogue runs, so neither
events nor stats escape a faulted attempt; recovery is rollback +
replay (:mod:`repro.recovery.recoverer`).

Determinism mirrors :class:`repro.rdma.faultwire.FaultPlan`: every
draw flows through one :func:`repro.util.rng.make_rng` stream keyed by
``CoreFaultPlan.seed``, and the draw structure per block is fixed
(three rate rolls, then victim selection only when armed), so a (plan,
block-sequence) pair reproduces the same fault schedule bit-for-bit.
At most one fault arms per block attempt, which keeps attribution
unambiguous: whatever error escapes the executor belongs to the armed
fault, and anything *un*-armed is re-raised as a genuine engine bug.
"""

from __future__ import annotations

import enum
from collections.abc import Generator
from dataclasses import dataclass, replace
from typing import Any

from repro.core.threadsim import Yielded
from repro.util.rng import make_rng

__all__ = [
    "BitFlipDetected",
    "CoreFailStop",
    "CoreFault",
    "CoreFaultInjector",
    "CoreFaultKind",
    "CoreFaultPlan",
    "CoreFaultStats",
]


class CoreFaultKind(enum.Enum):
    FAIL_STOP = "fail_stop"
    HANG = "hang"
    BIT_FLIP = "bit_flip"


class CoreFault(RuntimeError):
    """Base of the injected core-fault exceptions.

    Carries the fault's coordinates so the recoverer can quarantine
    the right core and the soak report can attribute the episode.
    """

    kind: CoreFaultKind

    def __init__(self, core: int, thread: int, block: int) -> None:
        super().__init__(
            f"{self.kind.value} on core {core} (thread {thread}, block {block})"
        )
        self.core = core
        self.thread = thread
        self.block = block


class CoreFailStop(CoreFault):
    """The victim core died mid-block (fail-stop model)."""

    kind = CoreFaultKind.FAIL_STOP


class BitFlipDetected(CoreFault):
    """A transient flip in candidate/booking state was detected."""

    kind = CoreFaultKind.BIT_FLIP


@dataclass(frozen=True, slots=True)
class CoreFaultPlan:
    """A composable, seeded schedule of accelerator core faults.

    Rates are per-*block* probabilities, rolled in the order fail-stop
    -> hang -> bit-flip; at most one fault fires per block attempt.
    ``max_steps`` bounds how deep into the victim thread's execution
    the fault strikes (the step offset is drawn uniformly from
    ``[1, max_steps]``; threads that finish earlier fault at their
    final step — the core died right after its useful work).
    """

    seed: int = 0
    fail_stop_rate: float = 0.0
    hang_rate: float = 0.0
    bit_flip_rate: float = 0.0
    max_steps: int = 8

    def __post_init__(self) -> None:
        for name in ("fail_stop_rate", "hang_rate", "bit_flip_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")

    # -- composition helpers -------------------------------------------

    @classmethod
    def clean(cls, seed: int = 0) -> "CoreFaultPlan":
        """No core faults at all (control arm)."""
        return cls(seed=seed)

    @classmethod
    def storm(
        cls,
        seed: int = 0,
        *,
        fail_stop_rate: float = 0.05,
        hang_rate: float = 0.04,
        bit_flip_rate: float = 0.06,
    ) -> "CoreFaultPlan":
        """Every fault kind at once — the default chaos mix."""
        return cls(
            seed=seed,
            fail_stop_rate=fail_stop_rate,
            hang_rate=hang_rate,
            bit_flip_rate=bit_flip_rate,
        )

    def with_options(self, **changes: Any) -> "CoreFaultPlan":
        return replace(self, **changes)

    @property
    def is_clean(self) -> bool:
        return (
            self.fail_stop_rate == 0.0
            and self.hang_rate == 0.0
            and self.bit_flip_rate == 0.0
        )


@dataclass(slots=True)
class CoreFaultStats:
    """Counts of injected core faults (ground truth for recovery tests)."""

    blocks_seen: int = 0
    fail_stops: int = 0
    hangs: int = 0
    bit_flips: int = 0

    def total_injected(self) -> int:
        return self.fail_stops + self.hangs + self.bit_flips


@dataclass(frozen=True, slots=True)
class ArmedFault:
    """One fault scheduled into the block currently being attempted."""

    kind: CoreFaultKind
    core: int
    thread: int
    block: int
    at_step: int


def _never() -> bool:
    return False


class CoreFaultInjector:
    """Wraps block threads with a seeded fault schedule.

    Installed on an engine via ``engine.fault_injector = injector``;
    :meth:`wrap_block` is called by ``process_block`` after the thread
    generators are built. The injector consults ``active_cores`` (a
    callable, typically bound to a :class:`CoreQuarantine`) so already
    dead cores are never re-victimized, and exposes the armed fault
    via :meth:`take_armed` so the recovery layer can attribute the
    escaping exception.
    """

    def __init__(
        self,
        plan: CoreFaultPlan,
        *,
        active_cores,
    ) -> None:
        self.plan = plan
        self.stats = CoreFaultStats()
        self._active_cores = active_cores
        self._rng = make_rng(plan.seed)
        #: Blocks *attempted* so far (replays advance it too, so the
        #: fault schedule over attempts is deterministic).
        self.block_index = 0
        self._armed: ArmedFault | None = None

    def take_armed(self) -> ArmedFault | None:
        """Pop the fault armed into the last attempt (None = clean).

        The recovery layer calls this on every escaping exception: a
        non-None result owns the error; a None result means the error
        is a genuine engine bug and must propagate.
        """
        armed, self._armed = self._armed, None
        return armed

    def wrap_block(self, ctx, threads):
        """Arm at most one fault into one block attempt's threads."""
        self.block_index += 1
        self.stats.blocks_seen += 1
        self._armed = None
        if self.plan.is_clean or not threads:
            return threads
        # Fixed draw structure: three rate rolls per block, selection
        # draws only when a fault arms. Keeps the stream reproducible.
        rolls = (self._rng.random(), self._rng.random(), self._rng.random())
        kind: CoreFaultKind | None = None
        if rolls[0] < self.plan.fail_stop_rate:
            kind = CoreFaultKind.FAIL_STOP
        elif rolls[1] < self.plan.hang_rate:
            kind = CoreFaultKind.HANG
        elif rolls[2] < self.plan.bit_flip_rate:
            kind = CoreFaultKind.BIT_FLIP
        if kind is None:
            return threads
        active = list(self._active_cores())
        if not active:
            return threads
        core = active[int(self._rng.integers(len(active)))]
        thread = int(self._rng.integers(len(threads)))
        at_step = 1 + int(self._rng.integers(self.plan.max_steps))
        fault = ArmedFault(
            kind=kind,
            core=core,
            thread=thread,
            block=self.block_index,
            at_step=at_step,
        )
        self._armed = fault
        if kind is CoreFaultKind.FAIL_STOP:
            self.stats.fail_stops += 1
        elif kind is CoreFaultKind.HANG:
            self.stats.hangs += 1
        else:
            self.stats.bit_flips += 1
        wrapped = list(threads)
        wrapped[fault.thread] = self._faulty(
            wrapped[fault.thread], ctx, fault
        )
        return wrapped

    def _faulty(
        self, inner: Generator[Yielded, None, None], ctx, fault: ArmedFault
    ) -> Generator[Yielded, None, None]:
        """Run ``inner`` for ``at_step`` steps, then manifest the fault.

        A thread that finishes before the strike point still faults at
        its end: the core died after its work, but before the block's
        epilogue — the block must abort and replay either way, or the
        armed fault would silently vanish from the schedule.
        """

        def gen() -> Generator[Yielded, None, None]:
            steps = 0
            for item in inner:
                if steps >= fault.at_step:
                    break
                steps += 1
                yield item
            inner.close()
            if fault.kind is CoreFaultKind.HANG:
                # The stall: block forever on an unsatisfiable
                # condition. The executor's liveness check is the
                # watchdog that detects it (DeadlockError).
                while True:
                    yield _never
            if fault.kind is CoreFaultKind.BIT_FLIP:
                candidate = ctx.candidates[fault.thread]
                if candidate is not None:
                    # Flip this thread's own booking bit — the exact
                    # state word §III-C's conflict detection reads.
                    if candidate.booking.test(fault.thread):
                        candidate.booking.clear(fault.thread)
                    else:
                        candidate.booking.set(fault.thread)
                raise BitFlipDetected(fault.core, fault.thread, fault.block)
            raise CoreFailStop(fault.core, fault.thread, fault.block)

        return gen()

"""Deterministic stepped-thread executor.

The DPA runs one hardware thread per in-flight message in a
run-to-completion fashion; the relative progress of those threads is
arbitrary. CPython cannot reproduce that concurrency natively (the
GIL serializes everything anyway), so the engine models each matching
thread as a *generator* that yields control at every
synchronization-relevant step. A scheduler then interleaves the
generators under a pluggable policy:

* :class:`RoundRobinPolicy` — fair lockstep (the default),
* :class:`RandomPolicy` — seeded adversarial interleavings,
* :class:`ScriptedPolicy` — an explicit choice sequence, which is what
  lets hypothesis drive the scheduler in property tests and *prove*
  the booking/barrier protocol under arbitrary schedules.

Yield protocol: a thread yields ``None`` to mark one step of work, or
yields a zero-argument callable ``cond`` meaning "block me until
``cond()`` is true". A blocked thread whose condition never becomes
true while every other thread is blocked or finished is a deadlock and
raises :class:`DeadlockError` — turning liveness bugs into test
failures instead of hangs.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Sequence
from dataclasses import dataclass, field

from repro.util.rng import make_rng

__all__ = [
    "DeadlockError",
    "SchedulePolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
    "ScriptedPolicy",
    "SteppedExecutor",
    "ThreadStats",
]

#: What a simulated thread may yield: a bare step or a wait condition.
Yielded = Callable[[], bool] | None
ThreadProc = Generator[Yielded, None, None]


class DeadlockError(RuntimeError):
    """All live threads are blocked on conditions that cannot progress."""


class SchedulePolicy:
    """Chooses which runnable thread advances next."""

    def pick(self, runnable: Sequence[int]) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Called once per executor run; stateful policies rewind here."""


class RoundRobinPolicy(SchedulePolicy):
    """Advance runnable threads in cyclic thread-ID order."""

    def __init__(self) -> None:
        self._last = -1

    def reset(self) -> None:
        self._last = -1

    def pick(self, runnable: Sequence[int]) -> int:
        for tid in runnable:
            if tid > self._last:
                self._last = tid
                return tid
        self._last = runnable[0]
        return runnable[0]


class RandomPolicy(SchedulePolicy):
    """Seeded uniformly-random interleaving (adversarial stress)."""

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed
        self._rng = make_rng(seed)

    def reset(self) -> None:
        self._rng = make_rng(self._seed)

    def pick(self, runnable: Sequence[int]) -> int:
        return runnable[int(self._rng.integers(len(runnable)))]


class ScriptedPolicy(SchedulePolicy):
    """Follows an explicit choice script; used by hypothesis.

    Each script entry is an arbitrary non-negative integer reduced
    modulo the number of runnable threads, so any integer list is a
    valid schedule. When the script runs out the policy falls back to
    picking the lowest runnable thread.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self._script = list(script)
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def pick(self, runnable: Sequence[int]) -> int:
        if self._pos < len(self._script):
            choice = self._script[self._pos] % len(runnable)
            self._pos += 1
            return runnable[choice]
        return runnable[0]


@dataclass(slots=True)
class ThreadStats:
    """Per-run scheduling statistics (also feeds the cycle model)."""

    steps: dict[int, int] = field(default_factory=dict)
    wait_polls: dict[int, int] = field(default_factory=dict)

    def total_steps(self) -> int:
        return sum(self.steps.values())

    def total_wait_polls(self) -> int:
        return sum(self.wait_polls.values())


class SteppedExecutor:
    """Runs a set of thread generators to completion under a policy."""

    def __init__(self, policy: SchedulePolicy | None = None, max_steps: int = 10_000_000):
        self._policy = policy if policy is not None else RoundRobinPolicy()
        self._max_steps = max_steps

    def run(self, threads: Sequence[ThreadProc]) -> ThreadStats:
        """Interleave ``threads`` until all complete.

        Returns scheduling statistics. Raises :class:`DeadlockError`
        when no thread can make progress, and ``RuntimeError`` if the
        step budget is exhausted (a livelock guard for tests).
        """
        self._policy.reset()
        stats = ThreadStats(
            steps={tid: 0 for tid in range(len(threads))},
            wait_polls={tid: 0 for tid in range(len(threads))},
        )
        alive: dict[int, ThreadProc] = dict(enumerate(threads))
        blocked: dict[int, Callable[[], bool]] = {}
        budget = self._max_steps

        while alive:
            runnable = []
            for tid in alive:
                cond = blocked.get(tid)
                if cond is None:
                    runnable.append(tid)
                else:
                    stats.wait_polls[tid] += 1
                    if cond():
                        del blocked[tid]
                        runnable.append(tid)
            if not runnable:
                waiting = sorted(blocked)
                raise DeadlockError(
                    f"threads {waiting} are all blocked with unsatisfiable conditions"
                )
            tid = self._policy.pick(runnable)
            stats.steps[tid] += 1
            try:
                yielded = alive[tid].send(None)
            except StopIteration:
                del alive[tid]
                blocked.pop(tid, None)
            else:
                if yielded is not None:
                    blocked[tid] = yielded
            budget -= 1
            if budget <= 0:
                raise RuntimeError(
                    f"executor exceeded {self._max_steps} steps; likely livelock"
                )
        return stats

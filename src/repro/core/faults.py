"""Deliberately broken engine variants (fault injection).

Each class plants exactly one protocol bug the paper's design exists
to prevent. Their purpose is *mutation testing*: the validation suite
(oracle cross-checks, C1/C2 audits) must detect every one of them on
adversarial schedules — otherwise the tests would be vacuous. See
``tests/core/test_fault_injection.py``.

These classes are exported for testing and teaching only; never use
them for matching.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.core.conflict import detect_conflict
from repro.core.engine import OptimisticMatcher, _BlockContext
from repro.core.events import ResolutionPath
from repro.core.optimistic import search_candidate
from repro.core.threadsim import Yielded

__all__ = [
    "MUTANT_ENGINES",
    "NoBarrierEngine",
    "NoBookingEngine",
    "NoConflictDetectionEngine",
    "NoSequenceGuardEngine",
    "engine_by_name",
]


class NoBookingEngine(OptimisticMatcher):
    """BUG: never writes the booking bitmap (§III-C).

    Threads search and remember a candidate but skip
    ``candidate.booking.set(tid)``, so conflict detection — which reads
    that bitmap — sees an empty set and reports no conflict for anyone.
    Two threads whose messages match the same receive both take the
    optimistic path and consume it twice: the engine's double-consume
    assertion (or a pairing divergence from the oracle) flags the bug.
    """

    def _thread(self, ctx: _BlockContext, tid: int) -> Generator[Yielded, None, None]:
        msg = ctx.messages[tid]
        cfg = self.config
        candidate = yield from search_candidate(
            self.indexes, cfg, ctx.stats, tid, msg, early_skip=False
        )
        # FAULT: no candidate.booking.set(tid) — the bitmap stays empty.
        ctx.candidates[tid] = candidate
        ctx.barrier.enter(tid)
        yield ctx.barrier.wait_condition(tid)
        conflicted = detect_conflict(candidate, tid)
        ctx.conflict_flags[tid] = conflicted
        ctx.detect.enter(tid)
        yield ctx.detect.wait_condition(tid)
        lower_conflict = any(ctx.conflict_flags[j] for j in range(tid))
        if not conflicted and not lower_conflict:
            if candidate is not None:
                self._consume(ctx, tid, candidate, ResolutionPath.OPTIMISTIC)
                ctx.stats.optimistic_hits += 1
            else:
                yield ctx.resolved_below(tid)
                self._store_unexpected(ctx, tid, msg)
            ctx.resolved[tid] = True
            return
        yield ctx.resolved_below(tid)
        if candidate is not None and candidate.is_live():
            self._consume(ctx, tid, candidate, ResolutionPath.SLOW)
        else:
            rematch = yield from search_candidate(
                self.indexes, cfg, ctx.stats, tid, msg, early_skip=False
            )
            if rematch is not None:
                self._consume(ctx, tid, rematch, ResolutionPath.SLOW)
            else:
                self._store_unexpected(ctx, tid, msg)
        ctx.resolved[tid] = True


class NoBarrierEngine(OptimisticMatcher):
    """BUG: skips the partial barrier (§III-D.1).

    Threads check conflicts before earlier threads have booked, so a
    later message can steal a receive from an earlier one — a C2
    violation under schedules where a later thread runs first.
    """

    def _thread(self, ctx: _BlockContext, tid: int) -> Generator[Yielded, None, None]:
        msg = ctx.messages[tid]
        cfg = self.config
        candidate = yield from search_candidate(
            self.indexes, cfg, ctx.stats, tid, msg, early_skip=False
        )
        if candidate is not None:
            candidate.booking.set(tid)
        ctx.candidates[tid] = candidate
        # FAULT: no ctx.barrier wait — conflict detection races ahead.
        conflicted = detect_conflict(candidate, tid)
        ctx.conflict_flags[tid] = conflicted
        if candidate is not None and not conflicted and candidate.is_live():
            self._consume(ctx, tid, candidate, ResolutionPath.OPTIMISTIC)
            ctx.stats.optimistic_hits += 1
        elif candidate is not None:
            yield ctx.resolved_below(tid)
            if candidate.is_live():
                self._consume(ctx, tid, candidate, ResolutionPath.SLOW)
            else:
                rematch = yield from search_candidate(
                    self.indexes, cfg, ctx.stats, tid, msg, early_skip=False
                )
                if rematch is not None:
                    self._consume(ctx, tid, rematch, ResolutionPath.SLOW)
                else:
                    self._store_unexpected(ctx, tid, msg)
        else:
            yield ctx.resolved_below(tid)
            self._store_unexpected(ctx, tid, msg)
        ctx.resolved[tid] = True


class NoConflictDetectionEngine(OptimisticMatcher):
    """BUG: consumes the optimistic candidate without any detection.

    Two threads that booked the same receive both "consume" it; the
    second consumption trips the engine's internal double-consume
    assertion or corrupts pairings — either way, validation flags it.
    """

    def _thread(self, ctx: _BlockContext, tid: int) -> Generator[Yielded, None, None]:
        msg = ctx.messages[tid]
        candidate = yield from search_candidate(
            self.indexes, self.config, ctx.stats, tid, msg, early_skip=False
        )
        if candidate is not None:
            candidate.booking.set(tid)
            ctx.barrier.enter(tid)
            yield ctx.barrier.wait_condition(tid)
            # FAULT: no booking-bitmap check; first resumed thread wins
            # regardless of message arrival order.
            if candidate.is_live():
                self._consume(ctx, tid, candidate, ResolutionPath.OPTIMISTIC)
            else:
                self._store_unexpected(ctx, tid, msg)
        else:
            ctx.barrier.enter(tid)
            yield ctx.resolved_below(tid)
            self._store_unexpected(ctx, tid, msg)
        ctx.resolved[tid] = True


def _unguarded_fast_path_target(candidate, thread_id, stats=None):
    """fast_path_target without the sequence-ID check."""
    node = candidate.node
    if node is None:
        return None
    for _ in range(thread_id):
        node = node.next
        if node is None:
            return None
    target = node.payload
    if target is candidate or target.consumed:
        return None
    return target


class NoSequenceGuardEngine(OptimisticMatcher):
    """BUG: the fast path ignores sequence IDs (§III-D.3a).

    The thread shifts ``tid`` positions along the bucket chain even
    across incompatible interleaved receives, violating C1 exactly in
    the A-B-A posting hazard the paper's sequence labels guard against.
    The unguarded shift is installed for whole blocks (module-level
    patch around :meth:`process_block`) so every thread misbehaves
    consistently.
    """

    def process_block(self):
        import repro.core.engine as engine_mod

        saved = engine_mod.fast_path_target
        engine_mod.fast_path_target = _unguarded_fast_path_target
        try:
            return super().process_block()
        finally:
            engine_mod.fast_path_target = saved


#: Name -> mutant class, for config-driven engine selection (the chaos
#: harness's ``engine`` field and the core-fault soak's mutant lanes).
MUTANT_ENGINES: dict[str, type[OptimisticMatcher]] = {
    "no_booking": NoBookingEngine,
    "no_barrier": NoBarrierEngine,
    "no_conflict_detection": NoConflictDetectionEngine,
    "no_sequence_guard": NoSequenceGuardEngine,
}


def engine_by_name(name: str) -> type[OptimisticMatcher]:
    """Resolve an engine class: ``"optimistic"`` or a mutant name."""
    if name == "optimistic":
        return OptimisticMatcher
    try:
        return MUTANT_ENGINES[name]
    except KeyError:
        known = ["optimistic", *sorted(MUTANT_ENGINES)]
        raise KeyError(f"unknown engine {name!r}; known: {known}") from None

"""Receive descriptors and the fixed-size descriptor table.

"Receive descriptors are stored in a fixed-size table, where the size
of the table determines the maximum number of receives that can be
posted at the same time. If the number of posted receives exceeds this
capacity, the application must fall back to software tag matching."
(§III-B). Each descriptor carries the 64-byte record the paper costs
out in §III-E: the envelope fields, the monotonic post label (C1
ordering across indexes), the sequence ID (fast-path eligibility), and
the N-bit booking bitmap (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.constants import WildcardClass
from repro.core.envelope import ReceiveRequest
from repro.util.bitmap import Bitmap

if TYPE_CHECKING:  # circular-at-runtime only for typing
    from repro.util.intrusive import IntrusiveNode

__all__ = ["ReceiveDescriptor", "DescriptorTable", "DescriptorTableFull"]

#: Modelled size of one receive descriptor in bytes (§III-E).
DESCRIPTOR_BYTES = 64


class DescriptorTableFull(Exception):
    """Raised when the fixed-size table cannot accept another receive.

    The engine converts this into a software-tag-matching fallback
    signal rather than letting it escape to the application.
    """


@dataclass(eq=False, slots=True)
class ReceiveDescriptor:
    """One posted receive, as stored in DPA memory."""

    request: ReceiveRequest
    #: Monotonically increasing posting label; the candidate with the
    #: minimum label wins across indexes (constraint C1).
    post_label: int
    #: Sequence ID of the run of compatible receives this one belongs
    #: to (§III-D.3a); consecutive same-(source, tag) posts share it.
    sequence_id: int
    wildcard_class: WildcardClass
    #: N-bit booking bitmap; thread ``i`` sets bit ``i`` to tentatively
    #: book this receive (§III-C).
    booking: Bitmap
    #: Slot index inside the fixed table (stable identity).
    slot: int
    #: Set once a thread definitively consumed this receive.
    consumed: bool = False
    #: Back-pointer to the index-structure node holding this
    #: descriptor, so consumption can unlink/mark it in O(1).
    node: "IntrusiveNode[ReceiveDescriptor] | None" = field(default=None, repr=False)

    @property
    def source(self) -> int:
        return self.request.source

    @property
    def tag(self) -> int:
        return self.request.tag

    def is_live(self) -> bool:
        return not self.consumed

    def compatible_with(self, other: "ReceiveDescriptor") -> bool:
        """Same-(source, tag) compatibility used by sequence runs."""
        return (
            self.request.source == other.request.source
            and self.request.tag == other.request.tag
        )


class DescriptorTable:
    """Fixed-capacity pool of receive descriptors with a free list.

    Mirrors the hardware table: slots are recycled, capacity overflow
    raises :class:`DescriptorTableFull`, and occupancy statistics feed
    the memory-footprint model (:mod:`repro.dpa.memory`).
    """

    def __init__(self, capacity: int, block_threads: int) -> None:
        if capacity <= 0:
            raise ValueError(f"descriptor table capacity must be positive, got {capacity}")
        if block_threads <= 0:
            raise ValueError(f"block width must be positive, got {block_threads}")
        self._capacity = capacity
        self._block_threads = block_threads
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._slots: list[ReceiveDescriptor | None] = [None] * capacity
        self._in_use = 0
        self._high_water = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def high_water(self) -> int:
        """Peak simultaneous occupancy (sizing diagnostics)."""
        return self._high_water

    @property
    def footprint_bytes(self) -> int:
        """Memory the table consumes in the §III-E cost model."""
        return self._capacity * DESCRIPTOR_BYTES

    def allocate(
        self,
        request: ReceiveRequest,
        post_label: int,
        sequence_id: int,
    ) -> ReceiveDescriptor:
        """Allocate a descriptor for an accepted receive posting."""
        if not self._free:
            raise DescriptorTableFull(
                f"descriptor table exhausted at capacity {self._capacity}; "
                "fall back to software tag matching"
            )
        slot = self._free.pop()
        descr = ReceiveDescriptor(
            request=request,
            post_label=post_label,
            sequence_id=sequence_id,
            wildcard_class=request.wildcard_class(),
            booking=Bitmap(self._block_threads),
            slot=slot,
        )
        self._slots[slot] = descr
        self._in_use += 1
        self._high_water = max(self._high_water, self._in_use)
        return descr

    def release(self, descr: ReceiveDescriptor) -> None:
        """Return a consumed descriptor's slot to the free list."""
        if self._slots[descr.slot] is not descr:
            raise ValueError(f"descriptor in slot {descr.slot} is not table-resident")
        self._slots[descr.slot] = None
        self._free.append(descr.slot)
        self._in_use -= 1

    def get(self, slot: int) -> ReceiveDescriptor | None:
        return self._slots[slot]

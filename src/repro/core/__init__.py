"""Optimistic Tag Matching — the paper's primary contribution (C1).

Public surface:

* :class:`OptimisticMatcher` — the bin-based optimistic matching engine
* :class:`EngineConfig` — all tunables (bins, block width, optimizations)
* :class:`MessageEnvelope` / :class:`ReceiveRequest` — the match inputs
* :class:`MatchEvent` — the match decisions
* ``ANY_SOURCE`` / ``ANY_TAG`` — MPI wildcards
"""

from repro.core.config import EngineConfig
from repro.core.constants import ANY_SOURCE, ANY_TAG, WildcardClass, classify
from repro.core.descriptor import DescriptorTable, DescriptorTableFull, ReceiveDescriptor
from repro.core.engine import HintViolation, OptimisticMatcher
from repro.core.envelope import InlineHashes, MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind, ResolutionPath
from repro.core.hashing import compute_inline_hashes
from repro.core.stats import BlockStats, EngineStats
from repro.core.threadsim import (
    DeadlockError,
    RandomPolicy,
    RoundRobinPolicy,
    ScriptedPolicy,
    SteppedExecutor,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BlockStats",
    "DeadlockError",
    "DescriptorTable",
    "DescriptorTableFull",
    "EngineConfig",
    "EngineStats",
    "HintViolation",
    "InlineHashes",
    "MatchEvent",
    "MatchKind",
    "MessageEnvelope",
    "OptimisticMatcher",
    "RandomPolicy",
    "ReceiveDescriptor",
    "ReceiveRequest",
    "ResolutionPath",
    "RoundRobinPolicy",
    "ScriptedPolicy",
    "SteppedExecutor",
    "WildcardClass",
    "classify",
    "compute_inline_hashes",
]

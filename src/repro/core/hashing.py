"""Hash family for the bin-based indexes.

Three keys are hashed (§III-B): ``(source, tag)`` for fully-specified
receives, ``tag`` alone for source-wildcard receives, and ``source``
alone for tag-wildcard receives. The functions return a full-width
hash word; callers reduce modulo their bin count. Keeping the raw word
separate from the reduction is what makes the sender-side *inline
hash* optimization possible (§IV-D): the sender does not know the
receiver's bin count.

The mixer is Fibonacci/multiplicative hashing (splitmix64 finalizer),
chosen because it is cheap enough for a per-message budget on a
lightweight accelerator and spreads the small, clustered integer
domains of MPI ranks and tags well across power-of-two bin counts.
"""

from __future__ import annotations

from repro.core.envelope import InlineHashes, MessageEnvelope

__all__ = [
    "mix64",
    "hash_src_tag",
    "hash_tag",
    "hash_src",
    "compute_inline_hashes",
    "bucket_of",
]

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finalizer: a cheap, well-distributed 64-bit mixer."""
    value = value & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash_src_tag(source: int, tag: int) -> int:
    """Hash word for the no-wildcard index key ``(source, tag)``."""
    return mix64((source & 0xFFFFFFFF) << 32 | (tag & 0xFFFFFFFF))


def hash_tag(tag: int) -> int:
    """Hash word for the source-wildcard index key ``tag``."""
    return mix64(0xA5A5_0000_0000_0000 | (tag & 0xFFFFFFFF))


def hash_src(source: int) -> int:
    """Hash word for the tag-wildcard index key ``source``."""
    return mix64(0x5A5A_0000_0000_0000 | (source & 0xFFFFFFFF))


def compute_inline_hashes(source: int, tag: int) -> InlineHashes:
    """Sender-side hash precomputation (§IV-D *inline hash values*)."""
    return InlineHashes(
        src_tag=hash_src_tag(source, tag),
        tag_only=hash_tag(tag),
        src_only=hash_src(source),
    )


def bucket_of(hash_word: int, bins: int) -> int:
    """Reduce a hash word to a bucket index for a ``bins``-bin table."""
    if bins <= 0:
        raise ValueError(f"bin count must be positive, got {bins}")
    return hash_word % bins


def message_hashes(msg: MessageEnvelope) -> InlineHashes:
    """Hash words for a message, honouring inline hashes when present.

    When the sender shipped inline hashes we use them verbatim (and the
    cost model credits the saved compute); otherwise they are computed
    receiver-side.
    """
    if msg.inline_hashes is not None:
        return msg.inline_hashes
    return compute_inline_hashes(msg.source, msg.tag)

"""The partial barrier (§III-D.1).

"A thread must wait only on threads processing earlier messages. …
As threads move over blocks of the incoming message stream, this
barrier can be implemented by letting a thread *i* wait on all threads
*j* with *j* < *i*. We implement the partial barrier with a bitmap,
where each thread sets its own bit whenever it enters the barrier."

The same bitmap mechanism is reused a second time per block to publish
conflict-detection status: thread *i* must know whether any lower
thread detected a conflict before it may consume its candidate without
resolution (paper §III-D.2: "if a thread *i* detects a conflict, then
all other threads *j* > *i* need to enter the conflict resolution
phase").
"""

from __future__ import annotations

from collections.abc import Callable

from repro.util.bitmap import Bitmap

__all__ = ["PartialBarrier"]


class PartialBarrier:
    """Bitmap-based partial barrier over ``width`` block threads."""

    def __init__(self, width: int) -> None:
        self._bitmap = Bitmap(width)

    @property
    def width(self) -> int:
        return self._bitmap.width

    def enter(self, thread_id: int) -> None:
        """Thread ``thread_id`` publishes that it reached the barrier."""
        self._bitmap.set(thread_id)

    def entered(self, thread_id: int) -> bool:
        return self._bitmap.test(thread_id)

    def passed(self, thread_id: int) -> bool:
        """Whether every thread below ``thread_id`` has entered.

        Thread 0 passes immediately — it has nobody to wait for.
        """
        return self._bitmap.all_below(thread_id)

    def wait_condition(self, thread_id: int) -> Callable[[], bool]:
        """A condition callable for the stepped executor."""
        return lambda: self.passed(thread_id)

    def reset(self) -> None:
        self._bitmap.reset()

"""Multi-communicator DPA resource management (§III-E).

"Each MPI communicator is linked to its own set of index tables and
data structures. If it is no[t] possible to allocate DPA resources at
communicator creation time, the MPI implementation is expected to
fall back to software tag matching. Applications can provide MPI
communicator info objects to influence the offloading of tag matching
for a given communicator."

:class:`OffloadManager` owns a fixed accelerator memory budget
(defaulting to the BlueField-3 DPA L3 size) and hands out per-
communicator engines while the budget lasts. Communicators that do
not fit — or whose info hints ask not to be offloaded — are created
in software from birth. Destroying a communicator returns its memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.dpa.memory import BYTES_PER_BIN, INDEX_TABLES, MemoryModel
from repro.core.descriptor import DESCRIPTOR_BYTES

__all__ = ["CommAllocation", "OffloadManager"]


@dataclass(frozen=True, slots=True)
class CommAllocation:
    """The outcome of one communicator's resource request."""

    comm: int
    offloaded: bool
    bytes_reserved: int
    engine: OptimisticMatcher | None

    @property
    def software(self) -> bool:
        return not self.offloaded


class OffloadManager:
    """Budget-driven allocator of per-communicator matching engines."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        budget_bytes: int | None = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        default_budget = MemoryModel(1, 1).l3_bytes
        self.budget_bytes = budget_bytes if budget_bytes is not None else default_budget
        self._reserved = 0
        self._allocations: dict[int, CommAllocation] = {}

    @staticmethod
    def footprint(config: EngineConfig) -> int:
        """DPA bytes one communicator's structures consume (§III-E).

        The receive indexes and the mirrored unexpected indexes each
        carry three bin tables; descriptors are shared per engine.
        """
        bin_bytes = 2 * INDEX_TABLES * config.bins * BYTES_PER_BIN
        return bin_bytes + config.max_receives * DESCRIPTOR_BYTES

    @property
    def reserved_bytes(self) -> int:
        return self._reserved

    @property
    def available_bytes(self) -> int:
        return self.budget_bytes - self._reserved

    def comm_create(
        self,
        comm: int,
        *,
        config: EngineConfig | None = None,
        allow_offload: bool = True,
    ) -> CommAllocation:
        """Allocate matching resources for communicator ``comm``.

        Returns an offloaded allocation with a live engine when the
        budget covers the configuration, otherwise a software
        allocation (``engine is None``) — the caller routes matching
        to its host-side matcher in that case.
        """
        if comm in self._allocations:
            raise ValueError(f"communicator {comm} already has an allocation")
        cfg = config if config is not None else self.config
        needed = self.footprint(cfg)
        if allow_offload and needed <= self.available_bytes:
            allocation = CommAllocation(
                comm=comm,
                offloaded=True,
                bytes_reserved=needed,
                engine=OptimisticMatcher(cfg, comm=comm),
            )
            self._reserved += needed
        else:
            allocation = CommAllocation(
                comm=comm, offloaded=False, bytes_reserved=0, engine=None
            )
        self._allocations[comm] = allocation
        return allocation

    def comm_free(self, comm: int) -> None:
        """Release a communicator's resources back to the budget."""
        allocation = self._allocations.pop(comm, None)
        if allocation is None:
            raise KeyError(f"communicator {comm} has no allocation")
        self._reserved -= allocation.bytes_reserved

    def get(self, comm: int) -> CommAllocation:
        return self._allocations[comm]

    def has(self, comm: int) -> bool:
        return comm in self._allocations

    def offloaded_comms(self) -> list[int]:
        return [c for c, a in self._allocations.items() if a.offloaded]

    def utilization(self) -> float:
        """Fraction of the DPA budget in use."""
        return self._reserved / self.budget_bytes if self.budget_bytes else 1.0

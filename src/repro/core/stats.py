"""Engine statistics.

The counters here serve two purposes: they are the data behind the
reproduction's figures (conflict rates, path mix, probe costs) and
they are the *work units* the DPA cycle model converts into time for
the Figure 8 message-rate benchmark.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["BlockStats", "EngineStats"]


@dataclass(slots=True)
class BlockStats:
    """Work performed by one optimistic block (N messages)."""

    SCHEMA = "repro.core.block_stats/v1"

    messages: int = 0
    #: Index-chain elements visited during optimistic search.
    probes_walked: int = 0
    #: Bucket lookups (each costs a hash unless inline hashes arrived).
    buckets_probed: int = 0
    #: Hash computations actually performed on the accelerator.
    hashes_computed: int = 0
    #: Booking-bitmap writes.
    bookings: int = 0
    #: Threads that detected a conflict on their candidate.
    conflicts: int = 0
    #: Conflicted threads resolved via the fast path.
    fast_path: int = 0
    #: Threads that took the slow path (conflict or lower-conflict).
    slow_path: int = 0
    #: Matches completed without entering resolution.
    optimistic_hits: int = 0
    #: Messages stored as unexpected.
    unexpected: int = 0
    #: Receives early-skipped thanks to the booking check (§IV-D).
    early_skips: int = 0
    #: Scheduler wait polls (synchronization spin cost).
    wait_polls: int = 0
    #: Lazily-marked nodes swept at block end.
    swept: int = 0
    #: Executor steps per thread; the DPA cycle model derives the
    #: block's critical path (span) and total work from these.
    thread_steps: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        payload = {name: getattr(self, name) for name in self.__dataclass_fields__}
        payload["thread_steps"] = list(self.thread_steps)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BlockStats":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__ if k in payload})


@dataclass(slots=True)
class EngineStats:
    """Cumulative engine statistics across all blocks and postings."""

    SCHEMA = "repro.core.engine_stats/v1"

    blocks: int = 0
    messages: int = 0
    receives_posted: int = 0
    receives_matched_from_unexpected: int = 0
    receives_cancelled: int = 0
    expected_matches: int = 0
    unexpected_stored: int = 0
    conflicts: int = 0
    fast_path: int = 0
    slow_path: int = 0
    optimistic_hits: int = 0
    probes_walked: int = 0
    buckets_probed: int = 0
    hashes_computed: int = 0
    bookings: int = 0
    early_skips: int = 0
    wait_polls: int = 0
    swept: int = 0
    fallbacks: int = 0
    # -- degraded-mode accounting (reliability & resource exhaustion) --
    #: Matches completed on host resources instead of the DPA: payloads
    #: staged in host memory after bounce-pool exhaustion, or matching
    #: decisions taken by the software fallback while spilled.
    degraded_matches: int = 0
    #: Payloads staged in host memory because NIC bounce buffers ran out.
    degraded_stagings: int = 0
    #: Spills to the host software matcher (capacity exhaustion).
    fallback_spills: int = 0
    #: Migrations back to the accelerator after resources drained.
    fallback_recoveries: int = 0
    #: Mirrored from the reliability layer by the receiver pipeline:
    #: go-back-N frame retransmissions and RNR backpressure events.
    retransmits: int = 0
    rnr_naks: int = 0
    block_history: list[BlockStats] = field(default_factory=list)
    #: Keep per-block history only when True (benchmarks disable it).
    keep_history: bool = True
    #: With ``keep_history``, retain at most this many recent blocks
    #: (None = unbounded). Soaks set a bound so memory cannot grow with
    #: run length; the cumulative counters above are unaffected.
    history_limit: int | None = None

    def absorb(self, block: BlockStats) -> None:
        """Fold one block's counters into the cumulative totals."""
        self.blocks += 1
        self.messages += block.messages
        self.expected_matches += block.messages - block.unexpected
        self.unexpected_stored += block.unexpected
        self.conflicts += block.conflicts
        self.fast_path += block.fast_path
        self.slow_path += block.slow_path
        self.optimistic_hits += block.optimistic_hits
        self.probes_walked += block.probes_walked
        self.buckets_probed += block.buckets_probed
        self.hashes_computed += block.hashes_computed
        self.bookings += block.bookings
        self.early_skips += block.early_skips
        self.wait_polls += block.wait_polls
        self.swept += block.swept
        if self.keep_history:
            self.block_history.append(block)
            if (
                self.history_limit is not None
                and len(self.block_history) > self.history_limit
            ):
                del self.block_history[: len(self.block_history) - self.history_limit]

    def conflict_rate(self) -> float:
        """Fraction of processed messages whose thread conflicted."""
        return self.conflicts / self.messages if self.messages else 0.0

    def path_mix(self) -> dict[str, int]:
        return {
            "optimistic": self.optimistic_hits,
            "fast": self.fast_path,
            "slow": self.slow_path,
        }

    # -- JSON round-trip (fleet cache / parallel workers) ---------------
    #
    # Pickling across the pool boundary used to be implicit; the
    # explicit form carries a schema version so cached results from an
    # older layout are rejected instead of silently misread.

    def to_dict(self) -> dict:
        payload = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "block_history"
        }
        payload["block_history"] = [block.to_dict() for block in self.block_history]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EngineStats":
        kwargs = {
            k: payload[k]
            for k in cls.__dataclass_fields__
            if k in payload and k != "block_history"
        }
        kwargs["block_history"] = [
            BlockStats.from_dict(block) for block in payload.get("block_history", [])
        ]
        return cls(**kwargs)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(
            {"schema": self.SCHEMA, **self.to_dict()}, indent=indent, sort_keys=True
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "EngineStats":
        payload = json.loads(text)
        schema = payload.get("schema", cls.SCHEMA)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported schema {schema!r}, expected {cls.SCHEMA!r}")
        return cls.from_dict(payload)

"""Conflict detection and the fast-path resolution (§III-D).

Detection is local: after the partial barrier, a thread inspects the
booking bitmap of its candidate; a set bit below its own thread ID
means a lower thread (processing an earlier message) has precedence
and this thread lost the receive.

The **fast path** (§III-D.3a) applies when *all* active threads booked
the same receive — the signature of an application posting a long run
of compatible receives (same source and tag) drained by a burst of
matching messages. Thread *i* then jumps directly to the receive at
offset *i* in that run, with no further synchronization. The jump is
valid only while the run's *sequence ID* stays constant: a sequence
change means some other receive was posted in between and might have
matching precedence, so the thread must drop to the slow path.
"""

from __future__ import annotations

from repro.core.descriptor import ReceiveDescriptor
from repro.core.stats import BlockStats

__all__ = ["detect_conflict", "fast_path_eligible", "fast_path_target"]


def detect_conflict(candidate: ReceiveDescriptor | None, thread_id: int) -> bool:
    """Whether a lower thread booked this thread's candidate."""
    if candidate is None:
        return False
    return candidate.booking.any_below(thread_id)


def fast_path_eligible(candidate: ReceiveDescriptor, active_threads: int) -> bool:
    """Whether the fast path may be attempted on this candidate.

    True when every active block thread booked the same receive: "this
    can be checked by looking at the booking bitmap of the candidate
    receive: if all threads selected it, then conflicted threads can
    try this strategy".
    """
    return candidate.booking.popcount() >= active_threads


def fast_path_target(
    candidate: ReceiveDescriptor,
    thread_id: int,
    stats: BlockStats | None = None,
) -> ReceiveDescriptor | None:
    """Shift ``thread_id`` positions along the candidate's sequence run.

    Walks the candidate's bucket chain forward, counting *every*
    physically present node (lazily-marked ones included — they are
    this block's lower threads consuming their own offsets; marked
    same-sequence nodes from earlier blocks cannot exist after the
    first live member because consumption within a run is oldest-
    first). Aborts to the slow path (returns ``None``) as soon as a
    node outside the candidate's sequence is encountered or the chain
    ends — exactly the §III-D.3a sequence-ID guard.
    """
    node = candidate.node
    if node is None:
        return None
    seq = candidate.sequence_id
    for _ in range(thread_id):
        node = node.next
        if node is None:
            return None  # run shorter than the thread's offset
        if stats is not None:
            stats.probes_walked += 1
        descr: ReceiveDescriptor = node.payload
        if descr.sequence_id != seq:
            return None  # an incompatible receive was posted in between
    target: ReceiveDescriptor = node.payload
    if target is candidate or target.consumed:
        # Offset 0 would re-take the lost receive; a consumed target
        # means the prefix invariant was violated upstream.
        return None
    return target

"""The optimistic matching phase (§III-C).

Each block thread searches the four receive indexes independently, as
if no other thread were matching concurrently. Within an index, C1 is
free — bucket chains are in posting order, so the first live envelope
match is the oldest in that structure. Across indexes the thread may
end up with up to four candidates and must select the one with the
minimum post label.

The search is written as a generator so the stepped executor can
interleave threads between probes; every physical chain-node visit is
one step and one probe in the cost model.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.core.config import EngineConfig
from repro.core.constants import WildcardClass
from repro.core.descriptor import ReceiveDescriptor
from repro.core.envelope import MessageEnvelope
from repro.core.indexes import ReceiveIndexes
from repro.core.stats import BlockStats
from repro.core.threadsim import Yielded

__all__ = ["search_candidate", "skipped_classes"]


def skipped_classes(config: EngineConfig) -> frozenset[WildcardClass]:
    """Index classes the engine may skip thanks to communicator hints.

    ``mpi_assert_no_any_source`` / ``mpi_assert_no_any_tag`` (§VII)
    guarantee no receive will ever live in the corresponding wildcard
    index, so per-message probes of those indexes can be elided. Both
    hints together also empty the double-wildcard list.
    """
    skipped: set[WildcardClass] = set()
    if config.assert_no_any_source:
        skipped.add(WildcardClass.SOURCE)
    if config.assert_no_any_tag:
        skipped.add(WildcardClass.TAG)
    if config.assert_no_any_source and config.assert_no_any_tag:
        skipped.add(WildcardClass.BOTH)
    return frozenset(skipped)


def search_candidate(
    indexes: ReceiveIndexes,
    config: EngineConfig,
    stats: BlockStats,
    thread_id: int,
    msg: MessageEnvelope,
    *,
    early_skip: bool,
) -> Generator[Yielded, None, ReceiveDescriptor | None]:
    """Find the oldest live receive matching ``msg``, optimistically.

    Parameters
    ----------
    early_skip:
        Apply the §IV-D early-booking check: skip candidates whose
        booking bitmap already has a bit below ``thread_id`` — some
        lower thread is guaranteed to consume them.

    Returns the selected candidate (minimum post label across the four
    index candidates) or ``None``. The caller books it.
    """
    skip_classes = skipped_classes(config)
    inline = config.use_inline_hashes and msg.inline_hashes is not None

    best: ReceiveDescriptor | None = None
    for wc, chain, predicate in indexes.candidate_chains(msg):
        if wc in skip_classes:
            continue
        stats.buckets_probed += 1
        if not (inline and wc is not WildcardClass.BOTH):
            # The double-wildcard list needs no hash; the three tables
            # each cost one hash unless the sender shipped it inline.
            if wc is not WildcardClass.BOTH:
                stats.hashes_computed += 1
        yield  # bucket lookup step
        for node in chain.iter_nodes(include_marked=True):
            stats.probes_walked += 1
            yield  # chain-walk step
            descr: ReceiveDescriptor = node.payload
            if node.marked or descr.consumed:
                continue  # lazily-removed entry still physically present
            if not predicate(descr):
                continue  # hash collision within the bucket
            if early_skip and descr.booking.any_below(thread_id):
                stats.early_skips += 1
                continue  # a lower thread is guaranteed to consume it
            # First live match in a posting-ordered chain: the oldest
            # candidate this index can offer (C1 within the index).
            if best is None or descr.post_label < best.post_label:
                best = descr
            break
    return best

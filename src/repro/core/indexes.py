"""The four receive indexes and the mirrored unexpected-message indexes.

Posted receives are split by wildcard usage into three hash tables and
one linked list (§III-B, Fig. 3):

========================  =======================  ===================
receive class             structure                key
========================  =======================  ===================
no wildcards              hash table               (source, tag)
source wildcard           hash table               tag
tag wildcard              hash table               source
source and tag wildcard   linked list              — (posting order)
========================  =======================  ===================

A receive lives in exactly **one** structure. An unexpected message,
which always has concrete source and tag, is indexed in **all** of
them (§IV-C) so that any future receive — whatever its wildcards —
finds it by searching only the single structure it itself belongs to.

Buckets are :class:`repro.util.intrusive.IntrusiveList` chains kept in
posting/arrival order, which is what makes C1/C2 hold *within* a
bucket for free.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.core.constants import WildcardClass
from repro.core.descriptor import ReceiveDescriptor
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.hashing import bucket_of, hash_src, hash_src_tag, hash_tag, message_hashes
from repro.util.intrusive import IntrusiveList, IntrusiveNode

__all__ = [
    "HashTable",
    "ReceiveIndexes",
    "UnexpectedMessage",
    "UnexpectedIndexes",
    "SearchProbeCount",
]


@dataclass(slots=True)
class SearchProbeCount:
    """Probe accounting for the cost model and the analyzer.

    ``walked`` counts list elements visited (the paper's *queue depth*
    cost), ``buckets`` counts bucket lookups (hash computations unless
    inline hashes are present).
    """

    walked: int = 0
    buckets: int = 0

    def merge(self, other: "SearchProbeCount") -> None:
        self.walked += other.walked
        self.buckets += other.buckets


class HashTable:
    """A binned table of intrusive chains (one of the paper's indexes)."""

    def __init__(self, bins: int) -> None:
        if bins <= 0:
            raise ValueError(f"bin count must be positive, got {bins}")
        self._bins = bins
        self._buckets: list[IntrusiveList] = [IntrusiveList() for _ in range(bins)]

    @property
    def bins(self) -> int:
        return self._bins

    def bucket(self, hash_word: int) -> IntrusiveList:
        return self._buckets[bucket_of(hash_word, self._bins)]

    def bucket_at(self, index: int) -> IntrusiveList:
        return self._buckets[index]

    def __iter__(self) -> Iterator[IntrusiveList]:
        return iter(self._buckets)

    def total_live(self) -> int:
        return sum(len(b) for b in self._buckets)

    def depths(self) -> list[int]:
        """Live chain length per bucket (the analyzer's queue depths)."""
        return [len(b) for b in self._buckets]

    def empty_fraction(self) -> float:
        """Fraction of bins with no live entries (Fig. 7 statistic)."""
        empty = sum(1 for b in self._buckets if b.is_empty())
        return empty / self._bins

    def sweep(self) -> int:
        """Physically remove lazily-marked nodes from every bucket."""
        return sum(b.sweep() for b in self._buckets)


class ReceiveIndexes:
    """The four posted-receive structures, plus insertion/search logic."""

    def __init__(self, bins: int) -> None:
        self.no_wildcard = HashTable(bins)
        self.source_wildcard = HashTable(bins)
        self.tag_wildcard = HashTable(bins)
        self.both_wildcard: IntrusiveList = IntrusiveList()

    @property
    def bins(self) -> int:
        return self.no_wildcard.bins

    def insert(self, descr: ReceiveDescriptor) -> None:
        """Index a receive in the single structure its class selects."""
        wc = descr.wildcard_class
        if wc is WildcardClass.NONE:
            chain = self.no_wildcard.bucket(hash_src_tag(descr.source, descr.tag))
        elif wc is WildcardClass.SOURCE:
            chain = self.source_wildcard.bucket(hash_tag(descr.tag))
        elif wc is WildcardClass.TAG:
            chain = self.tag_wildcard.bucket(hash_src(descr.source))
        else:
            chain = self.both_wildcard
        descr.node = chain.append(descr)

    def candidate_chains(
        self, msg: MessageEnvelope
    ) -> list[tuple[WildcardClass, IntrusiveList, Callable[[ReceiveDescriptor], bool]]]:
        """The four (class, chain, envelope-predicate) search targets.

        For each incoming message all four indexes are probed with the
        appropriate key (Fig. 3). Buckets can contain colliding keys,
        so each chain comes with the residual envelope predicate that a
        node must satisfy to be a real match.
        """
        hashes = message_hashes(msg)
        return [
            (
                WildcardClass.NONE,
                self.no_wildcard.bucket(hashes.src_tag),
                lambda d: d.source == msg.source and d.tag == msg.tag,
            ),
            (
                WildcardClass.SOURCE,
                self.source_wildcard.bucket(hashes.tag_only),
                lambda d: d.tag == msg.tag,
            ),
            (
                WildcardClass.TAG,
                self.tag_wildcard.bucket(hashes.src_only),
                lambda d: d.source == msg.source,
            ),
            (
                WildcardClass.BOTH,
                self.both_wildcard,
                lambda d: True,
            ),
        ]

    def consume(self, descr: ReceiveDescriptor, *, lazy: bool) -> None:
        """Remove a matched receive from its index.

        With *lazy removal* (§IV-D) the node is only marked; a later
        :meth:`sweep` unlinks marked nodes in batch.
        """
        descr.consumed = True
        node = descr.node
        if node is None or node.owner is None:
            return
        if lazy:
            node.owner.mark(node)
        else:
            node.owner.unlink(node)
            descr.node = None

    def sweep(self) -> int:
        """Batch-remove marked nodes from all structures."""
        removed = self.no_wildcard.sweep()
        removed += self.source_wildcard.sweep()
        removed += self.tag_wildcard.sweep()
        removed += self.both_wildcard.sweep()
        return removed

    def total_live(self) -> int:
        return (
            self.no_wildcard.total_live()
            + self.source_wildcard.total_live()
            + self.tag_wildcard.total_live()
            + len(self.both_wildcard)
        )


@dataclass(eq=False, slots=True)
class UnexpectedMessage:
    """An arrived-but-unmatched message staged in the unexpected store.

    Keeps one node reference per structure so a later match can remove
    the message from *all* indexes (§IV-C).
    """

    envelope: MessageEnvelope
    #: Bounce-buffer handle (or payload token) for protocol handling.
    buffer_token: int = 0
    nodes: dict[str, IntrusiveNode] = field(default_factory=dict, repr=False)
    removed: bool = False


class UnexpectedIndexes:
    """Unexpected-message store: same shape as the receive indexes, but
    every message is inserted into all four structures (§IV-C)."""

    _STRUCTURES = ("no_wildcard", "source_wildcard", "tag_wildcard", "both_wildcard")

    def __init__(self, bins: int) -> None:
        self.no_wildcard = HashTable(bins)
        self.source_wildcard = HashTable(bins)
        self.tag_wildcard = HashTable(bins)
        #: Global arrival-ordered list, searched by double-wildcard receives.
        self.both_wildcard: IntrusiveList = IntrusiveList()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, unexpected: UnexpectedMessage) -> None:
        """Index a newly unexpected message in every structure."""
        msg = unexpected.envelope
        hashes = message_hashes(msg)
        unexpected.nodes["no_wildcard"] = self.no_wildcard.bucket(hashes.src_tag).append(
            unexpected
        )
        unexpected.nodes["source_wildcard"] = self.source_wildcard.bucket(
            hashes.tag_only
        ).append(unexpected)
        unexpected.nodes["tag_wildcard"] = self.tag_wildcard.bucket(hashes.src_only).append(
            unexpected
        )
        unexpected.nodes["both_wildcard"] = self.both_wildcard.append(unexpected)
        self._count += 1

    def search(
        self, request: ReceiveRequest, probes: SearchProbeCount | None = None
    ) -> UnexpectedMessage | None:
        """Find the oldest-arrival unexpected message matching ``request``.

        Only the single structure the *receive* belongs to is searched
        (§IV-C): messages are present in all of them, and each bucket
        chain is in arrival order, so the first full-envelope match in
        the receive's own bucket is the oldest one — satisfying C2.
        """
        wc = request.wildcard_class()
        if wc is WildcardClass.NONE:
            chain = self.no_wildcard.bucket(hash_src_tag(request.source, request.tag))
        elif wc is WildcardClass.SOURCE:
            chain = self.source_wildcard.bucket(hash_tag(request.tag))
        elif wc is WildcardClass.TAG:
            chain = self.tag_wildcard.bucket(hash_src(request.source))
        else:
            chain = self.both_wildcard
        if probes is not None:
            probes.buckets += 1
        for node in chain.iter_nodes():
            if probes is not None:
                probes.walked += 1
            um: UnexpectedMessage = node.payload
            if request.matches(um.envelope):
                return um
        return None

    def remove(self, unexpected: UnexpectedMessage) -> None:
        """Remove a matched message from all four structures."""
        if unexpected.removed:
            raise ValueError("unexpected message already removed")
        for name in self._STRUCTURES:
            node = unexpected.nodes.pop(name)
            if node.owner is not None:
                node.owner.unlink(node)
        unexpected.removed = True
        self._count -= 1

    def depths(self) -> list[int]:
        """Queue depth per bucket of the (source, tag) table."""
        return self.no_wildcard.depths()

"""The Optimistic Tag Matching engine (§III, §IV).

:class:`OptimisticMatcher` is the library's central object. It owns
the four receive indexes, the unexpected-message store, the fixed
descriptor table, and the block pipeline that processes incoming
messages N at a time with simulated parallel threads.

Usage contract (mirrors the DPA deployment in §IV):

* ``post_receive`` models the host sending a post command to the
  accelerator over a QP; it first drains the unexpected store, then
  indexes the receive. Posts are serialized with respect to blocks —
  exactly like QP commands interleaving with completion-queue bursts.
* ``submit_message`` stamps an arrival order onto an incoming message
  (its completion-queue position) and queues it.
* ``process_block`` matches up to N queued messages in one optimistic
  block; ``process_all`` loops until the queue drains.

Every decision is emitted as a :class:`repro.core.events.MatchEvent`,
and the engine guarantees MPI constraints C1 and C2 for any thread
interleaving the scheduler produces (property-tested in
``tests/core/test_constraints.py``).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Callable, Generator

from repro.core.barrier import PartialBarrier
from repro.core.config import EngineConfig
from repro.core.conflict import detect_conflict, fast_path_eligible, fast_path_target
from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.core.descriptor import DescriptorTable, ReceiveDescriptor
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind, ResolutionPath
from repro.core.indexes import (
    ReceiveIndexes,
    SearchProbeCount,
    UnexpectedIndexes,
    UnexpectedMessage,
)
from repro.core.optimistic import search_candidate
from repro.core.stats import BlockStats, EngineStats
from repro.core.threadsim import SchedulePolicy, SteppedExecutor, Yielded
from repro.obs.probe import probe
from repro.util.counters import MonotonicCounter, SequenceLabeler

__all__ = ["OptimisticMatcher", "HintViolation"]


class HintViolation(ValueError):
    """A posted receive contradicts a declared communicator hint."""


class _BlockContext:
    """Shared state of one optimistic block (the N-thread working set)."""

    __slots__ = (
        "messages",
        "barrier",
        "detect",
        "conflict_flags",
        "resolved",
        "candidates",
        "outcomes",
        "stats",
    )

    def __init__(self, messages: list[MessageEnvelope], width: int) -> None:
        self.messages = messages
        self.barrier = PartialBarrier(width)
        self.detect = PartialBarrier(width)
        self.conflict_flags = [False] * len(messages)
        self.resolved = [False] * len(messages)
        self.candidates: list[ReceiveDescriptor | None] = [None] * len(messages)
        self.outcomes: list[MatchEvent | None] = [None] * len(messages)
        self.stats = BlockStats(messages=len(messages))

    @property
    def active(self) -> int:
        return len(self.messages)

    def resolved_below(self, thread_id: int) -> Callable[[], bool]:
        """Wait condition: every thread below ``thread_id`` resolved."""
        return lambda: all(self.resolved[j] for j in range(thread_id))


class OptimisticMatcher:
    """Bin-based optimistic MPI tag matcher (the paper's C1 artifact)."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        policy: SchedulePolicy | None = None,
        comm: int = 0,
        keep_history: bool = False,
        history_limit: int | None = None,
        observer: "Callable[[str, dict], None] | None" = None,
    ) -> None:
        """``observer``, when given, receives ``(event, payload)``
        tuples at decision points ('consume', 'unexpected',
        'block_end') — a debugging/observability hook with zero cost
        when unset. ``history_limit`` bounds the retained per-block
        history when ``keep_history`` is on (soak-safe memory)."""
        self.config = config if config is not None else EngineConfig()
        self.comm = comm
        self.indexes = ReceiveIndexes(self.config.bins)
        self.unexpected = UnexpectedIndexes(self.config.bins)
        self.table = DescriptorTable(self.config.max_receives, self.config.block_threads)
        self.stats = EngineStats(keep_history=keep_history, history_limit=history_limit)
        self._executor = SteppedExecutor(policy)
        self._post_labels = MonotonicCounter()
        self._sequencer = SequenceLabeler()
        #: Stamps MatchEvent.decision_order in semantic decision order.
        self.decisions = MonotonicCounter()
        self._arrivals = MonotonicCounter()
        self._buffer_tokens = MonotonicCounter()
        self._pending: deque[MessageEnvelope] = deque()
        self._marked_since_sweep = 0
        self._observer = observer
        #: Events produced by host commands that drain the pending
        #: queue internally (e.g. cancel); returned by process_all.
        self._event_backlog: list[MatchEvent] = []
        #: Optional :class:`repro.recovery.faults.CoreFaultInjector`;
        #: when set, each block's threads pass through it so seeded
        #: core faults (fail-stop/hang/bit-flip) can abort the block.
        self.fault_injector = None
        #: Optional :class:`repro.pressure.budget.PressureMeter`; when
        #: set, every descriptor allocation/release and every
        #: unexpected-store insert/remove is charged against the memory
        #: budget (the §III-E enforcement hooks). ``None`` keeps the
        #: historical zero-overhead behaviour.
        self.pressure = None
        #: Optional :class:`repro.obs.ledger.FlightRecorder`; when set,
        #: match resolutions and UMQ residency are stamped onto each
        #: message's flight record. ``None`` keeps the hot path to a
        #: single attribute test (same contract as ``pressure``).
        self.recorder = None

    def set_observer(self, observer: "Callable[[str, dict], None] | None") -> None:
        """Install (or clear) the decision-point observer post hoc —
        the attach point :mod:`repro.obs.hooks` uses."""
        self._observer = observer

    def set_pressure(self, meter) -> None:
        """Install (or clear) the memory-budget meter post hoc — the
        attach point :mod:`repro.pressure` uses. Must be called on an
        empty engine (or one whose state the meter already accounts)."""
        self.pressure = meter

    def set_recorder(self, recorder) -> None:
        """Install (or clear) the flight recorder post hoc — the attach
        point :mod:`repro.obs.ledger` instrumentation uses. Engine
        generations created by fallback/recovery/pressure carriers must
        re-install it on each fresh engine."""
        self.recorder = recorder

    # ------------------------------------------------------------------
    # Host-side operations (QP commands)
    # ------------------------------------------------------------------

    @probe("engine.post_receive")
    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        """Post a receive: drain the unexpected store or index it.

        Returns a drain :class:`MatchEvent` when the receive matched a
        stored unexpected message, ``None`` when the receive was
        indexed to await future messages. Raises
        :class:`repro.core.descriptor.DescriptorTableFull` when the
        fixed table is exhausted (the software-fallback trigger) and
        :class:`HintViolation` when the receive contradicts a
        communicator hint.
        """
        if request.comm != self.comm:
            raise ValueError(
                f"receive for communicator {request.comm} posted to engine for {self.comm}"
            )
        if self.config.assert_no_any_source and request.source == ANY_SOURCE:
            raise HintViolation("mpi_assert_no_any_source was declared")
        if self.config.assert_no_any_tag and request.tag == ANY_TAG:
            raise HintViolation("mpi_assert_no_any_tag was declared")

        self.stats.receives_posted += 1
        probes = SearchProbeCount()
        stored = self.unexpected.search(request, probes)
        if stored is not None:
            self.unexpected.remove(stored)
            if self.pressure is not None:
                self.pressure.release_unexpected()
            self.stats.receives_matched_from_unexpected += 1
            if self.recorder is not None:
                self.recorder.stamp(
                    stored.envelope.mid, "matched", path="serial"
                )
            return MatchEvent(
                kind=MatchKind.UNEXPECTED_DRAIN,
                message=stored.envelope,
                receive=request,
                receive_post_label=self._post_labels.next(),
                path=ResolutionPath.SERIAL,
                decision_order=self.decisions.next(),
            )
        if self.pressure is not None:
            # Charge before allocating so a refused charge leaves no
            # half-indexed descriptor behind; undo it if the table is
            # the resource that's actually full.
            self.pressure.charge_descriptor()
        try:
            descr = self.table.allocate(
                request,
                post_label=self._post_labels.next(),
                sequence_id=self._sequencer.label(request.source, request.tag),
            )
        except Exception:
            if self.pressure is not None:
                self.pressure.release_descriptor()
            raise
        self.indexes.insert(descr)
        return None

    def cancel_receive(self, handle: int) -> bool:
        """Cancel a posted receive by its request handle (MPI_Cancel).

        Returns True when a live receive with that handle was found
        and removed, False when none exists (it may already have
        matched — MPI's "cancel either succeeds or the operation
        completes" semantics). Cancellation is a host-side command,
        serialized with blocks like posting; pending messages are
        processed first so a message already in flight wins the race,
        as it would on hardware. Events from that internal processing
        are delivered by the next :meth:`process_all` call.
        """
        # Evaluate process_all first: it rebinds the backlog list.
        drained = self.process_all()
        self._event_backlog.extend(drained)
        for chain in self._all_receive_chains():
            for node in chain.iter_nodes():
                descr: ReceiveDescriptor = node.payload
                if descr.request.handle == handle and descr.is_live():
                    self.indexes.consume(descr, lazy=False)
                    self.table.release(descr)
                    if self.pressure is not None:
                        self.pressure.release_descriptor()
                    self.stats.receives_cancelled += 1
                    return True
        return False

    def _all_receive_chains(self):
        for table in (
            self.indexes.no_wildcard,
            self.indexes.source_wildcard,
            self.indexes.tag_wildcard,
        ):
            yield from table
        yield self.indexes.both_wildcard

    # ------------------------------------------------------------------
    # Message ingestion and block processing
    # ------------------------------------------------------------------

    def submit_message(self, msg: MessageEnvelope) -> None:
        """Queue an incoming message, stamping its arrival order."""
        if msg.comm != self.comm:
            raise ValueError(
                f"message for communicator {msg.comm} submitted to engine for {self.comm}"
            )
        stamped = dataclasses.replace(msg, arrival=self._arrivals.next())
        self._pending.append(stamped)

    @property
    def pending_messages(self) -> int:
        return len(self._pending)

    @property
    def posted_receives(self) -> int:
        """Live (unmatched) posted receives currently indexed."""
        return self.indexes.total_live()

    @property
    def unexpected_count(self) -> int:
        return len(self.unexpected)

    def queue_depths(self) -> dict[str, float]:
        """Current PRQ/UMQ depth gauges for the timeline sampler.

        ``prq_max_bin``/``umq_max_bin`` are the deepest single hash
        bin of the (source, tag) tables — the Fig. 7 dynamics signal
        a flat total depth can hide.
        """
        prq_bins = self.indexes.no_wildcard.depths()
        umq_bins = self.unexpected.depths()
        return {
            "prq": float(self.posted_receives),
            "umq": float(self.unexpected_count),
            "pending": float(self.pending_messages),
            "prq_max_bin": float(max(prq_bins, default=0)),
            "umq_max_bin": float(max(umq_bins, default=0)),
        }

    @probe("engine.process_block")
    def process_block(self) -> list[MatchEvent]:
        """Match one block of up to N queued messages in parallel."""
        if not self._pending:
            return []
        width = self.config.block_threads
        batch = [self._pending.popleft() for _ in range(min(width, len(self._pending)))]
        ctx = _BlockContext(batch, width)
        proc = self._overtaking_thread if self.config.allow_overtaking else self._thread
        threads = [proc(ctx, tid) for tid in range(len(batch))]
        if self.fault_injector is not None:
            threads = self.fault_injector.wrap_block(ctx, threads)
        run_stats = self._executor.run(threads)
        ctx.stats.wait_polls = run_stats.total_wait_polls()
        ctx.stats.thread_steps = [run_stats.steps[tid] for tid in range(len(batch))]
        self._finish_block(ctx)
        events = [outcome for outcome in ctx.outcomes if outcome is not None]
        if len(events) != len(batch):  # pragma: no cover - internal invariant
            raise AssertionError("every block thread must produce exactly one outcome")
        return events

    def process_all(self) -> list[MatchEvent]:
        """Drain the whole pending queue, block by block.

        Also delivers any events stashed by host commands (cancel)
        that processed messages internally.
        """
        events, self._event_backlog = self._event_backlog, []
        while self._pending:
            events.extend(self.process_block())
        return events

    # ------------------------------------------------------------------
    # The per-thread block procedure (§III-C/D)
    # ------------------------------------------------------------------

    def _thread(self, ctx: _BlockContext, tid: int) -> Generator[Yielded, None, None]:
        msg = ctx.messages[tid]
        cfg = self.config

        # --- Optimistic matching phase (§III-C) ---
        candidate = yield from search_candidate(
            self.indexes, cfg, ctx.stats, tid, msg, early_skip=cfg.early_booking_check
        )
        if candidate is not None:
            candidate.booking.set(tid)  # tentative booking
            ctx.stats.bookings += 1
        ctx.candidates[tid] = candidate

        # --- Partial barrier (§III-D.1) ---
        ctx.barrier.enter(tid)
        yield ctx.barrier.wait_condition(tid)

        # --- Conflict detection (§III-D.2) ---
        conflicted = detect_conflict(candidate, tid)
        ctx.conflict_flags[tid] = conflicted
        ctx.detect.enter(tid)
        yield ctx.detect.wait_condition(tid)
        lower_conflict = any(ctx.conflict_flags[j] for j in range(tid))
        if conflicted:
            ctx.stats.conflicts += 1

        if not conflicted and not lower_conflict:
            # Optimistic success: nobody below lost anything, so no
            # lower thread will re-match and steal this candidate.
            if candidate is not None:
                self._consume(ctx, tid, candidate, ResolutionPath.OPTIMISTIC)
                ctx.stats.optimistic_hits += 1
            else:
                # Unexpected insertion must follow arrival order, so
                # wait for earlier messages to settle first.
                yield ctx.resolved_below(tid)
                self._store_unexpected(ctx, tid, msg)
            ctx.resolved[tid] = True
            return

        # --- Fast path (§III-D.3a) ---
        if conflicted and cfg.enable_fast_path and fast_path_eligible(candidate, ctx.active):
            target = fast_path_target(candidate, tid, ctx.stats)
            if target is not None:
                self._consume(ctx, tid, target, ResolutionPath.FAST)
                ctx.stats.fast_path += 1
                ctx.resolved[tid] = True
                return

        # --- Slow path (§III-D.3b) ---
        ctx.stats.slow_path += 1
        yield ctx.resolved_below(tid)
        if candidate is not None and candidate.is_live():
            # Lower threads settled without taking it; since they only
            # ever consume receives, it is still the oldest live match.
            self._consume(ctx, tid, candidate, ResolutionPath.SLOW)
        else:
            rematch = yield from search_candidate(
                self.indexes, cfg, ctx.stats, tid, msg, early_skip=False
            )
            if rematch is not None:
                rematch.booking.set(tid)
                ctx.stats.bookings += 1
                self._consume(ctx, tid, rematch, ResolutionPath.SLOW)
            else:
                self._store_unexpected(ctx, tid, msg)
        ctx.resolved[tid] = True

    def _overtaking_thread(
        self, ctx: _BlockContext, tid: int
    ) -> Generator[Yielded, None, None]:
        """Relaxed procedure under ``mpi_assert_allow_overtaking`` (§VII).

        Matching order constraints are waived, so threads skip the
        barrier and conflict machinery entirely: book-and-consume
        whatever live candidate the search returns, retrying on a
        consumed one. This is the upper bound on extractable
        parallelism the hint enables.
        """
        msg = ctx.messages[tid]
        while True:
            candidate = yield from search_candidate(
                self.indexes,
                self.config,
                ctx.stats,
                tid,
                msg,
                early_skip=self.config.early_booking_check,
            )
            if candidate is None:
                self._store_unexpected(ctx, tid, msg)
                break
            if candidate.is_live():
                # No yield since the liveness check: book + consume is
                # one atomic scheduler step.
                candidate.booking.set(tid)
                ctx.stats.bookings += 1
                self._consume(ctx, tid, candidate, ResolutionPath.OPTIMISTIC)
                ctx.stats.optimistic_hits += 1
                break
        ctx.resolved[tid] = True

    # ------------------------------------------------------------------
    # Consumption, unexpected storage, block epilogue
    # ------------------------------------------------------------------

    def _consume(
        self,
        ctx: _BlockContext,
        tid: int,
        descr: ReceiveDescriptor,
        path: ResolutionPath,
    ) -> None:
        if descr.consumed:  # pragma: no cover - internal invariant
            raise AssertionError(
                f"thread {tid} consumed an already-consumed receive "
                f"(label {descr.post_label})"
            )
        self.indexes.consume(descr, lazy=True)
        self._marked_since_sweep += 1
        ctx.outcomes[tid] = MatchEvent(
            kind=MatchKind.EXPECTED,
            message=ctx.messages[tid],
            receive=descr.request,
            receive_post_label=descr.post_label,
            path=path,
        )
        self.table.release(descr)
        if self.pressure is not None:
            self.pressure.release_descriptor()
        if self.recorder is not None:
            self.recorder.stamp(
                ctx.messages[tid].mid, "matched", path=path.value, thread=tid
            )
        if self._observer is not None:
            self._observer(
                "consume",
                {"thread": tid, "label": descr.post_label, "path": path.value},
            )

    def _store_unexpected(self, ctx: _BlockContext, tid: int, msg: MessageEnvelope) -> None:
        if self.pressure is not None:
            # The RNR probe reserved header room for every admitted
            # message, so this charge always fits in a gated stack.
            self.pressure.charge_unexpected()
        um = UnexpectedMessage(envelope=msg, buffer_token=self._buffer_tokens.next())
        self.unexpected.insert(um)
        ctx.stats.unexpected += 1
        if self.recorder is not None:
            self.recorder.stamp(msg.mid, "umq", thread=tid)
        ctx.outcomes[tid] = MatchEvent(
            kind=MatchKind.STORED_UNEXPECTED,
            message=msg,
            receive=None,
            receive_post_label=None,
        )
        if self._observer is not None:
            self._observer(
                "unexpected", {"thread": tid, "source": msg.source, "tag": msg.tag}
            )

    def _finish_block(self, ctx: _BlockContext) -> None:
        """Block epilogue: decision stamping, sweep policy, stats."""
        # Decisions inside a block are semantically ordered by message
        # arrival (= thread ID), whatever order the scheduler actually
        # resolved them in.
        for tid, outcome in enumerate(ctx.outcomes):
            if outcome is not None:
                ctx.outcomes[tid] = dataclasses.replace(
                    outcome, decision_order=self.decisions.next()
                )
        if self.config.lazy_removal:
            # Amortized cleanup: sweep only once enough consumed nodes
            # accumulated (they cost extra probe walks until then).
            if self._marked_since_sweep >= 4 * self.config.block_threads:
                ctx.stats.swept = self.indexes.sweep()
                self._marked_since_sweep = 0
        else:
            # Eager cleanup: consumed nodes are unlinked at block end,
            # modelling per-consume removal under the bucket lock.
            ctx.stats.swept = self.indexes.sweep()
            self._marked_since_sweep = 0
        self.stats.absorb(ctx.stats)
        if self._observer is not None:
            self._observer(
                "block_end",
                {
                    "messages": ctx.stats.messages,
                    "conflicts": ctx.stats.conflicts,
                    "fast": ctx.stats.fast_path,
                    "slow": ctx.stats.slow_path,
                    # Executor critical path / total work, for span
                    # durations in the tracing layer.
                    "steps_span": max(ctx.stats.thread_steps, default=0),
                    "steps_total": sum(ctx.stats.thread_steps),
                },
            )

    # ------------------------------------------------------------------
    # State export (software fallback migration, diagnostics)
    # ------------------------------------------------------------------

    def export_state(
        self,
    ) -> tuple[list[tuple[int, ReceiveRequest]], list[MessageEnvelope]]:
        """Snapshot live state for migration to a software matcher.

        Returns posted receives as ``(post_label, request)`` in posting
        order and unexpected messages in arrival order.
        """
        receives: list[tuple[int, ReceiveRequest]] = []
        for _, chain, _ in (
            ("no", self.indexes.no_wildcard, None),
            ("src", self.indexes.source_wildcard, None),
            ("tag", self.indexes.tag_wildcard, None),
        ):
            for bucket in chain:
                for descr in bucket:
                    receives.append((descr.post_label, descr.request))
        for descr in self.indexes.both_wildcard:
            receives.append((descr.post_label, descr.request))
        receives.sort(key=lambda item: item[0])
        unexpected = sorted(
            (um for um in self.unexpected.both_wildcard),
            key=lambda um: um.envelope.arrival,
        )
        return receives, [um.envelope for um in unexpected]

    def import_state(
        self,
        receives: list[tuple[int, ReceiveRequest]],
        unexpected: list[MessageEnvelope],
    ) -> None:
        """Adopt live state exported from another matcher (fallback
        recovery: the host's working set migrates back onto the DPA
        once it fits again).

        ``receives`` must be in posting order and ``unexpected`` in
        arrival order; both get fresh labels/arrival stamps that
        preserve relative order. No events are emitted — these
        decisions already happened on the source matcher. The two
        inputs are mutually incompatible by the PRQ/UMQ invariant (a
        compatible pair would already have matched), so insertion
        order between them is immaterial.
        """
        if self.posted_receives or self.unexpected_count or self._pending:
            raise ValueError("import_state requires an empty engine")
        if len(receives) > self.table.capacity:
            raise ValueError(
                f"{len(receives)} receives exceed the descriptor table "
                f"capacity {self.table.capacity}"
            )
        for _, request in receives:
            if self.pressure is not None:
                self.pressure.charge_descriptor()
            descr = self.table.allocate(
                request,
                post_label=self._post_labels.next(),
                sequence_id=self._sequencer.label(request.source, request.tag),
            )
            self.indexes.insert(descr)
        for msg in unexpected:
            if self.pressure is not None:
                self.pressure.charge_unexpected()
            stamped = dataclasses.replace(msg, arrival=self._arrivals.next())
            self.unexpected.insert(
                UnexpectedMessage(envelope=stamped, buffer_token=self._buffer_tokens.next())
            )

    def evict_oldest_unexpected(self) -> MessageEnvelope | None:
        """Remove and return the globally oldest unexpected message.

        The pressure controller's eviction primitive: the UMQ header
        leaves the accelerator (its charge is released) and the caller
        parks the envelope in host memory. Arrival stamps are globally
        monotone and this always takes the *oldest* resident entry, so
        host-parked envelopes are strictly older than anything still on
        the accelerator — the property the recall path's search order
        (host store first) relies on. Returns ``None`` when the store
        is empty. Must be called on a settled engine (between blocks).
        """
        oldest: UnexpectedMessage | None = next(iter(self.unexpected.both_wildcard), None)
        if oldest is None:
            return None
        self.unexpected.remove(oldest)
        if self.pressure is not None:
            self.pressure.release_unexpected()
        return oldest.envelope

    def revoke_source(self, source: int) -> int:
        """Dead-peer notification: purge every unexpected message from
        ``source`` (the rank fault-tolerance layer's revoke — a failed
        rank's stale UMQ entries must never match a receive posted
        after its death). A host-side command serialized with blocks
        like cancellation: pending messages are processed first, so a
        message already in flight wins the race as it would on
        hardware; whatever that leaves in the unexpected store is then
        dropped. Returns the number of entries revoked.
        """
        drained = self.process_all()
        self._event_backlog.extend(drained)
        victims = [
            um
            for um in self.unexpected.both_wildcard
            if um.envelope.source == source
        ]
        for um in victims:
            self.unexpected.remove(um)
            if self.pressure is not None:
                self.pressure.release_unexpected()
        return len(victims)

"""Engine configuration.

One dataclass gathers every knob the paper exposes so that benchmarks
and ablations can sweep them declaratively: bin count (Fig. 7),
block width N (§VI uses 32), descriptor capacity (§III-E), and the
three §IV-D optimizations as independent toggles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.constants import (
    DEFAULT_BINS,
    DEFAULT_BLOCK_THREADS,
    DEFAULT_MAX_RECEIVES,
)

__all__ = ["EngineConfig"]


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Configuration of an :class:`repro.core.engine.OptimisticMatcher`."""

    #: Bins per hash table. 1 degenerates to the traditional single
    #: queue; the paper evaluates 1..256 and defaults to 128.
    bins: int = DEFAULT_BINS
    #: Optimistic block width N = number of parallel matching threads
    #: (also the booking-bitmap width). The prototype uses 32.
    block_threads: int = DEFAULT_BLOCK_THREADS
    #: Fixed descriptor-table capacity; overflow triggers the software
    #: fallback (§III-B).
    max_receives: int = DEFAULT_MAX_RECEIVES
    #: §IV-D "Lazy removal": mark consumed receives, sweep in batch.
    lazy_removal: bool = True
    #: §IV-D "Early booking check": skip candidates already booked by a
    #: lower thread during the optimistic phase.
    early_booking_check: bool = True
    #: §III-D.3a fast path for sequences of compatible receives.
    enable_fast_path: bool = True
    #: Honour sender-side inline hash values when present (§IV-D).
    use_inline_hashes: bool = True
    #: MPI communicator hints (§VII): declared absence of wildcard
    #: receives lets the engine skip whole indexes per message.
    assert_no_any_source: bool = False
    assert_no_any_tag: bool = False
    #: mpi_assert_allow_overtaking: relaxes C1/C2, letting the engine
    #: skip conflict detection entirely (any candidate wins).
    allow_overtaking: bool = False

    def __post_init__(self) -> None:
        if self.bins <= 0:
            raise ValueError(f"bins must be positive, got {self.bins}")
        if self.block_threads <= 0:
            raise ValueError(f"block_threads must be positive, got {self.block_threads}")
        if self.max_receives <= 0:
            raise ValueError(f"max_receives must be positive, got {self.max_receives}")

    def with_options(self, **changes: Any) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

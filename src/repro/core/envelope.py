"""Message envelopes and receive requests.

A :class:`MessageEnvelope` is what the matcher sees of an incoming
message: the MPI envelope fields (source, tag, communicator) plus the
transport metadata the offloaded design carries with it — the arrival
stamp that defines matching precedence (C2) and the optional
sender-computed *inline hash values* (§IV-D) that spare the SmartNIC
from computing bucket indexes.

A :class:`ReceiveRequest` is the user-visible receive posting; it is
turned into a :class:`repro.core.descriptor.ReceiveDescriptor` when it
is accepted by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constants import ANY_SOURCE, ANY_TAG, WildcardClass, classify

__all__ = ["InlineHashes", "MessageEnvelope", "ReceiveRequest"]


@dataclass(frozen=True, slots=True)
class InlineHashes:
    """Sender-side precomputed bucket hashes (§IV-D, *inline hash values*).

    The sender can compute ``hash(src, tag)``, ``hash(tag)`` and
    ``hash(src)`` because they do not depend on receiver state, and
    ship them in the message header. Values here are the *raw* hash
    words; the receiver reduces them modulo its bin count, so the same
    header works for any receiver-side table size.
    """

    src_tag: int
    tag_only: int
    src_only: int


@dataclass(frozen=True, slots=True)
class MessageEnvelope:
    """An incoming point-to-point message as seen by the matcher."""

    source: int
    tag: int
    comm: int = 0
    #: Monotonic arrival stamp assigned by the completion queue; defines
    #: the precedence order used for C2 (non-overtaking).
    arrival: int = 0
    #: Payload size in bytes; selects eager vs rendezvous protocol.
    size: int = 0
    #: Per-sender send sequence number (diagnostics / C2 auditing).
    send_seq: int = 0
    inline_hashes: InlineHashes | None = None
    #: Flight-recorder message id (:mod:`repro.obs.ledger`); -1 when no
    #: recorder is attached. Excluded from equality/hash so ledger
    #: instrumentation can never change matching behaviour.
    mid: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.source < 0:
            raise ValueError(
                f"messages must carry a concrete source rank, got {self.source} "
                "(the MPI specification does not allow wildcard sends)"
            )
        if self.tag < 0:
            raise ValueError(f"messages must carry a concrete tag, got {self.tag}")

    def key(self) -> tuple[int, int]:
        return (self.source, self.tag)


@dataclass(frozen=True, slots=True)
class ReceiveRequest:
    """A receive posting (``MPI_Recv`` / ``MPI_Irecv`` envelope part)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    comm: int = 0
    #: Size of the user-provided buffer in bytes.
    size: int = 0
    #: Opaque user handle propagated to the match event (request id).
    handle: int = field(default=0, compare=False)

    def wildcard_class(self) -> WildcardClass:
        return classify(self.source, self.tag)

    def matches(self, msg: MessageEnvelope) -> bool:
        """Envelope matching rule: wildcards accept anything."""
        if self.comm != msg.comm:
            return False
        if self.source != ANY_SOURCE and self.source != msg.source:
            return False
        if self.tag != ANY_TAG and self.tag != msg.tag:
            return False
        return True

"""MPI-level constants and wildcard classification.

The paper partitions posted receives into four classes by which
wildcards they use (§III-B); the class determines which of the four
index structures a receive lives in and which key indexes it.
"""

from __future__ import annotations

import enum

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "WildcardClass",
    "classify",
    "DEFAULT_BINS",
    "DEFAULT_BLOCK_THREADS",
    "DEFAULT_MAX_RECEIVES",
]

#: Wildcard sentinel values (match the usual MPI ABI choices).
ANY_SOURCE: int = -1
ANY_TAG: int = -1

#: Default number of bins per hash table. The paper evaluates 1..256
#: bins (Fig. 7) and uses 128 bins in the memory-footprint example.
DEFAULT_BINS: int = 128

#: Default optimistic block width N. The paper's prototype uses 32 DPA
#: threads, "limited by the bookkeeping bitmap size" (§VI).
DEFAULT_BLOCK_THREADS: int = 32

#: Default receive-descriptor table capacity (paper example: 8 K
#: receives ~ 520 KiB of DPA memory, §III-E).
DEFAULT_MAX_RECEIVES: int = 8192


class WildcardClass(enum.Enum):
    """Which wildcards a posted receive uses.

    The enum value doubles as the index-structure selector.
    """

    NONE = "none"  #: fully specified: hash(source, tag)
    SOURCE = "source"  #: MPI_ANY_SOURCE: hash(tag)
    TAG = "tag"  #: MPI_ANY_TAG: hash(source)
    BOTH = "both"  #: both wildcards: ordered linked list

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WildcardClass.{self.name}"


def classify(source: int, tag: int) -> WildcardClass:
    """Classify a receive's ``(source, tag)`` pair into its index class."""
    if source == ANY_SOURCE and tag == ANY_TAG:
        return WildcardClass.BOTH
    if source == ANY_SOURCE:
        return WildcardClass.SOURCE
    if tag == ANY_TAG:
        return WildcardClass.TAG
    return WildcardClass.NONE

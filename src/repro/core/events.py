"""Match outcome records.

Every message processed by a matcher produces exactly one
:class:`MatchEvent`; the event stream is the interface the oracle uses
to cross-validate matchers, the protocol layer uses to move data, and
the statistics layer uses to count behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.envelope import MessageEnvelope, ReceiveRequest

__all__ = ["MatchKind", "ResolutionPath", "MatchEvent"]


class MatchKind(enum.Enum):
    """How a message/receive pairing came about."""

    #: Incoming message matched an already-posted receive.
    EXPECTED = "expected"
    #: Newly posted receive matched a stored unexpected message.
    UNEXPECTED_DRAIN = "unexpected-drain"
    #: Incoming message found no receive and was stored as unexpected.
    STORED_UNEXPECTED = "stored-unexpected"


class ResolutionPath(enum.Enum):
    """Which path produced an EXPECTED match inside a block."""

    #: Optimistic phase succeeded with no conflict.
    OPTIMISTIC = "optimistic"
    #: Conflict resolved via the fast path (§III-D.3a).
    FAST = "fast"
    #: Conflict resolved via the slow path (§III-D.3b).
    SLOW = "slow"
    #: Matched by a serial matcher (baselines, fallback, drains).
    SERIAL = "serial"


@dataclass(frozen=True, slots=True)
class MatchEvent:
    """One matching decision.

    For ``STORED_UNEXPECTED`` events ``receive`` is ``None``. The
    ``receive_post_label`` and ``message_arrival`` stamps are what the
    constraint checkers (C1/C2) audit.
    """

    kind: MatchKind
    message: MessageEnvelope
    receive: ReceiveRequest | None
    receive_post_label: int | None = None
    path: ResolutionPath = ResolutionPath.SERIAL
    #: Global matching-decision order within the emitting matcher;
    #: blocks stamp it in message-arrival (thread-ID) order, which is
    #: the semantic decision order. -1 means "not stamped".
    decision_order: int = -1

    def is_match(self) -> bool:
        return self.kind is not MatchKind.STORED_UNEXPECTED

    def pairing(self) -> tuple[tuple[int, int, int], int | None]:
        """Canonical (message identity, receive label) pair for oracles."""
        msg_id = (self.message.source, self.message.send_seq, self.message.comm)
        return (msg_id, self.receive_post_label)

"""Per-message matching-latency model (Figure 8 companion).

Figure 8 reports throughput; latency is the other face of the same
cycle accounting. A message's matching latency is the time from its
completion-queue entry to its match decision:

* on the DPA, messages in one block start together but resolve at
  different depths of the block's critical path — conflicted threads
  (fast path) finish later, slow-path threads later still;
* on the host, messages queue behind the matcher's serial loop, so
  latency grows linearly with position in the burst.

The model assigns each message a latency from the engine's per-block
statistics and the cost model, and reports the distribution
(p50/p95/p99/max) per Figure 8 configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import OptimisticMatcher
from repro.core.events import ResolutionPath
from repro.dpa.costs import DpaCostModel, HostCostModel
from repro.bench.scenarios import Scenario

__all__ = ["LatencyDistribution", "dpa_latencies", "host_latencies"]


@dataclass(frozen=True, slots=True)
class LatencyDistribution:
    """Matching-latency quantiles in nanoseconds."""

    label: str
    messages: int
    p50_ns: float
    p95_ns: float
    p99_ns: float
    max_ns: float
    mean_ns: float

    @classmethod
    def from_samples(cls, label: str, samples_ns: np.ndarray) -> "LatencyDistribution":
        if samples_ns.size == 0:
            return cls(label, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            label=label,
            messages=int(samples_ns.size),
            p50_ns=float(np.percentile(samples_ns, 50)),
            p95_ns=float(np.percentile(samples_ns, 95)),
            p99_ns=float(np.percentile(samples_ns, 99)),
            max_ns=float(samples_ns.max()),
            mean_ns=float(samples_ns.mean()),
        )


#: Path-dependent latency multipliers over the block's base service
#: time: optimistic resolves at the front of the critical path, the
#: fast path after one resolution round, the slow path after its
#: position in the serialized chain (approximated by 2x).
_PATH_FACTOR = {
    ResolutionPath.OPTIMISTIC: 1.0,
    ResolutionPath.FAST: 1.4,
    ResolutionPath.SLOW: 2.0,
    ResolutionPath.SERIAL: 1.0,
}


def dpa_latencies(
    scenario: Scenario,
    *,
    messages: int = 512,
    in_flight: int = 1024,
    threads: int = 32,
    cores: int = 16,
    costs: DpaCostModel | None = None,
) -> LatencyDistribution:
    """Run one scenario and model each message's matching latency."""
    costs = costs if costs is not None else DpaCostModel()
    engine = OptimisticMatcher(
        scenario.engine_config(in_flight=in_flight, threads=threads),
        keep_history=True,
    )
    for i in range(max(in_flight, messages)):
        engine.post_receive(scenario.receive(i))
    for i in range(messages):
        engine.submit_message(scenario.message(i))
    events = engine.process_all()
    samples = []
    event_index = 0
    for block in engine.stats.block_history:
        base_cycles = costs.block_cycles(block, cores) / max(block.messages, 1)
        for _ in range(block.messages):
            event = events[event_index]
            event_index += 1
            factor = _PATH_FACTOR.get(event.path, 1.0)
            cycles = base_cycles * factor + costs.dispatch_serial
            samples.append(costs.cycles_to_seconds(cycles) * 1e9)
    return LatencyDistribution.from_samples(
        scenario.label, np.asarray(samples, dtype=float)
    )


def host_latencies(
    *,
    messages: int = 512,
    burst: int = 32,
    queue_depth: int = 16,
    costs: HostCostModel | None = None,
) -> LatencyDistribution:
    """Model host matching latency for bursts of ``burst`` messages.

    Within a burst the matcher is serial: message k waits for the k-1
    before it, so latency ramps linearly — the queueing behaviour the
    offloaded engine's parallel blocks flatten.
    """
    costs = costs if costs is not None else HostCostModel()
    per_message_cycles = costs.per_message_overhead + queue_depth * costs.chain_walk
    samples = []
    for i in range(messages):
        position = i % burst
        cycles = (position + 1) * per_message_cycles
        samples.append(costs.cycles_to_seconds(cycles) * 1e9)
    return LatencyDistribution.from_samples("MPI-CPU", np.asarray(samples))

"""The Figure 8 receive/message scenarios.

"We test two main scenarios: all posted receives have different
source rank and tag combination (referenced as no-conflict case, NC),
or all receives have the same source rank and tag (referenced as
with-conflict case, WC). This allows us to get insights on the best
and worst case for optimistic tag matching." (§VI)

WC splits into the two resolution strategies:

* **WC-FP** — the engine is configured so every thread books the head
  of the compatible-receive run (early booking check off), making the
  bitmap full and the fast path applicable.
* **WC-SP** — the fast path is disabled, forcing conflicted threads
  through the serializing slow path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EngineConfig
from repro.core.envelope import MessageEnvelope, ReceiveRequest

__all__ = ["Scenario", "SCENARIOS", "scenario_by_name"]

#: §VI prototype parameters.
PAPER_IN_FLIGHT = 1024
PAPER_THREADS = 32
#: "hash tables that are twice the maximum number of in-flight
#: receives".
PAPER_BINS = 2 * PAPER_IN_FLIGHT

#: The single sender's rank in the ping-pong pair.
SENDER_RANK = 0


@dataclass(frozen=True, slots=True)
class Scenario:
    """One Figure 8 configuration of the optimistic engine."""

    name: str
    label: str
    #: Engine-config overrides applied on top of the §VI parameters.
    early_booking_check: bool
    enable_fast_path: bool
    #: Whether every receive shares one (source, tag) key.
    conflicting: bool

    def engine_config(
        self, *, in_flight: int = PAPER_IN_FLIGHT, threads: int = PAPER_THREADS
    ) -> EngineConfig:
        return EngineConfig(
            bins=2 * in_flight,
            block_threads=threads,
            max_receives=2 * in_flight,
            early_booking_check=self.early_booking_check,
            enable_fast_path=self.enable_fast_path,
        )

    def receive(self, index: int) -> ReceiveRequest:
        """The index-th posted receive of the window."""
        if self.conflicting:
            return ReceiveRequest(source=SENDER_RANK, tag=7, handle=index)
        return ReceiveRequest(source=SENDER_RANK, tag=index, handle=index)

    def message(self, index: int) -> MessageEnvelope:
        """The index-th message of the stream (matches receive index)."""
        if self.conflicting:
            return MessageEnvelope(source=SENDER_RANK, tag=7, send_seq=index)
        return MessageEnvelope(source=SENDER_RANK, tag=index, send_seq=index)


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="nc",
        label="Optimistic-DPA NC",
        early_booking_check=True,
        enable_fast_path=True,
        conflicting=False,
    ),
    Scenario(
        name="wc-fp",
        label="Optimistic-DPA WC-FP",
        early_booking_check=False,
        enable_fast_path=True,
        conflicting=True,
    ),
    Scenario(
        name="wc-sp",
        label="Optimistic-DPA WC-SP",
        early_booking_check=False,
        enable_fast_path=False,
        conflicting=True,
    ),
)


def scenario_by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}; known: {[s.name for s in SCENARIOS]}")

"""``repro-bench``: one front door for the benchmark suites.

Subcommands::

    repro-bench pressure    [...]   # budget-enforcement overhead ladder
    repro-bench reliability [...]   # reliability-layer overhead baseline
    repro-bench msgrate     [...]   # Figure 8 message-rate benchmark
    repro-bench cluster     [...]   # cluster-fabric topology/placement sweep
    repro-bench resilience  [...]   # rank-failure recovery-latency sweep
    repro-bench gate        [...]   # regression gate vs committed baselines

Each subcommand forwards its remaining arguments to the underlying
module's ``main``, so ``repro-bench pressure --rounds 24`` and
``python -m repro.bench.pressure --rounds 24`` are identical
(``msgrate`` is also installed standalone as ``repro-msgrate``).
"""

from __future__ import annotations

import sys

__all__ = ["main"]

_USAGE = """\
usage: repro-bench {pressure,reliability,msgrate,cluster,resilience,gate} [options]

  pressure     memory-budget enforcement ladder (BENCH_pressure.json)
  reliability  lossy-wire overhead baseline (BENCH_reliability.json)
  msgrate      Figure 8 ping-pong message rates (repro-msgrate)
  cluster      fabric sweep: apps x topologies x placements (BENCH_cluster.json)
  resilience   recovery latency: detector tuning x repair mode (BENCH_resilience.json)
  gate         compare a fresh BENCH file against its committed baseline

Run `repro-bench <subcommand> --help` for subcommand options.
"""


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "pressure":
        from repro.bench.pressure import main as pressure_main

        return pressure_main(rest)
    if command == "reliability":
        from repro.bench.reliability import main as reliability_main

        return reliability_main(rest)
    if command == "msgrate":
        from repro.bench.cli import main as msgrate_main

        return msgrate_main(rest)
    if command == "cluster":
        from repro.bench.cluster import main as cluster_main

        return cluster_main(rest)
    if command == "resilience":
        from repro.bench.resilience import main as resilience_main

        return resilience_main(rest)
    if command == "gate":
        from repro.bench.gate import main as gate_main

        return gate_main(rest)
    print(f"repro-bench: unknown subcommand {command!r}", file=sys.stderr)
    print(_USAGE, end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""``repro-bench gate``: regression gate over committed BENCH baselines.

The benchmark suites write ``BENCH_*.json`` artifacts, but until now
nothing *read* them — a regression in cycles-per-message or message
rate would land silently. The gate closes that loop: it flattens a
freshly produced benchmark file and its committed baseline into dotted
numeric paths, applies per-metric rules (direction + noise tolerance),
and returns a typed :class:`GateVerdict` — nonzero exit on any
regression, so CI fails the build.

Flattening rules (stable across the repo's BENCH schemas):

* nested objects become dotted paths (``params.rounds``);
* lists of objects carrying a ``"label"`` key are keyed by that label
  (``results[evict].dpa_cycles``) so reordering a results list is not
  a spurious diff; other lists are keyed by index;
* booleans count as numbers (0/1) so structural flags like
  ``parallel_identical_to_serial`` are gateable; strings are compared
  for exact equality under the same rule table.

Rule matching is first-match-wins over ``fnmatch`` patterns, exactly
like the fleet cache's kind table. Directions:

``lower``
    lower is better — fail when fresh exceeds baseline by more than
    the relative ``tolerance``;
``higher``
    higher is better — fail when fresh falls short by more than it;
``exact``
    any change fails (deterministic metrics);
``ignore``
    machine-dependent metrics (wall-clock seconds, core counts).

A metric present in the baseline but missing from the fresh file is a
failure (dropping a metric is how a regression hides); new metrics in
the fresh file are reported but pass (schemas are allowed to grow).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Mapping

__all__ = [
    "GateRule",
    "GateFinding",
    "GateVerdict",
    "DEFAULT_RULES",
    "flatten",
    "run_gate",
    "main",
]

GATE_SCHEMA = "repro.bench.gate/v1"

DIRECTIONS = ("lower", "higher", "exact", "ignore")


@dataclass(frozen=True)
class GateRule:
    """One per-metric policy: which paths, which direction, how much
    noise to forgive (relative fraction of the baseline value)."""

    pattern: str
    direction: str
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def matches(self, path: str) -> bool:
        return fnmatchcase(path, self.pattern)

    def to_dict(self) -> dict:
        return {
            "pattern": self.pattern,
            "direction": self.direction,
            "tolerance": self.tolerance,
        }


#: Default policy, ordered; first match wins. Wall-clock fields from
#: the fleet bench are machine-dependent and ignored; cost metrics get
#: a small relative tolerance; everything else in the deterministic
#: suites must reproduce exactly.
DEFAULT_RULES: tuple[GateRule, ...] = (
    GateRule("serial_s", "ignore"),
    GateRule("parallel_s", "ignore"),
    GateRule("warm_s", "ignore"),
    GateRule("speedup", "ignore"),
    GateRule("cpu_count", "ignore"),
    GateRule("jobs", "ignore"),
    GateRule("*_seconds", "ignore"),
    GateRule("*cycles_per_message", "lower", 0.05),
    GateRule("*ticks_per_message", "lower", 0.05),
    GateRule("*dpa_cycles", "lower", 0.05),
    GateRule("*host_matching_cycles", "lower", 0.05),
    GateRule("*retransmits", "lower", 0.05),
    GateRule("*timeouts", "lower", 0.05),
    GateRule("slowdown", "lower", 0.05),
    GateRule("*message_rate", "higher", 0.05),
    GateRule("*", "exact"),
)


def flatten(payload: Any, prefix: str = "") -> dict[str, float | str]:
    """Flatten a BENCH JSON payload to dotted scalar paths."""
    flat: dict[str, float | str] = {}
    _flatten_into(payload, prefix, flat)
    return flat


def _flatten_into(node: Any, prefix: str, out: dict[str, float | str]) -> None:
    if isinstance(node, Mapping):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            _flatten_into(value, path, out)
        return
    if isinstance(node, list):
        labelled = all(
            isinstance(item, Mapping) and "label" in item for item in node
        ) and node
        for index, item in enumerate(node):
            key = f"[{item['label']}]" if labelled else f"[{index}]"
            _flatten_into(item, f"{prefix}{key}", out)
        return
    if isinstance(node, bool):
        out[prefix] = 1.0 if node else 0.0
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    elif isinstance(node, str):
        out[prefix] = node
    # None and other types carry no gateable value.


@dataclass(frozen=True)
class GateFinding:
    """One compared metric: baseline vs fresh under its matched rule."""

    path: str
    baseline: float | str | None
    fresh: float | str | None
    direction: str
    tolerance: float
    ok: bool
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "direction": self.direction,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GateFinding":
        return cls(
            path=str(payload["path"]),
            baseline=payload.get("baseline"),
            fresh=payload.get("fresh"),
            direction=str(payload["direction"]),
            tolerance=float(payload["tolerance"]),
            ok=bool(payload["ok"]),
            note=str(payload.get("note", "")),
        )


@dataclass
class GateVerdict:
    """The gate's typed result (schema ``repro.bench.gate/v1``)."""

    baseline_path: str
    fresh_path: str
    benchmark: str
    findings: list[GateFinding] = field(default_factory=list)
    new_metrics: list[str] = field(default_factory=list)

    SCHEMA = GATE_SCHEMA

    @property
    def passed(self) -> bool:
        return all(f.ok for f in self.findings)

    @property
    def regressions(self) -> list[GateFinding]:
        return [f for f in self.findings if not f.ok]

    def to_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "baseline_path": self.baseline_path,
            "fresh_path": self.fresh_path,
            "benchmark": self.benchmark,
            "passed": self.passed,
            "findings": [f.to_dict() for f in self.findings],
            "new_metrics": list(self.new_metrics),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GateVerdict":
        return cls(
            baseline_path=str(payload.get("baseline_path", "")),
            fresh_path=str(payload.get("fresh_path", "")),
            benchmark=str(payload.get("benchmark", "")),
            findings=[GateFinding.from_dict(f) for f in payload.get("findings", ())],
            new_metrics=[str(p) for p in payload.get("new_metrics", ())],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "GateVerdict":
        payload = json.loads(text)
        schema = payload.get("schema", cls.SCHEMA)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported schema {schema!r}, expected {cls.SCHEMA!r}")
        return cls.from_dict(payload)

    def render(self) -> str:
        lines = [
            f"gate: {self.benchmark or 'benchmark'} "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({len(self.findings)} metrics compared, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.new_metrics)} new)"
        ]
        for finding in self.regressions:
            lines.append(
                f"  REGRESSED {finding.path}: baseline={finding.baseline!r} "
                f"fresh={finding.fresh!r} ({finding.note})"
            )
        return "\n".join(lines)


def _match_rule(path: str, rules: tuple[GateRule, ...] | list[GateRule]) -> GateRule:
    for rule in rules:
        if rule.matches(path):
            return rule
    return GateRule("*", "exact")


def _compare(
    path: str, base: float | str, fresh: float | str | None, rule: GateRule
) -> GateFinding:
    if fresh is None:
        return GateFinding(
            path, base, None, rule.direction, rule.tolerance, False,
            note="metric missing from fresh run",
        )
    if isinstance(base, str) or isinstance(fresh, str):
        ok = base == fresh
        return GateFinding(
            path, base, fresh, rule.direction, rule.tolerance, ok,
            note="" if ok else "string value changed",
        )
    slack = rule.tolerance * abs(base)
    if rule.direction == "lower":
        ok = fresh <= base + slack
        note = "" if ok else f"rose past tolerance (+{fresh - base:g})"
    elif rule.direction == "higher":
        ok = fresh >= base - slack
        note = "" if ok else f"fell past tolerance ({fresh - base:g})"
    else:  # exact
        ok = fresh == base
        note = "" if ok else f"changed by {fresh - base:g}"
    return GateFinding(path, base, fresh, rule.direction, rule.tolerance, ok, note)


def run_gate(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
    *,
    rules: tuple[GateRule, ...] | list[GateRule] = DEFAULT_RULES,
    baseline_path: str = "",
    fresh_path: str = "",
) -> GateVerdict:
    """Compare two parsed BENCH payloads under a rule table."""
    base_flat = flatten(baseline)
    fresh_flat = flatten(fresh)
    benchmark = str(
        baseline.get("benchmark") or baseline.get("schema") or ""
    )
    verdict = GateVerdict(
        baseline_path=baseline_path,
        fresh_path=fresh_path,
        benchmark=benchmark,
    )
    for path in sorted(base_flat):
        rule = _match_rule(path, rules)
        if rule.direction == "ignore":
            continue
        verdict.findings.append(
            _compare(path, base_flat[path], fresh_flat.get(path), rule)
        )
    verdict.new_metrics = sorted(set(fresh_flat) - set(base_flat))
    return verdict


def _parse_rule(spec: str) -> GateRule:
    """``pattern:direction[:tolerance]`` from the command line."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"rule spec must be pattern:direction[:tolerance], got {spec!r}")
    tolerance = float(parts[2]) if len(parts) == 3 else 0.0
    return GateRule(parts[0], parts[1], tolerance)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench gate",
        description=(
            "Compare a fresh BENCH_*.json against its committed baseline. "
            "Exit codes: 0 no regression, 1 regression detected, 2 usage "
            "or unreadable input."
        ),
    )
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("fresh", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="PATTERN:DIRECTION[:TOL]",
        help=(
            "prepend a rule (checked before the defaults); DIRECTION is "
            "lower/higher/exact/ignore, TOL a relative fraction"
        ),
    )
    parser.add_argument(
        "--json-out", metavar="PATH", help="write the typed verdict as JSON"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the rendered verdict"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code == 0 else 2

    try:
        extra = [_parse_rule(spec) for spec in args.rule]
    except ValueError as exc:
        print(f"repro-bench gate: {exc}", file=sys.stderr)
        return 2

    payloads = []
    for path in (args.baseline, args.fresh):
        try:
            with open(path, "r", encoding="utf-8") as fp:
                payloads.append(json.load(fp))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-bench gate: cannot read {path}: {exc}", file=sys.stderr)
            return 2

    verdict = run_gate(
        payloads[0],
        payloads[1],
        rules=list(extra) + list(DEFAULT_RULES),
        baseline_path=args.baseline,
        fresh_path=args.fresh,
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fp:
            fp.write(verdict.to_json())
    if not args.quiet:
        print(verdict.render())
    return 0 if verdict.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())

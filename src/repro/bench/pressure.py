"""Memory-budget enforcement overhead (BENCH_pressure.json).

The same seeded unexpected-heavy workload — bursts of messages arrive
before their receives are posted, so the UMQ stays populated — is run
through the :class:`repro.dpa.machine.DpaMachine` cycle model under a
ladder of budgets:

* ``baseline``  — no meter at all (pre-PR behaviour);
* ``unlimited`` — enforcement armed with an infinite budget: the books
  are kept but pressure never fires, isolating pure accounting
  overhead (which must be zero cycles — the ledger is bookkeeping,
  not simulated work);
* ``fitted``    — the budget is exactly the configured §III-E
  footprint of the engine's memory model;
* ``evict``     — a budget tight enough that cold unexpected headers
  must be evicted to host and recalled on match, each charged at
  :class:`repro.dpa.costs.DpaCostModel` eviction/recall cycle rates;
* ``takeover``  — a budget so small eviction cannot create headroom:
  the machine escalates to host matching and its cycles move to the
  host column.

All lanes must pair every message identically (the budget ladder is
allowed to cost cycles, never to change matching), and the enforced
lanes must finish with zero budget overruns.

Usage::

    PYTHONPATH=src python -m repro.bench.pressure [--out PATH]
    repro-bench pressure [--out PATH]
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.config import EngineConfig
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.dpa.machine import DpaMachine
from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.pressure.budget import PressureBudget
from repro.util.rng import derive_seed, make_rng

__all__ = ["PressureBenchResult", "run_lane", "run_bench", "main"]

SCHEMA = "repro.bench.pressure/v1"

DEFAULT_ROUNDS = 24
DEFAULT_BURST = 24
DEFAULT_SEED = 1

#: Engine shape shared by every lane: small enough that tight budgets
#: are meaningful, §III-E-proportioned (3 index tables, 64-byte
#: descriptors).
_ENGINE = dict(bins=64, block_threads=8, max_receives=256)

#: Budget ladder (``None`` = lane runs without enforcement). The
#: explicit byte values sit just above the static bins charge
#: (3 tables x 64 bins x 20 B = 3840 B): ``evict`` leaves ~30 dynamic
#: 64 B slots, ``takeover`` leaves less than one 8-thread block's
#: header reservation (8 x 64 B) so eviction cannot create headroom.
_LANES: tuple[tuple[str, str], ...] = (
    ("baseline", "off"),
    ("unlimited", "unlimited"),
    ("fitted", "fitted"),
    ("evict", "6000"),
    ("takeover", "4300"),
)


@dataclass(frozen=True, slots=True)
class PressureBenchResult:
    """One budget lane's outcome in simulated DPA cycles."""

    label: str
    #: -1 for unlimited, 0 for no enforcement, else bytes.
    budget_bytes: int
    messages: int
    matched: int
    dpa_cycles: float
    host_matching_cycles: float
    cycles_per_message: float
    #: Ladder activity (all zero for baseline/unlimited).
    evictions: int
    recalls: int
    takeovers: int
    reoffloads: int
    peak_charged_bytes: int
    budget_overruns: int


def _budget_for(kind: str) -> PressureBudget | None:
    if kind == "off":
        return None
    if kind == "unlimited":
        return PressureBudget.unlimited()
    if kind == "fitted":
        return None  # resolved by the machine from its own MemoryModel
    return PressureBudget(budget_bytes=int(kind))


def run_lane(
    label: str,
    budget_kind: str,
    *,
    rounds: int = DEFAULT_ROUNDS,
    burst: int = DEFAULT_BURST,
    seed: int = DEFAULT_SEED,
    recorder: FlightRecorder = NULL_RECORDER,
) -> tuple[PressureBenchResult, list[tuple[int, int]]]:
    """Run one lane; returns its result and the (tag, handle) pairings.

    Each round delivers a burst of unexpected messages, runs the
    machine, then posts the receives for the *previous* round's burst —
    so the UMQ holds a full burst across every block boundary and a
    tight budget has cold headers to evict. ``recorder`` attaches a
    :mod:`repro.obs.ledger` flight recorder to the machine (stamped on
    its cycle-derived microsecond clock).
    """
    enforce = budget_kind != "off"
    machine = DpaMachine(
        EngineConfig(**_ENGINE),
        enforce_budget=enforce,
        budget=_budget_for(budget_kind),
        recorder=recorder,
    )
    rng = make_rng(derive_seed(seed, "bench.pressure"))
    pairings: list[tuple[int, int]] = []
    matched = 0
    sent = 0
    pending: list[int] = []

    def post_for(tags: list[int]) -> None:
        nonlocal matched
        for tag in tags:
            event = machine.post_receive(ReceiveRequest(source=0, tag=tag, handle=tag))
            if event is not None:
                matched += 1
                pairings.append((event.message.tag, event.receive.handle))

    def drain() -> None:
        nonlocal matched
        for event in machine.run():
            if event.receive is not None:
                matched += 1
                pairings.append((event.message.tag, event.receive.handle))

    for r in range(rounds):
        tags = [r * burst + int(i) for i in rng.permutation(burst)]
        for tag in tags:
            machine.deliver(MessageEnvelope(source=0, tag=tag, send_seq=sent))
            sent += 1
        drain()
        post_for(pending)
        drain()
        pending = tags
    post_for(pending)
    drain()

    stats = machine.pressure.stats if machine.pressure is not None else None
    budget_bytes = 0
    if enforce:
        value = machine.pressure.budget.budget_bytes
        budget_bytes = -1 if value is None else value
    report = machine.report
    result = PressureBenchResult(
        label=label,
        budget_bytes=budget_bytes,
        messages=sent,
        matched=matched,
        dpa_cycles=report.dpa_cycles,
        host_matching_cycles=report.host_matching_cycles,
        cycles_per_message=report.dpa_cycles / sent if sent else 0.0,
        evictions=stats.evictions if stats else 0,
        recalls=stats.recalls if stats else 0,
        takeovers=stats.takeovers if stats else 0,
        reoffloads=stats.reoffloads if stats else 0,
        peak_charged_bytes=stats.peak_charged_bytes if stats else 0,
        budget_overruns=stats.budget_overruns if stats else 0,
    )
    return result, sorted(pairings)


def run_bench(
    *,
    rounds: int = DEFAULT_ROUNDS,
    burst: int = DEFAULT_BURST,
    seed: int = DEFAULT_SEED,
) -> dict:
    results: list[PressureBenchResult] = []
    all_pairings: list[list[tuple[int, int]]] = []
    for label, kind in _LANES:
        result, pairings = run_lane(
            label, kind, rounds=rounds, burst=burst, seed=seed
        )
        results.append(result)
        all_pairings.append(pairings)
    baseline = results[0]
    identical = all(p == all_pairings[0] for p in all_pairings[1:])
    return {
        "benchmark": "pressure-enforcement",
        "schema": SCHEMA,
        "params": {"rounds": rounds, "burst": burst, "seed": seed, **_ENGINE},
        "results": [asdict(r) for r in results],
        "pairings_identical": identical,
        "overruns_total": sum(r.budget_overruns for r in results),
        "overhead_vs_baseline": {
            r.label: (r.dpa_cycles + r.host_matching_cycles)
            / (baseline.dpa_cycles + baseline.host_matching_cycles)
            for r in results
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[3] / "BENCH_pressure.json",
    )
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--burst", type=int, default=DEFAULT_BURST)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--ledger-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="re-run the evict lane with a flight recorder and write "
        "its per-message ledger (repro.obs.ledger JSON) — the lane "
        "where parked/recall detours actually show up",
    )
    args = parser.parse_args(argv)
    payload = run_bench(rounds=args.rounds, burst=args.burst, seed=args.seed)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    if args.ledger_out is not None:
        recorder = FlightRecorder()
        run_lane(
            "evict",
            dict(_LANES)["evict"],
            rounds=args.rounds,
            burst=args.burst,
            seed=args.seed,
            recorder=recorder,
        )
        dump = recorder.export(scenario="pressure/evict")
        args.ledger_out.write_text(dump.to_json())
        records = sum(
            len(p.get("records", ())) for p in dump.scenarios.values()
        )
        print(f"ledger: {args.ledger_out} ({records} records)")
    for entry in payload["results"]:
        print(
            f"{entry['label']:>9}: {entry['cycles_per_message']:8.2f} cyc/msg "
            f"dpa={entry['dpa_cycles']:.0f} host={entry['host_matching_cycles']:.0f} "
            f"evicted={entry['evictions']} recalled={entry['recalls']} "
            f"takeovers={entry['takeovers']} peak={entry['peak_charged_bytes']}B"
        )
    ok = payload["pairings_identical"] and payload["overruns_total"] == 0
    print(
        f"pairings identical: {payload['pairings_identical']} | "
        f"overruns: {payload['overruns_total']}"
    )
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

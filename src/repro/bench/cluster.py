"""Cluster-fabric sweep (BENCH_cluster.json).

Runs the cluster workloads (halo / alltoall / hotspot) across a grid
of topologies x placements, each cell a full end-to-end
:class:`repro.net.cluster.ClusterSim` run — the unchanged rdma stack
over the simulated fabric — executed through :mod:`repro.fleet` as
``cluster_bench`` jobs. The cells are independent deterministic
simulations, so the sweep fans out across workers and is
content-addressed: re-running against a warm ``--cache-dir`` executes
nothing and reproduces the identical report.

Per cell the report keeps the observables placement decisions trade
against each other: elapsed ticks (makespan), peak link utilization
and queue wait (contention), retransmits (should be zero on a clean
fabric), and the ledger's total wire time (the fabric's share of
message latency). Every cell must finish clean — all sends delivered,
zero C2 violations — or the bench fails.

Usage::

    PYTHONPATH=src python -m repro.bench.cluster [--out PATH]
    repro-bench cluster [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.net.cluster import ClusterReport

__all__ = ["SWEEP_GRID", "iter_cluster_jobs", "run_bench", "main"]

SCHEMA = "repro.bench.cluster/v1"

DEFAULT_RANKS = 8
DEFAULT_ROUNDS = 3
DEFAULT_SIZE = 512

#: The sweep grid: every app on every topology under every placement.
SWEEP_GRID: dict[str, tuple[str, ...]] = {
    "apps": ("halo", "alltoall", "hotspot"),
    "topologies": ("ring", "torus", "fattree"),
    "placements": ("block", "round_robin"),
}


def iter_cluster_jobs(*, ranks: int, rounds: int, size: int):
    """Lazily enumerate the grid as fleet jobs (stable cell order)."""
    from repro.fleet import JobSpec

    for app in SWEEP_GRID["apps"]:
        for topology in SWEEP_GRID["topologies"]:
            for placement in SWEEP_GRID["placements"]:
                yield JobSpec(
                    kind="cluster_bench",
                    params={
                        "app": app,
                        "ranks": ranks,
                        "topology": topology,
                        "placement": placement,
                        "rounds": rounds,
                        "size": size,
                    },
                )


def _cell(report: ClusterReport, status: str) -> dict:
    results = report.results
    links = results["links"]
    return {
        "app": report.params["app"],
        "topology": report.params["topology"],
        "placement": report.params["placement"],
        "ok": report.ok,
        "cached": status == "cached",
        "sends": results["sends"],
        "deliveries": results["deliveries"],
        "violations": len(results["violations"]),
        "elapsed_ticks": results["elapsed_ticks"],
        "max_utilization": results["fabric"]["max_utilization"],
        "peak_wait": max((l["peak_wait"] for l in links.values()), default=0),
        "retransmits": results["transport"]["retransmits"],
        "wire_ticks": results["phase_totals"].get("wire", 0.0),
        "conservation": results["conservation"],
    }


def run_bench(
    *,
    ranks: int = DEFAULT_RANKS,
    rounds: int = DEFAULT_ROUNDS,
    size: int = DEFAULT_SIZE,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict:
    """Run the full grid and return the BENCH_cluster payload."""
    from repro.fleet import run_jobs

    run = run_jobs(
        iter_cluster_jobs(ranks=ranks, rounds=rounds, size=size),
        jobs=jobs,
        cache_dir=cache_dir,
    )
    run.require_ok()
    cells = [_cell(outcome.result, outcome.status) for outcome in run.outcomes]
    return {
        "schema": SCHEMA,
        "config": {"ranks": ranks, "rounds": rounds, "size": size},
        "cells": cells,
        "failures": [
            f"{c['app']}/{c['topology']}/{c['placement']}"
            for c in cells
            if not c["ok"]
        ],
        "fleet": run.report.summary(),
    }


def format_table(payload: dict) -> str:
    header = (
        f"{'app':<19}{'topology':<14}{'placement':<13}"
        f"{'ticks':>7}{'util':>7}{'wait':>6}{'retx':>6}  ok"
    )
    lines = [header, "-" * len(header)]
    for cell in payload["cells"]:
        lines.append(
            f"{cell['app']:<19}{cell['topology']:<14}{cell['placement']:<13}"
            f"{cell['elapsed_ticks']:>7}{cell['max_utilization']:>7.2f}"
            f"{cell['peak_wait']:>6}{cell['retransmits']:>6}"
            f"  {'yes' if cell['ok'] else 'NO'}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cluster-fabric sweep: apps x topologies x placements"
    )
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--size", type=int, default=DEFAULT_SIZE)
    parser.add_argument("--jobs", type=int, default=1, help="fleet worker count")
    parser.add_argument(
        "--cache-dir", default=None, help="content-addressed result cache"
    )
    parser.add_argument(
        "--out", default="BENCH_cluster.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    payload = run_bench(
        ranks=args.ranks,
        rounds=args.rounds,
        size=args.size,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    print(format_table(payload))
    print(f"fleet: {payload['fleet']}", file=sys.stderr)
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if payload["failures"]:
        print(f"FAIL: unclean cells: {payload['failures']}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

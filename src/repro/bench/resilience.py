"""Recovery-latency sweep (BENCH_resilience.json).

Measures what a rank failure *costs* as a function of the failure
detector's tuning and the repair strategy: a fixed fail-stop (rank 3
dies at global tick 50, mid-round-1 of an 8-rank halo) is replayed
across a grid of {heartbeat timeout ladder + backstop-only} x
{shrink, respawn}, each cell a full deterministic
:func:`repro.resilience.cluster.run_resilient` run executed through
:mod:`repro.fleet` as ``rank_chaos`` jobs (fan-out + content-addressed
caching for free).

Per cell the payload keeps the recovery-latency decomposition:
detection latency (kill -> first suspicion; bounded by ``timeout +
max_route_rtt``), agreement ticks (the survivors' vote rounds), and
total recovery ticks (all non-committed time: aborted epochs +
agreement), against end-to-end makespan. The expected shape: detection
latency tracks the timeout ladder almost linearly while agreement cost
stays flat — the paper-level argument for aggressive timeouts once the
no-false-positive margin is provable.

Usage::

    PYTHONPATH=src python -m repro.bench.resilience [--out PATH]
    repro-bench resilience [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.resilience.cluster import ResilienceReport

__all__ = ["TIMEOUT_LADDER", "RECOVERY_MODES", "iter_resilience_jobs", "run_bench", "main"]

SCHEMA = "repro.bench.resilience/v1"

DEFAULT_RANKS = 8
DEFAULT_ROUNDS = 3
DEFAULT_SIZE = 512

#: Heartbeat timeout ladder (ticks); ``None`` = no heartbeats at all,
#: recovery rides the stall/transport backstop (the worst case every
#: detector configuration must beat).
TIMEOUT_LADDER: tuple[int | None, ...] = (32, 64, 128, 256, None)
RECOVERY_MODES: tuple[str, ...] = ("shrink", "respawn")

#: The fixed fail-stop every cell replays: seeded-schedule variance
#: would drown the detector signal the sweep exists to expose.
_VICTIM = 3
_KILL_TICK = 50
_HB_PERIOD = 16


def iter_resilience_jobs(*, ranks: int, rounds: int, size: int):
    """Lazily enumerate the grid as fleet jobs (stable cell order)."""
    from repro.fleet import JobSpec

    for recovery in RECOVERY_MODES:
        for timeout in TIMEOUT_LADDER:
            yield JobSpec(
                kind="rank_chaos",
                params={
                    "app": "halo",
                    "ranks": ranks,
                    "rounds": rounds,
                    "size": size,
                    "topology": "torus",
                    "placement": "block",
                    "recovery": recovery,
                    "plan": {
                        "seed": 0,
                        "kills": 0,
                        "horizon": 1024,
                        "victims": [_VICTIM],
                        "kill_ticks": [_KILL_TICK],
                    },
                    "heartbeat": (
                        {"period": _HB_PERIOD, "timeout": timeout}
                        if timeout is not None
                        else None
                    ),
                    "record": False,
                },
            )


def _cell(report: ResilienceReport, status: str) -> dict:
    params = report.params
    results = report.results
    hb = params["heartbeat"]
    return {
        "recovery": params["recovery"],
        "timeout": hb["timeout"] if hb is not None else None,
        "detector": "heartbeat" if hb is not None else "backstop",
        "ok": report.ok,
        "cached": status == "cached",
        "kills": len(results["kills"]),
        "failures_detected": results["failures_detected"],
        "false_suspicions": len(results["false_suspicions"]),
        "backstop_aborts": results["backstop_aborts"],
        "detection_latency": results["detection_latency_max"],
        "agreement_ticks": results["agreement_ticks"],
        "recovery_ticks": results["recovery_ticks"],
        "elapsed_ticks": results["elapsed_ticks"],
        "shrinks": results["shrinks"],
        "restarts": results["restarts"],
    }


def run_bench(
    *,
    ranks: int = DEFAULT_RANKS,
    rounds: int = DEFAULT_ROUNDS,
    size: int = DEFAULT_SIZE,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict:
    """Run the full grid and return the BENCH_resilience payload."""
    from repro.fleet import run_jobs

    run = run_jobs(
        iter_resilience_jobs(ranks=ranks, rounds=rounds, size=size),
        jobs=jobs,
        cache_dir=cache_dir,
    )
    run.require_ok()
    cells = [_cell(outcome.result, outcome.status) for outcome in run.outcomes]
    return {
        "schema": SCHEMA,
        "config": {
            "ranks": ranks,
            "rounds": rounds,
            "size": size,
            "victim": _VICTIM,
            "kill_tick": _KILL_TICK,
            "heartbeat_period": _HB_PERIOD,
        },
        "cells": cells,
        "failures": [
            f"{c['recovery']}/timeout={c['timeout']}"
            for c in cells
            if not c["ok"] or c["false_suspicions"]
        ],
        "fleet": run.report.summary(),
    }


def format_table(payload: dict) -> str:
    header = (
        f"{'recovery':<10}{'detector':<11}{'timeout':>8}"
        f"{'detect':>8}{'agree':>7}{'recover':>9}{'total':>7}  ok"
    )
    lines = [header, "-" * len(header)]
    for cell in payload["cells"]:
        timeout = "-" if cell["timeout"] is None else str(cell["timeout"])
        lines.append(
            f"{cell['recovery']:<10}{cell['detector']:<11}{timeout:>8}"
            f"{cell['detection_latency']:>8}{cell['agreement_ticks']:>7}"
            f"{cell['recovery_ticks']:>9}{cell['elapsed_ticks']:>7}"
            f"  {'yes' if cell['ok'] else 'NO'}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="recovery-latency sweep: detector tuning x repair mode"
    )
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--size", type=int, default=DEFAULT_SIZE)
    parser.add_argument("--jobs", type=int, default=1, help="fleet worker count")
    parser.add_argument(
        "--cache-dir", default=None, help="content-addressed result cache"
    )
    parser.add_argument(
        "--out", default="BENCH_resilience.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    payload = run_bench(
        ranks=args.ranks,
        rounds=args.rounds,
        size=args.size,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    print(format_table(payload))
    print(f"fleet: {payload['fleet']}", file=sys.stderr)
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if payload["failures"]:
        print(f"FAIL: unclean cells: {payload['failures']}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

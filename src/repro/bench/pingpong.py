"""The Figure 8 ping-pong message-rate benchmark (§VI).

"We run a ping-pong benchmark, where a node sends a sequence of
k = 100 messages to its peer. Once the peer receives (and matches) all
messages in a sequence, it replies with an acknowledgment. We measure
the message rate as k divided by the time from when the first message
is sent to when the acknowledgment is received. For each run, we
repeat the sequence 500 times."

Time comes from the calibrated cycle models: per sequence,

    t_seq = 2 x latency + max(k x wire_per_message, t_matching)

where ``t_matching`` is the receiver-side matching time of the
configuration under test (DPA blocks + serial dispatch for the
offloaded engine, host matching cycles for MPI-CPU, completion
handling only for RDMA-CPU). The host-cycles column reports what the
offload frees: the host's matching work per message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.engine import OptimisticMatcher
from repro.core.events import MatchKind
from repro.dpa.costs import DpaCostModel, HostCostModel, WireModel
from repro.matching.list_matcher import ListMatcher
from repro.bench.scenarios import (
    PAPER_IN_FLIGHT,
    PAPER_THREADS,
    Scenario,
    SCENARIOS,
)

__all__ = ["RateResult", "PingPongBench", "run_figure8", "format_figure8"]

#: §VI benchmark parameters.
PAPER_K = 100
PAPER_REPETITIONS = 500


@dataclass(frozen=True, slots=True)
class RateResult:
    """Message rate and cost accounting of one configuration."""

    SCHEMA = "repro.bench.rate_result/v1"

    label: str
    message_rate: float  #: messages per second
    sequences: int
    messages: int
    #: Host CPU cycles spent on matching, per message (0 = fully freed).
    host_matching_cycles_per_msg: float
    #: Accelerator cycles per message (0 for host-only baselines).
    dpa_cycles_per_msg: float
    #: Engine path mix (empty for baselines).
    path_mix: dict[str, int]

    # -- JSON round-trip (fleet cache / parallel workers) ---------------

    def to_dict(self) -> dict:
        payload = {name: getattr(self, name) for name in self.__dataclass_fields__}
        payload["path_mix"] = dict(self.path_mix)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RateResult":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__})

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(
            {"schema": self.SCHEMA, **self.to_dict()}, indent=indent, sort_keys=True
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RateResult":
        payload = json.loads(text)
        schema = payload.get("schema", cls.SCHEMA)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported schema {schema!r}, expected {cls.SCHEMA!r}")
        return cls.from_dict(payload)


class PingPongBench:
    """Driver for all Figure 8 configurations."""

    def __init__(
        self,
        *,
        k: int = PAPER_K,
        repetitions: int = PAPER_REPETITIONS,
        in_flight: int = PAPER_IN_FLIGHT,
        threads: int = PAPER_THREADS,
        dpa_costs: DpaCostModel | None = None,
        host_costs: HostCostModel | None = None,
        wire: WireModel | None = None,
        cores: int = 16,
    ) -> None:
        if k <= 0 or repetitions <= 0:
            raise ValueError("k and repetitions must be positive")
        if in_flight < k:
            raise ValueError(
                f"in-flight window {in_flight} must cover one sequence of {k}"
            )
        self.k = k
        self.repetitions = repetitions
        self.in_flight = in_flight
        self.threads = threads
        self.dpa_costs = dpa_costs if dpa_costs is not None else DpaCostModel()
        self.host_costs = host_costs if host_costs is not None else HostCostModel()
        self.wire = wire if wire is not None else WireModel()
        self.cores = cores

    # ------------------------------------------------------------------

    def _sequence_seconds(self, matching_seconds: float) -> float:
        """Compose wire and matching time for one k-message sequence."""
        wire_stream = self.k * self.wire.per_message_s
        return 2 * self.wire.latency_s + max(wire_stream, matching_seconds)

    def run_optimistic(self, scenario: Scenario) -> RateResult:
        """Run one offloaded-engine scenario."""
        engine = OptimisticMatcher(
            scenario.engine_config(in_flight=self.in_flight, threads=self.threads),
            keep_history=True,
        )
        next_post = 0
        next_msg = 0
        # Fill the in-flight receive window.
        for _ in range(self.in_flight):
            engine.post_receive(scenario.receive(next_post))
            next_post += 1
        total_seconds = 0.0
        total_dpa_cycles = 0.0
        post_cycles_per_seq = self.k * self.dpa_costs.post_command
        for _ in range(self.repetitions):
            for _ in range(self.k):
                engine.submit_message(scenario.message(next_msg))
                next_msg += 1
            start_block = len(engine.stats.block_history)
            events = engine.process_all()
            assert all(e.kind is MatchKind.EXPECTED for e in events), (
                "ping-pong sequences must never go unexpected"
            )
            seq_cycles = float(self.k * self.dpa_costs.dispatch_serial)
            seq_cycles += post_cycles_per_seq
            for block in engine.stats.block_history[start_block:]:
                seq_cycles += self.dpa_costs.block_cycles(block, self.cores)
            del engine.stats.block_history[start_block:]
            total_dpa_cycles += seq_cycles
            total_seconds += self._sequence_seconds(
                self.dpa_costs.cycles_to_seconds(seq_cycles)
            )
            # Replenish the receive window (host posts via QP; DPA-side
            # command cost accounted above).
            for _ in range(self.k):
                engine.post_receive(scenario.receive(next_post))
                next_post += 1
        messages = self.k * self.repetitions
        return RateResult(
            label=scenario.label,
            message_rate=messages / total_seconds,
            sequences=self.repetitions,
            messages=messages,
            host_matching_cycles_per_msg=0.0,
            dpa_cycles_per_msg=total_dpa_cycles / messages,
            path_mix=engine.stats.path_mix(),
        )

    def run_mpi_cpu(self) -> RateResult:
        """Traditional linked-list matching on the host CPU."""
        matcher = ListMatcher()
        scenario = SCENARIOS[0]  # NC-style distinct keys
        next_post = 0
        next_msg = 0
        for _ in range(self.in_flight):
            matcher.post_receive(scenario.receive(next_post))
            next_post += 1
        total_seconds = 0.0
        total_host_cycles = 0.0
        for _ in range(self.repetitions):
            walked_before = matcher.costs.walked
            for _ in range(self.k):
                matcher.incoming_message(scenario.message(next_msg))
                next_msg += 1
            walked = matcher.costs.walked - walked_before
            cycles = self.host_costs.matching_cycles(self.k, walked)
            cycles += self.k * self.host_costs.per_post_overhead
            total_host_cycles += cycles
            total_seconds += self._sequence_seconds(
                self.host_costs.cycles_to_seconds(cycles)
            )
            for _ in range(self.k):
                matcher.post_receive(scenario.receive(next_post))
                next_post += 1
        messages = self.k * self.repetitions
        return RateResult(
            label="MPI-CPU",
            message_rate=messages / total_seconds,
            sequences=self.repetitions,
            messages=messages,
            host_matching_cycles_per_msg=total_host_cycles / messages,
            dpa_cycles_per_msg=0.0,
            path_mix={},
        )

    def run_rdma_cpu(self) -> RateResult:
        """Reference baseline: raw RDMA, no matching at all."""
        cycles_per_seq = self.k * self.host_costs.rdma_per_message
        seq_seconds = self._sequence_seconds(
            self.host_costs.cycles_to_seconds(cycles_per_seq)
        )
        total_seconds = seq_seconds * self.repetitions
        messages = self.k * self.repetitions
        return RateResult(
            label="RDMA-CPU",
            message_rate=messages / total_seconds,
            sequences=self.repetitions,
            messages=messages,
            host_matching_cycles_per_msg=0.0,
            dpa_cycles_per_msg=0.0,
            path_mix={},
        )

    def run_all(self) -> list[RateResult]:
        """Every Figure 8 configuration, paper order."""
        results = [self.run_optimistic(scenario) for scenario in SCENARIOS]
        results.append(self.run_mpi_cpu())
        results.append(self.run_rdma_cpu())
        return results


def run_figure8(
    *, k: int = PAPER_K, repetitions: int = 50, in_flight: int = PAPER_IN_FLIGHT
) -> list[RateResult]:
    """Convenience wrapper with a CI-friendly default repetition count
    (pass ``repetitions=500`` for the full §VI parameters)."""
    bench = PingPongBench(k=k, repetitions=repetitions, in_flight=in_flight)
    return bench.run_all()


def format_figure8(results: list[RateResult]) -> str:
    lines = [
        f"{'Configuration':24s} {'Mmsg/s':>8s} {'host cyc/msg':>13s} "
        f"{'DPA cyc/msg':>12s}  path mix"
    ]
    for result in results:
        mix = (
            " ".join(f"{k}={v}" for k, v in result.path_mix.items())
            if result.path_mix
            else "-"
        )
        lines.append(
            f"{result.label:24s} {result.message_rate / 1e6:8.2f} "
            f"{result.host_matching_cycles_per_msg:13.1f} "
            f"{result.dpa_cycles_per_msg:12.1f}  {mix}"
        )
    return "\n".join(lines)

"""Figure 8 message-rate benchmark harness."""

from repro.bench.apps import AppRate, app_message_rate
from repro.bench.latency import LatencyDistribution, dpa_latencies, host_latencies
from repro.bench.pingpong import (
    PAPER_K,
    PAPER_REPETITIONS,
    PingPongBench,
    RateResult,
    format_figure8,
    run_figure8,
)
from repro.bench.scenarios import (
    PAPER_BINS,
    PAPER_IN_FLIGHT,
    PAPER_THREADS,
    SCENARIOS,
    Scenario,
    scenario_by_name,
)

__all__ = [
    "AppRate",
    "LatencyDistribution",
    "PAPER_BINS",
    "PAPER_IN_FLIGHT",
    "PAPER_K",
    "PAPER_REPETITIONS",
    "PAPER_THREADS",
    "PingPongBench",
    "RateResult",
    "SCENARIOS",
    "Scenario",
    "app_message_rate",
    "dpa_latencies",
    "format_figure8",
    "host_latencies",
    "run_figure8",
    "scenario_by_name",
]

"""Per-application offloaded message rate — joining the paper's halves.

Section V characterizes the applications' matching behaviour; §VI
measures message rates on synthetic NC/WC extremes. This module puts
them together: replay an application's real traffic through the
optimistic engine, charge it with the DPA cycle model, and report the
message rate that application's matching profile would sustain on the
accelerator — plus where it sits between the Figure 8 extremes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.dpa.costs import DpaCostModel
from repro.traces.model import OpGroup, OpKind, Trace

__all__ = ["AppRate", "app_message_rate"]


@dataclass(frozen=True, slots=True)
class AppRate:
    """Sustained offloaded matching rate for one application."""

    name: str
    messages: int
    dpa_cycles: float
    message_rate: float  #: messages/second of pure matching service
    conflict_rate: float
    unexpected_fraction: float

    def cycles_per_message(self) -> float:
        return self.dpa_cycles / self.messages if self.messages else 0.0


def app_message_rate(
    trace: Trace,
    *,
    config: EngineConfig | None = None,
    costs: DpaCostModel | None = None,
    cores: int = 16,
) -> AppRate:
    """Replay a trace through per-rank engines with cycle charging.

    The rate is the matching-service capacity: total messages divided
    by the summed per-block DPA time plus serial dispatch — the
    ceiling matching imposes on the application's message stream,
    wire costs excluded (those are matcher-independent).
    """
    if config is None:
        config = EngineConfig(bins=128, block_threads=32, max_receives=1 << 14)
    costs = costs if costs is not None else DpaCostModel()
    engines = [
        OptimisticMatcher(config, keep_history=True) for _ in range(trace.nprocs)
    ]

    ops = []
    for rank_trace in trace.ranks:
        for position, op in enumerate(rank_trace.ops):
            ops.append((op.walltime, rank_trace.rank, position, op))
    ops.sort(key=lambda item: (item[0], item[1], item[2]))

    send_seq: dict[int, int] = {}
    for _, rank, _, op in ops:
        if op.group is not OpGroup.P2P:
            continue
        if op.kind in (OpKind.IRECV, OpKind.RECV):
            engine = engines[rank]
            engine.process_all()
            engine.post_receive(ReceiveRequest(source=op.peer, tag=op.tag, size=op.size))
        else:
            seq = send_seq.get(rank, 0)
            send_seq[rank] = seq + 1
            dest = engines[op.peer]
            dest.submit_message(
                MessageEnvelope(source=rank, tag=op.tag, size=op.size, send_seq=seq)
            )
            if dest.pending_messages >= config.block_threads:
                dest.process_block()
    for engine in engines:
        engine.process_all()

    total_cycles = 0.0
    messages = 0
    conflicts = 0
    unexpected = 0
    for engine in engines:
        messages += engine.stats.messages
        conflicts += engine.stats.conflicts
        unexpected += engine.stats.unexpected_stored
        total_cycles += engine.stats.messages * costs.dispatch_serial
        for block in engine.stats.block_history:
            total_cycles += costs.block_cycles(block, cores)
    seconds = costs.cycles_to_seconds(total_cycles)
    return AppRate(
        name=trace.name,
        messages=messages,
        dpa_cycles=total_cycles,
        message_rate=messages / seconds if seconds else 0.0,
        conflict_rate=conflicts / messages if messages else 0.0,
        unexpected_fraction=unexpected / messages if messages else 0.0,
    )

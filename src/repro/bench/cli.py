"""Command-line entry point: ``repro-msgrate``.

Regenerates Figure 8:

    repro-msgrate                      # CI-scale repetitions
    repro-msgrate --repetitions 500    # full paper parameters
    repro-msgrate --scenario wc-fp     # one configuration only
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.pingpong import (
    PAPER_K,
    PingPongBench,
    format_figure8,
)
from repro.bench.scenarios import PAPER_IN_FLIGHT, PAPER_THREADS, scenario_by_name

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-msgrate",
        description="Figure 8 message-rate benchmark (ping-pong, §VI)",
    )
    parser.add_argument("--k", type=int, default=PAPER_K, help="messages per sequence")
    parser.add_argument(
        "--repetitions", type=int, default=50, help="sequences per run (paper: 500)"
    )
    parser.add_argument(
        "--in-flight", type=int, default=PAPER_IN_FLIGHT, help="posted-receive window"
    )
    parser.add_argument(
        "--threads", type=int, default=PAPER_THREADS, help="DPA block threads"
    )
    parser.add_argument(
        "--scenario",
        choices=("nc", "wc-fp", "wc-sp", "mpi-cpu", "rdma-cpu", "all"),
        default="all",
    )
    parser.add_argument(
        "--plot", action="store_true", help="render rates as a terminal bar chart"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    bench = PingPongBench(
        k=args.k,
        repetitions=args.repetitions,
        in_flight=args.in_flight,
        threads=args.threads,
    )
    if args.scenario == "all":
        results = bench.run_all()
    elif args.scenario == "mpi-cpu":
        results = [bench.run_mpi_cpu()]
    elif args.scenario == "rdma-cpu":
        results = [bench.run_rdma_cpu()]
    else:
        results = [bench.run_optimistic(scenario_by_name(args.scenario))]
    print(format_figure8(results))
    if args.plot:
        from repro.util.asciiplot import hbar_chart

        print("\nmessage rate (Mmsg/s):")
        print(
            hbar_chart(
                {r.label: round(r.message_rate / 1e6, 2) for r in results},
                unit=" M/s",
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line entry point: ``repro-msgrate``.

Regenerates Figure 8:

    repro-msgrate                      # CI-scale repetitions
    repro-msgrate --repetitions 500    # full paper parameters
    repro-msgrate --scenario wc-fp     # one configuration only
    repro-msgrate --jobs 4 --cache-dir .fleet-cache

With ``--jobs N`` the scenario grid fans out over a
:mod:`repro.fleet` worker pool; ``--cache-dir`` memoizes per-scenario
results content-addressed. Output order and bytes match a serial run.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.pingpong import (
    PAPER_K,
    PingPongBench,
    RateResult,
    format_figure8,
)
from repro.bench.scenarios import PAPER_IN_FLIGHT, PAPER_THREADS, scenario_by_name

__all__ = ["main", "iter_bench_jobs"]

#: ``run_all`` order: the three optimistic scenarios, then the two
#: CPU baselines.
_ALL_SCENARIOS = ("nc", "wc-fp", "wc-sp", "mpi-cpu", "rdma-cpu")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-msgrate",
        description="Figure 8 message-rate benchmark (ping-pong, §VI)",
    )
    parser.add_argument("--k", type=int, default=PAPER_K, help="messages per sequence")
    parser.add_argument(
        "--repetitions", type=int, default=50, help="sequences per run (paper: 500)"
    )
    parser.add_argument(
        "--in-flight", type=int, default=PAPER_IN_FLIGHT, help="posted-receive window"
    )
    parser.add_argument(
        "--threads", type=int, default=PAPER_THREADS, help="DPA block threads"
    )
    parser.add_argument(
        "--scenario",
        choices=_ALL_SCENARIOS + ("all",),
        default="all",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fleet worker processes for the scenario grid (1 = inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache for scenario runs",
    )
    parser.add_argument(
        "--plot", action="store_true", help="render rates as a terminal bar chart"
    )
    return parser


def iter_bench_jobs(scenarios, *, k, repetitions, in_flight, threads):
    """Lazily enumerate Figure 8 scenarios as fleet jobs (paper order)."""
    from repro.fleet import JobSpec

    for name in scenarios:
        yield JobSpec(
            kind="bench_scenario",
            params={
                "scenario": name,
                "k": k,
                "repetitions": repetitions,
                "in_flight": in_flight,
                "threads": threads,
            },
        )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scenarios = _ALL_SCENARIOS if args.scenario == "all" else (args.scenario,)
    if args.jobs != 1 or args.cache_dir is not None:
        from repro.fleet import run_jobs

        run = run_jobs(
            iter_bench_jobs(
                scenarios,
                k=args.k,
                repetitions=args.repetitions,
                in_flight=args.in_flight,
                threads=args.threads,
            ),
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
        run.require_ok()
        results: list[RateResult] = list(run.results())
        print(f"fleet: {run.report.summary()}", file=sys.stderr)
    else:
        bench = PingPongBench(
            k=args.k,
            repetitions=args.repetitions,
            in_flight=args.in_flight,
            threads=args.threads,
        )
        if args.scenario == "all":
            results = bench.run_all()
        elif args.scenario == "mpi-cpu":
            results = [bench.run_mpi_cpu()]
        elif args.scenario == "rdma-cpu":
            results = [bench.run_rdma_cpu()]
        else:
            results = [bench.run_optimistic(scenario_by_name(args.scenario))]
    print(format_figure8(results))
    if args.plot:
        from repro.util.asciiplot import hbar_chart

        print("\nmessage rate (Mmsg/s):")
        print(
            hbar_chart(
                {r.label: round(r.message_rate / 1e6, 2) for r in results},
                unit=" M/s",
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Reliability-layer overhead baseline (BENCH_reliability.json).

A ping-pong exchange (k messages one way, one ack back, repeated) is
run twice over the reliable transport: once on a clean wire, once on a
wire dropping 1% of frames. Time is simulated ticks — every
``ReliableWire.receive`` poll is one tick, the same clock the
retransmission timers run on — so the numbers are deterministic and
measure exactly what recovery costs: extra polls spent waiting out
timeouts plus retransmitted frames.

Usage::

    PYTHONPATH=src python -m repro.bench.reliability [--out PATH]
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, ScopedTracer, SpanTracer
from repro.rdma.faultwire import FaultPlan, FaultyWire
from repro.rdma.reliability import ReliableWire
from repro.rdma.wire import Packet

__all__ = ["ReliabilityBenchResult", "run_pingpong", "run_bench", "main"]

#: §VI-style parameters, scaled for the simulator.
DEFAULT_K = 100
DEFAULT_SEQUENCES = 50
DEFAULT_DROP_RATE = 0.01
DEFAULT_SEED = 1


@dataclass(frozen=True, slots=True)
class ReliabilityBenchResult:
    """One configuration's ping-pong outcome in simulated ticks."""

    label: str
    messages: int
    ticks: int
    ticks_per_message: float
    #: Messages per simulated tick — the benchmark's "rate" axis.
    message_rate: float
    retransmits: int
    timeouts: int
    frames_dropped: int
    duplicates_dropped: int


def run_pingpong(
    label: str,
    plan: FaultPlan,
    *,
    k: int = DEFAULT_K,
    sequences: int = DEFAULT_SEQUENCES,
    tracer: SpanTracer = NULL_TRACER,
    registry: MetricsRegistry | None = None,
) -> ReliabilityBenchResult:
    """k messages a->b, one ack b->a, repeated; count receive() ticks."""
    raw = FaultyWire("a", "b", plan=plan)
    wire = ReliableWire(raw, tracer=tracer)
    if registry is not None:
        registry.register_stats(f"bench.{label}.rc", wire.stats)
        registry.register_stats(f"bench.{label}.faults", raw.stats)
    ticks = 0

    def exchange(src: str, dst: str, count: int) -> None:
        nonlocal ticks
        for i in range(count):
            wire.transmit(src, Packet("msg", i))
        got = 0
        while got < count or wire.in_flight() > 0:
            if wire.receive(dst) is not None:
                got += 1
            wire.receive(src)
            ticks += 2

    for _ in range(sequences):
        exchange("a", "b", k)  # the k-message sequence
        exchange("b", "a", 1)  # the acknowledgment

    messages = sequences * (k + 1)
    return ReliabilityBenchResult(
        label=label,
        messages=messages,
        ticks=ticks,
        ticks_per_message=ticks / messages,
        message_rate=messages / ticks,
        retransmits=wire.stats.retransmits,
        timeouts=wire.stats.timeouts,
        frames_dropped=raw.stats.dropped,
        duplicates_dropped=wire.stats.duplicates_dropped,
    )


def run_bench(
    *,
    k: int = DEFAULT_K,
    sequences: int = DEFAULT_SEQUENCES,
    drop_rate: float = DEFAULT_DROP_RATE,
    seed: int = DEFAULT_SEED,
    tracer: SpanTracer = NULL_TRACER,
    registry: MetricsRegistry | None = None,
) -> dict:
    clean = run_pingpong(
        "clean",
        FaultPlan.clean(seed),
        k=k,
        sequences=sequences,
        tracer=ScopedTracer(tracer, "clean/"),
        registry=registry,
    )
    lossy = run_pingpong(
        f"drop-{drop_rate:g}",
        FaultPlan.drops(drop_rate, seed),
        k=k,
        sequences=sequences,
        tracer=ScopedTracer(tracer, "lossy/"),
        registry=registry,
    )
    return {
        "benchmark": "reliability-pingpong",
        "params": {
            "k": k,
            "sequences": sequences,
            "drop_rate": drop_rate,
            "seed": seed,
        },
        "results": [asdict(clean), asdict(lossy)],
        "slowdown": lossy.ticks / clean.ticks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[3] / "BENCH_reliability.json",
    )
    parser.add_argument("--k", type=int, default=DEFAULT_K)
    parser.add_argument("--sequences", type=int, default=DEFAULT_SEQUENCES)
    parser.add_argument("--drop-rate", type=float, default=DEFAULT_DROP_RATE)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Perfetto-loadable trace of both runs (wire ticks)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a metrics snapshot of both wires' counters (JSON)",
    )
    args = parser.parse_args(argv)
    tracer = SpanTracer() if args.trace_out else NULL_TRACER
    registry = MetricsRegistry() if args.metrics_out else None
    payload = run_bench(
        k=args.k,
        sequences=args.sequences,
        drop_rate=args.drop_rate,
        seed=args.seed,
        tracer=tracer,
        registry=registry,
    )
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    if args.trace_out:
        tracer.write(args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer)} events)")
    if registry is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            fp.write(registry.snapshot().to_json())
        print(f"metrics: {args.metrics_out}")
    clean, lossy = payload["results"]
    print(
        f"clean: {clean['ticks_per_message']:.2f} ticks/msg | "
        f"{payload['params']['drop_rate']:.0%} drop: "
        f"{lossy['ticks_per_message']:.2f} ticks/msg "
        f"({payload['slowdown']:.2f}x, {lossy['retransmits']} retransmits)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Bin-based matcher in the style of Flajslik et al. (Table I).

Two hash tables replace the traditional two queues: posted receives
and unexpected messages are binned by a hash of ``(source, tag)``, and
*timestamps* preserve matching order. Receives using wildcards cannot
be binned, so they live in a separate ordered list that every incoming
message must also check — the min-timestamp winner across bucket and
wildcard list is matched (this is how the original proposal preserves
C1). For an implementation with *b* bins the expected search cost
drops from O(n) to O(n/b), degrading back to O(n) when keys collide in
one bin — exactly the behaviour Fig. 7 quantifies.
"""

from __future__ import annotations

from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind, ResolutionPath
from repro.core.hashing import hash_src_tag
from repro.core.indexes import HashTable
from repro.matching.base import Matcher
from repro.util.counters import MonotonicCounter
from repro.util.intrusive import IntrusiveList, IntrusiveNode

__all__ = ["BinMatcher"]


class _Posted:
    __slots__ = ("request", "timestamp")

    def __init__(self, request: ReceiveRequest, timestamp: int) -> None:
        self.request = request
        self.timestamp = timestamp


class _Unexpected:
    __slots__ = ("envelope", "timestamp", "bucket_node", "order_node")

    def __init__(self, envelope: MessageEnvelope, timestamp: int) -> None:
        self.envelope = envelope
        self.timestamp = timestamp
        self.bucket_node: IntrusiveNode | None = None
        self.order_node: IntrusiveNode | None = None


class BinMatcher(Matcher):
    """Hash-binned serial matcher with timestamp ordering."""

    name = "bin-based"

    def __init__(self, bins: int = 128) -> None:
        super().__init__()
        self._bins = bins
        self._prq = HashTable(bins)
        #: Receives with any wildcard, in posting order.
        self._prq_wild: IntrusiveList[_Posted] = IntrusiveList()
        self._umq = HashTable(bins)
        #: All unexpected messages in arrival order (wildcard drains).
        self._umq_order: IntrusiveList[_Unexpected] = IntrusiveList()
        self._clock = MonotonicCounter()

    @property
    def bins(self) -> int:
        return self._bins

    @property
    def posted_count(self) -> int:
        return self._prq.total_live() + len(self._prq_wild)

    @property
    def unexpected_count(self) -> int:
        return len(self._umq_order)

    def queue_depths(self) -> list[int]:
        """Per-bin PRQ depth (wildcard list reported separately)."""
        return self._prq.depths()

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        self.costs.posts += 1
        timestamp = self._clock.next()
        drained = self._drain_unexpected(request)
        if drained is not None:
            return MatchEvent(
                decision_order=self.decisions.next(),
                kind=MatchKind.UNEXPECTED_DRAIN,
                message=drained.envelope,
                receive=request,
                receive_post_label=timestamp,
                path=ResolutionPath.SERIAL,
            )
        posted = _Posted(request, timestamp)
        if request.wildcard_class().name == "NONE":
            self._prq.bucket(hash_src_tag(request.source, request.tag)).append(posted)
        else:
            self._prq_wild.append(posted)
        return None

    def _drain_unexpected(self, request: ReceiveRequest) -> _Unexpected | None:
        walked = 0
        found: _Unexpected | None = None
        if request.wildcard_class().name == "NONE":
            self.costs.buckets += 1
            chain = self._umq.bucket(hash_src_tag(request.source, request.tag))
            for node in chain.iter_nodes():
                walked += 1
                um: _Unexpected = node.payload
                if request.matches(um.envelope):
                    found = um
                    break
        else:
            # Wildcard receive: arrival-ordered global list.
            for node in self._umq_order.iter_nodes():
                walked += 1
                um = node.payload
                if request.matches(um.envelope):
                    found = um
                    break
        self.costs.record_walk(walked)
        if found is None:
            return None
        if found.bucket_node is not None and found.bucket_node.owner is not None:
            found.bucket_node.owner.unlink(found.bucket_node)
        if found.order_node is not None and found.order_node.owner is not None:
            found.order_node.owner.unlink(found.order_node)
        return found

    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent:
        self.costs.messages += 1
        self.costs.buckets += 1
        walked = 0
        best: tuple[IntrusiveNode, _Posted] | None = None
        bucket = self._prq.bucket(hash_src_tag(msg.source, msg.tag))
        for node in bucket.iter_nodes():
            walked += 1
            posted: _Posted = node.payload
            if posted.request.matches(msg):
                best = (node, posted)
                break
        for node in self._prq_wild.iter_nodes():
            walked += 1
            posted = node.payload
            if posted.request.matches(msg):
                if best is None or posted.timestamp < best[1].timestamp:
                    best = (node, posted)
                break
        self.costs.record_walk(walked)
        if best is not None:
            node, posted = best
            node.owner.unlink(node)
            return MatchEvent(
                decision_order=self.decisions.next(),
                kind=MatchKind.EXPECTED,
                message=msg,
                receive=posted.request,
                receive_post_label=posted.timestamp,
                path=ResolutionPath.SERIAL,
            )
        um = _Unexpected(msg, self._clock.next())
        um.bucket_node = self._umq.bucket(hash_src_tag(msg.source, msg.tag)).append(um)
        um.order_node = self._umq_order.append(um)
        return MatchEvent(
            decision_order=self.decisions.next(),
            kind=MatchKind.STORED_UNEXPECTED,
            message=msg,
            receive=None,
            receive_post_label=None,
        )

"""Adapter exposing :class:`OptimisticMatcher` under the serial
:class:`repro.matching.base.Matcher` interface.

The engine is block-based: messages buffer until a block of N is
available (or :meth:`flush` forces a partial block). The adapter is
what lets the oracle and the Table I comparison drive the optimistic
engine through the exact same op stream as the serial baselines.
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent
from repro.core.threadsim import SchedulePolicy
from repro.matching.base import Matcher

__all__ = ["OptimisticAdapter"]


class OptimisticAdapter(Matcher):
    """Drive the optimistic engine with a serial op stream.

    ``eager_blocks`` controls when buffered messages are matched:

    * ``True`` (default): a block runs as soon as N messages queue up,
      and any posting of a receive first flushes pending messages —
      this keeps decisions identical to a serial matcher's, because a
      post never observes a stale unexpected store.
    * ``False``: blocks run only on explicit :meth:`flush`; callers
      must not interleave posts with buffered messages.
    """

    name = "optimistic"

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        policy: SchedulePolicy | None = None,
        eager_blocks: bool = True,
        comm: int = 0,
        observer=None,
        engine_cls: type[OptimisticMatcher] = OptimisticMatcher,
    ) -> None:
        """``engine_cls`` selects the engine implementation — mutation
        tests and the online watchdog lanes pass the deliberately
        broken variants from :mod:`repro.core.faults` here."""
        super().__init__()
        self.engine = engine_cls(config, policy=policy, comm=comm, observer=observer)
        self._eager = eager_blocks
        self._emitted: list[MatchEvent] = []

    @property
    def posted_count(self) -> int:
        return self.engine.posted_receives

    @property
    def unexpected_count(self) -> int:
        return self.engine.unexpected_count

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        self.costs.posts += 1
        if self._eager:
            # A post is a host->DPA QP command; the DPA drains the
            # completion queue before handling it, so the unexpected
            # store the post sees is up to date.
            self._emitted.extend(self.engine.process_all())
        return self.engine.post_receive(request)

    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent | None:
        self.costs.messages += 1
        self.engine.submit_message(msg)
        if self._eager and self.engine.pending_messages >= self.engine.config.block_threads:
            self._emitted.extend(self.engine.process_block())
        return None

    def flush(self) -> list[MatchEvent]:
        """Run remaining blocks and return all events emitted since the
        previous flush, in message-arrival order."""
        self._emitted.extend(self.engine.process_all())
        events, self._emitted = self._emitted, []
        return events

"""Multithreaded host matching with lock contention.

The introduction motivates offload partly via MPI_THREAD_MULTIPLE:
"the need to lock the lists to ensure thread safety further
exacerbates the problem" (citing "Measuring multithreaded message
matching misery"). This module models that configuration: T host
threads share the traditional PRQ/UMQ, every operation takes a global
queue lock, and contention is charged by a standard closed-form model
(serialization of the critical section plus a cache-line transfer per
handoff).

The model produces the well-known misery curve — per-message matching
cost *rising* with thread count — which the optimistic engine's
per-receive bitmaps and partial barrier avoid. Used by the
``test_ablation_multithreaded`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.list_matcher import ListMatcher
from repro.matching.oracle import StreamOp, run_stream

__all__ = ["ContentionModel", "ThreadedHostResult", "simulate_threaded_host"]


@dataclass(frozen=True, slots=True)
class ContentionModel:
    """Cycle costs of lock-protected matching on the host."""

    clock_ghz: float = 3.0
    #: Lock acquire+release, uncontended.
    lock_base: int = 40
    #: Cache-line transfer when the lock migrates between cores.
    lock_handoff: int = 120
    #: Queue-walk cost per element (same as HostCostModel).
    chain_walk: int = 10
    #: Per-message software overhead outside the critical section.
    per_message: int = 200

    def critical_section_cycles(self, walked_per_op: float) -> float:
        """Cycles spent holding the lock for one matching operation."""
        return self.lock_base + walked_per_op * self.chain_walk

    def per_op_cycles(self, threads: int, walked_per_op: float) -> float:
        """Effective cycles per operation with T contending threads.

        The critical section serializes; with more than one thread the
        lock ping-pongs between cores, adding a handoff per acquire,
        and every thread's progress is gated by the serialized total:
        cost ≈ out-of-lock work + T × (critical section + handoff).
        """
        if threads <= 0:
            raise ValueError(f"thread count must be positive, got {threads}")
        critical = self.critical_section_cycles(walked_per_op)
        if threads == 1:
            return self.per_message + critical
        return self.per_message + threads * (critical + self.lock_handoff)


@dataclass(frozen=True, slots=True)
class ThreadedHostResult:
    threads: int
    messages: int
    walked_per_message: float
    cycles_per_message: float
    message_rate: float  #: messages/second across all threads


def simulate_threaded_host(
    ops: list[StreamOp],
    threads: int,
    model: ContentionModel | None = None,
) -> ThreadedHostResult:
    """Run ``ops`` through the shared-queue matcher and price it for
    ``threads`` contending host threads."""
    model = model if model is not None else ContentionModel()
    matcher = ListMatcher()
    run_stream(matcher, ops)
    messages = sum(1 for op in ops if op.kind == "message")
    if messages == 0:
        return ThreadedHostResult(threads, 0, 0.0, 0.0, 0.0)
    walked_per_message = matcher.costs.walked / max(matcher.costs.messages, 1)
    per_op = model.per_op_cycles(threads, walked_per_message)
    seconds_per_message = per_op / (model.clock_ghz * 1e9)
    return ThreadedHostResult(
        threads=threads,
        messages=messages,
        walked_per_message=walked_per_message,
        cycles_per_message=per_op,
        message_rate=1.0 / seconds_per_message,
    )

"""Reference semantics and cross-matcher validation.

The linked-list matcher defines MPI-correct matching. This module
drives any matcher and the oracle through the same operation stream
and checks three things:

1. **Pairing equality** — every message pairs with the same receive
   (receives are identified by their ``handle``, which the driver sets
   to the posting index; messages by ``(source, send_seq, comm)``).
2. **C1** — when a message matched receive *R*, no older live receive
   matching the same message existed at decision time. Pairing
   equality against the oracle implies this, but the checker also
   audits it directly from the event stream for defense in depth.
3. **C2** — for each (sender, matched-receive-stream) the match order
   follows send order: the sequence of ``send_seq`` values matched
   per source is increasing within equal-envelope message groups.

The op stream format is deliberately simple — a list of
:class:`StreamOp` — so hypothesis can generate arbitrary streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind
from repro.matching.base import Matcher
from repro.matching.list_matcher import ListMatcher

__all__ = ["StreamOp", "run_stream", "pairings", "check_c2", "ValidationError", "cross_validate"]


class ValidationError(AssertionError):
    """A matcher disagreed with the oracle or violated a constraint."""


@dataclass(frozen=True, slots=True)
class StreamOp:
    """One operation of a matcher driver stream."""

    kind: Literal["post", "message"]
    source: int = 0
    tag: int = 0
    comm: int = 0

    @staticmethod
    def post(source: int, tag: int, comm: int = 0) -> "StreamOp":
        return StreamOp("post", source, tag, comm)

    @staticmethod
    def message(source: int, tag: int, comm: int = 0) -> "StreamOp":
        return StreamOp("message", source, tag, comm)


def run_stream(matcher: Matcher, ops: list[StreamOp]) -> list[MatchEvent]:
    """Feed ``ops`` to ``matcher`` and collect every emitted event.

    Receive handles are set to the posting index; message ``send_seq``
    is a per-source counter — together they give stable identities for
    cross-matcher comparison.
    """
    events: list[MatchEvent] = []
    post_index = 0
    send_seq: dict[int, int] = {}
    for op in ops:
        if op.kind == "post":
            request = ReceiveRequest(
                source=op.source, tag=op.tag, comm=op.comm, handle=post_index
            )
            post_index += 1
            event = matcher.post_receive(request)
            if event is not None:
                events.append(event)
        else:
            seq = send_seq.get(op.source, 0)
            send_seq[op.source] = seq + 1
            msg = MessageEnvelope(source=op.source, tag=op.tag, comm=op.comm, send_seq=seq)
            event = matcher.incoming_message(msg)
            if event is not None:
                events.append(event)
    events.extend(matcher.flush())
    return events


def pairings(events: list[MatchEvent]) -> dict[tuple[int, int, int], int | None]:
    """Map message identity -> matched receive handle (None=unexpected).

    A message stored unexpected and drained later appears twice in the
    event stream; the drain (the final pairing) wins.
    """
    result: dict[tuple[int, int, int], int | None] = {}
    for event in events:
        msg_id = (event.message.source, event.message.send_seq, event.message.comm)
        if event.kind is MatchKind.STORED_UNEXPECTED:
            result.setdefault(msg_id, None)
        else:
            assert event.receive is not None
            result[msg_id] = event.receive.handle
    return result


def check_c2(events: list[MatchEvent]) -> None:
    """Audit non-overtaking from an event stream.

    For every sender, among messages that matched receives with
    identical envelopes (same source/tag/comm pattern), match order
    must follow send order. Equal-envelope receives are
    interchangeable targets, so the audit checks that the k-th matched
    message of such a group is the k-th sent.
    """
    # Audit in semantic decision order; buffered (block-based) matchers
    # emit events out of decision order in the raw list.
    if all(event.decision_order >= 0 for event in events):
        events = sorted(events, key=lambda event: event.decision_order)
    # Group matched messages by (sender, receive envelope pattern).
    groups: dict[tuple[int, int, int, int], list[int]] = {}
    for event in events:
        if event.kind is MatchKind.STORED_UNEXPECTED or event.receive is None:
            continue
        key = (
            event.message.source,
            event.receive.source,
            event.receive.tag,
            event.receive.comm,
        )
        groups.setdefault(key, []).append(event.message.send_seq)
    for key, seqs in groups.items():
        if seqs != sorted(seqs):
            raise ValidationError(
                f"C2 violated for sender/receive-pattern {key}: match order {seqs}"
            )


def cross_validate(matcher: Matcher, ops: list[StreamOp]) -> list[MatchEvent]:
    """Run ``ops`` through ``matcher`` and a fresh oracle; compare.

    Returns the matcher's events on success, raises
    :class:`ValidationError` on any divergence.
    """
    oracle_events = run_stream(ListMatcher(), ops)
    matcher_events = run_stream(matcher, ops)
    expected = pairings(oracle_events)
    actual = pairings(matcher_events)
    if expected != actual:
        diffs = {
            key: (expected.get(key), actual.get(key))
            for key in set(expected) | set(actual)
            if expected.get(key) != actual.get(key)
        }
        raise ValidationError(
            f"{matcher.name} diverged from oracle on {len(diffs)} messages: "
            f"{dict(sorted(diffs.items())[:10])}"
        )
    check_c2(matcher_events)
    return matcher_events

"""Tag-matching strategies (Table I) and validation tooling.

* :class:`ListMatcher` — traditional two-queue linked lists (the
  MPI-CPU baseline and the reproduction's oracle)
* :class:`BinMatcher` — Flajslik-style binned hash tables
* :class:`RankMatcher` — Dózsa-style per-source-rank queues
* :class:`OptimisticAdapter` — the paper's engine behind the common
  serial interface
* :class:`FallbackMatcher` — optimistic engine with automatic software
  fallback on descriptor-table overflow
* :mod:`repro.matching.oracle` — cross-validation of any matcher
  against the reference semantics
"""

from repro.matching.adaptive import AdaptiveMatcher
from repro.matching.base import Matcher, MatcherCosts
from repro.matching.bin_matcher import BinMatcher
from repro.matching.channel_matcher import ChannelMatcher, ChannelSemanticsError
from repro.matching.fallback import FallbackMatcher
from repro.matching.list_matcher import ListMatcher
from repro.matching.optimistic_adapter import OptimisticAdapter
from repro.matching.oracle import (
    StreamOp,
    ValidationError,
    check_c2,
    cross_validate,
    pairings,
    run_stream,
)
from repro.matching.rank_matcher import RankMatcher
from repro.matching.threaded_host import (
    ContentionModel,
    ThreadedHostResult,
    simulate_threaded_host,
)

__all__ = [
    "AdaptiveMatcher",
    "BinMatcher",
    "ChannelMatcher",
    "ChannelSemanticsError",
    "FallbackMatcher",
    "ListMatcher",
    "Matcher",
    "MatcherCosts",
    "OptimisticAdapter",
    "RankMatcher",
    "ContentionModel",
    "ThreadedHostResult",
    "simulate_threaded_host",
    "StreamOp",
    "ValidationError",
    "check_c2",
    "cross_validate",
    "pairings",
    "run_stream",
]

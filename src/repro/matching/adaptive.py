"""Adaptive/dynamic matcher in the style of Bayatpour et al. (Table I).

Table I classifies prior art by *nature*: static designs fix the
matching structure for the application's lifetime; the dynamic design
of Bayatpour et al. monitors matching behaviour at runtime and
switches between the traditional queue and bin-/rank-partitioned
layouts when the observed search cost justifies the migration.

:class:`AdaptiveMatcher` reproduces that idea behind the common
interface: it starts on the traditional linked list (cheapest at low
queue depth — no hashing, no extra pointers), samples the mean search
walk over a sliding window, and migrates live state to a bin-based
layout once the walk cost crosses a threshold (and back, with
hysteresis, if queues stay shallow). Migrations preserve posting and
arrival order, so semantics are oracle-identical throughout — which
the test suite checks property-style.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind
from repro.matching.base import Matcher
from repro.matching.bin_matcher import BinMatcher
from repro.matching.list_matcher import ListMatcher

__all__ = ["AdaptiveMatcher"]


class AdaptiveMatcher(Matcher):
    """Runtime-switching matcher (the Table I 'Dynamic' row)."""

    name = "adaptive (dynamic)"

    def __init__(
        self,
        *,
        bins: int = 128,
        window: int = 64,
        promote_walk: float = 8.0,
        demote_walk: float = 1.0,
        min_dwell: int = 128,
    ) -> None:
        """
        Parameters
        ----------
        window:
            Sliding window of per-operation walk samples.
        promote_walk:
            Mean walk (entries/op) above which the matcher migrates to
            the binned layout.
        demote_walk:
            Mean walk below which it returns to the list (must be
            comfortably below ``promote_walk`` — hysteresis).
        min_dwell:
            Minimum operations between migrations (flap damping).
        """
        super().__init__()
        if demote_walk >= promote_walk:
            raise ValueError(
                f"hysteresis requires demote ({demote_walk}) < promote ({promote_walk})"
            )
        self._bins = bins
        self._active: Matcher = ListMatcher()
        self._samples: deque[int] = deque(maxlen=window)
        self._promote = promote_walk
        self._demote = demote_walk
        self._min_dwell = min_dwell
        self._ops_since_switch = 0
        self.migrations = 0
        #: Live receives/messages in order, for state migration. The
        #: matcher tracks them itself so any backing strategy can be
        #: rebuilt losslessly.
        self._live_receives: list[tuple[int, ReceiveRequest]] = []
        self._live_unexpected: list[MessageEnvelope] = []
        self._next_label = 0

    @property
    def active_strategy(self) -> str:
        return self._active.name

    @property
    def posted_count(self) -> int:
        return self._active.posted_count

    @property
    def unexpected_count(self) -> int:
        return self._active.unexpected_count

    # -- bookkeeping ------------------------------------------------------

    def _record(self, before_walked: int) -> None:
        walked = self._active.costs.walked - before_walked
        self._samples.append(walked)
        self.costs.record_walk(walked)
        self._ops_since_switch += 1
        self._maybe_switch()

    def _mean_walk(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def _maybe_switch(self) -> None:
        if self._ops_since_switch < self._min_dwell or len(self._samples) < 8:
            return
        mean = self._mean_walk()
        is_list = isinstance(self._active, ListMatcher)
        if is_list and mean >= self._promote:
            self._migrate(BinMatcher(self._bins))
        elif not is_list and mean <= self._demote:
            self._migrate(ListMatcher())

    def _migrate(self, target: Matcher) -> None:
        """Replay live state into the new structure, in order."""
        for _label, request in self._live_receives:
            target.post_receive(request)
        for envelope in self._live_unexpected:
            target.incoming_message(envelope)
        # Replay costs are migration overhead, not matching cost; the
        # walk sampling restarts clean.
        self._active = target
        self._samples.clear()
        self._ops_since_switch = 0
        self.migrations += 1

    # -- Matcher interface -------------------------------------------------

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        self.costs.posts += 1
        before = self._active.costs.walked
        event = self._active.post_receive(request)
        if event is None:
            self._live_receives.append((self._next_label, request))
        else:
            self._live_unexpected.remove(event.message)
            # The backing matcher's decision counter restarts on every
            # migration; re-stamp with this matcher's global counter so
            # decision order stays monotone across migrations.
            event = dataclasses.replace(event, decision_order=self.decisions.next())
        self._next_label += 1
        self._record(before)
        return event

    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent:
        self.costs.messages += 1
        before = self._active.costs.walked
        event = self._active.incoming_message(msg)
        event = dataclasses.replace(event, decision_order=self.decisions.next())
        if event.kind is MatchKind.STORED_UNEXPECTED:
            self._live_unexpected.append(msg)
        else:
            assert event.receive is not None
            # Remove exactly one entry: the matched one by identity,
            # falling back to the oldest equal entry (identical
            # receives are interchangeable under C1).
            for index, (_label, request) in enumerate(self._live_receives):
                if request is event.receive:
                    del self._live_receives[index]
                    break
            else:
                for index, (_label, request) in enumerate(self._live_receives):
                    if request == event.receive:
                        del self._live_receives[index]
                        break
        self._record(before)
        return event

"""Common matcher interface.

Every matcher — the optimistic engine, the baselines of Table I, and
the software fallback — exposes the same two entry points so that the
oracle, the trace analyzer, and the benchmarks can drive any of them
interchangeably:

* :meth:`Matcher.post_receive` — a receive posting arrives; drain the
  unexpected store or index the receive.
* :meth:`Matcher.incoming_message` — a message arrives; match a posted
  receive or store the message as unexpected.

Serial matchers resolve each call immediately. The optimistic engine
is block-based, so its adapter buffers messages; :meth:`Matcher.flush`
forces resolution of anything buffered.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent
from repro.util.counters import MonotonicCounter

__all__ = ["Matcher", "MatcherCosts"]


@dataclass(slots=True)
class MatcherCosts:
    """Search-cost accounting common to all matchers.

    ``walked`` is the number of queue elements traversed — the paper's
    queue-depth cost and the quantity Fig. 7 reduces by binning.
    """

    walked: int = 0
    buckets: int = 0
    posts: int = 0
    messages: int = 0
    #: Per-operation walk lengths (for depth distributions).
    walk_samples: list[int] = field(default_factory=list)
    keep_samples: bool = False

    def record_walk(self, walked: int) -> None:
        self.walked += walked
        if self.keep_samples:
            self.walk_samples.append(walked)


class Matcher(abc.ABC):
    """Abstract tag matcher (PRQ/UMQ semantics, MPI constraints)."""

    #: Human-readable strategy name (Table I row).
    name: str = "abstract"

    def __init__(self) -> None:
        self.costs = MatcherCosts()
        #: Stamps :attr:`MatchEvent.decision_order` on emitted events.
        self.decisions = MonotonicCounter()

    @abc.abstractmethod
    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        """Post a receive. Returns a drain event or ``None`` if indexed."""

    @abc.abstractmethod
    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent | None:
        """Deliver a message. Serial matchers return the decision
        immediately; block-based ones may return ``None`` and emit the
        event on :meth:`flush`."""

    def flush(self) -> list[MatchEvent]:
        """Resolve any buffered messages (no-op for serial matchers)."""
        return []

    @property
    @abc.abstractmethod
    def posted_count(self) -> int:
        """Live posted receives awaiting a match."""

    @property
    @abc.abstractmethod
    def unexpected_count(self) -> int:
        """Stored unexpected messages awaiting a receive."""

"""Software tag-matching fallback (§III-B, §III-E).

"If the number of posted receives exceeds this capacity, the
application must fall back to software tag matching." The controller
wraps an optimistic engine and a host-side linked-list matcher: when
the descriptor table overflows (or DPA memory cannot be allocated at
communicator creation, §III-E), the live state — posted receives in
posting order and unexpected messages in arrival order — migrates to
the software matcher and all further traffic is handled there.

The fallback is one-way, mirroring the deployment reality: once the
application's working set outgrew the accelerator there is no cheap
point at which to migrate back.
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.descriptor import DescriptorTableFull
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent
from repro.core.threadsim import SchedulePolicy
from repro.matching.base import Matcher
from repro.matching.list_matcher import ListMatcher
from repro.matching.optimistic_adapter import OptimisticAdapter
from repro.util.counters import MonotonicCounter

__all__ = ["FallbackMatcher"]


class FallbackMatcher(Matcher):
    """Optimistic engine with automatic software fallback on overflow."""

    name = "optimistic+fallback"

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        policy: SchedulePolicy | None = None,
        comm: int = 0,
    ) -> None:
        super().__init__()
        self._offloaded: OptimisticAdapter | None = OptimisticAdapter(
            config, policy=policy, comm=comm
        )
        self._software = ListMatcher()
        self._carried_events: list[MatchEvent] = []
        self.fallback_events = 0

    @property
    def offloaded(self) -> bool:
        """Whether matching is still running on the (simulated) DPA."""
        return self._offloaded is not None

    @property
    def posted_count(self) -> int:
        active = self._offloaded if self._offloaded is not None else self._software
        return active.posted_count

    @property
    def unexpected_count(self) -> int:
        active = self._offloaded if self._offloaded is not None else self._software
        return active.unexpected_count

    def _migrate(self) -> None:
        """Move live engine state into the software matcher."""
        assert self._offloaded is not None
        # Process anything still buffered (and collect its events)
        # before snapshotting state — migration must observe a settled
        # engine.
        self._carried_events.extend(self._offloaded.flush())
        receives, unexpected = self._offloaded.engine.export_state()
        self._software.seed_state(receives, unexpected)
        # Keep decision stamps monotone across the migration boundary.
        self._software.decisions = MonotonicCounter(self._offloaded.engine.decisions.peek())
        self._offloaded = None
        self.fallback_events += 1

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        self.costs.posts += 1
        if self._offloaded is not None:
            try:
                return self._offloaded.post_receive(request)
            except DescriptorTableFull:
                self._migrate()
        return self._software.post_receive(request)

    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent | None:
        self.costs.messages += 1
        if self._offloaded is not None:
            return self._offloaded.incoming_message(msg)
        return self._software.incoming_message(msg)

    def flush(self) -> list[MatchEvent]:
        events, self._carried_events = self._carried_events, []
        if self._offloaded is not None:
            events.extend(self._offloaded.flush())
        else:
            events.extend(self._software.flush())
        return events

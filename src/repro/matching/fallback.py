"""Software tag-matching fallback (§III-B, §III-E).

"If the number of posted receives exceeds this capacity, the
application must fall back to software tag matching." The controller
wraps an optimistic engine and a host-side linked-list matcher: when
the descriptor table overflows (or DPA memory cannot be allocated at
communicator creation, §III-E), the live state — posted receives in
posting order and unexpected messages in arrival order — migrates to
the software matcher and all further traffic is handled there.

Two recovery policies are offered:

* **One-way** (default, the historical behaviour): once the working
  set outgrew the accelerator there is no cheap point at which to
  migrate back, so the matcher stays in software for good.
* **Recoverable** (``recoverable=True``): the sPIN-style degradation
  contract — NIC-resource exhaustion spills to the host *temporarily*.
  Once the software matcher's posted-receive set drains below half the
  descriptor-table capacity (hysteresis against thrash), the live
  state migrates back onto a fresh engine and offloaded matching
  resumes. Spills, recoveries, and software-handled messages are
  counted on the carried :class:`repro.core.stats.EngineStats`
  (``fallback_spills`` / ``fallback_recoveries`` /
  ``degraded_matches``), which survives across migrations so one stats
  object narrates the whole run.

Either way the fallback is loss-free and order-preserving: decision
stamps stay monotone across every migration boundary, so C1/C2 audits
hold across mode switches.
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.descriptor import DescriptorTableFull
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent
from repro.core.stats import EngineStats
from repro.core.threadsim import SchedulePolicy
from repro.matching.base import Matcher
from repro.matching.list_matcher import ListMatcher
from repro.matching.optimistic_adapter import OptimisticAdapter
from repro.util.counters import MonotonicCounter

__all__ = ["FallbackMatcher"]


class FallbackMatcher(Matcher):
    """Optimistic engine with automatic software fallback on overflow."""

    name = "optimistic+fallback"

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        policy: SchedulePolicy | None = None,
        comm: int = 0,
        recoverable: bool = False,
        observer=None,
        pressure=None,
    ) -> None:
        """``observer`` is installed on every engine generation (the
        initial one and each post-recovery engine), so tracing hooks
        survive spill/recovery migrations. ``pressure`` (optional, a
        :class:`repro.pressure.budget.PressureMeter`) is likewise
        installed on every generation: descriptor and unexpected
        charges follow the live engine, are released wholesale when the
        working set spills to the host, and are re-charged by
        ``import_state`` when it migrates back — and recovery is
        additionally gated on the meter being out of its pressured
        state."""
        super().__init__()
        self._config = config if config is not None else EngineConfig()
        self._policy = policy
        self._comm = comm
        self._recoverable = recoverable
        self._observer = observer
        self.pressure = pressure
        self._offloaded: OptimisticAdapter | None = OptimisticAdapter(
            self._config, policy=policy, comm=comm, observer=observer
        )
        if pressure is not None:
            self._offloaded.engine.set_pressure(pressure)
        self._software = ListMatcher()
        self._carried_events: list[MatchEvent] = []
        #: One stats object carried across every engine generation.
        self.stats: EngineStats = self._offloaded.engine.stats
        self.fallback_events = 0
        #: Migrate back once the software PRQ fits this many receives.
        self._recover_threshold = self._config.max_receives // 2

    @property
    def offloaded(self) -> bool:
        """Whether matching is currently running on the (simulated) DPA."""
        return self._offloaded is not None

    @property
    def posted_count(self) -> int:
        active = self._offloaded if self._offloaded is not None else self._software
        return active.posted_count

    @property
    def unexpected_count(self) -> int:
        active = self._offloaded if self._offloaded is not None else self._software
        return active.unexpected_count

    def _migrate(self) -> None:
        """Move live engine state into the software matcher."""
        assert self._offloaded is not None
        # Process anything still buffered (and collect its events)
        # before snapshotting state — migration must observe a settled
        # engine.
        self._carried_events.extend(self._offloaded.flush())
        # Imported lazily: repro.recovery drives matchers from this
        # package, so a top-level import would cycle.
        from repro.recovery.journal import host_takeover

        host_takeover(self._offloaded.engine, self._software)
        self._offloaded = None
        self.fallback_events += 1
        self.stats.fallback_spills += 1
        if self.pressure is not None:
            # The working set now lives in host memory: its descriptor
            # and UMQ-header charges leave the accelerator wholesale.
            self.pressure.release_all("descriptors")
            self.pressure.release_all("unexpected")

    def force_spill(self) -> bool:
        """Escalate to the host unconditionally (sustained memory
        pressure, §III-E enforcement). Returns True when a migration
        happened, False when matching was already in software."""
        if self._offloaded is None:
            return False
        self._migrate()
        if self.pressure is not None:
            self.pressure.stats.takeovers += 1
        return True

    def _recover(self) -> None:
        """Migrate the (now small) software working set back onto a
        fresh engine: the degraded episode is over."""
        assert self._offloaded is None
        receives, unexpected = self._software.export_state()
        adapter = OptimisticAdapter(
            self._config,
            policy=self._policy,
            comm=self._comm,
            observer=self._observer,
        )
        # Carry the cumulative stats object across engine generations.
        adapter.engine.stats = self.stats
        adapter.engine.decisions = MonotonicCounter(self._software.decisions.peek())
        if self.pressure is not None:
            # Install the meter *before* import so the migrated state
            # is re-charged by the import hooks.
            adapter.engine.set_pressure(self.pressure)
        adapter.engine.import_state(receives, unexpected)
        self._offloaded = adapter
        self._software = ListMatcher()
        self.stats.fallback_recoveries += 1
        if self.pressure is not None:
            self.pressure.stats.reoffloads += 1

    def _reoffload_fits(self) -> bool:
        """Whether the budget can absorb the software working set (and
        is out of its pressured band) — the meter-side recovery gate."""
        if self.pressure is None:
            return True
        if self.pressure.under_pressure:
            return False
        from repro.pressure.budget import UNEXPECTED_HEADER_BYTES

        from repro.core.descriptor import DESCRIPTOR_BYTES

        need = (
            self._software.posted_count * DESCRIPTOR_BYTES
            + self._software.unexpected_count * UNEXPECTED_HEADER_BYTES
        )
        return self.pressure.would_fit(need)

    def _maybe_recover(self) -> None:
        if (
            self._recoverable
            and self._offloaded is None
            and self._software.posted_count <= self._recover_threshold
            and self._reoffload_fits()
        ):
            self._recover()

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        self.costs.posts += 1
        self._maybe_recover()
        if self._offloaded is not None:
            try:
                return self._offloaded.post_receive(request)
            except DescriptorTableFull:
                self._migrate()
        return self._software.post_receive(request)

    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent | None:
        self.costs.messages += 1
        self._maybe_recover()
        if self._offloaded is not None:
            return self._offloaded.incoming_message(msg)
        self.stats.degraded_matches += 1
        return self._software.incoming_message(msg)

    def flush(self) -> list[MatchEvent]:
        events, self._carried_events = self._carried_events, []
        if self._offloaded is not None:
            events.extend(self._offloaded.flush())
        else:
            events.extend(self._software.flush())
        return events

"""NCCL-style channel matcher — the §VII specialization argument.

"By having a software solution to offloaded message matching, we
retain the flexibility of specializing the matching according to the
specific communication library being used, which could adopt weaker
matching constraints than MPI (e.g., NCCL)."

NCCL-like collectives communicate over pre-established *channels*:
every (peer, channel) pair is a FIFO stream with no tags and no
wildcards. Matching degenerates to pairing the i-th receive on a
channel with the i-th arriving message of that channel — O(1), no
search, trivially parallel across channels with **zero** conflict
machinery. This matcher implements those semantics behind the common
interface (tags double as channel ids; wildcards are rejected),
quantifying what the optimistic engine's generality costs relative to
a matcher specialized to the workload.
"""

from __future__ import annotations

from collections import deque

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind, ResolutionPath
from repro.matching.base import Matcher
from repro.util.counters import MonotonicCounter

__all__ = ["ChannelMatcher", "ChannelSemanticsError"]


class ChannelSemanticsError(ValueError):
    """The operation needs MPI semantics a channel matcher lacks."""


class ChannelMatcher(Matcher):
    """Per-(peer, channel) FIFO matcher with relaxed semantics."""

    name = "channel (NCCL-style)"

    def __init__(self) -> None:
        super().__init__()
        #: (source, channel) -> FIFO of waiting receives.
        self._posted: dict[tuple[int, int], deque[tuple[ReceiveRequest, int]]] = {}
        #: (source, channel) -> FIFO of waiting messages.
        self._arrived: dict[tuple[int, int], deque[MessageEnvelope]] = {}
        self._labels = MonotonicCounter()
        self._posted_total = 0
        self._arrived_total = 0

    @property
    def posted_count(self) -> int:
        return self._posted_total

    @property
    def unexpected_count(self) -> int:
        return self._arrived_total

    @staticmethod
    def _key(source: int, channel: int) -> tuple[int, int]:
        return (source, channel)

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        if request.source == ANY_SOURCE or request.tag == ANY_TAG:
            raise ChannelSemanticsError(
                "channel matching has no wildcards; receives name a "
                "concrete (peer, channel) pair"
            )
        self.costs.posts += 1
        label = self._labels.next()
        key = self._key(request.source, request.tag)
        arrived = self._arrived.get(key)
        if arrived:
            msg = arrived.popleft()
            self._arrived_total -= 1
            self.costs.record_walk(1)
            return MatchEvent(
                kind=MatchKind.UNEXPECTED_DRAIN,
                message=msg,
                receive=request,
                receive_post_label=label,
                path=ResolutionPath.SERIAL,
                decision_order=self.decisions.next(),
            )
        self.costs.record_walk(0)
        self._posted.setdefault(key, deque()).append((request, label))
        self._posted_total += 1
        return None

    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent:
        self.costs.messages += 1
        key = self._key(msg.source, msg.tag)
        posted = self._posted.get(key)
        if posted:
            request, label = posted.popleft()
            self._posted_total -= 1
            self.costs.record_walk(1)
            return MatchEvent(
                kind=MatchKind.EXPECTED,
                message=msg,
                receive=request,
                receive_post_label=label,
                path=ResolutionPath.SERIAL,
                decision_order=self.decisions.next(),
            )
        self.costs.record_walk(0)
        self._arrived.setdefault(key, deque()).append(msg)
        self._arrived_total += 1
        return MatchEvent(
            kind=MatchKind.STORED_UNEXPECTED,
            message=msg,
            receive=None,
            receive_post_label=None,
            decision_order=self.decisions.next(),
        )

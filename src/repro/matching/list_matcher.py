"""The traditional linked-list matcher (MPI-CPU baseline).

This is the canonical two-queue implementation described in §II-A and
Figure 1: one posted-receive queue (PRQ) and one unexpected-message
queue (UMQ), both plain linked lists scanned from the head. It
trivially satisfies C1 (receives append at the tail, messages scan
from the head) and C2 (messages append at the tail, receives scan from
the head), at O(n) search cost — the behaviour whose "matching misery"
motivates the paper.

It doubles as the reproduction's *oracle*: its match decisions define
the MPI-correct answer that every other matcher must agree with.
"""

from __future__ import annotations

from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind, ResolutionPath
from repro.matching.base import Matcher
from repro.util.counters import MonotonicCounter
from repro.util.intrusive import IntrusiveList

__all__ = ["ListMatcher"]


class _PostedReceive:
    __slots__ = ("request", "post_label")

    def __init__(self, request: ReceiveRequest, post_label: int) -> None:
        self.request = request
        self.post_label = post_label


class ListMatcher(Matcher):
    """Two-queue linked-list tag matcher (the 1-bin / traditional case)."""

    name = "linked-list"

    def __init__(self) -> None:
        super().__init__()
        self._prq: IntrusiveList[_PostedReceive] = IntrusiveList()
        self._umq: IntrusiveList[MessageEnvelope] = IntrusiveList()
        self._post_labels = MonotonicCounter()

    @property
    def posted_count(self) -> int:
        return len(self._prq)

    @property
    def unexpected_count(self) -> int:
        return len(self._umq)

    @property
    def prq_depth(self) -> int:
        """Current PRQ length (the Fig. 7 queue-depth statistic)."""
        return len(self._prq)

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        self.costs.posts += 1
        walked = 0
        for node in self._umq.iter_nodes():
            walked += 1
            msg: MessageEnvelope = node.payload
            if request.matches(msg):
                self._umq.unlink(node)
                self.costs.record_walk(walked)
                return MatchEvent(
                    decision_order=self.decisions.next(),
                    kind=MatchKind.UNEXPECTED_DRAIN,
                    message=msg,
                    receive=request,
                    receive_post_label=self._post_labels.next(),
                    path=ResolutionPath.SERIAL,
                )
        self.costs.record_walk(walked)
        self._prq.append(_PostedReceive(request, self._post_labels.next()))
        return None

    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent:
        self.costs.messages += 1
        walked = 0
        for node in self._prq.iter_nodes():
            walked += 1
            posted: _PostedReceive = node.payload
            if posted.request.matches(msg):
                self._prq.unlink(node)
                self.costs.record_walk(walked)
                return MatchEvent(
                    decision_order=self.decisions.next(),
                    kind=MatchKind.EXPECTED,
                    message=msg,
                    receive=posted.request,
                    receive_post_label=posted.post_label,
                    path=ResolutionPath.SERIAL,
                )
        self.costs.record_walk(walked)
        self._umq.append(msg)
        return MatchEvent(
            decision_order=self.decisions.next(),
            kind=MatchKind.STORED_UNEXPECTED,
            message=msg,
            receive=None,
            receive_post_label=None,
        )

    def cancel_receive(self, handle: int) -> bool:
        """Remove a posted receive by handle (MPI_Cancel semantics).

        Returns True when a live receive was removed; False when no
        receive with that handle is pending (already matched).
        """
        for node in self._prq.iter_nodes():
            posted: _PostedReceive = node.payload
            if posted.request.handle == handle:
                self._prq.unlink(node)
                return True
        return False

    def seed_state(
        self,
        receives: list[tuple[int, ReceiveRequest]],
        unexpected: list[MessageEnvelope],
    ) -> None:
        """Adopt exported engine state (software-fallback migration).

        ``receives`` must be in posting order; labels are preserved so
        C1 auditing stays consistent across the migration.
        """
        if self._prq or self._umq:
            raise ValueError("seed_state requires an empty matcher")
        for label, request in receives:
            self._prq.append(_PostedReceive(request, label))
        for msg in unexpected:
            self._umq.append(msg)
        if receives:
            self._post_labels = MonotonicCounter(max(label for label, _ in receives) + 1)

    def export_state(
        self,
    ) -> tuple[list[tuple[int, ReceiveRequest]], list[MessageEnvelope]]:
        """Snapshot live state (the inverse of :meth:`seed_state`).

        Used by the degraded-mode controllers to migrate the working
        set *back* onto the accelerator once resources drain. Receives
        come out in posting order (PRQ order), unexpected messages in
        arrival order (UMQ order).
        """
        receives = [
            (posted.post_label, posted.request)
            for posted in self._prq
        ]
        return receives, list(self._umq)

"""Rank-partitioned matcher in the style of Dózsa et al. (Table I).

Posted receives are partitioned by *source rank* into per-rank queues;
receives using ``MPI_ANY_SOURCE`` go to a shared wildcard queue. An
incoming message from rank *r* needs to scan only queue *r* plus the
wildcard queue, with timestamps arbitrating order between the two —
the concurrency enabler in the original multithreaded-MPI proposal.
Unexpected messages are partitioned the same way (a message always has
a concrete source), with a global arrival list serving wildcard
receives.
"""

from __future__ import annotations

from repro.core.constants import ANY_SOURCE
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind, ResolutionPath
from repro.matching.base import Matcher
from repro.util.counters import MonotonicCounter
from repro.util.intrusive import IntrusiveList, IntrusiveNode

__all__ = ["RankMatcher"]


class _Posted:
    __slots__ = ("request", "timestamp")

    def __init__(self, request: ReceiveRequest, timestamp: int) -> None:
        self.request = request
        self.timestamp = timestamp


class _Unexpected:
    __slots__ = ("envelope", "timestamp", "rank_node", "order_node")

    def __init__(self, envelope: MessageEnvelope, timestamp: int) -> None:
        self.envelope = envelope
        self.timestamp = timestamp
        self.rank_node: IntrusiveNode | None = None
        self.order_node: IntrusiveNode | None = None


class RankMatcher(Matcher):
    """Per-source-rank serial matcher with a wildcard side queue."""

    name = "rank-based"

    def __init__(self) -> None:
        super().__init__()
        self._prq_by_rank: dict[int, IntrusiveList[_Posted]] = {}
        self._prq_wild: IntrusiveList[_Posted] = IntrusiveList()
        self._umq_by_rank: dict[int, IntrusiveList[_Unexpected]] = {}
        self._umq_order: IntrusiveList[_Unexpected] = IntrusiveList()
        self._clock = MonotonicCounter()

    @property
    def posted_count(self) -> int:
        return sum(len(q) for q in self._prq_by_rank.values()) + len(self._prq_wild)

    @property
    def unexpected_count(self) -> int:
        return len(self._umq_order)

    def _rank_queue(self, table: dict[int, IntrusiveList], rank: int) -> IntrusiveList:
        queue = table.get(rank)
        if queue is None:
            queue = IntrusiveList()
            table[rank] = queue
        return queue

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        self.costs.posts += 1
        timestamp = self._clock.next()
        drained = self._drain_unexpected(request)
        if drained is not None:
            return MatchEvent(
                decision_order=self.decisions.next(),
                kind=MatchKind.UNEXPECTED_DRAIN,
                message=drained.envelope,
                receive=request,
                receive_post_label=timestamp,
                path=ResolutionPath.SERIAL,
            )
        posted = _Posted(request, timestamp)
        if request.source == ANY_SOURCE:
            self._prq_wild.append(posted)
        else:
            self._rank_queue(self._prq_by_rank, request.source).append(posted)
        return None

    def _drain_unexpected(self, request: ReceiveRequest) -> _Unexpected | None:
        walked = 0
        found: _Unexpected | None = None
        if request.source == ANY_SOURCE:
            chain = self._umq_order
        else:
            chain = self._rank_queue(self._umq_by_rank, request.source)
        for node in chain.iter_nodes():
            walked += 1
            um: _Unexpected = node.payload
            if request.matches(um.envelope):
                found = um
                break
        self.costs.record_walk(walked)
        if found is None:
            return None
        if found.rank_node is not None and found.rank_node.owner is not None:
            found.rank_node.owner.unlink(found.rank_node)
        if found.order_node is not None and found.order_node.owner is not None:
            found.order_node.owner.unlink(found.order_node)
        return found

    def incoming_message(self, msg: MessageEnvelope) -> MatchEvent:
        self.costs.messages += 1
        walked = 0
        best: tuple[IntrusiveNode, _Posted] | None = None
        for node in self._rank_queue(self._prq_by_rank, msg.source).iter_nodes():
            walked += 1
            posted: _Posted = node.payload
            if posted.request.matches(msg):
                best = (node, posted)
                break
        for node in self._prq_wild.iter_nodes():
            walked += 1
            posted = node.payload
            if posted.request.matches(msg):
                if best is None or posted.timestamp < best[1].timestamp:
                    best = (node, posted)
                break
        self.costs.record_walk(walked)
        if best is not None:
            node, posted = best
            node.owner.unlink(node)
            return MatchEvent(
                decision_order=self.decisions.next(),
                kind=MatchKind.EXPECTED,
                message=msg,
                receive=posted.request,
                receive_post_label=posted.timestamp,
                path=ResolutionPath.SERIAL,
            )
        um = _Unexpected(msg, self._clock.next())
        um.rank_node = self._rank_queue(self._umq_by_rank, msg.source).append(um)
        um.order_node = self._umq_order.append(um)
        return MatchEvent(
            decision_order=self.decisions.next(),
            kind=MatchKind.STORED_UNEXPECTED,
            message=msg,
            receive=None,
            receive_post_label=None,
        )

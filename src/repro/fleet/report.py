"""The fleet run report: scheduler accounting with a stable JSON form.

One :class:`FleetReport` summarizes one scheduler run — how many jobs
executed, answered from cache, or were quarantined, plus retry /
timeout / worker-restart counters and per-job records. The JSON form
carries a schema version so downstream tooling (CI assertions,
``BENCH_fleet.json``) can reject layouts it does not understand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["REPORT_SCHEMA", "FleetReport"]

REPORT_SCHEMA = "repro.fleet.report/v1"


@dataclass(slots=True)
class FleetReport:
    """Aggregated outcome of one :class:`FleetScheduler` run."""

    SCHEMA = REPORT_SCHEMA

    jobs: int = 1
    total: int = 0
    executed: int = 0
    cached: int = 0
    quarantined: int = 0
    #: Human-readable ids (``#index kind seed=N``) of quarantined jobs,
    #: in job order — so a sweep's exit status is attributable from the
    #: report alone, without digging through per-job records.
    quarantined_ids: list[str] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0
    wall_s: float = 0.0
    #: Cache accounting for this run (hits/misses/writes), if caching.
    cache: dict[str, int] | None = None
    #: Per-job records: index, kind, digest, status, attempts,
    #: latency_s, error.
    records: list[dict] = field(default_factory=list)

    @classmethod
    def from_outcomes(
        cls,
        outcomes,
        *,
        jobs: int,
        wall_s: float,
        retries: int,
        timeouts: int,
        worker_restarts: int,
        cache_stats: Mapping[str, int] | None = None,
    ) -> "FleetReport":
        records = [
            {
                "index": outcome.index,
                "kind": outcome.spec.kind,
                "digest": outcome.digest,
                "status": outcome.status,
                "attempts": outcome.attempts,
                "latency_s": outcome.latency_s,
                "error": outcome.error,
            }
            for outcome in outcomes
        ]
        return cls(
            jobs=jobs,
            total=len(records),
            executed=sum(1 for r in records if r["status"] == "ok"),
            cached=sum(1 for r in records if r["status"] == "cached"),
            quarantined=sum(1 for r in records if r["status"] == "quarantined"),
            quarantined_ids=[
                f"#{o.index} {o.spec.kind} seed={o.spec.seed}"
                for o in outcomes
                if o.status == "quarantined"
            ],
            retries=retries,
            timeouts=timeouts,
            worker_restarts=worker_restarts,
            wall_s=wall_s,
            cache=dict(cache_stats) if cache_stats is not None else None,
            records=records,
        )

    @property
    def ok(self) -> bool:
        return self.quarantined == 0

    def summary(self) -> str:
        parts = [
            f"{self.total} jobs",
            f"{self.executed} executed",
            f"{self.cached} cached",
        ]
        if self.quarantined:
            shown = ", ".join(self.quarantined_ids[:3])
            more = ", ..." if self.quarantined > 3 else ""
            parts.append(f"{self.quarantined} quarantined [{shown}{more}]")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.worker_restarts:
            parts.append(f"{self.worker_restarts} worker restarts")
        parts.append(f"{self.wall_s:.2f}s")
        return ", ".join(parts)

    # -- JSON round-trip ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "quarantined": self.quarantined,
            "quarantined_ids": list(self.quarantined_ids),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_restarts": self.worker_restarts,
            "wall_s": self.wall_s,
            "cache": self.cache,
            "records": list(self.records),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetReport":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__ if k in payload})

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(
            {"schema": self.SCHEMA, **self.to_dict()}, indent=indent, sort_keys=True
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FleetReport":
        payload = json.loads(text)
        schema = payload.get("schema", cls.SCHEMA)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported schema {schema!r}, expected {cls.SCHEMA!r}")
        return cls.from_dict(payload)

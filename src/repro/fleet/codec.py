"""Result codec: every job result is the image of one JSON payload.

The scheduler never hands a driver a "raw" result object — whether a
job ran inline, in a worker process, or was answered from the cache,
its result is encoded to a JSON payload and decoded back. That single
invariant is what makes caching transparent and parallel runs
byte-identical to serial ones: there is exactly one representation.

Result classes participate by exposing ``to_dict``/``from_dict`` (and
``to_json``/``from_json`` with an explicit ``schema`` version field —
see :class:`repro.core.stats.EngineStats` et al.). Pure JSON literals
pass through under the ``literal`` tag. Additional types register via
:func:`register_result_type` (custom job kinds in tests or drivers).
"""

from __future__ import annotations

import importlib
from typing import Any, Mapping

from repro.fleet.job import ensure_literal

__all__ = ["RESULT_SCHEMA", "encode_result", "decode_result", "register_result_type"]

RESULT_SCHEMA = "repro.fleet.result/v1"

#: tag -> (module, attribute); resolved lazily so ``import repro.fleet``
#: does not pull the analyzer/chaos/bench stacks.
_BUILTIN: dict[str, tuple[str, str]] = {
    "AppAnalysis": ("repro.analyzer.statistics", "AppAnalysis"),
    "ChaosReport": ("repro.chaos.harness", "ChaosReport"),
    "ClusterReport": ("repro.net.cluster", "ClusterReport"),
    "EngineStats": ("repro.core.stats", "EngineStats"),
    "GateVerdict": ("repro.bench.gate", "GateVerdict"),
    "LedgerDump": ("repro.obs.ledger", "LedgerDump"),
    "RateResult": ("repro.bench.pingpong", "RateResult"),
    "ResilienceReport": ("repro.resilience.cluster", "ResilienceReport"),
}
_EXTRA: dict[str, type] = {}


def register_result_type(tag: str, cls: type) -> None:
    """Teach the codec a new result class (must have to/from_dict)."""
    if not callable(getattr(cls, "to_dict", None)) or not callable(
        getattr(cls, "from_dict", None)
    ):
        raise TypeError(f"{cls!r} must define to_dict() and from_dict()")
    _EXTRA[tag] = cls


def _resolve(tag: str) -> type:
    if tag in _EXTRA:
        return _EXTRA[tag]
    entry = _BUILTIN.get(tag)
    if entry is None:
        raise KeyError(f"unknown result type {tag!r}")
    module, attr = entry
    return getattr(importlib.import_module(module), attr)


def encode_result(result: Any) -> dict:
    """Encode a job result into its canonical JSON payload."""
    tag = type(result).__name__
    if tag in _EXTRA or tag in _BUILTIN:
        cls = _resolve(tag)
        if isinstance(result, cls):
            return {"schema": RESULT_SCHEMA, "type": tag, "data": result.to_dict()}
    try:
        ensure_literal(result, "result")
    except TypeError as exc:
        raise TypeError(
            f"job result {type(result).__name__} is neither a registered "
            f"result type nor a JSON literal: {exc}"
        ) from None
    return {"schema": RESULT_SCHEMA, "type": "literal", "data": result}


def decode_result(payload: Mapping[str, Any]) -> Any:
    """Decode a payload produced by :func:`encode_result`."""
    schema = payload.get("schema", RESULT_SCHEMA)
    if schema != RESULT_SCHEMA:
        raise ValueError(f"unsupported result schema {schema!r}")
    tag = payload["type"]
    if tag == "literal":
        return payload["data"]
    return _resolve(tag).from_dict(payload["data"])

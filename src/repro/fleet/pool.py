"""Shared process-pool sizing and a small parallel map.

Every pool in the repo routes its worker count through
:func:`resolve_workers` so nested pools cannot oversubscribe: code
already running *inside* a fleet worker (detected via the worker env
flag) always resolves to 1 and runs serially.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.fleet.worker import in_worker

__all__ = ["resolve_workers", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(requested: int | None = None, *, items: int | None = None) -> int:
    """Effective worker count for a pool.

    ``requested=None`` means "use the machine": ``os.cpu_count()``.
    Inside a fleet worker the answer is always 1 — the outer scheduler
    owns the hardware, a nested pool would only add oversubscription
    and spawn latency.
    """
    if in_worker():
        return 1
    workers = requested if requested and requested > 0 else (os.cpu_count() or 1)
    if items is not None:
        workers = min(workers, max(items, 1))
    return max(workers, 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    max_workers: int | None = None,
    threshold: int = 2,
) -> list[R]:
    """Map ``fn`` over ``items``, in a process pool when it pays off.

    ``fn`` must be a module-level (picklable) callable. Order of the
    results matches ``items``. Below ``threshold`` items, or with one
    effective worker, this is a plain serial loop.
    """
    workers = resolve_workers(max_workers, items=len(items))
    if workers <= 1 or len(items) < threshold:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))

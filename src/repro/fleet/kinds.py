"""The job-kind registry: name -> (callable, code version).

A *kind* is a deterministic simulation entry point a worker can run
from a pure-literal spec. Each kind carries a version string that is
folded into the cache digest — bump it when the producing code changes
semantics, and stale cached results stop matching.

Built-in kinds (resolved lazily so importing :mod:`repro.fleet` does
not pull the analyzer/chaos/bench stacks into every process):

* ``analyze_app``    — generate one synthetic app trace and analyze it
  at one bin count; returns :class:`repro.analyzer.statistics.AppAnalysis`.
* ``chaos_run``      — one seeded chaos schedule; returns
  :class:`repro.chaos.harness.ChaosReport`.
* ``bench_scenario`` — one Figure 8 configuration; returns
  :class:`repro.bench.pingpong.RateResult`.
* ``cluster_bench`` — one cluster-fabric cell (app x topology x
  placement on a clean network); returns
  :class:`repro.net.cluster.ClusterReport`.
* ``cluster_chaos`` — the same cell under a seeded link-fault plan
  (the job seed replaces the plan seed, mirroring ``chaos_run``).
* ``rank_chaos``   — a resilient cluster run under a seeded
  :class:`repro.resilience.faults.RankFaultPlan` (kills, detection,
  shrink / respawn repair); returns
  :class:`repro.resilience.cluster.ResilienceReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["KindSpec", "register_kind", "resolve_kind", "kind_salt"]

#: Job function signature: (params, seed) -> result object.
KindFn = Callable[[Mapping[str, Any], int], Any]


@dataclass(frozen=True, slots=True)
class KindSpec:
    name: str
    fn: KindFn
    version: str = "1"


_KINDS: dict[str, KindSpec] = {}
_builtin_loaded = False


def register_kind(name: str, fn: KindFn, *, version: str = "1") -> None:
    """Register (or replace) a job kind."""
    _KINDS[name] = KindSpec(name=name, fn=fn, version=version)


def _analyze_app(params: Mapping[str, Any], seed: int) -> Any:
    from repro.analyzer.processing import analyze
    from repro.traces.synthetic import generate

    trace = generate(
        params["app"],
        processes=params.get("processes"),
        rounds=int(params.get("rounds", 6)),
    )
    return analyze(
        trace, int(params["bins"]), keep_datapoints=bool(params.get("keep_datapoints"))
    )


def _chaos_run(params: Mapping[str, Any], seed: int) -> Any:
    from dataclasses import replace

    from repro.chaos.harness import config_from_params, run_chaos

    config = replace(config_from_params(params["config"]), seed=seed)
    return run_chaos(config)


def _bench_scenario(params: Mapping[str, Any], seed: int) -> Any:
    from repro.bench.pingpong import PingPongBench
    from repro.bench.scenarios import scenario_by_name

    bench = PingPongBench(
        k=int(params.get("k", 100)),
        repetitions=int(params.get("repetitions", 50)),
        in_flight=int(params.get("in_flight", 1024)),
        threads=int(params.get("threads", 32)),
    )
    name = params["scenario"]
    if name == "mpi-cpu":
        return bench.run_mpi_cpu()
    if name == "rdma-cpu":
        return bench.run_rdma_cpu()
    return bench.run_optimistic(scenario_by_name(name))


def _cluster_kwargs(params: Mapping[str, Any]) -> dict:
    return dict(
        topology=params.get("topology", "torus"),
        placement=params.get("placement", "block"),
        rounds=int(params.get("rounds", 4)),
        size=int(params.get("size", 512)),
    )


def _cluster_bench(params: Mapping[str, Any], seed: int) -> Any:
    from repro.net.cluster import run_cluster

    return run_cluster(params["app"], int(params["ranks"]), **_cluster_kwargs(params))


def _cluster_chaos(params: Mapping[str, Any], seed: int) -> Any:
    from repro.net.cluster import run_cluster
    from repro.net.faults import LinkFaultPlan

    plan = LinkFaultPlan.from_params(params["plan"]).with_options(seed=seed)
    return run_cluster(
        params["app"], int(params["ranks"]), plan=plan, **_cluster_kwargs(params)
    )


def _rank_chaos(params: Mapping[str, Any], seed: int) -> Any:
    from repro.resilience.cluster import run_resilient
    from repro.resilience.faults import RankFaultPlan
    from repro.resilience.heartbeat import HeartbeatConfig

    plan = RankFaultPlan.from_params(params["plan"]).with_options(seed=seed)
    hb_params = params.get("heartbeat")
    heartbeat = (
        HeartbeatConfig.from_params(hb_params) if hb_params is not None else None
    )
    return run_resilient(
        params["app"],
        int(params["ranks"]),
        rounds=int(params.get("rounds", 3)),
        size=int(params.get("size", 512)),
        topology=params.get("topology", "torus"),
        placement=params.get("placement", "block"),
        plan=plan,
        heartbeat=heartbeat,
        recovery=params.get("recovery", "shrink"),
        mutant=params.get("mutant", ""),
        record=bool(params.get("record", True)),
    )


def _ensure_builtin() -> None:
    global _builtin_loaded
    if _builtin_loaded:
        return
    _builtin_loaded = True
    # chaos_run is at version 5: the report schema grew the rank
    # fault-tolerance counters (kills / detections / shrinks) — cached
    # v4 reports must not satisfy v5 sweeps.
    for name, fn, version in (
        ("analyze_app", _analyze_app, "1"),
        ("chaos_run", _chaos_run, "5"),
        ("bench_scenario", _bench_scenario, "1"),
        ("cluster_bench", _cluster_bench, "1"),
        ("cluster_chaos", _cluster_chaos, "1"),
        ("rank_chaos", _rank_chaos, "1"),
    ):
        if name not in _KINDS:
            register_kind(name, fn, version=version)


def resolve_kind(name: str) -> KindSpec:
    _ensure_builtin()
    spec = _KINDS.get(name)
    if spec is None:
        raise KeyError(f"unknown job kind {name!r}; known: {sorted(_KINDS)}")
    return spec


def kind_salt(name: str) -> str:
    """The code-version salt for one kind's cache digests."""
    import repro

    return f"repro/{repro.__version__}|{name}/{resolve_kind(name).version}"

"""The worker protocol: what crosses the process-pool boundary.

Exactly one picklable payload shape goes to a worker and exactly one
comes back — plain JSON-safe dicts, never live objects:

    request:  {"job": JobSpec.to_dict(), "requires": [...], "faults": {...}}
    response: repro.fleet.codec.encode_result(...)

``requires`` lists modules the worker imports first (their import side
effect registers custom job kinds in the fresh interpreter a spawned
worker starts from). ``faults`` is *test instrumentation* injected by
the scheduler's fault hook — never part of the job spec, never part of
the cache key:

* ``sleep_s`` — stall before running (exercises the hang timeout);
* ``crash_countdown`` — path to a file holding an integer; while it is
  positive the worker decrements it and dies hard (``os._exit``), so
  the first N attempts of a job crash and attempt N+1 succeeds. Run
  inline (serial mode), the "crash" raises :class:`WorkerCrash`
  instead, so both modes exercise the same retry path.
"""

from __future__ import annotations

import importlib
import os
import time
from typing import Any, Mapping

from repro.fleet.codec import encode_result
from repro.fleet.job import JobSpec
from repro.fleet.kinds import resolve_kind

__all__ = ["ENV_WORKER", "WorkerCrash", "in_worker", "execute_payload", "make_payload"]

#: Set in every pool worker; lets nested code (e.g. the trace reader)
#: detect it is already inside a fleet worker and stay serial.
ENV_WORKER = "REPRO_FLEET_WORKER"


class WorkerCrash(RuntimeError):
    """Simulated hard crash when a job runs inline instead of pooled."""


def in_worker() -> bool:
    return bool(os.environ.get(ENV_WORKER))


def init_worker() -> None:
    """Pool initializer: mark the process as a fleet worker."""
    os.environ[ENV_WORKER] = "1"


def make_payload(
    spec: JobSpec,
    *,
    requires: tuple[str, ...] = (),
    faults: Mapping[str, Any] | None = None,
) -> dict:
    payload: dict[str, Any] = {"job": spec.to_dict()}
    if requires:
        payload["requires"] = list(requires)
    if faults:
        payload["faults"] = dict(faults)
    return payload


def _apply_faults(faults: Mapping[str, Any]) -> None:
    sleep_s = faults.get("sleep_s")
    if sleep_s:
        time.sleep(float(sleep_s))
    marker = faults.get("crash_countdown")
    if marker:
        try:
            remaining = int(open(marker, encoding="utf-8").read().strip() or 0)
        except (OSError, ValueError):
            remaining = 0
        if remaining > 0:
            with open(marker, "w", encoding="utf-8") as fp:
                fp.write(str(remaining - 1))
            if in_worker():
                os._exit(23)
            raise WorkerCrash(f"injected crash ({remaining - 1} left) for {marker}")


def execute_payload(payload: Mapping[str, Any]) -> dict:
    """Run one job payload to completion; the single worker entry point."""
    for module in payload.get("requires", ()):
        importlib.import_module(module)
    spec = JobSpec.from_dict(payload["job"])
    _apply_faults(payload.get("faults") or {})
    kind = resolve_kind(spec.kind)
    result = kind.fn(dict(spec.params), spec.seed)
    return encode_result(result)

"""The job model: pure-literal specs with stable content digests.

A job must be *reconstructable from its spec alone* — the spec crosses
process boundaries as JSON and doubles as the cache key, so it may
contain only JSON literals (str/int/float/bool/None, lists, dicts with
string keys). Anything richer (dataclass configs, enums) is flattened
into literals by the driver that builds the spec (see
:func:`repro.chaos.harness.config_to_params` for the chaos case).

The content digest is ``sha256`` over the spec's canonical JSON plus a
*code-version salt* (repro version + per-kind version), so cached
results are invalidated when either the spec or the producing code
changes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["JOB_SCHEMA", "JobSpec", "ensure_literal"]

JOB_SCHEMA = "repro.fleet.job/v1"

_SCALARS = (str, int, float, bool, type(None))


def ensure_literal(value: Any, path: str = "params") -> None:
    """Reject anything that would not survive a JSON round-trip."""
    if isinstance(value, bool) or isinstance(value, _SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            ensure_literal(item, f"{path}[{i}]")
        return
    if isinstance(value, Mapping):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"{path} key {key!r} must be str, got {type(key).__name__}")
            ensure_literal(item, f"{path}.{key}")
        return
    raise TypeError(f"{path} is not a JSON literal: {type(value).__name__} ({value!r})")


def _freeze(value: Any) -> Any:
    """Normalize tuples to lists so canonical JSON is type-stable."""
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _freeze(v) for k, v in value.items()}
    return value


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One schedulable unit of deterministic work.

    ``kind`` names a registered job kind (:mod:`repro.fleet.kinds`),
    ``params`` are its pure-literal arguments, and ``seed`` is the
    run's seed (kinds that are seedless ignore it).
    """

    kind: str
    params: dict = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ValueError(f"job kind must be a non-empty string, got {self.kind!r}")
        ensure_literal(self.params)
        object.__setattr__(self, "params", _freeze(self.params))

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "kind": self.kind,
            "params": self.params,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        schema = payload.get("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise ValueError(f"unsupported job schema {schema!r}")
        return cls(
            kind=payload["kind"],
            params=dict(payload.get("params", {})),
            seed=int(payload.get("seed", 0)),
        )

    def canonical(self) -> str:
        """Canonical JSON form: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self, salt: str = "") -> str:
        """Content address of this spec under a code-version ``salt``."""
        h = hashlib.sha256()
        h.update(self.canonical().encode("utf-8"))
        h.update(b"\x00")
        h.update(salt.encode("utf-8"))
        return h.hexdigest()

"""Fault-tolerant scheduling of job streams over a spawn worker pool.

The scheduler consumes a *lazy* stream of :class:`JobSpec`s (a
generator is fine — a 220-schedule soak never materializes its grid),
keeps a bounded submission window over a ``ProcessPoolExecutor`` so
workers stay busy without unbounded queueing, and merges results in
job-index order. Three failure modes are survived:

* **Worker crash** — a dead worker breaks the pool
  (``BrokenProcessPool``); the pool is rebuilt and the affected jobs
  retried with exponential backoff (the shape of
  :class:`repro.rdma.reliability.ReliabilityConfig`: base delay x
  ``backoff^attempt``, capped).
* **Hung worker** — a job exceeding ``RetryPolicy.timeout_s`` gets its
  pool terminated and rebuilt; the hung job is charged an attempt,
  innocent in-flight jobs are requeued.
* **Poisoned job** — a job that keeps failing is *quarantined* into
  the report after ``max_attempts``; the sweep continues.

Every result — inline, pooled, or cached — passes through the
:mod:`repro.fleet.codec` round-trip, so ``jobs=1`` and ``jobs=N``
produce byte-identical reports (simulated clocks inside the jobs are
untouched; only wall-clock scheduling differs).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.fleet import worker
from repro.fleet.cache import ResultCache
from repro.fleet.codec import decode_result
from repro.fleet.job import JobSpec
from repro.fleet.kinds import kind_salt
from repro.fleet.report import FleetReport

__all__ = [
    "FleetError",
    "FleetRun",
    "FleetScheduler",
    "JobOutcome",
    "RetryPolicy",
    "run_jobs",
]

#: Wait-loop tick while futures are outstanding (seconds).
_TICK_S = 0.05
#: Histogram bounds for per-job latency (seconds).
_LATENCY_BUCKETS = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 120.0)


class FleetError(RuntimeError):
    """A run finished with quarantined jobs the caller required."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    Mirrors the reliability layer's recovery shape
    (:class:`repro.rdma.reliability.ReliabilityConfig`): a base delay
    multiplied by ``backoff`` per consecutive failure, capped, with a
    hard attempt budget instead of a hard retry budget.
    """

    #: Total attempts per job (1 = no retries).
    max_attempts: int = 3
    #: Delay before the first retry (wall seconds).
    base_delay_s: float = 0.05
    #: Delay multiplier per consecutive failure.
    backoff: float = 2.0
    #: Ceiling on the backed-off delay.
    max_delay_s: float = 2.0
    #: Per-job wall-clock budget before a worker counts as hung
    #: (None = never time out).
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")

    def delay_for(self, failures: int) -> float:
        """Backoff delay after ``failures`` consecutive failures."""
        if failures <= 0:
            return 0.0
        return min(self.base_delay_s * self.backoff ** (failures - 1), self.max_delay_s)


@dataclass(slots=True)
class JobOutcome:
    """Terminal state of one job: ok, cached, or quarantined."""

    index: int
    spec: JobSpec
    digest: str
    status: str  # "ok" | "cached" | "quarantined"
    attempts: int = 0
    latency_s: float = 0.0
    error: str = ""
    result: Any = None
    payload: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass(slots=True)
class _Job:
    index: int
    spec: JobSpec
    digest: str
    payload: dict
    attempts: int = 0
    ready_at: float = 0.0
    submitted_at: float = 0.0
    lane: int = 0
    last_error: str = ""
    #: A pool break implicated this job; it must re-run in isolation
    #: (its own single-worker pool) so a repeat crash is attributed to
    #: it alone and innocent neighbours are never quarantined.
    suspect: bool = False


@dataclass(slots=True)
class FleetRun:
    """Everything one scheduler run produced, in job-index order."""

    outcomes: list[JobOutcome]
    report: FleetReport

    def results(self) -> list[Any]:
        """Decoded results in job order (None for quarantined jobs)."""
        return [outcome.result for outcome in self.outcomes]

    def require_ok(self) -> "FleetRun":
        bad = [o for o in self.outcomes if not o.ok]
        if bad:
            lines = ", ".join(
                f"#{o.index} {o.spec.kind} ({o.error or 'failed'})" for o in bad[:5]
            )
            raise FleetError(f"{len(bad)} job(s) quarantined: {lines}")
        return self


class FleetScheduler:
    """Run job streams across a pool, a cache, and the obs layer."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ResultCache | None = None,
        policy: RetryPolicy | None = None,
        registry=None,
        tracer=None,
        requires: tuple[str, ...] = (),
        fault_hook: Callable[[int, JobSpec], Mapping[str, Any] | None] | None = None,
        salt: Callable[[str], str] = kind_salt,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.policy = policy or RetryPolicy()
        self.registry = registry
        self.tracer = tracer
        self.requires = tuple(requires)
        #: Test instrumentation: (index, spec) -> faults dict merged
        #: into the worker payload (never into the spec or cache key).
        self.fault_hook = fault_hook
        self._salt = salt
        # Run counters (also exported through the registry).
        self.retries = 0
        self.timeouts = 0
        self.worker_restarts = 0
        self._pool: ProcessPoolExecutor | None = None
        self._t0 = 0.0
        self._free_lanes: list[int] = []

    # -- obs helpers ----------------------------------------------------

    def _count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self.registry is None:
            return
        counter = self.registry.counter(f"fleet.{name}")
        if labels:
            counter = counter.labels(**labels)
        counter.inc(amount)

    def _observe_latency(self, seconds: float) -> None:
        if self.registry is None:
            return
        self.registry.histogram(
            "fleet.job_seconds",
            "per-job wall-clock latency",
            buckets=_LATENCY_BUCKETS,
        ).observe(seconds)

    def _span(self, job: _Job, outcome: JobOutcome, start_s: float, dur_s: float) -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        track = self.tracer.track("fleet", f"worker-{job.lane}")
        self.tracer.complete(
            track,
            f"{job.spec.kind}#{job.index}",
            start_s * 1e6,
            dur_s * 1e6,
            cat="fleet",
            args={
                "status": outcome.status,
                "attempts": outcome.attempts,
                "digest": job.digest[:12],
            },
        )

    # -- job plumbing ---------------------------------------------------

    def _make_job(self, index: int, spec: JobSpec) -> _Job:
        digest = spec.digest(self._salt(spec.kind))
        faults = self.fault_hook(index, spec) if self.fault_hook else None
        payload = worker.make_payload(spec, requires=self.requires, faults=faults)
        return _Job(index=index, spec=spec, digest=digest, payload=payload)

    def _from_cache(self, job: _Job) -> JobOutcome | None:
        if self.cache is None:
            return None
        payload = self.cache.get(job.digest)
        if payload is None:
            self._count("cache_misses")
            return None
        self._count("cache_hits")
        self._count("jobs", status="cached")
        now = time.monotonic() - self._t0
        outcome = JobOutcome(
            index=job.index,
            spec=job.spec,
            digest=job.digest,
            status="cached",
            attempts=0,
            latency_s=0.0,
            result=decode_result(payload),
            payload=payload,
        )
        self._span(job, outcome, now, 0.0)
        return outcome

    def _complete(self, job: _Job, payload: dict) -> JobOutcome:
        latency = time.monotonic() - self._t0 - job.submitted_at
        if self.cache is not None:
            self.cache.put(job.digest, job.spec, payload)
        outcome = JobOutcome(
            index=job.index,
            spec=job.spec,
            digest=job.digest,
            status="ok",
            attempts=job.attempts,
            latency_s=latency,
            result=decode_result(payload),
            payload=payload,
        )
        self._count("jobs", status="ok")
        self._observe_latency(latency)
        self._span(job, outcome, job.submitted_at, latency)
        return outcome

    def _quarantine(self, job: _Job) -> JobOutcome:
        outcome = JobOutcome(
            index=job.index,
            spec=job.spec,
            digest=job.digest,
            status="quarantined",
            attempts=job.attempts,
            error=job.last_error,
        )
        self._count("jobs", status="quarantined")
        now = time.monotonic() - self._t0
        self._span(job, outcome, now, 0.0)
        return outcome

    def _register_failure(self, job: _Job, error: str) -> JobOutcome | None:
        """Charge a failed attempt; the outcome if the job is exhausted."""
        job.attempts += 1
        job.last_error = error
        if job.attempts >= self.policy.max_attempts:
            return self._quarantine(job)
        self.retries += 1
        self._count("retries")
        job.ready_at = (
            time.monotonic() - self._t0 + self.policy.delay_for(job.attempts)
        )
        return None

    # -- serial path ----------------------------------------------------

    def _run_serial(self, stream: Iterator[_Job]) -> list[JobOutcome]:
        outcomes: list[JobOutcome] = []
        for job in stream:
            cached = self._from_cache(job)
            if cached is not None:
                outcomes.append(cached)
                continue
            job.lane = 0
            while True:
                wait_s = job.ready_at - (time.monotonic() - self._t0)
                if wait_s > 0:
                    time.sleep(wait_s)
                job.submitted_at = time.monotonic() - self._t0
                try:
                    payload = worker.execute_payload(job.payload)
                except Exception as exc:  # noqa: BLE001 - quarantine semantics
                    exhausted = self._register_failure(
                        job, f"{type(exc).__name__}: {exc}"
                    )
                    if exhausted is not None:
                        outcomes.append(exhausted)
                        break
                    continue
                job.attempts += 1
                outcomes.append(self._complete(job, payload))
                break
        return outcomes

    # -- parallel path --------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=get_context("spawn"),
            initializer=worker.init_worker,
        )

    def _teardown_pool(self, *, kill: bool) -> None:
        if self._pool is None:
            return
        if kill:
            processes = getattr(self._pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - best effort
                    pass
        self._pool.shutdown(wait=not kill, cancel_futures=True)
        self._pool = None

    def _restart_pool(self) -> None:
        self._teardown_pool(kill=True)
        self.worker_restarts += 1
        self._count("worker_restarts")
        self._pool = self._new_pool()

    def _submit(self, job: _Job) -> Future:
        assert self._pool is not None
        job.submitted_at = time.monotonic() - self._t0
        job.lane = self._free_lanes.pop() if self._free_lanes else 0
        return self._pool.submit(worker.execute_payload, job.payload)

    def _run_isolated(self, job: _Job) -> JobOutcome | None:
        """Re-run one crash suspect alone in a fresh one-worker pool.

        A crash or hang here is unambiguously this job's fault and is
        charged as a failed attempt; success clears the suspicion.
        Returns the terminal outcome, or None when the job earned
        another (backed-off) retry.
        """
        pool = ProcessPoolExecutor(
            max_workers=1,
            mp_context=get_context("spawn"),
            initializer=worker.init_worker,
        )
        job.submitted_at = time.monotonic() - self._t0
        try:
            future = pool.submit(worker.execute_payload, job.payload)
            payload = future.result(timeout=self.policy.timeout_s)
        except Exception as exc:  # noqa: BLE001 - quarantine semantics
            if isinstance(exc, (TimeoutError, _FuturesTimeout)):
                self.timeouts += 1
                self._count("timeouts")
                message = f"TimeoutError: exceeded {self.policy.timeout_s}s (isolated)"
            else:
                message = f"{type(exc).__name__}: {exc}"
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - best effort
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            return self._register_failure(job, message)
        pool.shutdown(wait=True)
        job.attempts += 1
        job.suspect = False
        return self._complete(job, payload)

    def _run_parallel(self, stream: Iterator[_Job]) -> list[JobOutcome]:
        outcomes: list[JobOutcome] = []
        window = self.jobs * 2
        pending: deque[_Job] = deque()  # retries + requeues, FIFO
        inflight: dict[Future, _Job] = {}
        self._free_lanes = list(range(window, -1, -1))
        exhausted = False
        self._pool = self._new_pool()
        try:
            while True:
                now = time.monotonic() - self._t0
                # Fill the window: ready retries first, then new jobs.
                while len(inflight) < window:
                    job = None
                    if pending and pending[0].ready_at <= now:
                        job = pending.popleft()
                    elif not exhausted:
                        nxt = next(stream, None)
                        if nxt is None:
                            exhausted = True
                            continue
                        cached = self._from_cache(nxt)
                        if cached is not None:
                            outcomes.append(cached)
                            continue
                        job = nxt
                    if job is None:
                        break
                    if job.suspect:
                        outcome = self._run_isolated(job)
                        if outcome is not None:
                            outcomes.append(outcome)
                        else:
                            pending.append(job)
                        continue
                    try:
                        inflight[self._submit(job)] = job
                    except BrokenProcessPool:
                        pending.appendleft(job)
                        self._restart_pool()
                if not inflight and not pending and exhausted:
                    break
                if not inflight:
                    # Only backoff delays outstanding: sleep to the nearest.
                    next_ready = min(job.ready_at for job in pending)
                    delay = next_ready - (time.monotonic() - self._t0)
                    if delay > 0:
                        time.sleep(min(delay, self.policy.max_delay_s))
                    continue
                done, _ = wait(inflight, timeout=_TICK_S, return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    job = inflight.pop(future)
                    self._free_lanes.append(job.lane)
                    error = future.exception()
                    if error is None:
                        job.attempts += 1
                        outcomes.append(self._complete(job, future.result()))
                        continue
                    if isinstance(error, BrokenProcessPool):
                        # A worker died. Every in-flight future fails
                        # with this error, so blame cannot be assigned
                        # here: charge nobody, flag the job a suspect,
                        # and let the isolation path attribute crashes.
                        broken = True
                        job.suspect = True
                        pending.append(job)
                        continue
                    exhausted_outcome = self._register_failure(
                        job, f"{type(error).__name__}: {error}"
                    )
                    if exhausted_outcome is not None:
                        outcomes.append(exhausted_outcome)
                    else:
                        pending.append(job)
                if broken:
                    self._count("pool_breaks")
                    for future, job in list(inflight.items()):
                        self._free_lanes.append(job.lane)
                        job.suspect = True
                        pending.append(job)
                    inflight.clear()
                    self._restart_pool()
                    continue
                # Hung-worker sweep: a job over budget gets its pool
                # killed; it is charged and re-tried in isolation,
                # innocent in-flight neighbours are requeued uncharged.
                if self.policy.timeout_s is not None and inflight:
                    now = time.monotonic() - self._t0
                    expired = [
                        (future, job)
                        for future, job in inflight.items()
                        if now - job.submitted_at > self.policy.timeout_s
                    ]
                    if expired:
                        self.timeouts += len(expired)
                        self._count("timeouts", float(len(expired)))
                        expired_futures = {future for future, _job in expired}
                        survivors = [
                            job
                            for future, job in inflight.items()
                            if future not in expired_futures
                        ]
                        for future, job in expired:
                            self._free_lanes.append(job.lane)
                            job.suspect = True
                            exhausted_outcome = self._register_failure(
                                job,
                                f"TimeoutError: exceeded {self.policy.timeout_s}s",
                            )
                            if exhausted_outcome is not None:
                                outcomes.append(exhausted_outcome)
                            else:
                                pending.append(job)
                        for job in survivors:
                            self._free_lanes.append(job.lane)
                            pending.append(job)
                        inflight.clear()
                        self._restart_pool()
        finally:
            self._teardown_pool(kill=True)
        return outcomes

    # -- entry point ----------------------------------------------------

    def run(self, specs: Iterable[JobSpec]) -> FleetRun:
        """Run a job stream to completion; outcomes in job-index order."""
        self._t0 = time.monotonic()
        if self.registry is not None:
            self.registry.gauge("fleet.workers", "configured worker count").set(
                float(self.jobs)
            )
        stream = (self._make_job(i, spec) for i, spec in enumerate(specs))
        if self.jobs == 1:
            outcomes = self._run_serial(stream)
        else:
            outcomes = self._run_parallel(stream)
        outcomes.sort(key=lambda outcome: outcome.index)
        wall_s = time.monotonic() - self._t0
        report = FleetReport.from_outcomes(
            outcomes,
            jobs=self.jobs,
            wall_s=wall_s,
            retries=self.retries,
            timeouts=self.timeouts,
            worker_restarts=self.worker_restarts,
            cache_stats=self.cache.stats() if self.cache is not None else None,
        )
        return FleetRun(outcomes=outcomes, report=report)


def run_jobs(
    specs: Iterable[JobSpec],
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    policy: RetryPolicy | None = None,
    registry=None,
    tracer=None,
    requires: tuple[str, ...] = (),
    fault_hook: Callable[[int, JobSpec], Mapping[str, Any] | None] | None = None,
) -> FleetRun:
    """One-call façade over :class:`FleetScheduler`."""
    cache = ResultCache(cache_dir) if cache_dir else None
    scheduler = FleetScheduler(
        jobs=jobs,
        cache=cache,
        policy=policy,
        registry=registry,
        tracer=tracer,
        requires=requires,
        fault_hook=fault_hook,
    )
    return scheduler.run(specs)

"""Content-addressed on-disk result cache.

Layout: ``<root>/<digest[:2]>/<digest>.json``, one envelope per entry::

    {"schema": "repro.fleet.cache/v1",
     "digest": "...",
     "job": JobSpec.to_dict(),
     "result": codec payload}

The digest already encodes the job spec *and* the code-version salt
(:meth:`repro.fleet.job.JobSpec.digest`), so a lookup is a single
``open``. Writes are atomic (temp file + ``os.replace``) so a killed
worker or a concurrent sweep can never leave a half-written entry that
poisons later runs; unreadable or schema-mismatched entries degrade to
cache misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.fleet.job import JobSpec

__all__ = ["CACHE_SCHEMA", "ResultCache"]

CACHE_SCHEMA = "repro.fleet.cache/v1"


class ResultCache:
    """One cache directory plus hit/miss/write accounting."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> dict | None:
        """The cached result payload for ``digest``, or None."""
        path = self.path_for(digest)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != CACHE_SCHEMA
            or envelope.get("digest") != digest
            or "result" not in envelope
        ):
            self.misses += 1
            return None
        self.hits += 1
        return envelope["result"]

    def put(self, digest: str, spec: JobSpec, result: Mapping[str, Any]) -> Path:
        """Store one result payload atomically."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "job": spec.to_dict(),
            "result": dict(result),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                json.dump(envelope, fp, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).is_file()

    def entries(self) -> Iterator[dict]:
        """Iterate stored envelopes (sorted by digest; skips corrupt)."""
        for path in sorted(self.root.glob("??/*.json")):
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(envelope, dict) and envelope.get("schema") == CACHE_SCHEMA:
                yield envelope

    def count(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

"""Command-line entry point: ``repro-fleet``.

    repro-fleet sweep --jobs 4 --cache-dir .fleet-cache
    repro-fleet sweep --apps Nekbone,AMG --bins 1,32 --report-out r.json
    repro-fleet cache --cache-dir .fleet-cache --stats
    repro-fleet bench --jobs 4 --out BENCH_fleet.json

``sweep`` runs the Figure 7 application grid through the fleet
scheduler; ``cache`` inspects or clears a result cache; ``bench``
measures serial-vs-parallel wall clock and warm-cache behaviour and
writes ``BENCH_fleet.json`` (the CI smoke job asserts on it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from collections import Counter
from pathlib import Path

__all__ = ["main"]


def _parse_bins(text: str) -> tuple[int, ...]:
    try:
        bins = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad bins list {text!r}") from None
    if not bins or any(b <= 0 for b in bins):
        raise argparse.ArgumentTypeError("bins must be positive integers")
    return bins


def _parse_apps(text: str) -> list[str] | None:
    if text == "all":
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="parallel experiment execution with result caching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run the application x bins analysis grid")
    sweep.add_argument("--apps", type=_parse_apps, default=None, help="comma list or 'all'")
    sweep.add_argument("--bins", type=_parse_bins, default=(1, 32, 128))
    sweep.add_argument("--rounds", type=int, default=6)
    sweep.add_argument("--processes", type=int, default=None)
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep.add_argument("--cache-dir", default=None, help="content-addressed result cache")
    sweep.add_argument("--report-out", metavar="PATH", help="write the fleet report JSON")
    sweep.add_argument("--metrics-out", metavar="PATH", help="write an obs metrics snapshot")
    sweep.add_argument(
        "--trace-out", metavar="PATH", help="write a Chrome trace of the schedule"
    )

    cache = sub.add_parser("cache", help="inspect or clear a result cache")
    cache.add_argument("--cache-dir", required=True)
    cache.add_argument("--clear", action="store_true", help="delete every entry")

    bench = sub.add_parser("bench", help="serial-vs-parallel speedup + warm-cache check")
    bench.add_argument("--jobs", type=int, default=4)
    bench.add_argument("--apps", type=_parse_apps, default=None)
    bench.add_argument("--bins", type=_parse_bins, default=(1, 32, 128))
    bench.add_argument("--rounds", type=int, default=8)
    bench.add_argument("--out", metavar="PATH", default="BENCH_fleet.json")
    bench.add_argument(
        "--assert-warm-all-hits",
        action="store_true",
        help="exit nonzero unless the warm re-run executed 0 jobs",
    )
    bench.add_argument(
        "--assert-identical",
        action="store_true",
        help="exit nonzero unless parallel results byte-match serial",
    )
    bench.add_argument(
        "--assert-min-speedup",
        type=float,
        default=None,
        help="exit nonzero below this serial/parallel wall-clock ratio",
    )
    return parser


def _cmd_sweep(args) -> int:
    from repro.analyzer.report import format_figure7
    from repro.analyzer.sweep import sweep_applications

    registry = tracer = None
    if args.metrics_out:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
    if args.trace_out:
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer()
    results, report = sweep_applications(
        bins_list=args.bins,
        processes=args.processes,
        rounds=args.rounds,
        names=args.apps,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        registry=registry,
        tracer=tracer,
        with_report=True,
        strict=False,
    )
    # Quarantined cells are omitted from results; render only apps
    # whose row is complete so the table never shows half a grid as
    # whole, and surface the quarantined job ids for the rest.
    complete = {
        app: cells for app, cells in results.items() if set(cells) == set(args.bins)
    }
    if complete:
        print(format_figure7(complete))
    print(f"fleet: {report.summary()}", file=sys.stderr)
    for job_id in report.quarantined_ids:
        print(f"quarantined: {job_id}", file=sys.stderr)
    if args.report_out:
        Path(args.report_out).write_text(report.to_json())
        print(f"report: {args.report_out}", file=sys.stderr)
    if args.metrics_out:
        Path(args.metrics_out).write_text(registry.snapshot().to_json())
        print(f"metrics: {args.metrics_out}", file=sys.stderr)
    if args.trace_out:
        tracer.write(args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer)} events)", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_cache(args) -> int:
    from repro.fleet.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    kinds: Counter = Counter()
    total = 0
    for envelope in cache.entries():
        total += 1
        kinds[envelope.get("job", {}).get("kind", "?")] += 1
    print(f"{cache.root}: {total} entries")
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:16s} {count}")
    return 0


def _cmd_bench(args) -> int:
    from repro.analyzer.sweep import sweep_applications
    from repro.traces.synthetic import app_names

    names = args.apps if args.apps is not None else app_names()
    grid = dict(
        bins_list=args.bins, rounds=args.rounds, names=names, with_report=True
    )

    def flatten(results) -> str:
        return "".join(
            results[name][bins].to_json()
            for name in sorted(results)
            for bins in sorted(results[name])
        )

    t0 = time.perf_counter()
    serial_results, serial_report = sweep_applications(jobs=1, **grid)
    serial_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as cache_dir:
        t0 = time.perf_counter()
        parallel_results, parallel_report = sweep_applications(
            jobs=args.jobs, cache_dir=cache_dir, **grid
        )
        parallel_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        _warm_results, warm_report = sweep_applications(
            jobs=args.jobs, cache_dir=cache_dir, **grid
        )
        warm_s = time.perf_counter() - t0

    identical = flatten(serial_results) == flatten(parallel_results)
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    payload = {
        "schema": "repro.fleet.bench/v1",
        "grid": {
            "apps": len(names),
            "bins": list(args.bins),
            "rounds": args.rounds,
            "cells": serial_report.total,
        },
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "warm_s": round(warm_s, 4),
        "warm_executed": warm_report.executed,
        "warm_cached": warm_report.cached,
        "parallel_identical_to_serial": identical,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"fleet bench: {serial_report.total} cells, serial {serial_s:.2f}s, "
        f"parallel({args.jobs}) {parallel_s:.2f}s ({speedup:.2f}x), "
        f"warm {warm_s:.2f}s ({warm_report.cached} cached / "
        f"{warm_report.executed} executed)"
    )
    print(f"wrote {args.out}")
    failures = []
    if args.assert_warm_all_hits and warm_report.executed != 0:
        failures.append(f"warm run executed {warm_report.executed} jobs (expected 0)")
    if args.assert_identical and not identical:
        failures.append("parallel results differ from serial")
    if args.assert_min_speedup is not None and speedup < args.assert_min_speedup:
        failures.append(
            f"speedup {speedup:.2f}x below required {args.assert_min_speedup:.2f}x"
        )
    for failure in failures:
        print(f"ASSERTION FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""repro.fleet — parallel experiment execution with result caching.

The paper's evaluation is a grid of *independent* deterministic
simulations (traces x bin counts x matcher strategies x chaos
schedules). ``repro.fleet`` turns any such simulation into a
schedulable **job** — a pure-literal spec plus a seed — and runs whole
grids through a fault-tolerant worker pool:

* :class:`~repro.fleet.job.JobSpec` — the unit of work: a registered
  *kind* (``analyze_app``, ``chaos_run``, ``bench_scenario``), literal
  parameters, and a seed. Specs hash to a stable content digest.
* :class:`~repro.fleet.cache.ResultCache` — content-addressed on-disk
  memoization keyed by ``sha256(spec, code-version salt)``; re-running
  a sweep only executes the changed cells.
* :class:`~repro.fleet.scheduler.FleetScheduler` — a spawn-based
  process pool with a bounded submission window over a lazy job
  stream, bounded retries with exponential backoff (the reliability
  layer's policy shape), quarantine for poisoned jobs, and metrics /
  span export through :mod:`repro.obs`.

The determinism contract: job enumeration order assigns monotonically
increasing job indices, results are merged in index order, and every
result — executed inline, executed in a worker, or loaded from cache —
passes through the same JSON codec. Parallel runs are therefore
byte-identical to serial runs.
"""

from __future__ import annotations

from repro.fleet.cache import ResultCache
from repro.fleet.job import JobSpec
from repro.fleet.kinds import register_kind
from repro.fleet.report import FleetReport
from repro.fleet.scheduler import (
    FleetError,
    FleetRun,
    FleetScheduler,
    JobOutcome,
    RetryPolicy,
    run_jobs,
)

__all__ = [
    "FleetError",
    "FleetReport",
    "FleetRun",
    "FleetScheduler",
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "RetryPolicy",
    "register_kind",
    "run_jobs",
]

"""Substrate-neutral primitives shared by every subsystem.

The optimistic matching engine (:mod:`repro.core`) models hardware
data structures — booking bitmaps, partial-barrier bitmaps, intrusive
lists with lazy removal — and those models live here so that the DPA
simulator, the baseline matchers, and the trace analyzer can reuse
them without depending on each other.
"""

from repro.util.bitmap import Bitmap
from repro.util.counters import MonotonicCounter, SequenceLabeler
from repro.util.intrusive import IntrusiveList, IntrusiveNode
from repro.util.rng import make_rng

__all__ = [
    "Bitmap",
    "MonotonicCounter",
    "SequenceLabeler",
    "IntrusiveList",
    "IntrusiveNode",
    "make_rng",
]

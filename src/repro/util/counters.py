"""Monotonic counters used to label receives and messages.

Two labelling schemes from the paper:

* every posted receive carries a *post label* — "a monotonically
  increasing counter that reflects the posting order" (§III-C) — used
  to pick the oldest candidate across the four indexes, and
* every receive carries a *sequence ID* (§III-D.3a): the host
  increments it whenever the new receive is not compatible with the
  previous one (different source or tag), so the fast path can tell
  whether receive ``k + i`` still belongs to the same run of
  compatible receives.
"""

from __future__ import annotations

__all__ = ["MonotonicCounter", "SequenceLabeler"]


class MonotonicCounter:
    """A counter that only moves forward; ``next()`` returns then bumps."""

    __slots__ = ("_value",)

    def __init__(self, start: int = 0) -> None:
        self._value = start

    def next(self) -> int:
        value = self._value
        self._value += 1
        return value

    def peek(self) -> int:
        """The value the next call to :meth:`next` will return."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MonotonicCounter({self._value})"


class SequenceLabeler:
    """Assigns sequence IDs to runs of *compatible* receives.

    Two consecutively posted receives are compatible when they specify
    the same ``(source, tag)`` pair (wildcards included, compared
    verbatim). The labeler is stateful: feed it each posted receive's
    key in posting order and it returns the sequence ID for it.
    """

    __slots__ = ("_seq", "_last_key", "_run_length")

    def __init__(self) -> None:
        self._seq = 0
        self._last_key: tuple[int, int] | None = None
        self._run_length = 0

    def label(self, source: int, tag: int) -> int:
        """Return the sequence ID for a receive posted with this key."""
        key = (source, tag)
        if self._last_key is not None and key != self._last_key:
            self._seq += 1
            self._run_length = 0
        self._last_key = key
        self._run_length += 1
        return self._seq

    @property
    def current_run_length(self) -> int:
        """Length of the current run of compatible receives."""
        return self._run_length

"""Fixed-width bitmaps modelling the hardware bitmaps of the paper.

The optimistic engine uses two kinds of bitmaps (paper §III-C/D):

* a *booking bitmap* of ``N`` bits per receive descriptor, where thread
  ``i`` sets bit ``i`` to tentatively book the receive, and
* a *partial-barrier bitmap*, where thread ``i`` sets its own bit when
  it enters the barrier and waits for all bits ``j < i`` to be set.

On the DPA these are words updated with atomic fetch-or; here they are
plain Python integers wrapped in a small class that enforces the fixed
width and exposes exactly the queries the algorithm needs (lowest set
bit, "all bits below i set", population count). Operations are O(1)
on machine words for the widths used in practice (N <= 64).
"""

from __future__ import annotations

__all__ = ["Bitmap"]


class Bitmap:
    """A fixed-width bitmap with the query set used by the matcher.

    Parameters
    ----------
    width:
        Number of addressable bits. Bit indexes are ``0 .. width-1``.
    """

    __slots__ = ("_width", "_bits")

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError(f"bitmap width must be positive, got {width}")
        self._width = width
        self._bits = 0

    @property
    def width(self) -> int:
        return self._width

    @property
    def value(self) -> int:
        """The raw integer value (useful for snapshots in tests)."""
        return self._bits

    def _check(self, index: int) -> None:
        if not 0 <= index < self._width:
            raise IndexError(f"bit {index} out of range [0, {self._width})")

    def set(self, index: int) -> None:
        """Set bit ``index`` (models atomic fetch-or)."""
        self._check(index)
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        """Clear bit ``index``."""
        self._check(index)
        self._bits &= ~(1 << index)

    def test(self, index: int) -> bool:
        """Return whether bit ``index`` is set."""
        self._check(index)
        return bool(self._bits >> index & 1)

    def reset(self) -> None:
        """Clear every bit."""
        self._bits = 0

    def popcount(self) -> int:
        """Number of set bits."""
        return self._bits.bit_count()

    def is_empty(self) -> bool:
        return self._bits == 0

    def is_full(self) -> bool:
        """Whether every bit of the bitmap is set.

        Used by the fast-path eligibility check: "if all threads
        selected it, then conflicted threads can try this strategy".
        """
        return self._bits == (1 << self._width) - 1

    def lowest_set(self) -> int | None:
        """Index of the lowest set bit, or ``None`` when empty.

        Conflict detection resolves ties by lowest thread ID — the
        thread processing the earliest-arrived message wins (C2).
        """
        if self._bits == 0:
            return None
        return (self._bits & -self._bits).bit_length() - 1

    def any_below(self, index: int) -> bool:
        """Whether any bit strictly below ``index`` is set.

        This is the early-booking-check primitive (§IV-D): if a lower
        thread already booked the receive, a higher thread can skip it.
        """
        self._check(index)
        return bool(self._bits & ((1 << index) - 1))

    def all_below(self, index: int) -> bool:
        """Whether *all* bits strictly below ``index`` are set.

        This is the partial-barrier wait condition for thread ``index``.
        """
        self._check(index)
        mask = (1 << index) - 1
        return (self._bits & mask) == mask

    def set_indexes(self) -> list[int]:
        """Sorted list of set bit indexes (diagnostics/tests)."""
        bits, out = self._bits, []
        while bits:
            low = bits & -bits
            out.append(low.bit_length() - 1)
            bits ^= low
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bitmap(width={self._width}, bits={self._bits:#x})"

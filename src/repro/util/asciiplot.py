"""Terminal plotting for figure regeneration.

The reproduction has no plotting dependencies (matplotlib is not in
the environment), so the CLIs render figures as Unicode bar charts:
grouped horizontal bars for the call-mix and message-rate figures and
log-friendly depth bars for the queue-depth figure. Pure functions of
their inputs; tested like any other formatting code.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["hbar_chart", "grouped_bars", "depth_series", "spark_series"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, maximum: float, width: int) -> str:
    """A horizontal bar of ``value`` scaled to ``width`` cells."""
    if maximum <= 0 or value <= 0:
        return ""
    cells = value / maximum * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * (len(_BLOCKS) - 1))] if full < width else ""
    return "█" * full + partial


def hbar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    unit: str = "",
    sort: bool = False,
) -> str:
    """One horizontal bar per labelled value."""
    if not values:
        return "(no data)"
    items = list(values.items())
    if sort:
        items.sort(key=lambda item: item[1], reverse=True)
    label_width = max(len(label) for label, _ in items)
    maximum = max(value for _, value in items)
    lines = []
    for label, value in items:
        bar = _bar(value, maximum, width)
        lines.append(f"{label:<{label_width}} │{bar:<{width}}│ {value:g}{unit}")
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    *,
    width: int = 30,
    unit: str = "",
) -> str:
    """Bars grouped under headings: {group: {label: value}}."""
    if not groups:
        return "(no data)"
    maximum = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    label_width = max(
        (len(label) for series in groups.values() for label in series),
        default=0,
    )
    lines = []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for label, value in series.items():
            bar = _bar(value, maximum, width)
            lines.append(f"  {label:<{label_width}} │{bar:<{width}}│ {value:g}{unit}")
    return "\n".join(lines)


def depth_series(
    rows: Sequence[tuple[str, Mapping[int, float]]],
    *,
    width: int = 24,
) -> str:
    """The Fig. 7 layout: one row per app, one bar per bin count.

    ``rows`` are (app, {bins: depth}) pairs, typically pre-sorted by
    descending 1-bin depth like the paper arranges its plots.
    """
    if not rows:
        return "(no data)"
    bins_list = sorted(rows[0][1])
    maximum = max(
        (depth for _, series in rows for depth in series.values()), default=0.0
    )
    label_width = max(len(name) for name, _ in rows)
    lines = []
    header = " " * (label_width + 2) + "  ".join(
        f"{'@' + str(b) + ' bins':<{width + 8}}" for b in bins_list
    )
    lines.append(header.rstrip())
    for name, series in rows:
        cells = []
        for bins in bins_list:
            depth = series.get(bins, 0.0)
            bar = _bar(depth, maximum, width)
            cells.append(f"│{bar:<{width}}│{depth:6.2f}")
        lines.append(f"{name:<{label_width}}  " + "  ".join(cells))
    return "\n".join(lines)


_SPARKS = "▁▂▃▄▅▆▇█"


def spark_series(
    rows: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
) -> str:
    """One sparkline per named time series (the timeline renderer).

    Each row is scaled to its own min/max (dynamics, not magnitudes —
    the trailing ``min..max`` range carries the scale); series longer
    than ``width`` are downsampled by taking the max of each chunk so
    short spikes stay visible.
    """
    if not rows:
        return "(no data)"
    label_width = max(len(name) for name in rows)
    lines = []
    for name in rows:
        values = [float(v) for v in rows[name]]
        if not values:
            lines.append(f"{name:<{label_width}}  (no samples)")
            continue
        if len(values) > width:
            chunk = len(values) / width
            values = [
                max(values[int(i * chunk): max(int((i + 1) * chunk), int(i * chunk) + 1)])
                for i in range(width)
            ]
        low, high = min(values), max(values)
        span = high - low
        if span <= 0:
            spark = _SPARKS[0] * len(values)
        else:
            spark = "".join(
                _SPARKS[int((v - low) / span * (len(_SPARKS) - 1))] for v in values
            )
        lines.append(f"{name:<{label_width}}  {spark}  {low:g}..{high:g}")
    return "\n".join(lines)

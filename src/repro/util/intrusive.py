"""Intrusive doubly-linked list with lazy removal.

Hash-table buckets and the double-wildcard list in the matcher are
chained lists of receive descriptors kept in posting order. The paper's
*lazy removal* optimization (§IV-D) marks consumed receives instead of
unlinking them immediately — "threads that successfully acquire a lock
during the removal will proceed to clean up the list, removing also the
marked receives" — so that parallel consumers do not serialize on list
surgery.

The list is intrusive (nodes carry their own links) because a receive
descriptor must be findable and unlinkable in O(1) once matched, and
because a descriptor lives in exactly one index (paper §III-B).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Generic, TypeVar

T = TypeVar("T")

__all__ = ["IntrusiveNode", "IntrusiveList"]


class IntrusiveNode(Generic[T]):
    """A list node owning a payload plus a lazy-removal mark."""

    __slots__ = ("payload", "prev", "next", "marked", "owner")

    def __init__(self, payload: T) -> None:
        self.payload = payload
        self.prev: IntrusiveNode[T] | None = None
        self.next: IntrusiveNode[T] | None = None
        self.marked = False  # consumed, awaiting physical removal
        self.owner: IntrusiveList[T] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IntrusiveNode({self.payload!r}, marked={self.marked})"


class IntrusiveList(Generic[T]):
    """Doubly-linked list in insertion (posting) order.

    Supports eager unlink, lazy marking, and an opportunistic sweep
    that physically removes marked nodes — mirroring the DPA scheme
    where the sweep happens under the bucket's removal lock.
    """

    __slots__ = ("_head", "_tail", "_live", "_marked_count")

    def __init__(self) -> None:
        self._head: IntrusiveNode[T] | None = None
        self._tail: IntrusiveNode[T] | None = None
        self._live = 0
        self._marked_count = 0

    def __len__(self) -> int:
        """Number of live (unmarked) nodes."""
        return self._live

    @property
    def physical_length(self) -> int:
        """Number of nodes physically present, marked ones included."""
        return self._live + self._marked_count

    def is_empty(self) -> bool:
        return self._live == 0

    def append(self, payload: T) -> IntrusiveNode[T]:
        """Append a payload at the tail, preserving posting order."""
        node = IntrusiveNode(payload)
        node.owner = self
        if self._tail is None:
            self._head = self._tail = node
        else:
            node.prev = self._tail
            self._tail.next = node
            self._tail = node
        self._live += 1
        return node

    def unlink(self, node: IntrusiveNode[T]) -> None:
        """Physically remove ``node`` from the list (eager removal)."""
        if node.owner is not self:
            raise ValueError("node does not belong to this list")
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        if node.marked:
            self._marked_count -= 1
        else:
            self._live -= 1
        node.prev = node.next = None
        node.owner = None

    def mark(self, node: IntrusiveNode[T]) -> None:
        """Lazily remove ``node``: mark it consumed, keep it linked."""
        if node.owner is not self:
            raise ValueError("node does not belong to this list")
        if not node.marked:
            node.marked = True
            self._live -= 1
            self._marked_count += 1

    def sweep(self) -> int:
        """Physically remove every marked node; return how many."""
        removed = 0
        node = self._head
        while node is not None:
            nxt = node.next
            if node.marked:
                self.unlink(node)
                removed += 1
            node = nxt
        return removed

    def iter_nodes(self, *, include_marked: bool = False) -> Iterator[IntrusiveNode[T]]:
        """Iterate nodes head-to-tail (posting order).

        Iteration tolerates unlinking of the *current* node mid-loop
        (the next pointer is read before yielding).
        """
        node = self._head
        while node is not None:
            nxt = node.next
            if include_marked or not node.marked:
                yield node
            node = nxt

    def __iter__(self) -> Iterator[T]:
        for node in self.iter_nodes():
            yield node.payload

    def head(self) -> IntrusiveNode[T] | None:
        """First live node, or ``None``."""
        node = self._head
        while node is not None and node.marked:
            node = node.next
        return node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IntrusiveList(live={self._live}, marked={self._marked_count})"

"""Seeded random-number helpers.

Every stochastic component (synthetic trace generators, random thread
schedules, workload sweeps) takes an explicit seed and builds its
generator through :func:`make_rng`, so that every figure and table in
the reproduction is bit-reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "derive_seed"]

_DEFAULT_SEED = 0x5C24  # "SC24"


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy generator seeded deterministically.

    ``None`` maps to the project-wide default seed rather than OS
    entropy: reproduction runs must never depend on ambient state.
    """
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int, *components: int | str) -> int:
    """Derive a stable child seed from a parent seed and labels.

    Used to give each rank / application / repetition its own stream
    without correlated overlap (e.g. per-rank trace generation).
    """
    ss = np.random.SeedSequence([seed & 0xFFFFFFFF] + [_component_key(c) for c in components])
    return int(ss.generate_state(1, dtype=np.uint32)[0])


def _component_key(component: int | str) -> int:
    if isinstance(component, int):
        return component & 0xFFFFFFFF
    # Stable across processes (unlike hash()): FNV-1a over the bytes.
    acc = 0x811C9DC5
    for byte in component.encode("utf-8"):
        acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
    return acc

"""Seeded chaos harness: the full offload stack under a lossy wire.

Runs randomized but fully deterministic schedules of receive posts and
sends through ``Wire -> FaultyWire -> ReliableWire -> QueuePair ->
RdmaReceiver + OptimisticMatcher`` and cross-checks the observable
outcome (which receive got which message, exactly once) against the
serial linked-list oracle.
"""

from repro.chaos.harness import ChaosConfig, ChaosReport, run_chaos

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]
